"""Fig. 12 — per-server load distribution at rate 18.

Paper: eta = 0.18 (SP), 0.44 (EC), 1.18 (replication) — SP 2.4x and 6.6x
better.  Our simulator reproduces the ordering with SP even flatter.
"""

from conftest import bench_scale, run_experiment

from repro.experiments.fig12_load_distribution import run_fig12


def test_fig12_load_distribution(benchmark, report):
    rows = run_experiment(benchmark, run_fig12, scale=bench_scale())
    report(rows, "Fig. 12 — server load distribution, rate 18")
    eta = {r["scheme"]: r["eta"] for r in rows}
    assert eta["sp-cache"] < eta["ec-cache"] < eta["selective-replication"]
    # Rough magnitudes: SP near-flat, EC moderate, replication heavy.
    assert eta["sp-cache"] < 0.2
    assert eta["selective-replication"] > 0.8
