"""Fig. 15 — compute-optimized servers (1.4 Gbps, cheaper decode).

Paper: the SP-vs-EC gap persists (39-47 % mean) even when faster CPUs
halve the decode cost, and replication trails SP by 3.3-3.8x in the mean.
"""

from conftest import bench_scale, run_experiment

from repro.experiments.fig15_compute_optimized import run_fig15


def test_fig15_compute_optimized(benchmark, report):
    rows = run_experiment(benchmark, run_fig15, scale=bench_scale())
    report(rows, "Fig. 15 — c4.4xlarge-class cluster (1.4 Gbps, 10 % decode)")
    by_rate = {r["rate"]: r for r in rows}
    # SP still clearly ahead of EC at moderate-to-heavy load (the faster
    # NICs keep EC farther from saturation, so the margin is thinner than
    # on the 1 Gbps cluster — same as the paper's narrowing from Fig. 13).
    assert by_rate[18]["mean_vs_ec_pct"] > 15
    assert by_rate[22]["mean_vs_ec_pct"] > 30
    # Replication remains several times slower than SP at heavy load
    # (paper: 3.3-3.8x mean).
    assert by_rate[18]["rep_mean"] / by_rate[18]["sp_mean"] > 3.0
    # Better network => faster SP absolute latency than the 1 Gbps run
    # (paper: below 0.5 s mean).
    assert by_rate[6]["sp_mean"] < 0.6
