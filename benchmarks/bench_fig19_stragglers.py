"""Fig. 19 — intensive (per-server) straggler injection.

Paper: SP-Cache still cuts the mean by up to 40 % vs EC-Cache; at light
load its *tail* may trail the redundant baselines (redundancy absorbs
stragglers), flipping in SP's favour once imbalance dominates.
"""

from conftest import bench_scale, run_experiment

from repro.experiments.fig19_stragglers import run_fig19


def test_fig19_stragglers(benchmark, report):
    rows = run_experiment(benchmark, run_fig19, scale=bench_scale())
    report(rows, "Fig. 19 — per-server stragglers (p = 0.05)")
    by_rate = {r["rate"]: r for r in rows}
    # Light load: roughly a tie with EC (the paper concedes the tail).
    assert by_rate[6]["mean_vs_ec_pct"] > -15
    # Heavy load: SP far ahead despite zero redundancy.
    assert by_rate[18]["mean_vs_ec_pct"] > 30
    assert by_rate[22]["mean_vs_ec_pct"] > 50
    assert by_rate[22]["tail_vs_ec_pct"] > 50
    # Replication is always worse than SP here.
    for r in rows:
        assert r["rep_mean"] > r["sp_mean"]
