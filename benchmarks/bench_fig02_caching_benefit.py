"""Fig. 2 + Table 1 — caching's benefit erodes under load imbalance.

Paper: caching wins ~5x at rate 5; by rate >= 9 hot spots make it nearly
irrelevant.  CV stays > 1 in both systems (Table 1).
"""

from conftest import bench_scale, run_experiment

from repro.experiments.fig02_caching_benefit import run_fig02


def test_fig02_caching_benefit(benchmark, report):
    rows = run_experiment(benchmark, run_fig02, scale=bench_scale())
    report(rows, "Fig. 2 / Table 1 — cached vs disk, rates 5-10")
    by_rate = {r["rate"]: r for r in rows}
    # Caching helps a lot at light load...
    assert by_rate[5]["speedup"] > 3.0
    # ...and hot spots erode the cached system sharply as load grows
    # (the paper's Fig. 2 story: the curves converge).
    assert by_rate[10]["cached_mean_s"] > 4 * by_rate[5]["cached_mean_s"]
    # The caching advantage is past its peak by rate 10.
    peak = max(r["speedup"] for r in rows)
    assert by_rate[10]["speedup"] < peak
    # Table 1's marker of hot spots: high CV under skew at heavy load.
    assert by_rate[10]["cached_cv"] > 1.0
