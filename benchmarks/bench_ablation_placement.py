"""Ablation — partition placement: random versus greedy least-loaded.

Sec. 6.3 claims random placement suffices for SP-Cache (per-partition
loads are uniform by construction), while Sec. 7.4 shows greedy placement
still helps after a shift.  We measure the imbalance factor of both on the
same partition counts.
"""

import numpy as np

from conftest import run_experiment

from repro.cluster import imbalance_factor
from repro.common import ClusterSpec, Gbps
from repro.core.partitioner import partition_counts
from repro.core.placement import (
    place_partitions_greedy,
    place_partitions_random,
    placement_server_loads,
)
from repro.workloads import paper_fileset


def _run():
    cluster = ClusterSpec(n_servers=30, bandwidth=Gbps)
    rows = []
    for alpha_mb, label in ((0.5, "selective"), (20.0, "fine")):
        pop = paper_fileset(300, size_mb=100, zipf_exponent=1.05, total_rate=10.0)
        ks = partition_counts(pop, alpha_mb / (1 << 20), n_servers=30)
        etas_r = []
        for seed in range(10):
            loads = placement_server_loads(
                place_partitions_random(ks, 30, seed=seed), pop.loads, 30
            )
            etas_r.append(imbalance_factor(loads))
        greedy = placement_server_loads(
            place_partitions_greedy(ks, pop.loads, 30), pop.loads, 30
        )
        rows.append(
            {
                "regime": label,
                "alpha_mb": alpha_mb,
                "eta_random_mean": float(np.mean(etas_r)),
                "eta_random_worst": float(np.max(etas_r)),
                "eta_greedy": imbalance_factor(greedy),
            }
        )
    return rows


def test_ablation_placement(benchmark, report):
    rows = run_experiment(benchmark, _run)
    report(rows, "Ablation — random vs greedy placement")
    for r in rows:
        # Greedy is never worse than the random average.
        assert r["eta_greedy"] <= r["eta_random_mean"] + 1e-9
    # Sec. 5.1's claim: once partitions are fine-grained (uniform load
    # quanta), random placement is already nearly balanced.
    fine = next(r for r in rows if r["regime"] == "fine")
    assert fine["eta_random_mean"] < 0.4
