"""Benchmark harness conventions.

Every bench wraps one experiment runner from ``repro.experiments`` in the
pytest-benchmark fixture (one round — these are *experiments*, not
micro-benchmarks) and prints the paper-vs-measured table so
``pytest benchmarks/ --benchmark-only`` regenerates the whole evaluation.

``REPRO_BENCH_SCALE`` (default 1.0) shrinks simulated request counts for
quick passes.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.tables import format_table


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture
def report():
    """Print a result table so it lands in the captured bench output."""

    def _report(rows, title):
        print()
        print(format_table(rows, title=title))
        return rows

    return _report


def run_experiment(benchmark, runner, **kwargs):
    """Run ``runner`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
