"""Benchmark harness conventions.

Every bench wraps one experiment runner from ``repro.experiments`` in the
pytest-benchmark fixture (one round — these are *experiments*, not
micro-benchmarks) and prints the paper-vs-measured table so
``pytest benchmarks/ --benchmark-only`` regenerates the whole evaluation.

``REPRO_BENCH_SCALE`` (default 1.0) shrinks simulated request counts for
quick passes.

After a ``--benchmark-only`` pass the session also writes a
machine-readable ``BENCH_<timestamp>.json`` next to the working
directory: per-experiment wall seconds, the scale the pass ran at, and
the git sha — the same shape ``repro report`` expects from run
manifests' timing data, so bench results can be archived alongside them.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.analysis.tables import format_table
from repro.obs.runinfo import git_sha

#: Wall seconds per experiment runner, filled by :func:`run_experiment`.
_WALL_SECONDS: dict[str, float] = {}


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture
def report():
    """Print a result table so it lands in the captured bench output."""

    def _report(rows, title):
        print()
        print(format_table(rows, title=title))
        return rows

    return _report


def run_experiment(benchmark, runner, **kwargs):
    """Run ``runner`` exactly once under the benchmark fixture."""
    name = runner.__name__.removeprefix("run_")
    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    _WALL_SECONDS[name] = time.perf_counter() - start
    return result


def pytest_sessionfinish(session, exitstatus):
    """After a ``--benchmark-only`` pass, persist the wall times as JSON."""
    if not _WALL_SECONDS:
        return
    if not session.config.getoption("benchmark_only", default=False):
        return
    stamp = time.strftime("%Y%m%d-%H%M%S")
    path = os.path.join(str(session.config.rootpath), f"BENCH_{stamp}.json")
    payload = {
        "schema_version": 1,
        "created_unix": time.time(),
        "git_sha": git_sha(),
        "bench_scale": bench_scale(),
        "wall_seconds": dict(sorted(_WALL_SECONDS.items())),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\nbench wall times: {len(_WALL_SECONDS)} experiment(s) -> {path}")
