"""Fig. 8 — the Eq. (9) bound versus simulated mean latency across alpha.

Paper: both curves dip steeply to an elbow around alpha ~ 1 (MB-load
units) then flatten; the bound tracks the measurement from above, with the
measurement allowed to exceed it at large alpha (the model ignores network
overhead and stragglers).
"""

from conftest import bench_scale, run_experiment

from repro.experiments.fig08_upper_bound import run_fig08


def test_fig08_upper_bound(benchmark, report):
    rows = run_experiment(benchmark, run_fig08, scale=bench_scale())
    report(rows, "Fig. 8 — upper bound vs simulation, 300 x 100 MB @ rate 8")
    bounds = [r["upper_bound_s"] for r in rows]
    sims = [r["simulated_mean_s"] for r in rows]
    # The bound upper-bounds (or closely tracks) the simulation: allow the
    # paper's own caveat that measurements can exceed it slightly.
    for b, s in zip(bounds, sims):
        assert s <= b * 1.25
    # Simulated latency improves from the smallest alpha to the elbow.
    assert min(sims[2:]) <= sims[0]
    # Partitioning is selective at these alphas (most files unsplit).
    assert rows[2]["split_fraction"] < 0.5
