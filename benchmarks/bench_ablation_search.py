"""Ablation — Algorithm 1's stop rule: paper's local 1 % vs full sweep.

The published rule stops at the first <1 % step; our deployment default
sweeps the whole 1.5x ladder and takes the argmin.  This ablation measures
what each choice costs in bound value and in simulated latency.
"""

from conftest import bench_scale, run_experiment

from repro.cluster import SimulationConfig, StragglerInjector, simulate_reads
from repro.cluster.network import GoodputModel
from repro.common import MB
from repro.core import optimal_scale_factor
from repro.experiments.config import DEFAULTS, EC2_CLUSTER
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace


def _run(scale=1.0):
    rows = []
    for rate in (8.0, 18.0):
        pop = paper_fileset(300, size_mb=100, zipf_exponent=1.05, total_rate=rate)
        trace = poisson_trace(
            pop, n_requests=DEFAULTS.requests(scale), seed=DEFAULTS.seed_trace
        )
        for mode in ("paper", "sweep"):
            search = optimal_scale_factor(
                pop,
                EC2_CLUSTER,
                goodput=GoodputModel(),
                client_cap=True,
                service_distribution="deterministic",
                mode=mode,
                seed=0,
            )
            policy = SPCachePolicy(
                pop, EC2_CLUSTER, alpha=search.alpha, seed=DEFAULTS.seed_policy
            )
            s = simulate_reads(
                trace,
                policy,
                EC2_CLUSTER,
                SimulationConfig(
                    jitter="deterministic",
                    stragglers=StragglerInjector.natural(),
                    seed=8,
                ),
            ).summary()
            rows.append(
                {
                    "rate": rate,
                    "mode": mode,
                    "alpha_mb": search.alpha * MB,
                    "bound_s": search.bound,
                    "iterations": search.n_iterations,
                    "sim_mean_s": s.mean,
                    "sim_p95_s": s.p95,
                }
            )
    return rows


def test_ablation_search_mode(benchmark, report):
    rows = run_experiment(benchmark, _run, scale=bench_scale())
    report(rows, "Ablation — Algorithm 1 stop rule (paper vs sweep)")
    for rate in (8.0, 18.0):
        paper = next(r for r in rows if r["rate"] == rate and r["mode"] == "paper")
        sweep = next(r for r in rows if r["rate"] == rate and r["mode"] == "sweep")
        # The sweep's bound is the ladder minimum by construction.
        assert sweep["bound_s"] <= paper["bound_s"] + 1e-9
        # And it never costs simulated latency at heavy load.
        if rate == 18.0:
            assert sweep["sim_mean_s"] <= paper["sim_mean_s"] * 1.05
