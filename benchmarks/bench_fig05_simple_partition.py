"""Fig. 5 + Table 3 — simple partition with and without stragglers.

Paper: partitioning collapses the 20 s no-balancing latency to ~1 s; with
injected stragglers, pushing k past ~9 *hurts* — wide fork-joins keep
meeting stragglers.
"""

from conftest import bench_scale, run_experiment

from repro.experiments.fig05_simple_partition import run_fig05


def test_fig05_simple_partition(benchmark, report):
    rows = run_experiment(benchmark, run_fig05, scale=bench_scale())
    report(rows, "Fig. 5 / Table 3 — uniform k sweep at rate 10")
    by_k = {r["k"]: r for r in rows}
    # Partitioning rescues the overloaded cluster (vs k=1).
    assert by_k[3]["mean_s"] < by_k[1]["mean_s"] / 3
    # Stragglers always cost something.
    for r in rows:
        assert r["mean_s_stragglers"] >= r["mean_s"] * 0.99
    # With stragglers, over-partitioning stops improving the mean: the
    # curve bottoms out by k~9 and drifts up after (paper: rises sharply;
    # our delay-only injection gives a milder rise — see EXPERIMENTS.md).
    assert by_k[27]["mean_s_stragglers"] >= by_k[9]["mean_s_stragglers"]
    # Wide fork-joins meet stragglers almost every read: the *fraction* of
    # straggler-affected requests grows with k even if each hit is small.
    assert (
        by_k[27]["cv_stragglers"] > by_k[27]["cv"] + 0.05
    )  # stragglers dominate the variability at high k
