"""Ablation — heterogeneous server bandwidths.

The model (Eqs. 6-13) and the engines carry per-server bandwidths ``B_s``;
the paper's clusters are homogeneous, but real fleets mix NIC generations.
This ablation mixes 1 Gbps and 500 Mbps servers and checks that (a) the
simulator's per-server loads track capacity-agnostic placement, and
(b) SP-Cache still beats EC-Cache — random placement over uniform load
quanta tolerates moderate heterogeneity.
"""

import numpy as np

from conftest import bench_scale, run_experiment

from repro.cluster import SimulationConfig, StragglerInjector, simulate_reads
from repro.common import ClusterSpec, Gbps, Mbps
from repro.experiments.config import DEFAULTS
from repro.policies import ECCachePolicy, SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace


def _run(scale=1.0):
    bandwidths = np.where(np.arange(30) % 3 == 0, 500 * Mbps, Gbps)
    hetero = ClusterSpec(n_servers=30, bandwidth=bandwidths)
    homo = ClusterSpec(n_servers=30, bandwidth=Gbps)
    rows = []
    for label, cluster in (("homogeneous", homo), ("heterogeneous", hetero)):
        pop = paper_fileset(300, size_mb=100, zipf_exponent=1.05, total_rate=12.0)
        trace = poisson_trace(
            pop, n_requests=DEFAULTS.requests(scale), seed=DEFAULTS.seed_trace
        )
        cfg = SimulationConfig(
            jitter="deterministic",
            stragglers=StragglerInjector.natural(),
            seed=13,
        )
        sp = simulate_reads(
            trace, SPCachePolicy(pop, cluster, seed=3), cluster, cfg
        ).summary()
        ec = simulate_reads(
            trace, ECCachePolicy(pop, cluster, seed=3), cluster, cfg
        ).summary()
        rows.append(
            {
                "cluster": label,
                "sp_mean_s": sp.mean,
                "sp_p95_s": sp.p95,
                "ec_mean_s": ec.mean,
                "ec_p95_s": ec.p95,
                "sp_vs_ec_pct": (ec.mean - sp.mean) / ec.mean * 100,
            }
        )
    return rows


def test_ablation_heterogeneous(benchmark, report):
    rows = run_experiment(benchmark, _run, scale=bench_scale())
    report(rows, "Ablation — mixed 1 Gbps / 500 Mbps cluster")
    homo, hetero = rows
    # Heterogeneity costs both schemes something...
    assert hetero["sp_mean_s"] >= homo["sp_mean_s"] * 0.95
    # ...but SP-Cache keeps a clear edge over EC-Cache either way.
    assert hetero["sp_vs_ec_pct"] > 0
    assert homo["sp_vs_ec_pct"] > 0