"""Fig. 22 — write latency versus file size, four schemes.

Paper: SP-Cache writes fastest — 1.77x faster than EC-Cache, 3.71x faster
than selective replication, 13 % faster than 4 MB chunking, on average.
"""

from conftest import run_experiment

from repro.experiments.fig22_write_latency import run_fig22


def test_fig22_write_latency(benchmark, report):
    rows = run_experiment(benchmark, run_fig22)
    report(rows, "Fig. 22 — write latency by file size")
    data_rows = [r for r in rows if isinstance(r["size_mb"], (int, float))]
    # SP always beats the redundant writers.
    for r in data_rows:
        assert r["sp_write_s"] <= r["ec_write_s"]
        assert r["sp_write_s"] <= r["rep_write_s"]
    # Chunking's many-connection cost bites as files grow: SP wins at the
    # largest size even if tiny files are a wash.
    assert data_rows[-1]["sp_write_s"] < data_rows[-1]["chunk4mb_write_s"]
    summary = rows[-1]
    # Average speedups in the paper's ballpark (1.77x / 3.71x / 1.13x).
    assert 1.3 <= summary["ec_write_s"] <= 2.5
    assert 2.5 <= summary["rep_write_s"] <= 5.0
    assert 0.95 <= summary["chunk4mb_write_s"] <= 1.6
