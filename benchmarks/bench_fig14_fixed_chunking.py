"""Fig. 14 — SP-Cache versus fixed-size chunking (4/8/16 MB).

Paper: small chunks pay connection overhead at light load; 16 MB chunks
leave hot spots and end > 2x SP-Cache's mean at rate 22; small-chunk tails
are comparable to SP-Cache.
"""

from conftest import bench_scale, run_experiment

from repro.experiments.fig14_fixed_chunking import run_fig14


def test_fig14_fixed_chunking(benchmark, report):
    rows = run_experiment(benchmark, run_fig14, scale=bench_scale())
    report(rows, "Fig. 14 — SP-Cache vs fixed-size chunking")
    by_rate = {r["rate"]: r for r in rows}
    # At heavy load the coarse chunks' residual imbalance costs them.
    heavy = by_rate[22]
    assert heavy["sp_cache_mean"] < heavy["chunk_16mb_mean"]
    assert heavy["sp_vs_16mb_pct"] > 0
    # SP-Cache is never meaningfully worse than the best chunking config.
    for r in rows:
        best_chunk = min(
            r["chunk_4mb_mean"], r["chunk_8mb_mean"], r["chunk_16mb_mean"]
        )
        assert r["sp_cache_mean"] <= best_chunk * 1.15
    # Finer chunks pay more connection overhead than coarser ones at the
    # lightest load (goodput cost of many streams).
    light = by_rate[6]
    assert light["chunk_4mb_mean"] >= light["chunk_16mb_mean"] * 0.95
