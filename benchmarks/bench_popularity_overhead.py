"""Microbenchmark: cost of streaming popularity observation on the hot path.

Three configurations of the FIFO engine on a 5k-request workload:

* ``off`` — popularity observation disabled (the default): the engine
  pays one hoisted ``lc.track`` check per run;
* ``on`` — a :class:`~repro.obs.PopularityConfig` at the default
  2048-request window: per request the monitor appends one file id and
  fancy-index-adds the fork-join bytes; sketch folding happens ~2x over
  the run;
* ``on, tight windows`` — 256-request windows, folding ~20x, the
  worst realistic cadence (drift detection wants several windows per
  popularity regime, not per second).

``tests/test_obs/test_overhead.py`` reuses :func:`run_popularity_overhead`
and asserts the default-window enabled path stays under the 5 % budget
quoted in ``docs/observability.md``.
"""

from __future__ import annotations

from repro.cluster.simulation import SimulationConfig, simulate_reads
from repro.obs import PopularityConfig

from bench_obs_overhead import overhead_workload, paired_times


def run_popularity_overhead(n_requests: int = 5000, repeats: int = 7):
    trace, policy, cluster = overhead_workload(n_requests)

    def config(popularity=None):
        return SimulationConfig(
            discipline="fifo", jitter="deterministic", seed=2,
            popularity=popularity,
        )

    off_cfg = config()
    on_cfg = config(PopularityConfig())
    tight_cfg = config(PopularityConfig(window_requests=256))
    t_off, t_on, t_tight = paired_times(
        [
            lambda: simulate_reads(trace, policy, cluster, off_cfg),
            lambda: simulate_reads(trace, policy, cluster, on_cfg),
            lambda: simulate_reads(trace, policy, cluster, tight_cfg),
        ],
        repeats,
    )
    return [
        {"config": "off (default)", "seconds": t_off, "vs_off": 1.0},
        {"config": "on, 2048-request windows", "seconds": t_on,
         "vs_off": t_on / t_off},
        {"config": "on, 256-request windows", "seconds": t_tight,
         "vs_off": t_tight / t_off},
    ]


def test_popularity_overhead(benchmark, report):
    rows = benchmark.pedantic(
        run_popularity_overhead, rounds=1, iterations=1, warmup_rounds=0
    )
    report(rows, "Popularity observation overhead — 5k-request FIFO")
    assert rows[1]["vs_off"] < 1.05


if __name__ == "__main__":  # pragma: no cover
    from repro.analysis.tables import print_table

    print_table(
        run_popularity_overhead(),
        "Popularity observation overhead — 5k-request FIFO",
    )
