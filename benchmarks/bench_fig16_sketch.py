"""Fig. 16 rerun — Algorithm 2 fed by sketched (not oracle) popularity.

Acceptance gates from the observability issue: top-K precision >= 0.9
against the true hottest files, online Zipf-alpha within 10 % of the
ground-truth fit, at least one drift alert across the popularity shift,
and a sketch-driven plan whose imbalance factor lands within a few
percent of the oracle-driven one.
"""

from conftest import bench_scale, run_experiment

from repro.experiments.fig16_sketch import run_fig16_sketch


def test_fig16_sketch_driven_repartition(benchmark, report):
    rows = run_experiment(benchmark, run_fig16_sketch, scale=bench_scale())
    report(rows, "Fig. 16 (sketch-driven) — estimate fidelity and plans")
    r = rows[0]
    assert r["topk_precision"] >= 0.9
    assert r["alpha_rel_err"] <= 0.10
    assert r["drift_alerts"] >= 1
    assert r["eta_sketch"] < r["eta_stale"]
    assert r["eta_gap"] < 0.1 * r["eta_stale"]
