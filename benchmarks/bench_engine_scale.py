"""Engine throughput at scale: vectorized batches vs the scalar path.

A fig13-style workload (the Sec. 7.3 500-file Zipf population under
SP-Cache with natural per-read stragglers) pushed to ``--requests``
arrivals through the batched fifo fast path, fed by a lazy
:class:`~repro.workloads.streams.PoissonStream` so arrivals never
materialize up front.  The scalar engine is calibrated on a capped
prefix of the same workload (it would take minutes at full scale), and
the bench reports requests/sec for both, the speedup, and peak RSS.

Run directly::

    python benchmarks/bench_engine_scale.py --requests 1000000

Writes ``BENCH_<timestamp>_engine_scale.json`` in the working directory
(same family as the ``BENCH_<ts>.json`` archives the pytest-benchmark
conftest emits; ``wall_seconds`` keeps the shared shape).  With
``--baseline PATH`` the run becomes a perf gate: it exits non-zero when
measured vectorized requests/sec fall below ``(1 - tolerance)`` of the
baseline's — the CI job pins ``benchmarks/baseline_engine_scale.json``
(a deliberately conservative floor, so only real regressions trip it).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.cluster.simulation import SimulationConfig, simulate_reads
from repro.cluster.stragglers import StragglerInjector
from repro.common import ClusterSpec, Gbps
from repro.obs.runinfo import git_sha, peak_rss_bytes
from repro.policies import SPCachePolicy
from repro.workloads import PoissonStream, paper_fileset

DEFAULT_REQUESTS = 1_000_000
DEFAULT_SCALAR_CAP = 20_000
DEFAULT_BATCH = 4096
DEFAULT_TOLERANCE = 0.3


def _workload(rate: float):
    cluster = ClusterSpec(n_servers=30, bandwidth=Gbps)
    pop = paper_fileset(
        500, size_mb=100.0, zipf_exponent=1.05, total_rate=rate
    )
    policy = SPCachePolicy(pop, cluster, seed=0)
    return pop, cluster, policy


def _config(batch_size: int | None) -> SimulationConfig:
    return SimulationConfig(
        discipline="fifo",
        jitter="deterministic",
        stragglers=StragglerInjector.natural(),
        seed=2,
        batch_size=batch_size,
    )


def _timed_run(pop, cluster, policy, n_requests, batch_size):
    stream = PoissonStream(pop, n_requests=n_requests, seed=1)
    start = time.perf_counter()
    result = simulate_reads(stream, policy, cluster, _config(batch_size))
    wall = time.perf_counter() - start
    assert result.n_requests == n_requests
    return wall, result


def run_engine_scale(
    n_requests: int = DEFAULT_REQUESTS,
    scalar_cap: int = DEFAULT_SCALAR_CAP,
    batch_size: int = DEFAULT_BATCH,
    rate: float = 20.0,
) -> dict:
    """One calibrated scalar run + one full vectorized run; returns the doc."""
    pop, cluster, policy = _workload(rate)

    n_scalar = min(n_requests, scalar_cap)
    scalar_wall, _ = _timed_run(pop, cluster, policy, n_scalar, None)
    scalar_rps = n_scalar / scalar_wall

    vec_wall, _ = _timed_run(pop, cluster, policy, n_requests, batch_size)
    vec_rps = n_requests / vec_wall

    return {
        "schema_version": 1,
        "bench": "engine_scale",
        "created_unix": time.time(),
        "git_sha": git_sha(),
        "n_requests": n_requests,
        "scalar_requests": n_scalar,
        "batch_size": batch_size,
        # Shared shape with the conftest archives (CI asserts on it).
        "wall_seconds": {
            "engine_scale_scalar": scalar_wall,
            "engine_scale_vectorized": vec_wall,
        },
        "requests_per_sec": {
            "scalar": scalar_rps,
            "vectorized": vec_rps,
        },
        "speedup": vec_rps / scalar_rps,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument(
        "--scalar-requests", type=int, default=DEFAULT_SCALAR_CAP,
        help="cap on the scalar calibration run (default %(default)s)",
    )
    parser.add_argument("--batch-size", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--rate", type=float, default=20.0)
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="perf gate: fail when vectorized req/s regress vs this file",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional regression vs baseline (default 0.3)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="output JSON path (default BENCH_<ts>_engine_scale.json)",
    )
    args = parser.parse_args(argv)

    doc = run_engine_scale(
        n_requests=args.requests,
        scalar_cap=args.scalar_requests,
        batch_size=args.batch_size,
        rate=args.rate,
    )

    out = args.out or time.strftime("BENCH_%Y%m%d-%H%M%S_engine_scale.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")

    rps = doc["requests_per_sec"]
    rss = doc["peak_rss_bytes"]
    print(
        f"engine scale: {doc['n_requests']} requests, "
        f"batch={doc['batch_size']}\n"
        f"  scalar      {rps['scalar']:>12.0f} req/s "
        f"({doc['wall_seconds']['engine_scale_scalar']:.2f}s over "
        f"{doc['scalar_requests']})\n"
        f"  vectorized  {rps['vectorized']:>12.0f} req/s "
        f"({doc['wall_seconds']['engine_scale_vectorized']:.2f}s)\n"
        f"  speedup     {doc['speedup']:>12.1f}x\n"
        f"  peak rss    "
        f"{(rss / 2**20 if rss else float('nan')):>12.1f} MiB\n"
        f"  archive  -> {out}"
    )

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        floor = baseline["requests_per_sec"]["vectorized"] * (
            1.0 - args.tolerance
        )
        if rps["vectorized"] < floor:
            print(
                f"PERF GATE FAILED: vectorized {rps['vectorized']:.0f} req/s "
                f"< floor {floor:.0f} req/s "
                f"(baseline {baseline['requests_per_sec']['vectorized']:.0f} "
                f"- {args.tolerance:.0%})",
                file=sys.stderr,
            )
            return 1
        print(
            f"  perf gate   ok ({rps['vectorized']:.0f} >= {floor:.0f} req/s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
