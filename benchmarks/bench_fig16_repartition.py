"""Figs. 16-18 — parallel repartition under popularity shifts.

Paper: parallel repartition < 3 s up to 350 files vs ~319 s sequential
(two orders of magnitude); the repartitioned fraction *falls* as the file
count grows (Fig. 17); greedy placement balances better than random
(Fig. 18).
"""

from conftest import run_experiment

from repro.experiments.fig16_repartition import run_fig16


def test_fig16_17_18_repartition(benchmark, report):
    rows = run_experiment(benchmark, run_fig16, trials=5)
    report(rows, "Figs. 16-18 — repartition time / fraction / balance")
    # Fig. 16: parallel is seconds, sequential is minutes.
    for r in rows:
        assert r["parallel_s"] < 5.0
        assert r["speedup"] > 50
    # Paper's flagship number: ~319 s sequential at 350 files.
    assert 200 < rows[-1]["sequential_s"] < 450
    # Fig. 17: changed fraction decreases with the file count.
    fracs = [r["changed_fraction"] for r in rows]
    assert fracs[-1] < fracs[0]
    # Fig. 18: greedy least-loaded beats random placement on balance.
    for r in rows:
        assert r["eta_greedy"] < r["eta_random"]
