"""Fig. 13 — mean and tail latency under skew, rates 6-22.

Paper: SP-Cache beats EC-Cache by 29-50 % (mean) / 22-55 % (tail) and
selective replication by 40-70 % / 33-63 %, growing with the rate.  In our
physics SP ties EC at light load (within ~10 %) and wins increasingly from
mid load — see EXPERIMENTS.md for the shape discussion.
"""

from conftest import bench_scale, run_experiment

from repro.experiments.fig13_skew_resilience import run_fig13


def test_fig13_skew_resilience(benchmark, report):
    rows = run_experiment(benchmark, run_fig13, scale=bench_scale())
    report(rows, "Fig. 13 — SP vs EC vs replication, rates 6-22")
    by_rate = {r["rate"]: r for r in rows}
    # SP-Cache beats selective replication everywhere, by a lot.
    for r in rows:
        assert r["mean_vs_rep_pct"] > 20
        assert r["tail_vs_rep_pct"] > 20
    # Against EC-Cache: competitive at light load ...
    assert by_rate[6]["mean_vs_ec_pct"] > -15
    # ... clearly ahead at heavy load, in the paper's improvement band.
    assert by_rate[18]["mean_vs_ec_pct"] > 25
    assert by_rate[22]["mean_vs_ec_pct"] > 50
    assert by_rate[22]["tail_vs_ec_pct"] > 50
    # The advantage grows with the rate (the paper's headline trend).
    assert (
        by_rate[22]["mean_vs_ec_pct"]
        > by_rate[14]["mean_vs_ec_pct"]
        > by_rate[6]["mean_vs_ec_pct"]
    )
