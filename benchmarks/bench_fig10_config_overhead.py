"""Fig. 10 (Sec. 7.2) — scale-factor configuration runtime, 1k-10k files.

Paper: linear growth, < 90 s at 10k files with CVXPY.  Our batched
bisection solver does the same optimisation orders of magnitude faster;
the shape to hold is the linear growth.
"""

from conftest import run_experiment

from repro.experiments.fig10_config_overhead import run_fig10


def test_fig10_config_overhead(benchmark, report):
    rows = run_experiment(benchmark, run_fig10, trials=2)
    report(rows, "Fig. 10 — Algorithm 1 runtime vs file count")
    times = [r["config_time_s"] for r in rows]
    counts = [r["n_files"] for r in rows]
    # Far below the paper's 90 s budget at 10k files.
    assert times[-1] < 90.0
    # Growth is roughly linear: 10x the files costs < 40x the time
    # (sublinear constants from vectorization are fine, quadratic is not).
    assert times[-1] / max(times[0], 1e-9) < 40 * (counts[-1] / counts[0]) / 10
    # And more files never get cheaper than 1/4 of proportionality.
    assert times[-1] > times[0]
