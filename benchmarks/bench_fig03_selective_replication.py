"""Fig. 3 + Table 2 — selective replication trades memory for latency.

Paper: memory grows linearly with the replica count while latency improves
only sublinearly; CV drops below ~0.7 only at r >= 4.
"""

import numpy as np

from conftest import bench_scale, run_experiment

from repro.experiments.fig03_replication import run_fig03


def test_fig03_selective_replication(benchmark, report):
    rows = run_experiment(benchmark, run_fig03, scale=bench_scale())
    report(rows, "Fig. 3 / Table 2 — replication factor sweep at rate 6")
    means = [r["mean_s"] for r in rows]
    overheads = [r["memory_overhead_pct"] for r in rows]
    # Linear memory growth: +10 % of the dataset per extra replica round.
    assert np.allclose(np.diff(overheads), 10.0)
    # Latency improves with replicas overall...
    assert means[-1] < means[0]
    # ...but sublinearly: the last replica helps less than the first.
    first_gain = means[0] - means[1]
    last_gain = means[3] - means[4]
    assert last_gain < first_gain
    # CV drops as replicas absorb the hot spots (Table 2's trend).
    assert rows[4]["cv"] < rows[0]["cv"]
