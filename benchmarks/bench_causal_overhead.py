"""Microbenchmark: cost of causal tracing on the simulation hot path.

Three configurations of the PS (event-heap) engine on a fig13-like
4k-request workload — the engine the tail-latency figures use, so the
ratio reflects realistic per-request work rather than the bare scalar
loop (where any python-level collection dominates; cf. the timeline
numbers in ``bench_obs_overhead``):

* ``off`` — causal collection disabled (the default): the engine's
  recorder tuple is empty, so the hot path pays one hoisted boolean
  check per run and nothing per request;
* ``on`` — a :class:`~repro.obs.CausalConfig` attached: per request the
  lifecycle appends the raw partition/request/join records into the
  collector's buffers; edge classification, the conservation check,
  and the top-K chain extraction all happen in one vectorized
  finalize pass;
* ``on + spans`` — collection plus span-tree emission into an
  in-memory ring buffer (the ``repro trace --causal`` path): one
  ``cspan`` event per request, fetch, and join.

``tests/test_obs/test_overhead.py`` reuses :func:`run_causal_overhead`
and asserts the enabled collection path stays under the 5 % budget
quoted in ``docs/observability.md``.
"""

from __future__ import annotations

from repro.cluster.simulation import SimulationConfig, simulate_reads
from repro.obs import CausalConfig, RingBufferSink, Tracer

from bench_obs_overhead import overhead_workload, paired_times


def run_causal_overhead(n_requests: int = 4000, repeats: int = 5):
    trace, policy, cluster = overhead_workload(n_requests)

    def config(causal=None, tracer=None):
        return SimulationConfig(
            discipline="ps", jitter="deterministic", seed=2,
            causal=causal, tracer=tracer,
        )

    off_cfg = config()
    on_cfg = config(CausalConfig())
    emit_cfg = config(
        CausalConfig(), tracer=Tracer(RingBufferSink(capacity=1 << 20))
    )
    t_off, t_on, t_emit = paired_times(
        [
            lambda: simulate_reads(trace, policy, cluster, off_cfg),
            lambda: simulate_reads(trace, policy, cluster, on_cfg),
            lambda: simulate_reads(trace, policy, cluster, emit_cfg),
        ],
        repeats,
    )
    return [
        {"config": "ps, causal off", "seconds": t_off, "vs_off": 1.0},
        {"config": "ps, causal on", "seconds": t_on,
         "vs_off": t_on / t_off},
        {"config": "ps, causal on + span trees", "seconds": t_emit,
         "vs_off": t_emit / t_off},
    ]


def test_causal_overhead(benchmark, report):
    def best_of(attempts: int = 4):
        # One paired pass is ~1 s per config, small enough that CPU
        # scheduling noise can swamp a 5 % budget; keep the best pass
        # (same pattern as tests/test_obs/test_overhead.py), stopping
        # early once the gate is met.
        best = None
        for _ in range(attempts):
            rows = run_causal_overhead()
            if best is None or rows[1]["vs_off"] < best[1]["vs_off"]:
                best = rows
            if best[1]["vs_off"] < 1.05:
                break
        return best

    rows = benchmark.pedantic(
        best_of, rounds=1, iterations=1, warmup_rounds=0
    )
    report(rows, "Causal tracing overhead — fig13-like PS workload")
    assert rows[1]["vs_off"] < 1.05


if __name__ == "__main__":  # pragma: no cover
    from repro.analysis.tables import print_table

    print_table(
        run_causal_overhead(),
        "Causal tracing overhead — fig13-like PS workload",
    )
