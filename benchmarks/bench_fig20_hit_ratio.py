"""Fig. 20 — cache hit ratio with a throttled budget.

Paper: redundancy-free SP-Cache keeps the most files resident and wins at
every budget; replication is worst.
"""

from conftest import bench_scale, run_experiment

from repro.experiments.fig20_hit_ratio import run_fig20


def test_fig20_hit_ratio(benchmark, report):
    rows = run_experiment(benchmark, run_fig20, scale=bench_scale())
    report(rows, "Fig. 20 — LRU hit ratio vs cache budget")
    for r in rows:
        assert (
            r["sp_cache_hit"]
            >= r["ec_cache_hit"]
            >= r["selective_replication_hit"]
        )
    # The gap matters most when the budget is tight.
    tight = rows[0]
    assert tight["sp_cache_hit"] - tight["selective_replication_hit"] > 0.05
    # More budget never hurts.
    sp = [r["sp_cache_hit"] for r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(sp, sp[1:]))
