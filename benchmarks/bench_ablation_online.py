"""Ablation — online partition adjustment vs periodic repartition (Sec. 8).

The paper's future-work sketch: when a file bursts hot between 12-hour
repartition rounds, split its existing partitions in a distributed manner
instead of waiting.  We burst a cold file, let the online adjuster react,
and compare (a) the simulated latency before/after the adjustment and
(b) the data moved against a full Algorithm 2 repartition.
"""

import numpy as np

from conftest import bench_scale, run_experiment

from repro.cluster import SimulationConfig, StragglerInjector, simulate_reads
from repro.common import MB
from repro.core import OnlineAdjuster, plan_repartition
from repro.core.partitioner import partition_counts
from repro.experiments.config import DEFAULTS, EC2_CLUSTER
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace


def _run(scale=1.0):
    alpha = 2.0 / MB
    pop = paper_fileset(120, size_mb=100, zipf_exponent=1.05, total_rate=12.0)
    burst_target = 100  # a cold file (k = 1) that suddenly goes hot

    # The burst: the cold file jumps to the popularity of the #2 file.
    new_pops = pop.popularities.copy()
    new_pops[burst_target] = pop.popularities[1]
    burst_pop = pop.with_popularities(new_pops)

    trace = poisson_trace(
        burst_pop, n_requests=DEFAULTS.requests(scale), seed=DEFAULTS.seed_trace
    )
    cfg = SimulationConfig(
        jitter="deterministic", stragglers=StragglerInjector.natural(), seed=9
    )

    def simulate(ks):
        policy = SPCachePolicy(burst_pop, EC2_CLUSTER, alpha=alpha, seed=4)
        policy.servers_of = [
            policy.servers_of[i][: int(k)]
            if policy.servers_of[i].size >= k
            else np.arange(int(k))
            for i, k in enumerate(ks)
        ]
        policy.piece_sizes = [
            np.full(int(k), burst_pop.sizes[i] / k) for i, k in enumerate(ks)
        ]
        return simulate_reads(trace, policy, EC2_CLUSTER, cfg).summary()

    stale_ks = partition_counts(pop, alpha, n_servers=30)  # pre-burst layout
    before = simulate(stale_ks)

    adj = OnlineAdjuster(
        burst_pop, EC2_CLUSTER, alpha, stale_ks, window=4000, tolerance=1.5
    )
    adj.observe_many(trace.file_ids[: min(3000, trace.n_requests)])
    rounds = 0
    while rounds < 8 and adj.step():
        rounds += 1
    after = simulate(adj.ks)

    plan = plan_repartition(
        burst_pop,
        EC2_CLUSTER,
        stale_ks,
        [np.arange(int(k)) for k in stale_ks],
        alpha=alpha,
        seed=5,
    )
    full_moved = float(
        np.sum(burst_pop.sizes[plan.changed])
    )  # full repartition collects+redistributes whole files

    return [
        {
            "variant": "stale layout (burst unhandled)",
            "mean_s": before.mean,
            "p95_s": before.p95,
            "moved_mb": 0.0,
        },
        {
            "variant": f"online adjustment ({rounds} rounds)",
            "mean_s": after.mean,
            "p95_s": after.p95,
            "moved_mb": adj.total_moved_bytes / MB,
        },
        {
            "variant": "full repartition (Algorithm 2)",
            "mean_s": after.mean,  # same end state, different cost
            "p95_s": after.p95,
            "moved_mb": full_moved / MB,
        },
    ]


def test_ablation_online_adjustment(benchmark, report):
    rows = run_experiment(benchmark, _run, scale=bench_scale())
    report(rows, "Ablation — online split/merge vs periodic repartition")
    stale, online, full = rows
    # Handling the burst must help latency.
    assert online["mean_s"] < stale["mean_s"]
    # And the distributed adjustment moves less data than a full
    # collect-and-redistribute of every changed file.
    assert online["moved_mb"] <= full["moved_mb"] + 1e-9
