"""Fig. 11 — SP-Cache's chosen partition sizes across popularity ranks.

Paper: with 100 x 100 MB files only the top ~30 % are split at all; the
partition numbers vary strongly across the split files.  Our search
settles on a smaller split fraction (~10 %) — same selective shape, see
EXPERIMENTS.md.
"""

from conftest import run_experiment

from repro.experiments.fig11_partition_sizes import run_fig11


def test_fig11_partition_sizes(benchmark, report):
    rows = run_experiment(benchmark, run_fig11)
    report(rows, "Fig. 11 — partition counts by popularity rank")
    ranked = [r for r in rows if isinstance(r["popularity_rank"], int)]
    # The hottest file is split fine; the popularity tail is untouched.
    assert ranked[0]["partitions"] > 1
    assert ranked[-1]["partitions"] == 1
    # Partition counts are monotone in popularity.
    counts = [r["partitions"] for r in ranked]
    assert counts == sorted(counts, reverse=True)
    # Selectivity: only a minority of files split.
    split = next(
        r for r in rows if r["popularity_rank"] == "split fraction"
    )["partitions"]
    assert 0.02 <= split <= 0.5
