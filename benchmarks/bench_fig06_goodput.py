"""Fig. 6 — normalized goodput versus number of partitions.

Paper: ~0.8 at 20 partitions and ~0.6 at 100 on 1 Gbps; lower on 500 Mbps.
Our model is calibrated to those points; the bench verifies the
calibration and monotonicity.
"""

from conftest import run_experiment

from repro.experiments.fig06_goodput import run_fig06


def test_fig06_goodput(benchmark, report):
    rows = run_experiment(benchmark, run_fig06)
    report(rows, "Fig. 6 — goodput model vs paper calibration points")
    by_k = {r["partitions"]: r for r in rows}
    assert abs(by_k[20]["goodput_1gbps"] - 0.80) < 0.03
    assert abs(by_k[100]["goodput_1gbps"] - 0.62) < 0.03
    assert abs(by_k[100]["goodput_500mbps"] - 0.60) < 0.03
    # 500 Mbps always loses at least as much as 1 Gbps.
    for r in rows:
        assert r["goodput_500mbps"] <= r["goodput_1gbps"] + 1e-9
