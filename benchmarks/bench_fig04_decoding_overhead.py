"""Fig. 4 — EC-Cache decoding overhead versus file size.

Paper: overhead (decode time / read latency) grows with file size and
stays >= 15 % for >= 100 MB files on ISA-L-class hardware; their
simulations use 20 %.  We measure the real GF(256) codec and also report
the ISA-L-calibrated normalization (see the runner's docstring).
"""

from conftest import run_experiment

from repro.experiments.fig04_decoding import run_fig04


def test_fig04_decoding_overhead(benchmark, report):
    rows = run_experiment(benchmark, run_fig04)
    report(rows, "Fig. 4 — (10,14) Reed-Solomon decode overhead")
    # Overhead grows (or saturates) with file size — small files are
    # dominated by fixed costs on the transfer side.
    small = rows[0]["overhead_calibrated"]
    big = rows[-1]["overhead_calibrated"]
    assert big >= small * 0.8
    # The calibrated overhead for >= 100 MB files sits in the paper's
    # 10-30 % band.
    for row in rows:
        if row["size_mb"] >= 100:
            assert 0.05 <= row["overhead_calibrated"] <= 0.35
    # Our table-gather NumPy decode is necessarily slower than ISA-L's
    # SIMD, but it should move at tens of MB/s so the experiment is
    # practical.
    assert rows[-1]["decode_throughput_mb_s"] > 10
    # The calibrated overhead grows with size (fixed read costs amortize).
    cal = [r["overhead_calibrated"] for r in rows]
    assert cal == sorted(cal)
