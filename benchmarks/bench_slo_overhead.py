"""Microbenchmark: cost of SLO evaluation on the simulation hot path.

Three configurations of the FIFO engine on a 5k-request workload:

* ``off`` — SLO evaluation disabled (the default): the engine pays one
  ``None`` check per request for the miss buffer;
* ``on`` — the :func:`~repro.obs.default_slo_config` objective set: per
  request the lifecycle appends one miss flag; everything else (window
  bucketing via ``np.bincount``, trailing burn-rate sums via cumsum)
  happens once at finalize time;
* ``on, tight`` — a deliberately breaching ``p99<1ms`` objective with
  4x the window resolution, so the finalize pass also walks alert
  open/close transitions (the worst realistic cadence).

``tests/test_obs/test_overhead.py`` reuses :func:`run_slo_overhead` and
asserts the default enabled path stays under the 5 % budget quoted in
``docs/observability.md``.
"""

from __future__ import annotations

from repro.cluster.simulation import SimulationConfig, simulate_reads
from repro.obs import SLOConfig, default_slo_config, parse_slo

from bench_obs_overhead import overhead_workload, paired_times


def run_slo_overhead(n_requests: int = 5000, repeats: int = 7):
    trace, policy, cluster = overhead_workload(n_requests)

    def config(slo=None):
        return SimulationConfig(
            discipline="fifo", jitter="deterministic", seed=2, slo=slo,
        )

    off_cfg = config()
    on_cfg = config(default_slo_config())
    tight_cfg = config(
        SLOConfig(
            objectives=parse_slo("p99<0.001,imbalance<1.5").objectives,
            target_windows=96,
        )
    )
    t_off, t_on, t_tight = paired_times(
        [
            lambda: simulate_reads(trace, policy, cluster, off_cfg),
            lambda: simulate_reads(trace, policy, cluster, on_cfg),
            lambda: simulate_reads(trace, policy, cluster, tight_cfg),
        ],
        repeats,
    )
    return [
        {"config": "off (default)", "seconds": t_off, "vs_off": 1.0},
        {"config": "on, default objectives", "seconds": t_on,
         "vs_off": t_on / t_off},
        {"config": "on, breaching + 96 windows", "seconds": t_tight,
         "vs_off": t_tight / t_off},
    ]


def test_slo_overhead(benchmark, report):
    rows = benchmark.pedantic(
        run_slo_overhead, rounds=1, iterations=1, warmup_rounds=0
    )
    report(rows, "SLO evaluation overhead — 5k-request FIFO")
    assert rows[1]["vs_off"] < 1.05


if __name__ == "__main__":  # pragma: no cover
    from repro.analysis.tables import print_table

    print_table(
        run_slo_overhead(),
        "SLO evaluation overhead — 5k-request FIFO",
    )
