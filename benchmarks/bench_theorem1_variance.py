"""Theorem 1 — load-variance ratio, closed form vs Monte Carlo vs limit.

Paper: Var(X_EC)/Var(X_SP) -> (alpha/k) * sum L^2 / sum L, which is
O(L_max) under heavy skew.
"""

from conftest import run_experiment

from repro.experiments.theorem1 import run_theorem1


def test_theorem1_variance(benchmark, report):
    rows = run_experiment(benchmark, run_theorem1)
    report(rows, "Theorem 1 — per-server load variance, SP vs EC")
    vals = {r["quantity"]: r["value"] for r in rows}
    # Monte Carlo confirms both closed forms within 15 %.
    assert abs(
        vals["Var(X_SP) Monte Carlo"] / vals["Var(X_SP) closed form"] - 1
    ) < 0.15
    assert abs(
        vals["Var(X_EC) Monte Carlo"] / vals["Var(X_EC) closed form"] - 1
    ) < 0.15
    # SP-Cache's variance is lower: the ratio exceeds 1.
    assert vals["ratio exact"] > 1.0
    assert vals["ratio Monte Carlo"] > 1.0
