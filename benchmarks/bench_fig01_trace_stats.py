"""Fig. 1 — Yahoo! trace statistics (access-count buckets vs mean size).

Paper: ~78 % of files accessed < 10 times; ~2 % accessed >= 100 times;
hot files 15-30x larger than cold ones.
"""

from conftest import run_experiment

from repro.experiments.fig01_trace_stats import run_fig01


def test_fig01_trace_stats(benchmark, report):
    rows = run_experiment(benchmark, run_fig01)
    report(rows, "Fig. 1 — synthetic Yahoo! trace statistics")
    by_bucket = {r["bucket"]: r for r in rows}
    assert abs(by_bucket["[1,10)"]["file_fraction"] - 0.78) < 0.03
    assert abs(by_bucket[">=100"]["file_fraction"] - 0.02) < 0.01
    ratio = by_bucket["hot/cold size ratio"]["mean_size_mb"]
    assert 15 <= ratio <= 30
