"""Microbenchmark: cost of the observability layer on the read hot path.

Four configurations of the FIFO engine on a 5k-request workload:

* ``reference`` — :func:`uninstrumented_fifo`, a frozen copy of the
  pre-observability engine loop (no tracer check, no metrics), the
  baseline the <10 % no-op overhead budget is measured against;
* ``noop`` — the real engine with the default :class:`~repro.obs.NullSink`
  tracer (one hoisted ``enabled`` check; per-request cost ~0) and no
  timeline collector;
* ``traced`` — the real engine emitting every ``read``/``read_done``
  event into an in-memory ring buffer;
* ``timeline`` — the real engine with a sim-time
  :class:`~repro.obs.TimelineConfig` attached (per-partition record
  buffering plus one finalize pass).

:func:`run_timeline_overhead` additionally times the *enabled* timeline
path on a fig13-like PS workload (the event-heap engine the tail-latency
figures use) against the same run with timelines off — the number quoted
in ``docs/observability.md``.

``tests/test_obs/test_overhead.py`` reuses :func:`uninstrumented_fifo` and
asserts the noop/reference ratio stays under 1.10.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.simulation import SimulationConfig, simulate_reads
from repro.common import ClusterSpec, Gbps
from repro.obs import RingBufferSink, TimelineConfig, Tracer
from repro.workloads import paper_fileset, poisson_trace


def uninstrumented_fifo(trace, planner, cluster, config) -> np.ndarray:
    """The seed FIFO engine loop, frozen without any instrumentation.

    Kept verbatim (minus LRU/goodput memo plumbing shared with the live
    engine) so the overhead comparison isolates exactly the observability
    additions.  Returns the latency vector only.
    """
    from repro.common import make_rng
    from repro.store.lru import LRUCache

    rng = make_rng(config.seed)
    bandwidths = cluster.bandwidths
    n_requests = trace.n_requests

    free_at = np.zeros(cluster.n_servers)
    server_bytes = np.zeros(cluster.n_servers)
    latencies = np.empty(n_requests)

    exponential = config.jitter == "exponential"
    goodput = config.goodput
    injector = config.stragglers
    straggler_mask = (
        injector.straggler_servers(cluster.n_servers, seed=rng)
        if injector.enabled and injector.mode == "per_server"
        else None
    )

    lru = None
    hits = misses = 0
    if config.cache_budget is not None:
        lru = LRUCache(config.cache_budget)

    factor_memo: dict[tuple[int, float], float] = {}

    def goodput_factor(parallelism: int, bandwidth: float) -> float:
        if goodput is None:
            return 1.0
        key = (parallelism, bandwidth)
        cached = factor_memo.get(key)
        if cached is None:
            cached = goodput.factor(parallelism, bandwidth)
            factor_memo[key] = cached
        return cached

    times = trace.times
    file_ids = trace.file_ids
    for j in range(n_requests):
        t = times[j]
        fid = int(file_ids[j])
        op = planner.plan_read(fid, rng)
        servers = op.server_ids
        bw = bandwidths[servers]

        if bw.size > 1 and np.ptp(bw) > 0:
            factors = np.array(
                [goodput_factor(op.parallelism, b) for b in bw]
            )
        else:
            factors = goodput_factor(op.parallelism, float(bw[0]))
        service = op.sizes / (bw * factors)
        if exponential:
            service = rng.exponential(service)

        start = np.maximum(t, free_at[servers])
        completion = start + service
        free_at[servers] = completion
        server_bytes[servers] += op.sizes

        reported = completion
        if injector.enabled:
            mult = injector.multipliers(
                servers, straggler_mask=straggler_mask, seed=rng
            )
            reported = completion + (mult - 1.0) * (op.sizes / bw)

        if op.join_count < reported.size:
            join_at = np.partition(reported, op.join_count - 1)[
                op.join_count - 1
            ]
        else:
            join_at = reported.max()
        latency = (join_at - t) * (1.0 + op.post_fraction) + op.post_seconds

        if lru is not None:
            if lru.touch(fid):
                hits += 1
            else:
                misses += 1
                latency *= config.miss_penalty
                lru.put(fid, planner.footprint(fid))
        latencies[j] = latency

    return latencies


def overhead_workload(n_requests: int = 5000, seed: int = 0):
    """The 5k-request FIFO setup both the bench and the smoke test time."""
    from repro.policies import SPCachePolicy

    cluster = ClusterSpec(n_servers=30, bandwidth=Gbps)
    pop = paper_fileset(300, size_mb=100, zipf_exponent=1.05, total_rate=10)
    policy = SPCachePolicy(pop, cluster, seed=seed)
    trace = poisson_trace(pop, n_requests=n_requests, seed=seed + 1)
    return trace, policy, cluster


def paired_times(fns: list, repeats: int = 7) -> list[float]:
    """Minimum wall time of each callable over ``repeats`` rounds.

    The callables are timed *interleaved* (one round times each of them in
    turn), so slow CPU-frequency drift lands on every configuration instead
    of whichever block ran in the hot window; the minimum then discards
    scheduler noise.  Every callable gets one untimed warmup run first, so
    cold costs (planner plan memos, lazy imports) don't skew the first round.
    """
    for fn in fns:
        fn()
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def run_overhead(n_requests: int = 5000, repeats: int = 7):
    trace, policy, cluster = overhead_workload(n_requests)
    base_cfg = SimulationConfig(
        discipline="fifo", jitter="deterministic", seed=2
    )
    ring = RingBufferSink(capacity=4 * n_requests)
    traced_cfg = SimulationConfig(
        discipline="fifo", jitter="deterministic", seed=2, tracer=Tracer(ring)
    )

    timeline_cfg = SimulationConfig(
        discipline="fifo", jitter="deterministic", seed=2,
        timeline=TimelineConfig(),
    )

    def _traced():
        ring.clear()
        simulate_reads(trace, policy, cluster, traced_cfg)

    t_ref, t_noop, t_traced, t_timeline = paired_times(
        [
            lambda: uninstrumented_fifo(trace, policy, cluster, base_cfg),
            lambda: simulate_reads(trace, policy, cluster, base_cfg),
            _traced,
            lambda: simulate_reads(trace, policy, cluster, timeline_cfg),
        ],
        repeats,
    )
    rows = [
        {"config": "reference (frozen seed loop)", "seconds": t_ref,
         "vs_reference": 1.0},
        {"config": "noop sink (default)", "seconds": t_noop,
         "vs_reference": t_noop / t_ref},
        {"config": "ring-buffer tracing", "seconds": t_traced,
         "vs_reference": t_traced / t_ref},
        {"config": "timeline collection", "seconds": t_timeline,
         "vs_reference": t_timeline / t_ref},
    ]
    return rows


def run_timeline_overhead(n_requests: int = 4000, repeats: int = 5):
    """Enabled-timeline cost on a fig13-like PS (event-heap) workload.

    fig13 runs the ``ps`` discipline on the 30-server EC2-like cluster;
    this times that engine with timelines off vs. on (default window
    width) and reports the ratio — the enabled-path number the <25 %
    budget in ``docs/observability.md`` tracks.
    """
    trace, policy, cluster = overhead_workload(n_requests)
    off_cfg = SimulationConfig(discipline="ps", jitter="deterministic", seed=2)
    on_cfg = SimulationConfig(
        discipline="ps", jitter="deterministic", seed=2,
        timeline=TimelineConfig(),
    )
    t_off, t_on = paired_times(
        [
            lambda: simulate_reads(trace, policy, cluster, off_cfg),
            lambda: simulate_reads(trace, policy, cluster, on_cfg),
        ],
        repeats,
    )
    return [
        {"config": "ps, timelines off", "seconds": t_off, "vs_off": 1.0},
        {"config": "ps, timelines on", "seconds": t_on,
         "vs_off": t_on / t_off},
    ]


def test_obs_overhead(benchmark, report):
    rows = benchmark.pedantic(
        run_overhead, rounds=1, iterations=1, warmup_rounds=0
    )
    report(rows, "Observability overhead — 5k-request FIFO simulation")
    by = {r["config"].split(" ")[0]: r for r in rows}
    assert by["noop"]["vs_reference"] < 1.10


if __name__ == "__main__":  # pragma: no cover
    from repro.analysis.tables import print_table

    print_table(
        run_overhead(), "Observability overhead — 5k-request FIFO simulation"
    )
    print()
    print_table(
        run_timeline_overhead(),
        "Timeline overhead — 4k-request PS (fig13-like) simulation",
    )
