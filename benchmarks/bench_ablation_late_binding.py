"""Ablation — EC-Cache's late binding (read k+1, join on k).

Sec. 3.2: late binding is EC-Cache's straggler shield.  With stragglers
on, reading the bare k shards should hurt its tail; without stragglers the
extra read is mostly wasted bandwidth.
"""

from conftest import bench_scale, run_experiment

from repro.cluster import SimulationConfig, StragglerInjector, simulate_reads
from repro.experiments.config import DEFAULTS, EC2_CLUSTER
from repro.policies import ECCachePolicy
from repro.workloads import paper_fileset, poisson_trace


def _run(scale=1.0):
    pop = paper_fileset(300, size_mb=100, zipf_exponent=1.05, total_rate=14.0)
    trace = poisson_trace(
        pop, n_requests=DEFAULTS.requests(scale), seed=DEFAULTS.seed_trace
    )
    rows = []
    for late in (True, False):
        policy = ECCachePolicy(
            pop, EC2_CLUSTER, late_binding=late, seed=DEFAULTS.seed_policy
        )
        for stragglers, label in (
            (StragglerInjector.none(), "clean"),
            (StragglerInjector.injected(), "stragglers"),
        ):
            s = simulate_reads(
                trace,
                policy,
                EC2_CLUSTER,
                SimulationConfig(
                    jitter="deterministic", stragglers=stragglers, seed=7
                ),
            ).summary()
            rows.append(
                {
                    "late_binding": late,
                    "environment": label,
                    "mean_s": s.mean,
                    "p95_s": s.p95,
                }
            )
    return rows


def test_ablation_late_binding(benchmark, report):
    rows = run_experiment(benchmark, _run, scale=bench_scale())
    report(rows, "Ablation — EC-Cache late binding on/off")
    get = lambda late, env: next(
        r
        for r in rows
        if r["late_binding"] is late and r["environment"] == env
    )
    # Under stragglers, late binding improves the tail.
    assert (
        get(True, "stragglers")["p95_s"] <= get(False, "stragglers")["p95_s"]
    )
    # Stragglers hurt the bare-k configuration more than the late-bound one.
    penalty_bare = (
        get(False, "stragglers")["mean_s"] - get(False, "clean")["mean_s"]
    )
    penalty_late = (
        get(True, "stragglers")["mean_s"] - get(True, "clean")["mean_s"]
    )
    assert penalty_late < penalty_bare
