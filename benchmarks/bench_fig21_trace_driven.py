"""Fig. 21 — trace-driven simulation (Yahoo! sizes, Google arrivals).

Paper: mean latencies 3.8 s (SP), 6.0 s (EC), 44.1 s (replication) — with
realistic sizes, redundant caching of big hot files wrecks the hit ratio
and replication collapses.
"""

from conftest import bench_scale, run_experiment

from repro.experiments.fig21_trace_driven import run_fig21


def test_fig21_trace_driven(benchmark, report):
    rows = run_experiment(benchmark, run_fig21, scale=bench_scale())
    report(rows, "Fig. 21 — trace-driven latency distributions")
    by_scheme = {r["scheme"]: r for r in rows}
    sp = by_scheme["sp-cache"]
    ec = by_scheme["ec-cache"]
    rep = by_scheme["selective-replication"]
    # Ordering of the means: SP < EC < replication (paper: 3.8/6.0/44.1).
    assert sp["mean_s"] < ec["mean_s"] < rep["mean_s"]
    # Replication collapses: a multiple of SP-Cache's latency (the paper
    # measured 11x; our bursty-but-stable calibration gives >2x).
    assert rep["mean_s"] > 2 * sp["mean_s"]
    # Hit-ratio ordering drives it.
    assert sp["hit_ratio"] >= ec["hit_ratio"] >= rep["hit_ratio"]
