"""Core value types: FilePopulation, ClusterSpec, units."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import (
    GB,
    KB,
    MB,
    ClusterSpec,
    FilePopulation,
    Gbps,
    Mbps,
    make_rng,
    validate_probability_vector,
    validate_server_count,
)


def test_units():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB
    assert Gbps == pytest.approx(125e6)
    assert Mbps == pytest.approx(125e3)


def test_make_rng_idempotent_on_generator():
    rng = np.random.default_rng(0)
    assert make_rng(rng) is rng


def test_make_rng_seed_reproducible():
    assert make_rng(42).random() == make_rng(42).random()


class TestProbabilityVector:
    def test_normalizes(self):
        p = validate_probability_vector(np.array([1.0, 3.0]))
        assert np.allclose(p, [0.25, 0.75])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_probability_vector(np.array([0.5, -0.1]))

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            validate_probability_vector(np.zeros(3))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            validate_probability_vector(np.array([0.5, np.nan]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            validate_probability_vector(np.ones((2, 2)))


class TestFilePopulation:
    def test_loads_and_rates(self):
        pop = FilePopulation(
            sizes=np.array([10.0, 20.0]),
            popularities=np.array([0.25, 0.75]),
            total_rate=4.0,
        )
        assert np.allclose(pop.loads, [2.5, 15.0])
        assert np.allclose(pop.rates, [1.0, 3.0])
        assert pop.total_bytes == 30.0
        assert pop.n_files == 2

    def test_with_rate(self):
        pop = FilePopulation(np.array([1.0]), np.array([1.0]), total_rate=1.0)
        assert pop.with_rate(9.0).total_rate == 9.0
        assert pop.total_rate == 1.0  # original untouched

    def test_with_popularities(self):
        pop = FilePopulation(
            np.array([1.0, 1.0]), np.array([0.5, 0.5]), total_rate=1.0
        )
        new = pop.with_popularities(np.array([0.9, 0.1]))
        assert np.allclose(new.popularities, [0.9, 0.1])

    def test_uniform_sizes(self):
        pop = FilePopulation.uniform_sizes(5, 100.0, np.ones(5) / 5)
        assert np.all(pop.sizes == 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FilePopulation(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            FilePopulation(np.array([-1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            FilePopulation(np.array([1.0]), np.array([1.0]), total_rate=0.0)
        with pytest.raises(ValueError):
            FilePopulation(np.array([1.0, 2.0]), np.array([1.0]))


class TestClusterSpec:
    def test_broadcast_bandwidth(self):
        cl = ClusterSpec(n_servers=4, bandwidth=Gbps)
        assert cl.bandwidths.shape == (4,)
        assert np.all(cl.bandwidths == Gbps)

    def test_heterogeneous_bandwidth(self):
        cl = ClusterSpec(n_servers=2, bandwidth=np.array([1e8, 2e8]))
        assert cl.bandwidths[1] == 2e8

    def test_client_bandwidth_default_is_3x(self):
        cl = ClusterSpec(n_servers=3, bandwidth=Gbps)
        assert cl.effective_client_bandwidth == pytest.approx(3 * Gbps)

    def test_client_bandwidth_override(self):
        cl = ClusterSpec(n_servers=3, bandwidth=Gbps, client_bandwidth=Gbps)
        assert cl.effective_client_bandwidth == Gbps

    def test_with_helpers(self):
        cl = ClusterSpec(n_servers=2, capacity=10.0)
        assert cl.with_capacity(5.0).capacity == 5.0
        assert cl.with_bandwidth(7.0).bandwidths[0] == 7.0
        assert cl.total_capacity == 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_servers=0)
        with pytest.raises(ValueError):
            ClusterSpec(n_servers=2, bandwidth=-1.0)
        with pytest.raises(ValueError):
            ClusterSpec(n_servers=2, capacity=0.0)
        with pytest.raises(ValueError):
            ClusterSpec(n_servers=2, client_bandwidth=0.0)


class TestValidateServerCount:
    def test_accepts_ints_and_numpy_ints(self):
        assert validate_server_count(3) == 3
        got = validate_server_count(np.int64(5))
        assert got == 5 and type(got) is int

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "3", True, None])
    def test_rejects_non_positive_and_non_ints(self, bad):
        with pytest.raises(ValueError, match="must be a positive integer"):
            validate_server_count(bad)

    def test_every_layer_shares_the_message(self):
        """ClusterSpec, the store master, and the topology all fail
        through the one helper with the same message shape."""
        from repro.cluster import ClusterTopology
        from repro.store import Master

        with pytest.raises(ValueError, match="n_servers must be a positive"):
            ClusterSpec(n_servers=-2)
        with pytest.raises(ValueError, match="n_workers must be a positive"):
            Master(0)
        with pytest.raises(ValueError, match="n_servers must be a positive"):
            ClusterTopology(0)
