"""Policy layouts, read plans, write plans, and memory accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import MB, ClusterSpec, Gbps
from repro.policies import (
    ECCachePolicy,
    FixedChunkingPolicy,
    SelectiveReplicationPolicy,
    SimplePartitionPolicy,
    SingleCopyPolicy,
    SPCachePolicy,
)
from repro.workloads import paper_fileset

CLUSTER = ClusterSpec(n_servers=20, bandwidth=Gbps)
POP = paper_fileset(60, size_mb=50, zipf_exponent=1.1, total_rate=8.0)
RNG = np.random.default_rng(0)


def all_policies():
    return [
        SPCachePolicy(POP, CLUSTER, seed=1),
        ECCachePolicy(POP, CLUSTER, k=4, n=6, seed=1),
        SelectiveReplicationPolicy(POP, CLUSTER, seed=1),
        SimplePartitionPolicy(POP, CLUSTER, k=5, seed=1),
        FixedChunkingPolicy(POP, CLUSTER, chunk_size=8 * MB, seed=1),
        SingleCopyPolicy(POP, CLUSTER, seed=1),
    ]


@pytest.mark.parametrize("policy", all_policies(), ids=lambda p: p.name)
class TestCommonInvariants:
    def test_layout_covers_population(self, policy):
        assert len(policy.servers_of) == POP.n_files
        assert len(policy.piece_sizes) == POP.n_files

    def test_pieces_on_distinct_servers(self, policy):
        for servers in policy.servers_of:
            assert np.unique(servers).size == servers.size

    def test_read_plan_within_layout(self, policy):
        rng = np.random.default_rng(2)
        for fid in (0, 5, POP.n_files - 1):
            op = policy.plan_read(fid, rng)
            assert set(op.server_ids).issubset(set(policy.servers_of[fid]))
            assert op.join_count <= op.parallelism

    def test_footprint_matches_piece_sizes(self, policy):
        for fid in (0, POP.n_files - 1):
            assert policy.footprint(fid) == pytest.approx(
                policy.piece_sizes[fid].sum()
            )

    def test_write_plan_positive(self, policy):
        op = policy.plan_write(0)
        assert op.total_bytes >= POP.sizes[0] - 1e-6


class TestSPCache:
    def test_partition_counts_proportional_to_load(self):
        policy = SPCachePolicy(POP, CLUSTER, alpha=1.0 / (10 * MB), seed=1)
        ks = policy.partition_counts()
        order = np.argsort(-POP.loads)
        assert np.all(np.diff(ks[order]) <= 0)

    def test_no_redundancy(self):
        policy = SPCachePolicy(POP, CLUSTER, seed=1)
        assert policy.memory_overhead() == pytest.approx(0.0, abs=1e-9)
        assert policy.total_cached_bytes() == pytest.approx(POP.total_bytes)

    def test_reads_fetch_everything(self):
        policy = SPCachePolicy(POP, CLUSTER, seed=1)
        op = policy.plan_read(0, RNG)
        assert op.join_count == op.parallelism
        assert op.post_fraction == 0.0  # no decode

    def test_explicit_alpha_used(self):
        policy = SPCachePolicy(POP, CLUSTER, alpha=3e-7, seed=1)
        assert policy.alpha == 3e-7

    def test_max_partitions_cap(self):
        policy = SPCachePolicy(POP, CLUSTER, max_partitions=4, seed=1)
        assert policy.partition_counts().max() <= 4

    def test_repartition_builds_new_policy(self):
        policy = SPCachePolicy(POP, CLUSTER, alpha=2e-7, seed=1)
        shifted = POP.with_popularities(POP.popularities[::-1].copy())
        new = policy.repartition(shifted)
        assert new.population is shifted
        assert new.alpha == policy.alpha


class TestECCache:
    def test_memory_overhead_40pct(self):
        policy = ECCachePolicy(POP, CLUSTER, k=10, n=14, seed=1)
        assert policy.memory_overhead() == pytest.approx(0.4)

    def test_late_binding_reads_k_plus_one_joins_k(self):
        policy = ECCachePolicy(POP, CLUSTER, k=4, n=6, seed=1)
        op = policy.plan_read(0, np.random.default_rng(3))
        assert op.parallelism == 5
        assert op.join_count == 4
        assert op.post_fraction == 0.2

    def test_late_binding_off(self):
        policy = ECCachePolicy(
            POP, CLUSTER, k=4, n=6, late_binding=False, seed=1
        )
        op = policy.plan_read(0, np.random.default_rng(3))
        assert op.parallelism == 4

    def test_write_includes_encode_time(self):
        policy = ECCachePolicy(POP, CLUSTER, k=4, n=6, seed=1)
        op = policy.plan_write(0)
        assert op.pre_seconds > 0
        assert op.total_bytes == pytest.approx(POP.sizes[0] * 6 / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ECCachePolicy(POP, CLUSTER, k=0, n=4)
        with pytest.raises(ValueError):
            ECCachePolicy(POP, CLUSTER, k=4, n=30)  # n > servers? 30 > 20
        with pytest.raises(ValueError):
            ECCachePolicy(POP, CLUSTER, k=4, n=6, decode_overhead=-0.1)


class TestSelectiveReplication:
    def test_top_files_replicated(self):
        policy = SelectiveReplicationPolicy(
            POP, CLUSTER, top_fraction=0.1, replicas=4, seed=1
        )
        counts = policy.replica_counts
        hot = np.argsort(-POP.popularities)[:6]
        assert np.all(counts[hot] == 4)
        assert counts.sum() == 60 - 6 + 24

    def test_read_is_single_whole_file(self):
        policy = SelectiveReplicationPolicy(POP, CLUSTER, seed=1)
        op = policy.plan_read(0, np.random.default_rng(1))
        assert op.parallelism == 1
        assert op.sizes[0] == POP.sizes[0]

    def test_reads_spread_over_replicas(self):
        policy = SelectiveReplicationPolicy(POP, CLUSTER, seed=1)
        rng = np.random.default_rng(5)
        servers = {int(policy.plan_read(0, rng).server_ids[0]) for _ in range(200)}
        assert len(servers) == 4  # the hottest file has 4 replicas

    def test_explicit_counts(self):
        counts = np.ones(POP.n_files, dtype=np.int64)
        counts[0] = 3
        policy = SelectiveReplicationPolicy(
            POP, CLUSTER, replica_counts=counts, seed=1
        )
        assert policy.servers_of[0].size == 3
        with pytest.raises(ValueError):
            SelectiveReplicationPolicy(
                POP, CLUSTER, replica_counts=counts[:-1], seed=1
            )


class TestFixedChunking:
    def test_counts_follow_size(self):
        policy = FixedChunkingPolicy(POP, CLUSTER, chunk_size=8 * MB, seed=1)
        expected = int(np.ceil(50 / 8))
        assert np.all(policy.partition_counts() == expected)

    def test_clamped_to_cluster(self):
        policy = FixedChunkingPolicy(POP, CLUSTER, chunk_size=1 * MB, seed=1)
        assert policy.partition_counts().max() == CLUSTER.n_servers

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedChunkingPolicy(POP, CLUSTER, chunk_size=0)


class TestSimplePartitionAndSingleCopy:
    def test_uniform_k(self):
        policy = SimplePartitionPolicy(POP, CLUSTER, k=7, seed=1)
        assert np.all(policy.partition_counts() == 7)

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            SimplePartitionPolicy(POP, CLUSTER, k=0)
        with pytest.raises(ValueError):
            SimplePartitionPolicy(POP, CLUSTER, k=21)

    def test_single_copy(self):
        policy = SingleCopyPolicy(POP, CLUSTER, seed=1)
        assert np.all(policy.partition_counts() == 1)
        assert policy.memory_overhead() == pytest.approx(0.0, abs=1e-9)
