"""Hierarchical spans: tree structure, labels, collectors, Chrome export."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    RingBufferSink,
    SpanCollector,
    Tracer,
    chrome_trace,
    collect_spans,
    current_span_id,
    get_registry,
    span,
    span_wrap,
    use_tracer,
    write_chrome_trace,
)
from repro.obs.spans import RESERVED_SPAN_FIELDS, sanitize_labels


def test_nested_spans_record_parent_ids():
    with collect_spans() as collector:
        with span("outer") as outer_id:
            with span("inner") as inner_id:
                pass
            with span("inner") as second_id:
                pass
    by_id = {r.span_id: r for r in collector.records}
    assert by_id[inner_id].parent == outer_id
    assert by_id[second_id].parent == outer_id
    assert by_id[outer_id].parent is None
    assert inner_id != second_id
    assert [r.span_id for r in collector.roots()] == [outer_id]


def test_current_span_id_tracks_stack():
    assert current_span_id() is None
    with span("a") as a:
        assert current_span_id() == a
        with span("b") as b:
            assert current_span_id() == b
        assert current_span_id() == a
    assert current_span_id() is None


def test_span_stack_unwinds_on_exception():
    with pytest.raises(RuntimeError):
        with span("doomed"):
            raise RuntimeError("boom")
    assert current_span_id() is None


def test_span_durations_cover_children():
    with collect_spans() as collector:
        with span("parent"):
            with span("child"):
                pass
    by_name = {r.name: r for r in collector.records}
    parent, child = by_name["parent"], by_name["child"]
    assert child.wall_s >= 0 and parent.wall_s >= 0
    assert parent.start <= child.start
    assert parent.end >= child.end


def test_span_observes_registry_histogram():
    with span("timed_section"):
        pass
    hist = get_registry().snapshot()["span.timed_section.seconds"]
    assert hist["count"] == 1
    assert hist["sum"] >= 0


def test_reserved_labels_are_namespaced_not_fatal():
    # The old flat profiling hooks raised TypeError for labels named
    # name/ts/wall_s; the span API must accept and namespace them.
    with collect_spans() as collector:
        with span("inner", name="evil", ts=1, wall_s=2, ok=3):
            pass
    (record,) = collector.records
    assert record.labels == {
        "label_name": "evil", "label_ts": 1, "label_wall_s": 2, "ok": 3
    }


def test_sanitize_labels_covers_every_reserved_field():
    labels = {k: 1 for k in RESERVED_SPAN_FIELDS} | {"plain": 2}
    clean = sanitize_labels(labels)
    assert set(clean) == {f"label_{k}" for k in RESERVED_SPAN_FIELDS} | {"plain"}


def test_reserved_labels_flow_through_tracer():
    sink = RingBufferSink()
    with use_tracer(Tracer(sink)):
        with span("s", name="clash", wall_s="clash"):
            pass
    (record,) = sink.records
    assert record["event"] == "span"
    assert record["name"] == "s"
    assert record["label_name"] == "clash"
    assert record["label_wall_s"] == "clash"
    assert record["wall_s"] >= 0


def test_span_name_must_be_string():
    with pytest.raises(TypeError):
        with span(""):
            pass


def test_span_wrap_decorator_defaults_to_qualname():
    @span_wrap()
    def do_work(x):
        return x * 2

    @span_wrap("custom_name", kind="test")
    def other():
        return 1

    with collect_spans() as collector:
        assert do_work(21) == 42
        assert other() == 1
    names = [r.name for r in collector.records]
    assert any("do_work" in n for n in names)
    assert "custom_name" in names
    by_name = {r.name: r for r in collector.records}
    assert by_name["custom_name"].labels == {"kind": "test"}


def test_collectors_nest_and_both_see_spans():
    outer, inner = SpanCollector(), SpanCollector()
    with collect_spans(outer):
        with span("only_outer"):
            pass
        with collect_spans(inner):
            with span("both"):
                pass
    assert [r.name for r in outer.records] == ["only_outer", "both"]
    assert [r.name for r in inner.records] == ["both"]
    assert outer.wall_by_name().keys() == {"only_outer", "both"}


def test_chrome_trace_structure():
    with collect_spans() as collector:
        with span("root", phase="demo"):
            with span("leaf"):
                pass
    doc = chrome_trace(collector, process_name="unit-test")
    assert isinstance(doc["traceEvents"], list)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 2
    for e in xs:
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert e["cat"] == "span"
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert meta[0]["args"]["name"] == "unit-test"
    leaf = next(e for e in xs if e["name"] == "leaf")
    root = next(e for e in xs if e["name"] == "root")
    assert leaf["args"]["parent"] == root["args"]["span_id"]
    assert root["args"]["phase"] == "demo"


def test_write_chrome_trace_roundtrips_valid_json(tmp_path):
    with collect_spans() as collector:
        with span("a"):
            pass
        with span("b"):
            pass
    out = tmp_path / "trace.json"
    assert write_chrome_trace(collector, out) == 2
    doc = json.loads(out.read_text())
    assert {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"} == {"a", "b"}


def test_chrome_trace_from_replayed_events():
    sink = RingBufferSink()
    with use_tracer(Tracer(sink)):
        with span("traced", k=2):
            pass
    doc = chrome_trace(sink.records)
    (x,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert x["name"] == "traced"
    assert x["args"]["k"] == 2


def test_legacy_profiling_shim_is_removed():
    # The deprecated repro.obs.profiling shim completed its removal
    # cycle; the aliases live on in repro.obs only.
    with pytest.raises(ModuleNotFoundError):
        import repro.obs.profiling  # noqa: F401

    import repro.obs as obs

    assert obs.profiled is span
    assert obs.profile is span_wrap
