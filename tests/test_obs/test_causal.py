"""Causal tracing: context propagation, spans, collection, reconstruction.

Covers the pieces of :mod:`repro.obs.causal` in isolation — the W3C
traceparent round trip, ``contextvars`` parenting, the collector's
conservation invariant, DAG rebuild from an emitted trace, and the
Chrome flow export — leaving the cross-engine parity property to
``tests/test_cluster/test_causal_parity.py`` and the store data plane
to ``tests/test_store/test_store_causal.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import SimulationConfig, simulate_reads
from repro.common import ClusterSpec
from repro.obs import (
    CausalConfig,
    RingBufferSink,
    Tracer,
    TraceContext,
    causal_chrome_events,
    causal_from_trace,
    causal_span,
    collect_causal,
    critical_chain_rows,
    critical_edge_rows,
    current_context,
    get_causal_config,
    span_forest,
    use_causal,
    use_context,
    use_tracer,
    write_causal_chrome_trace,
)
from repro.obs.causal import (
    CausalCollector,
    new_span_id,
    new_trace_id,
    request_span_id,
    request_trace_id,
)
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace


# -- trace context ---------------------------------------------------------


def test_traceparent_round_trip():
    ctx = TraceContext(new_trace_id(), new_span_id())
    header = ctx.to_traceparent()
    assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
    back = TraceContext.from_traceparent(header)
    assert back.trace_id == ctx.trace_id
    assert back.span_id == ctx.span_id
    assert back.parent_id is None  # wire format drops the local parent


def test_child_context_chains_parent():
    root = TraceContext(new_trace_id(), new_span_id())
    child = root.child()
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert child.span_id != root.span_id


@pytest.mark.parametrize(
    "header",
    [
        "not-a-traceparent",
        "00-abc-def-01",  # wrong field widths
        "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",  # forbidden version
        "0z-" + "a" * 32 + "-" + "b" * 16 + "-01",  # non-hex version
        "00-" + "a" * 32 + "-" + "b" * 16 + "-zz",  # non-hex flags
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace id
    ],
)
def test_traceparent_rejects_malformed(header):
    with pytest.raises(ValueError):
        TraceContext.from_traceparent(header)


def test_traceparent_rejects_non_string():
    with pytest.raises(TypeError):
        TraceContext.from_traceparent(123)


def test_context_validates_hex_widths():
    with pytest.raises(ValueError):
        TraceContext("short", new_span_id())
    with pytest.raises(ValueError):
        TraceContext(new_trace_id(), "0" * 16)  # all-zero span id


def test_use_context_installs_and_restores():
    assert current_context() is None
    ctx = TraceContext(new_trace_id(), new_span_id())
    with use_context(ctx) as installed:
        assert installed is ctx
        assert current_context() is ctx
    assert current_context() is None
    with pytest.raises(TypeError):
        with use_context("00-aa-bb-01"):
            pass


# -- causal_span -----------------------------------------------------------


def test_causal_span_noop_without_tracer():
    with causal_span("store.read", file_id=1) as ctx:
        assert ctx is None
        assert current_context() is None


def test_causal_span_emits_and_nests():
    sink = RingBufferSink()
    with use_tracer(Tracer(sink)):
        with causal_span("outer", file_id=7) as outer:
            with causal_span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert current_context() is inner
            assert current_context() is outer
    records = list(sink.records)
    assert [r["name"] for r in records] == ["inner", "outer"]
    inner_rec, outer_rec = records
    assert outer_rec["parent_id"] is None
    assert inner_rec["parent_id"] == outer_rec["span_id"]
    assert outer_rec["file_id"] == 7
    assert outer_rec["wall_s"] >= 0.0


def test_causal_span_parents_under_remote_context():
    """A deserialized traceparent becomes the parent of local spans."""
    remote = TraceContext.from_traceparent(
        "00-" + "a" * 32 + "-" + "b" * 16 + "-01"
    )
    sink = RingBufferSink()
    with use_tracer(Tracer(sink)):
        with use_context(remote):
            with causal_span("local") as ctx:
                assert ctx.trace_id == "a" * 32
                assert ctx.parent_id == "b" * 16
    (record,) = sink.records
    assert record["trace_id"] == "a" * 32
    assert record["parent_id"] == "b" * 16


def test_causal_span_namespaces_reserved_attrs():
    sink = RingBufferSink()
    with use_tracer(Tracer(sink)):
        with causal_span("op", ts=5, name="clash", safe=1):
            pass
    (record,) = sink.records
    assert record["name"] == "op"  # the span machinery owns "name"
    assert record["attr_ts"] == 5
    assert record["attr_name"] == "clash"
    assert record["safe"] == 1


def test_deterministic_request_ids():
    tid = request_trace_id("sp-cache", "fifo", 3)
    assert tid == request_trace_id("sp-cache", "fifo", 3)
    assert tid != request_trace_id("sp-cache", "ps", 3)
    assert len(tid) == 32
    sid = request_span_id(tid, "fetch0")
    assert sid == request_span_id(tid, "fetch0")
    assert sid != request_span_id(tid, "fetch1")
    assert len(sid) == 16


# -- config + ambient plumbing ---------------------------------------------


def test_causal_config_validation():
    with pytest.raises(ValueError):
        CausalConfig(top_k=0)
    with pytest.raises(ValueError):
        CausalConfig(tolerance=0.0)
    with pytest.raises(TypeError):
        with use_causal("yes"):
            pass


def test_ambient_config_and_collection():
    assert get_causal_config() is None
    cfg = CausalConfig(top_k=5)
    sections: list = []
    with use_causal(cfg):
        assert get_causal_config() is cfg
        with collect_causal(sections):
            result = _simulate(causal=None)  # picks up the ambient config
    assert get_causal_config() is None
    assert result.causal is not None
    assert len(result.causal["chains"]) <= 5
    assert sections == [result.causal]


# -- collector: conservation + sections ------------------------------------


def _workload(n_requests=120):
    cluster = ClusterSpec(n_servers=5, bandwidth=1e8, client_bandwidth=1e15)
    pop = paper_fileset(30, size_mb=20, zipf_exponent=1.1, total_rate=8.0)
    policy = SPCachePolicy(pop, cluster, alpha=2e-7, seed=5)
    trace = poisson_trace(pop, n_requests=n_requests, seed=11)
    return trace, policy, cluster


def _simulate(causal=CausalConfig(), discipline="fifo", **overrides):
    trace, policy, cluster = _workload()
    config = SimulationConfig(
        discipline=discipline,
        jitter="deterministic",
        seed=23,
        causal=causal,
        **overrides,
    )
    return simulate_reads(trace, policy, cluster, config)


def test_section_shape_and_conservation():
    result = _simulate()
    section = result.causal
    assert section["scheme"] == "sp-cache"
    assert section["n_requests"] == result.n_requests
    conservation = section["conservation"]
    assert conservation["ok"]
    assert conservation["checked"] == result.n_requests
    assert conservation["max_rel_err"] <= 1e-9
    edges = section["edges"]
    total = (
        edges["queue_s"] + edges["service_s"]
        + edges["transfer_s"] + edges["join_s"]
    )
    skip = section["warmup_skipped"]
    assert edges["requests"] == result.n_requests - skip
    assert total == pytest.approx(
        float(result.latencies[skip:].sum()), rel=1e-9
    )
    assert json.loads(json.dumps(section)) == section  # JSON-able


def test_chains_are_slowest_first_and_conserve():
    section = _simulate().causal
    chains = section["chains"]
    assert chains
    latencies = [c["latency_s"] for c in chains]
    assert latencies == sorted(latencies, reverse=True)
    for chain in chains:
        segments = (
            chain["queue_s"] + chain["service_s"]
            + chain["transfer_s"] + chain["join_s"]
        )
        assert segments == pytest.approx(chain["latency_s"], rel=1e-9)
        assert chain["trace_id"] == request_trace_id(
            section["scheme"], section["engine"], chain["req"],
            section["run_key"],
        )


def test_causal_collection_does_not_perturb_results():
    plain = _simulate(causal=None)
    observed = _simulate()
    assert np.array_equal(observed.latencies, plain.latencies)
    assert np.array_equal(observed.server_bytes, plain.server_bytes)
    assert plain.causal is None and observed.causal is not None


def test_emit_spans_requires_finalize():
    collector = CausalCollector(
        CausalConfig(), n_requests=1, n_servers=1, scheme="s", engine="e"
    )
    with pytest.raises(RuntimeError):
        collector.emit_spans(Tracer(RingBufferSink()))


# -- DAG reconstruction from traces ----------------------------------------


def _traced_run(**overrides):
    sink = RingBufferSink()
    with use_tracer(Tracer(sink)):
        result = _simulate(**overrides)
    return result, list(sink.records)


def test_trace_rebuild_matches_in_process_section():
    # warmup_fraction=0 because a rebuilt section spans every request
    # (the trace carries no warmup marker), while in-process edge
    # aggregation skips the configured warmup prefix.
    result, records = _traced_run(warmup_fraction=0.0)
    (section,) = causal_from_trace(records)
    assert section["scheme"] == result.causal["scheme"]
    assert section["n_requests"] == result.causal["n_requests"]
    assert section["reconstructed"] == result.causal["n_requests"]
    assert section["dropped"] == 0
    assert section["conservation"]["ok"]
    for key in ("queue_s", "service_s", "transfer_s", "join_s"):
        assert section["edges"][key] == pytest.approx(
            result.causal["edges"][key], rel=1e-9, abs=1e-12
        )


def test_span_forest_shapes_request_trees():
    result, records = _traced_run()
    roots = [
        r for r in span_forest(records) if r.get("name") == "request"
    ]
    assert len(roots) == result.n_requests
    for root in roots:
        names = sorted(c["name"] for c in root["children"])
        k = int(root["k"])
        assert names == sorted(["fetch"] * k + ["join"])
        assert sum(
            1 for c in root["children"]
            if c["name"] == "fetch" and c.get("critical")
        ) == 1
        for child in root["children"]:
            assert child["parent_id"] == root["span_id"]
            assert child["trace_id"] == root["trace_id"]


def test_span_forest_promotes_orphans():
    records = [
        {
            "event": "cspan", "name": "lost-child", "ts": 0.0,
            "span_id": "b" * 16, "parent_id": "f" * 16,
            "trace_id": "a" * 32,
        }
    ]
    (root,) = span_forest(records)
    assert root["name"] == "lost-child"


def test_causal_from_trace_drops_malformed_roots():
    records = [
        {
            "event": "cspan", "name": "request", "ts": 0.0,
            "span_id": "b" * 16, "parent_id": None, "trace_id": "a" * 32,
            "scheme": "s",  # no latency_s / k: malformed
        },
        {
            "event": "cspan", "name": "request", "ts": 0.0,
            "span_id": "c" * 16, "parent_id": None, "trace_id": "d" * 32,
            "scheme": "s", "latency_s": 1.0, "k": 0, "req": 0,
        },
    ]
    (section,) = causal_from_trace(records)
    assert section["dropped"] == 1
    assert section["n_requests"] == 1
    assert section["reconstructed"] == 0  # k=0 but the join is missing


def test_causal_from_trace_ignores_foreign_events():
    assert causal_from_trace([{"event": "mystery_event", "x": 1}]) == []


# -- rendering + chrome export ---------------------------------------------


def test_edge_and_chain_rows():
    section = _simulate().causal
    rows = critical_edge_rows(section)
    assert [r["edge"] for r in rows] == [
        "queue", "service", "transfer", "join"
    ]
    assert sum(r["share_pct"] for r in rows) == pytest.approx(100.0)
    chain_rows = critical_chain_rows(section, top=3)
    assert len(chain_rows) == 3
    assert set(chain_rows[0]) >= {
        "req", "file", "latency_s", "queue_s", "service_s",
        "transfer_s", "join_s", "k", "server", "flags", "trace",
    }


def test_chrome_export_has_flow_pairs(tmp_path):
    _result, records = _traced_run()
    events = causal_chrome_events(records)
    spans = [e for e in events if e["ph"] == "X"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    n_cspans = sum(1 for r in records if r.get("event") == "cspan")
    assert len(spans) == n_cspans
    assert len(starts) == len(finishes)
    # one flow pair per parent->child edge = every non-root span
    n_children = sum(
        1 for r in records
        if r.get("event") == "cspan" and r.get("parent_id") is not None
    )
    assert len(starts) == n_children
    out = tmp_path / "causal.json"
    assert write_causal_chrome_trace(records, out) == n_cspans
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
