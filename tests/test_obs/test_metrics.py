"""Registry semantics and histogram percentile accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_openmetrics,
    parse_snapshot_key,
    render_openmetrics,
    render_snapshot_key,
    reset_registry,
    set_registry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("x", {})
        c.inc()
        c.inc(2.5)
        assert c.snapshot() == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x", {}).inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("x", {})
        g.set(7)
        g.set(3)
        g.inc(-1)
        assert g.snapshot() == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("sim.requests", scheme="sp-cache")
        b = reg.counter("sim.requests", scheme="sp-cache")
        assert a is b

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("m", scheme="x", server_id=1)
        b = reg.counter("m", server_id=1, scheme="x")
        assert a is b

    def test_labels_fan_out(self):
        reg = MetricsRegistry()
        reg.counter("m", scheme="a").inc()
        reg.counter("m", scheme="b").inc(2)
        assert len(reg) == 2
        snap = reg.snapshot()
        assert snap["m{scheme=a}"] == 1.0
        assert snap["m{scheme=b}"] == 2.0

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", scheme="a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("m", scheme="a")

    def test_snapshot_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("sim.requests").inc()
        reg.counter("store.bytes_served").inc()
        assert list(reg.snapshot(prefix="store.")) == ["store.bytes_served"]

    def test_reset_between_tests(self):
        """The semantics the autouse fixture relies on: reset drops state
        from the *global* registry without replacing the object, so modules
        holding a reference via get_registry() start from zero."""
        reg = get_registry()
        reg.counter("sim.requests", scheme="x").inc(5)
        assert len(reg) == 1
        reset_registry()
        assert len(reg) == 0
        assert get_registry() is reg
        assert reg.counter("sim.requests", scheme="x").snapshot() == 0.0

    def test_set_registry_swaps_and_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            assert set_registry(previous) is fresh


class TestHistogram:
    def test_bucket_counts_match_observe_many(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(0.05, size=500)
        one = Histogram("h", {})
        for v in values:
            one.observe(v)
        many = Histogram("h", {})
        many.observe_many(values)
        assert one.bucket_counts == many.bucket_counts
        assert one.count == many.count == 500
        assert one.sum == pytest.approx(many.sum)

    def test_percentiles_exact_within_reservoir(self):
        """Up to reservoir_size observations, percentiles reduce to
        np.percentile over every observation (the documented guarantee)."""
        rng = np.random.default_rng(1)
        values = rng.lognormal(size=1000)
        h = Histogram("h", {}, reservoir_size=4096)
        h.observe_many(values)
        for q in (50, 90, 95, 99):
            assert h.percentile(q) == pytest.approx(
                np.percentile(values, q), rel=1e-12
            )

    def test_percentiles_approximate_beyond_reservoir(self):
        rng = np.random.default_rng(2)
        values = rng.exponential(1.0, size=50_000)
        h = Histogram("h", {}, reservoir_size=2048)
        h.observe_many(values)
        assert h.count == 50_000
        # A 2048-point uniform sample pins mid percentiles within a few %.
        for q in (50, 95):
            assert h.percentile(q) == pytest.approx(
                np.percentile(values, q), rel=0.15
            )

    def test_observe_streaming_matches_bulk_reservoir_fill(self):
        values = np.arange(100, dtype=float)
        h = Histogram("h", {}, reservoir_size=256)
        h.observe_many(values)
        assert np.array_equal(h.sample(), values)

    def test_snapshot_fields(self):
        h = Histogram("h", {})
        h.observe_many(np.array([0.1, 0.2, 0.3, 0.4]))
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(1.0)
        assert snap["mean"] == pytest.approx(0.25)
        assert snap["p50"] == pytest.approx(0.25)

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError, match="no observations"):
            Histogram("h", {}).percentile(50)

    def test_needs_buckets(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", {}, buckets=())


# Label values stress the two serialization layers: the flat snapshot
# key (`name{k=v,...}`) and the OpenMetrics exposition.  Values holding
# the key syntax's own delimiters (`,` `=` `{` `}` `"` newline `\`) are
# exactly the ones that historically leaked through unescaped.
_label_values = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="\r"
    ),
    min_size=0,
    max_size=24,
)
_label_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
)


class TestSnapshotKeyRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(labels=st.dictionaries(_label_names, _label_values, max_size=3))
    def test_render_parse_round_trip(self, labels):
        key = render_snapshot_key("sim.requests", labels)
        name, parsed = parse_snapshot_key(key)
        assert name == "sim.requests"
        assert parsed == {k: str(v) for k, v in labels.items()}

    @settings(max_examples=100, deadline=None)
    @given(value=_label_values)
    def test_registry_snapshot_keys_parse_back(self, value):
        reg = MetricsRegistry()
        reg.counter("c", scheme=value).inc()
        (key,) = reg.snapshot()
        name, labels = parse_snapshot_key(key)
        assert name == "c"
        assert labels == {"scheme": value}

    @settings(max_examples=100, deadline=None)
    @given(value=_label_values.filter(lambda v: "\n" not in v))
    def test_openmetrics_round_trip(self, value):
        reg = MetricsRegistry()
        reg.counter("c", scheme=value).inc(2)
        families = parse_openmetrics(render_openmetrics(reg))
        (sample,) = families["c"]["samples"]
        _name, labels, sample_value = sample
        assert labels == {"scheme": value}
        assert sample_value == 2.0

    @settings(max_examples=100, deadline=None)
    @given(value=st.sampled_from(
        ['a,b', 'a=b', 'a"b', "a\nb", "a\\b", "{x}", 'sp,cache="w"\\']
    ))
    def test_delimiter_values_round_trip_everywhere(self, value):
        key = render_snapshot_key("m", {"l": value})
        assert parse_snapshot_key(key) == ("m", {"l": value})
        reg = MetricsRegistry()
        reg.gauge("g", l=value).set(1.5)
        if "\n" not in value:
            families = parse_openmetrics(render_openmetrics(reg))
            (sample,) = families["g"]["samples"]
            assert sample[1] == {"l": value}

    def test_plain_keys_stay_byte_identical(self):
        # Backward compatibility: unexotic labels must keep the exact
        # key spelling older manifests recorded.
        key = render_snapshot_key(
            "sim.requests", {"scheme": "sp-cache", "engine": "fifo"}
        )
        assert key == "sim.requests{engine=fifo,scheme=sp-cache}"

    def test_malformed_keys_raise(self):
        for bad in ("m{", "m{x}", "m{x=1", 'm{x="1}', "m{=1}"):
            with pytest.raises(ValueError):
                parse_snapshot_key(bad)
