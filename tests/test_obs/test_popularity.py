"""Streaming popularity observation: sketch accuracy contracts, window
rolling, drift/hot-spot alerting, and the engine/trace plumbing.

The end-to-end repartition fidelity gates (top-K precision >= 0.9, Zipf
alpha within 10 %) are asserted by ``repro.experiments.fig16_sketch``;
this file covers the primitives and the wiring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SimulationConfig, simulate_reads
from repro.common import ClusterSpec, Gbps
from repro.obs import (
    POPULARITY_SCHEMA_VERSION,
    CountMinSketch,
    PopularityConfig,
    PopularityMonitor,
    RingBufferSink,
    SpaceSavingTopK,
    Tracer,
    collect_popularity,
    get_popularity_config,
    popularity_from_trace,
    publish_popularity,
    use_popularity,
    zipf_alpha_from_counts,
)
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace


def _zipf_stream(n_files=300, n_requests=20_000, alpha=1.05, seed=0):
    """A seeded Zipf request stream plus its exact per-file counts."""
    ranks = np.arange(1, n_files + 1, dtype=np.float64)
    p = ranks**-alpha
    p /= p.sum()
    rng = np.random.default_rng(seed)
    fids = rng.choice(n_files, size=n_requests, p=p)
    return fids, np.bincount(fids, minlength=n_files).astype(np.float64)


# -- Count-Min sketch ---------------------------------------------------


def test_cms_never_underestimates_and_meets_error_bound():
    fids, exact = _zipf_stream()
    sketch = CountMinSketch(width=1024, depth=4, seed=0)
    keys, counts = np.unique(fids, return_counts=True)
    sketch.update(keys, counts)
    est = sketch.estimate_many(np.arange(exact.size))
    assert np.all(est >= exact - 1e-9)  # the one-sided guarantee
    # Deterministic seed, so the probabilistic bound holds exactly here.
    assert np.max(est - exact) <= sketch.epsilon * sketch.total


def test_cms_survives_heavy_collisions():
    fids, exact = _zipf_stream(n_files=500, n_requests=5_000)
    sketch = CountMinSketch(width=16, depth=3, seed=1)
    sketch.update(fids)  # unit counts, un-aggregated
    est = sketch.estimate_many(np.arange(exact.size))
    assert np.all(est >= exact - 1e-9)
    assert sketch.total == pytest.approx(5_000)


def test_cms_width_rounds_to_power_of_two():
    sketch = CountMinSketch(width=1000, depth=2)
    assert sketch.width == 1024
    assert sketch.epsilon == pytest.approx(np.e / 1024)
    assert sketch.delta == pytest.approx(np.exp(-2))
    assert sketch.memory_bytes == 2 * 1024 * 8


def test_cms_rejects_degenerate_shapes():
    with pytest.raises(ValueError):
        CountMinSketch(width=1)
    with pytest.raises(ValueError):
        CountMinSketch(depth=0)


# -- Space-Saving summary -----------------------------------------------


def test_space_saving_count_error_brackets_truth():
    fids, exact = _zipf_stream(n_files=400, n_requests=30_000)
    summary = SpaceSavingTopK(capacity=64)
    keys, counts = np.unique(fids, return_counts=True)
    summary.update_many(keys, counts)
    assert len(summary) <= 64
    for key, count, error in summary.top():
        true = exact[key]
        assert count - error - 1e-9 <= true <= count + 1e-9


def test_space_saving_retains_the_heavy_hitters():
    fids, exact = _zipf_stream(n_files=400, n_requests=30_000)
    summary = SpaceSavingTopK(capacity=64)
    keys, counts = np.unique(fids, return_counts=True)
    summary.update_many(keys, counts)
    retained = {key for key, _c, _e in summary.top()}
    true_top = set(np.argsort(-exact, kind="stable")[:16].tolist())
    assert true_top <= retained


def test_space_saving_eviction_is_deterministic():
    def fill(order):
        s = SpaceSavingTopK(capacity=3)
        for key, count in order:
            s.update(key, count)
        return s.top()

    a = fill([(1, 5.0), (2, 5.0), (3, 1.0), (4, 2.0)])
    b = fill([(2, 5.0), (1, 5.0), (3, 1.0), (4, 2.0)])
    assert a == b
    assert [key for key, _c, _e in a] == [1, 2, 4]


# -- Zipf estimator -----------------------------------------------------


def test_zipf_alpha_recovers_synthetic_exponent():
    ranks = np.arange(1, 65, dtype=np.float64)
    counts = 1e4 * ranks**-1.2
    assert zipf_alpha_from_counts(counts) == pytest.approx(1.2, abs=1e-9)


def test_zipf_alpha_needs_three_positive_counts():
    assert zipf_alpha_from_counts([]) is None
    assert zipf_alpha_from_counts([5.0, 3.0]) is None
    assert zipf_alpha_from_counts([5.0, 3.0, 0.0]) is None


# -- config validation --------------------------------------------------


@pytest.mark.parametrize(
    "overrides",
    [
        {"width": 1},
        {"depth": 0},
        {"top_k": 0},
        {"capacity": 4, "top_k": 8},
        {"window_requests": 0},
        {"window_s": 0.0},
        {"max_windows": 0},
        {"ewma_alpha": 0.0},
        {"drift_threshold": -0.1},
        {"churn_threshold": 1.5},
        {"hotspot_share": 0.0},
        {"min_window_count": 0},
        {"estimate_ids": 0},
    ],
)
def test_config_rejects_bad_values(overrides):
    with pytest.raises(ValueError):
        PopularityConfig(**overrides)


# -- the monitor --------------------------------------------------------


def test_count_windows_roll_and_finalize_shape():
    config = PopularityConfig(window_requests=100, top_k=4, capacity=8)
    monitor = PopularityMonitor(config, scheme="sp-cache", engine="fifo")
    fids, _ = _zipf_stream(n_files=20, n_requests=350, seed=3)
    for fid in fids:
        monitor.observe(int(fid))
    section = monitor.finalize()
    assert section["schema_version"] == POPULARITY_SCHEMA_VERSION
    assert section["scheme"] == "sp-cache"
    assert section["requests"] == 350
    assert section["n_windows"] == 4  # 3 full rolls + the 50-request tail
    assert [w["count"] for w in section["windows"]] == [100, 100, 100, 50]
    assert len(section["top"]) <= 4
    assert section["sketch"]["capacity"] == 8


def test_time_windows_roll_on_sim_seconds():
    config = PopularityConfig(window_s=1.0, window_requests=10**9)
    monitor = PopularityMonitor(config)
    for i in range(40):
        monitor.observe(i % 5, t=i * 0.1)  # 4 sim-seconds of traffic
    section = monitor.finalize()
    assert section["n_windows"] == 4
    starts = [w["t_start"] for w in section["windows"]]
    assert starts == pytest.approx([0.0, 1.0, 2.0, 3.0])


def test_drift_alert_fires_on_distribution_shift():
    config = PopularityConfig(
        window_requests=200, min_window_count=50, drift_threshold=0.6
    )
    monitor = PopularityMonitor(config, scheme="x")
    for _ in range(200):
        monitor.observe(0)
    for _ in range(200):
        monitor.observe(1)  # disjoint support: L1 distance = 2.0
    section = monitor.finalize()
    drift = [a for a in section["alerts"] if a["kind"] == "drift"]
    assert len(drift) == 1
    assert drift[0]["l1"] == pytest.approx(2.0)
    assert drift[0]["trigger"] == "l1"


def test_sparse_windows_cannot_trip_drift():
    config = PopularityConfig(window_requests=10, min_window_count=50)
    monitor = PopularityMonitor(config)
    for _ in range(10):
        monitor.observe(0)
    for _ in range(10):
        monitor.observe(1)
    section = monitor.finalize()
    assert [a for a in section["alerts"] if a["kind"] == "drift"] == []


def test_hotspot_alert_on_dominant_file():
    config = PopularityConfig(
        window_requests=100, min_window_count=50, hotspot_share=0.5
    )
    monitor = PopularityMonitor(config)
    for i in range(100):
        monitor.observe(7 if i % 4 else i)  # file 7 takes ~75 %
    section = monitor.finalize()
    hot = [a for a in section["alerts"] if a["kind"] == "hotspot"]
    assert hot and hot[0]["file_id"] == 7
    assert hot[0]["share"] >= 0.5


def test_max_windows_clips_rows_but_keeps_counts():
    config = PopularityConfig(window_requests=10, max_windows=2)
    monitor = PopularityMonitor(config)
    for i in range(50):
        monitor.observe(i % 3)
    section = monitor.finalize()
    assert len(section["windows"]) == 2
    assert section["clipped_windows"] == 3
    assert section["n_windows"] == 5
    assert section["requests"] == 50


def test_server_loads_feed_imbalance_ewma():
    config = PopularityConfig(window_requests=4, min_window_count=1)
    monitor = PopularityMonitor(config, n_servers=4)
    servers = np.array([0, 1])
    for _ in range(8):
        monitor.observe(0, servers=servers, sizes=np.array([10.0, 10.0]))
    section = monitor.finalize()
    imb = section["imbalance"]
    # Two of four servers loaded equally: max/mean = 2, CV = 1.
    assert imb["ewma_max_mean"] == pytest.approx(2.0)
    assert imb["ewma_cv"] == pytest.approx(1.0)


def test_unknown_server_ids_grow_the_load_vector():
    monitor = PopularityMonitor(PopularityConfig(), n_servers=2)
    monitor.observe(0, servers=np.array([5]), sizes=np.array([1.0]))
    section = monitor.finalize()  # growth happens at the window fold
    assert monitor.n_servers == 6
    assert section["n_servers"] == 6


def test_estimated_popularities_track_empirical():
    fids, exact = _zipf_stream(n_files=50, n_requests=10_000, seed=4)
    monitor = PopularityMonitor(PopularityConfig(window_requests=1000))
    for fid in fids:
        monitor.observe(int(fid))
    monitor.finalize()
    est = monitor.estimated_popularities(50)
    empirical = exact / exact.sum()
    assert est.sum() == pytest.approx(1.0)
    assert np.abs(est - empirical).sum() < 0.02


def test_estimated_popularities_uniform_before_data():
    monitor = PopularityMonitor(PopularityConfig())
    assert monitor.estimated_popularities(4) == pytest.approx([0.25] * 4)
    with pytest.raises(ValueError):
        monitor.estimated_popularities(0)


def test_monitor_emits_window_and_alert_trace_events():
    sink = RingBufferSink()
    config = PopularityConfig(
        window_requests=100, min_window_count=50, hotspot_share=0.9
    )
    monitor = PopularityMonitor(config, scheme="sp", tracer=Tracer(sink))
    for _ in range(200):
        monitor.observe(3)
    monitor.finalize()
    names = [r["event"] for r in sink.records]
    assert names.count("popularity_window") == 2
    assert "hotspot" in names


def test_monitor_rejects_non_config():
    with pytest.raises(TypeError):
        PopularityMonitor({"width": 8})


# -- engine + ambient plumbing ------------------------------------------


def _simulate(discipline="fifo", popularity=None, **overrides):
    cluster = ClusterSpec(n_servers=10, bandwidth=Gbps)
    pop = paper_fileset(40, size_mb=20, zipf_exponent=1.1, total_rate=5)
    policy = SPCachePolicy(pop, cluster, seed=5)
    trace = poisson_trace(pop, n_requests=300, seed=11)
    base = dict(
        discipline=discipline,
        jitter="deterministic",
        seed=1,
        popularity=popularity,
    )
    base.update(overrides)
    return simulate_reads(trace, policy, cluster, SimulationConfig(**base))


def test_simulation_disabled_by_default():
    assert _simulate().popularity is None


@pytest.mark.parametrize("discipline", ["fifo", "ps"])
def test_simulation_observes_every_request(discipline):
    config = PopularityConfig(window_requests=100)
    result = _simulate(discipline=discipline, popularity=config)
    section = result.popularity
    assert section is not None
    assert section["scheme"] == "sp-cache"
    assert section["engine"] == discipline
    assert section["requests"] == 300
    assert section["n_servers"] == 10
    assert any(w["cv"] is not None for w in section["windows"])


def test_popularity_leaves_latencies_untouched():
    base = _simulate()
    observed = _simulate(popularity=PopularityConfig(window_requests=64))
    np.testing.assert_array_equal(base.latencies, observed.latencies)


def test_ambient_config_and_collector():
    sections: list[dict] = []
    with collect_popularity(sections):
        with use_popularity(PopularityConfig(window_requests=100)) as cfg:
            assert get_popularity_config() is cfg
            result = _simulate()
    assert get_popularity_config() is None
    assert result.popularity is not None
    assert sections == [result.popularity]


def test_publish_without_collector_is_noop():
    publish_popularity({"scheme": "orphan"})  # must not raise


def test_use_popularity_rejects_non_config():
    with pytest.raises(TypeError):
        with use_popularity(None):
            pass


# -- trace replay -------------------------------------------------------


def test_popularity_from_trace_splits_by_scheme():
    events = []
    for i in range(120):
        events.append(
            {
                "event": "read",
                "ts": i * 0.01,
                "scheme": "sp-cache" if i % 2 else "ec-cache",
                "file_id": i % 7,
                "servers": [0, 1],
                "sizes": [4.0, 4.0],
            }
        )
    events.append({"event": "read_done", "ts": 2.0, "scheme": "sp-cache"})
    sections = popularity_from_trace(
        events, PopularityConfig(window_requests=30)
    )
    assert [s["scheme"] for s in sections] == ["ec-cache", "sp-cache"]
    assert all(s["engine"] == "trace" for s in sections)
    assert all(s["requests"] == 60 for s in sections)
    assert all(s["n_servers"] == 2 for s in sections)
