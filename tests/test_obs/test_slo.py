"""SLO objectives, burn-rate alerting, and engine integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.simulation import SimulationConfig, simulate_reads
from repro.common import ClusterSpec, Gbps
from repro.obs import (
    DEFAULT_OBJECTIVES,
    RingBufferSink,
    SLOConfig,
    SLObjective,
    SLOMonitor,
    Tracer,
    collect_slo,
    default_slo_config,
    get_registry,
    get_slo_config,
    parse_objective,
    parse_slo,
    slo_from_trace,
    use_slo,
    use_tracer,
)
from repro.obs import events as ev
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace


def _monitor(config=None, **kw):
    kw.setdefault("scheme", "sp-cache")
    kw.setdefault("engine", "fifo")
    kw.setdefault("tracer", Tracer())
    return SLOMonitor(config or default_slo_config(), **kw)


def _breaching_workload(n=2000, frac_slow=0.5):
    """Arrival times over 100s; the second half of the run turns slow."""
    times = np.linspace(0.0, 100.0, n)
    latencies = np.where(times > 100.0 * (1 - frac_slow), 5.0, 0.001)
    return times, latencies


class TestParseObjective:
    def test_p99_spec(self):
        obj = parse_objective("p99<0.02")
        assert obj.kind == "latency"
        assert obj.threshold == 0.02
        assert obj.budget == 0.01

    def test_latency_alias(self):
        assert parse_objective("latency<1.5") == parse_objective("p99<1.5")

    def test_miss_threshold_is_budget(self):
        obj = parse_objective("miss<0.1")
        assert obj.kind == "miss"
        assert obj.budget == 0.1

    def test_budget_suffix(self):
        obj = parse_objective("imbalance<3@0.05")
        assert obj.kind == "imbalance"
        assert obj.threshold == 3.0
        assert obj.budget == 0.05

    @pytest.mark.parametrize(
        "spec", ["", "p99", "nope<1", "p99<", "miss", "imbalance", "p99<0<1"]
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_objective(spec)

    def test_parse_slo_splits_commas(self):
        cfg = parse_slo("p99<0.02, imbalance<3")
        assert [o.kind for o in cfg.objectives] == ["latency", "imbalance"]

    def test_parse_slo_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_slo("p99<1,latency<2")
        with pytest.raises(ValueError, match="empty"):
            parse_slo(" , ")


class TestConfigValidation:
    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SLObjective("x", "nope", threshold=1)
        with pytest.raises(ValueError):
            SLObjective("x", "latency", threshold=0.0)
        with pytest.raises(ValueError):
            SLObjective("x", "latency", threshold=1.0, budget=1.5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(objectives=())
        with pytest.raises(ValueError):
            SLOConfig(window_s=-1.0)
        with pytest.raises(ValueError):
            SLOConfig(slow_windows=1, fast_windows=2)
        with pytest.raises(ValueError):
            SLOConfig(page_budget=0.2, warn_budget=0.1)
        with pytest.raises(ValueError):
            SLOConfig(
                objectives=(
                    SLObjective("a", "latency", threshold=1),
                    SLObjective("a", "miss"),
                )
            )

    def test_defaults_are_loose(self):
        cfg = default_slo_config()
        assert cfg.objectives == DEFAULT_OBJECTIVES
        assert cfg.window_s is None


class TestAmbientConfig:
    def test_stacking(self):
        assert get_slo_config() is None
        a, b = default_slo_config(), parse_slo("p99<1")
        with use_slo(a):
            assert get_slo_config() is a
            with use_slo(b):
                assert get_slo_config() is b
            assert get_slo_config() is a
        assert get_slo_config() is None

    def test_collect_gathers_published_sections(self):
        times, lats = _breaching_workload()
        with collect_slo() as sink:
            from repro.obs import publish_slo

            publish_slo({"scheme": "x"})
        assert sink == [{"scheme": "x"}]

    def test_use_slo_rejects_non_config(self):
        with pytest.raises(TypeError):
            with use_slo("p99<1"):
                pass


class TestEvaluate:
    def test_tight_latency_objective_breaches(self):
        times, lats = _breaching_workload()
        cfg = parse_slo("p99<0.01")
        section = _monitor(cfg).evaluate(times, lats)
        assert section["breaches"] >= 1
        obj = section["objectives"][0]
        assert obj["met"] is False
        assert obj["bad_fraction"] == pytest.approx(0.5, abs=0.01)
        assert section["alerts"]
        assert all(
            a["severity"] in ("page", "warn") for a in section["alerts"]
        )

    def test_loose_objective_stays_quiet(self):
        times, lats = _breaching_workload()
        section = _monitor().evaluate(times, lats)
        assert section["breaches"] == 0
        assert all(o["met"] for o in section["objectives"])

    def test_recovery_closes_alert(self):
        # Slow burst in the middle third only: alert opens then closes.
        n = 3000
        times = np.linspace(0.0, 90.0, n)
        lats = np.where((times > 30) & (times < 60), 5.0, 0.001)
        section = _monitor(parse_slo("p99<0.01")).evaluate(times, lats)
        assert section["breaches"] >= 1
        assert section["recoveries"] >= 1
        closed = [a for a in section["alerts"] if not a["active"]]
        assert closed and closed[0]["t_end"] is not None

    def test_events_emitted_through_tracer(self):
        sink = RingBufferSink()
        times, lats = _breaching_workload()
        _monitor(parse_slo("p99<0.01"), tracer=Tracer(sink)).evaluate(
            times, lats
        )
        names = [r["event"] for r in sink.records]
        assert ev.SLO_BREACH in names

    def test_counters_in_registry(self):
        times, lats = _breaching_workload()
        _monitor(parse_slo("p99<0.01")).evaluate(times, lats)
        snap = get_registry().snapshot(prefix="slo.")
        assert any(k.startswith("slo.breaches") for k in snap)
        assert any(k.startswith("slo.budget_remaining") for k in snap)

    def test_empty_run(self):
        section = _monitor().evaluate(np.zeros(0), np.zeros(0))
        assert section["requests"] == 0
        assert section["breaches"] == 0
        assert all(o["met"] for o in section["objectives"])

    def test_miss_objective_without_signal_is_met(self):
        times, lats = _breaching_workload()
        section = _monitor(parse_slo("miss<0.1")).evaluate(times, lats)
        obj = section["objectives"][0]
        assert obj["met"] is True and obj["total"] == 0.0

    def test_miss_objective_with_flags(self):
        times, lats = _breaching_workload()
        missed = np.ones(times.size, dtype=bool)
        section = _monitor(parse_slo("miss<0.1")).evaluate(
            times, lats, missed=missed
        )
        obj = section["objectives"][0]
        assert obj["met"] is False and obj["bad_fraction"] == 1.0

    def test_miss_size_mismatch_raises(self):
        times, lats = _breaching_workload()
        with pytest.raises(ValueError, match="entries"):
            _monitor().evaluate(times, lats, missed=[True, False])

    def test_imbalance_from_server_bytes_fallback(self):
        times, lats = _breaching_workload()
        skewed = np.array([100.0, 1.0, 1.0, 1.0])
        section = _monitor(parse_slo("imbalance<2")).evaluate(
            times, lats, server_bytes=skewed
        )
        obj = section["objectives"][0]
        assert obj["met"] is False and obj["total"] == 1.0

    def test_imbalance_from_popularity_windows(self):
        times, lats = _breaching_workload()
        pop = {
            "windows": [
                {"t_start": 0.0, "max_mean": 1.1},
                {"t_start": 50.0, "max_mean": 4.0},
            ]
        }
        section = _monitor(parse_slo("imbalance<2")).evaluate(
            times, lats, popularity=pop
        )
        obj = section["objectives"][0]
        assert obj["total"] == 2.0 and obj["bad"] == 1.0

    def test_windows_capped_at_max(self):
        cfg = SLOConfig(window_s=0.001, target_windows=8, max_windows=16)
        times, lats = _breaching_workload(n=500)
        section = _monitor(cfg).evaluate(times, lats)
        assert section["n_windows"] <= 16


def _simulate(slo=None, tracer=None, batch_size=None, seed=5):
    cluster = ClusterSpec(n_servers=10, bandwidth=Gbps)
    pop = paper_fileset(40, size_mb=20, zipf_exponent=1.1, total_rate=5)
    policy = SPCachePolicy(pop, cluster, seed=seed)
    trace = poisson_trace(pop, n_requests=300, seed=11)
    config = SimulationConfig(
        jitter="deterministic", seed=1, slo=slo, batch_size=batch_size
    )
    if tracer is not None:
        with use_tracer(tracer):
            return simulate_reads(trace, policy, cluster, config)
    return simulate_reads(trace, policy, cluster, config)


class TestEngineIntegration:
    def test_disabled_by_default(self):
        result = _simulate()
        assert result.slo is None

    def test_enabled_run_lands_section(self):
        result = _simulate(slo=parse_slo("p99<0.001"))
        assert result.slo is not None
        assert result.slo["scheme"] == "sp-cache"
        assert result.slo["requests"] == 300
        assert result.slo["breaches"] >= 1

    def test_results_identical_with_and_without_slo(self):
        off = _simulate()
        on = _simulate(slo=default_slo_config())
        assert np.array_equal(off.latencies, on.latencies)
        assert np.array_equal(off.server_bytes, on.server_bytes)

    def test_batched_engine_matches_scalar_section(self):
        scalar = _simulate(slo=parse_slo("p99<0.001"))
        batched = _simulate(slo=parse_slo("p99<0.001"), batch_size=64)
        assert scalar.slo["breaches"] == batched.slo["breaches"]
        assert scalar.slo["objectives"] == batched.slo["objectives"]

    def test_ambient_config_reaches_engine(self):
        with use_slo(parse_slo("p99<0.001")), collect_slo() as sink:
            result = _simulate()
        assert result.slo is not None and sink == [result.slo]

    def test_breach_events_reach_trace(self):
        sink = RingBufferSink()
        _simulate(slo=parse_slo("p99<0.001"), tracer=Tracer(sink))
        names = {r["event"] for r in sink.records}
        assert ev.SLO_BREACH in names


class TestSloFromTrace:
    def test_reevaluates_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        from repro.obs import FileSink

        sink = FileSink(path)
        _simulate(tracer=Tracer(sink))
        sink.close()
        sections = slo_from_trace(str(path), parse_slo("p99<0.001"))
        assert len(sections) == 1
        assert sections[0]["scheme"] == "sp-cache"
        assert sections[0]["engine"] == "trace"
        assert sections[0]["breaches"] >= 1

    def test_never_reemits_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        from repro.obs import FileSink

        sink = FileSink(path)
        _simulate(tracer=Tracer(sink))
        sink.close()
        out = RingBufferSink()
        with use_tracer(Tracer(out)):
            slo_from_trace(str(path), parse_slo("p99<0.001"))
        assert not out.records
