"""DashBoard event folding, manifest ingestion, and frame rendering."""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.obs import (
    DashBoard,
    dash_from_manifest,
    follow_lines,
    parse_json_lines,
    render_frame,
)


def _read(scheme="sp-cache", file_id=0, servers=(0, 1), sizes=(10.0, 30.0),
          ts=1.0, **extra):
    return {
        "event": "read", "scheme": scheme, "file_id": file_id,
        "servers": list(servers), "sizes": list(sizes), "ts": ts, **extra,
    }


def _done(scheme="sp-cache", latency=0.5, ts=2.0):
    return {"event": "read_done", "scheme": scheme, "latency": latency,
            "ts": ts}


class TestFeed:
    def test_read_events_accumulate_server_bytes(self):
        board = DashBoard()
        board.feed(_read(servers=(0, 2), sizes=(5.0, 7.0)))
        board.feed(_read(servers=(2,), sizes=(1.0,)))
        st = board.state("sp-cache")
        assert st.requests == 2
        assert st.server_bytes[0] == 5.0
        assert st.server_bytes[2] == 8.0

    def test_miss_and_straggler_flags_counted(self):
        board = DashBoard()
        board.feed(_read(miss=True, straggler=True))
        board.feed(_read())
        st = board.state("sp-cache")
        assert st.misses == 1 and st.stragglers == 1

    def test_latencies_window_is_bounded(self):
        board = DashBoard()
        for i in range(5000):
            board.feed(_done(latency=float(i)))
        st = board.state("sp-cache")
        assert len(st.latencies) == st.latencies.maxlen

    def test_breach_opens_alert_and_recovery_clears_it(self):
        board = DashBoard()
        breach = {
            "event": "slo_breach", "scheme": "sp-cache",
            "objective": "p99_latency", "severity": "page",
            "burn": 3.0, "t_start": 4.0, "ts": 4.0,
        }
        board.feed(breach)
        st = board.state("sp-cache")
        assert ("p99_latency", "page") in st.active_alerts
        assert st.total_breaches == 1
        board.feed(
            {
                "event": "slo_recovered", "scheme": "sp-cache",
                "objective": "p99_latency", "severity": "page", "ts": 9.0,
            }
        )
        assert not st.active_alerts
        assert st.total_breaches == 1

    def test_unknown_kinds_counted_never_raise(self):
        board = DashBoard()
        board.feed({"event": "mystery", "payload": object()})
        board.feed({"no_event_key": True})
        assert board.n_unknown == 2

    def test_simulation_end_widens_server_vector(self):
        board = DashBoard()
        board.feed(_read(servers=(1,), sizes=(1.0,)))
        board.feed(
            {"event": "simulation_end", "scheme": "sp-cache", "n_servers": 8}
        )
        assert board.state("sp-cache").server_bytes.size == 8

    def test_feed_many_skips_non_mappings(self):
        board = DashBoard()
        board.feed_many([_read(), "junk", None, 42, _done()])
        assert board.state("sp-cache").requests == 1


class TestManifest:
    def _manifest(self):
        return {
            "schema_version": 5,
            "metrics": {
                "sim.server_bytes{engine=ps,scheme=sp-cache,server_id=0}": 30.0,
                "sim.server_bytes{engine=ps,scheme=sp-cache,server_id=1}": 10.0,
                "sim.requests{engine=ps,scheme=sp-cache}": 300.0,
                "sim.misses{engine=ps,scheme=sp-cache}": 12.0,
                "sim.latency_seconds{engine=ps,scheme=sp-cache}": {
                    "p50": 0.1, "p95": 0.5, "p99": 0.9,
                    "count": 300, "sum": 40.0,
                },
            },
            "popularity": [
                {
                    "scheme": "sp-cache",
                    "top": [{"file_id": 3, "count": 50.0, "share": 0.2}],
                }
            ],
            "slo": [
                {
                    "scheme": "sp-cache",
                    "objectives": [
                        {"name": "p99_latency", "budget_remaining": 0.4},
                    ],
                    "alerts": [
                        {
                            "objective": "p99_latency", "severity": "page",
                            "t_start": 2.0, "active": True, "peak_burn": 6.0,
                        },
                        {
                            "objective": "p99_latency", "severity": "warn",
                            "t_start": 1.0, "active": False,
                        },
                    ],
                }
            ],
        }

    def test_board_from_manifest(self):
        board = dash_from_manifest(self._manifest())
        st = board.state("sp-cache")
        assert st.requests == 300 and st.misses == 12
        assert st.server_bytes[0] == 30.0 and st.server_bytes[1] == 10.0
        assert st.total_breaches == 2
        assert list(st.active_alerts) == [("p99_latency", "page")]
        assert st.budget_remaining["p99_latency"] == pytest.approx(0.4)
        assert st.hot.top(1)[0][0] == 3

    def test_older_schema_leaves_board_partial(self):
        board = dash_from_manifest({"schema_version": 1, "metrics": {}})
        assert board.schemes == []


class TestRenderFrame:
    def test_empty_board(self):
        assert "no simulator events" in render_frame(DashBoard())

    def test_frame_sections(self):
        board = dash_from_manifest(TestManifest()._manifest())
        frame = render_frame(board)
        assert "== sp-cache ==" in frame
        assert "requests=300" in frame
        assert "miss=4.0%" in frame
        assert "s0   |" in frame and "#" in frame
        assert "hot keys: f3:50" in frame
        assert "slo budget left: p99_latency=40%" in frame
        assert "ALERT [page] p99_latency" in frame

    def test_alerts_none_line(self):
        board = DashBoard()
        board.feed(_read())
        assert "alerts: none" in render_frame(board)

    def test_server_list_truncated(self):
        board = DashBoard()
        board.feed(_read(servers=range(40), sizes=[1.0] * 40))
        frame = render_frame(board, max_servers=8)
        assert "... 32 more servers" in frame

    def test_unknown_events_footer(self):
        board = DashBoard()
        board.feed(_read())
        board.feed({"event": "mystery"})
        assert "1 unknown event records skipped" in render_frame(board)


class TestMembershipPanel:
    def _topology_events(self):
        return [
            {"event": "epoch", "ts": 0.0, "epoch": 0, "n_servers": 3,
             "added": [], "removed": []},
            {"event": "membership", "ts": 10.0, "kind": "add",
             "server_id": 3},
            {"event": "epoch", "ts": 10.0, "epoch": 1, "n_servers": 4,
             "added": [3], "removed": []},
            {"event": "repartition_time", "mode": "epoch", "epoch": 1,
             "seconds": 0.5, "moved_bytes": 1024.0},
        ]

    def test_trace_fold_tracks_epochs(self):
        board = DashBoard()
        board.feed_many(self._topology_events())
        assert board.n_servers == 4
        assert board.current_epoch == 1
        assert board.last_membership_event["server_id"] == 3
        assert board.membership[1]["added"] == 1
        assert board.membership[1]["moved"]["plan"] == 1024.0
        assert board.n_unknown == 0

    def test_membership_panel_renders_without_sim_events(self):
        board = DashBoard()
        board.feed_many(self._topology_events())
        frame = render_frame(board)
        assert "== cluster membership ==  servers=4  epoch=1" in frame
        assert "last event: add s3 at t=10.0s" in frame
        assert "plan=1.0KiB" in frame

    def test_manifest_membership_sections_fold(self):
        manifest = {
            "schema_version": 7,
            "metrics": {},
            "membership": [
                {
                    "scheme": "ring",
                    "n_epochs": 2,
                    "epochs": [
                        {"epoch": 0, "t_start": 0.0, "n_servers": 3,
                         "added": [], "removed": [], "moved_bytes": 0.0},
                        {"epoch": 1, "t_start": 10.0, "n_servers": 4,
                         "added": [3], "removed": [],
                         "moved_bytes": 2048.0},
                    ],
                    "events": [
                        {"t": 10.0, "kind": "add", "server_id": 3},
                    ],
                },
            ],
        }
        board = dash_from_manifest(manifest)
        assert board.n_servers == 4
        frame = render_frame(board)
        assert "== cluster membership ==" in frame
        assert "ring=2.0KiB" in frame
        assert "last event: add s3 at t=10.0s" in frame


class TestFollowLines:
    def test_only_complete_lines_yielded(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n{"partial"')
        lines = list(follow_lines(str(path), poll_s=0.01, idle_limit=0.05))
        assert lines == ['{"a": 1}']

    def test_picks_up_growth(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n')

        def writer():
            time.sleep(0.05)
            with open(path, "a") as fh:
                fh.write('{"b": 2}\n')

        t = threading.Thread(target=writer)
        t.start()
        lines = list(follow_lines(str(path), poll_s=0.01, idle_limit=0.3))
        t.join()
        assert lines == ['{"a": 1}', '{"b": 2}']

    def test_parse_json_lines_skips_junk(self):
        records = list(
            parse_json_lines(['{"a": 1}', "not json", "[1,2]", '{"b": 2}'])
        )
        assert records == [{"a": 1}, {"b": 2}]
