"""Sim-time timelines: section shape, attribution exactness, determinism.

The cross-discipline parity angle (``limited(1)`` vs ``fifo``,
``limited(inf)`` vs ``ps`` producing identical timelines) lives in
``tests/test_cluster/test_timeline_parity.py``; this file covers the
collector itself through the public ``simulate_reads`` surface plus the
ambient-config/sink plumbing and the rendering helpers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import SimulationConfig, StragglerInjector, simulate_reads
from repro.common import ClusterSpec, Gbps
from repro.obs import (
    TIMELINE_SCHEMA_VERSION,
    TimelineConfig,
    chrome_counter_events,
    collect_timelines,
    get_timeline_config,
    publish_timeline,
    sparkline,
    tail_attribution_rows,
    timeline_series_rows,
    use_timeline,
)
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace


def _scenario(n_servers=10, n_requests=300):
    cluster = ClusterSpec(n_servers=n_servers, bandwidth=Gbps)
    pop = paper_fileset(40, size_mb=20, zipf_exponent=1.1, total_rate=5)
    policy = SPCachePolicy(pop, cluster, seed=5)
    trace = poisson_trace(pop, n_requests=n_requests, seed=11)
    return trace, policy, cluster


def _simulate(discipline="ps", timeline=TimelineConfig(), **overrides):
    trace, policy, cluster = _scenario()
    base = dict(
        discipline=discipline,
        jitter="deterministic",
        seed=1,
        timeline=timeline,
    )
    base.update(overrides)
    return simulate_reads(trace, policy, cluster, SimulationConfig(**base))


# -- enablement ---------------------------------------------------------


def test_disabled_by_default():
    result = _simulate(timeline=None)
    assert result.timeline is None


def test_explicit_config_enables_collection():
    result = _simulate()
    section = result.timeline
    assert section is not None
    assert section["schema_version"] == TIMELINE_SCHEMA_VERSION
    assert section["scheme"] == "sp-cache"
    assert section["engine"] == "ps"


def test_ambient_config_enables_collection():
    with use_timeline(TimelineConfig(tail_k=5)):
        result = _simulate(timeline=None)
    assert result.timeline is not None
    assert result.timeline["tail"]["k"] == 5
    assert get_timeline_config() is None  # restored on exit


def test_explicit_config_wins_over_ambient():
    with use_timeline(TimelineConfig(tail_k=5)):
        result = _simulate(timeline=TimelineConfig(tail_k=3))
    assert result.timeline["tail"]["k"] == 3


def test_collect_timelines_receives_published_sections():
    with collect_timelines() as outer:
        with collect_timelines() as inner:
            result = _simulate()
        _simulate()
    # Nested sinks both see the inner publish; the outer saw both runs.
    assert len(inner) == 1
    assert len(outer) == 2
    assert inner[0] == result.timeline


def test_publish_timeline_without_sinks_is_noop():
    publish_timeline({"scheme": "x"})  # must not raise


def test_use_timeline_rejects_non_config():
    with pytest.raises(TypeError, match="TimelineConfig"):
        with use_timeline({"window_s": 1.0}):
            pass


def test_simulation_config_rejects_bad_timeline():
    with pytest.raises(TypeError, match="TimelineConfig"):
        SimulationConfig(timeline={"window_s": 1.0})


@pytest.mark.parametrize(
    "kwargs",
    [
        {"window_s": 0.0},
        {"window_s": -1.0},
        {"target_windows": 0},
        {"max_windows": 0},
        {"tail_k": 0},
        {"reservoir_size": 0},
    ],
)
def test_timeline_config_validates(kwargs):
    with pytest.raises(ValueError):
        TimelineConfig(**kwargs)


# -- section shape ------------------------------------------------------


def test_section_series_shapes_agree():
    section = _simulate().timeline
    n_windows, n_servers = section["n_windows"], section["n_servers"]
    for key in ("bytes", "busy_s", "queue_depth"):
        arr = np.asarray(section[key])
        assert arr.shape == (n_windows, n_servers)
        assert (arr >= 0).all()
    assert len(section["latency"]) == n_windows
    counts = sum(row["count"] for row in section["latency"])
    assert counts == section["n_requests"] == 300


def test_bytes_series_conserves_server_bytes():
    result = _simulate()
    total = np.asarray(result.timeline["bytes"]).sum()
    assert np.isclose(total, result.server_bytes.sum())


def test_windowed_latency_percentiles_present():
    section = _simulate().timeline
    populated = [r for r in section["latency"] if r["count"]]
    assert populated
    for row in populated:
        assert row["p50"] <= row["p95"] <= row["p99"]
        assert row["t_start"] < row["t_end"]


def test_explicit_window_width_and_max_windows_clipping():
    # A microscopic window with a tiny cap: everything past the cap must
    # fold into the last window and be counted, never dropped.
    result = _simulate(
        timeline=TimelineConfig(window_s=0.01, max_windows=4)
    )
    section = result.timeline
    assert section["n_windows"] == 4
    assert section["window_s"] == 0.01
    assert section["clipped_partitions"] > 0
    assert section["clipped_requests"] > 0
    assert np.isclose(
        np.asarray(section["bytes"]).sum(), result.server_bytes.sum()
    )


def test_sections_are_json_serializable():
    section = _simulate().timeline
    parsed = json.loads(json.dumps(section))
    assert parsed["n_requests"] == section["n_requests"]


# -- tail attribution ---------------------------------------------------


def test_exemplar_components_sum_to_latency():
    section = _simulate(
        stragglers=StragglerInjector.intensive()
    ).timeline
    exemplars = section["tail"]["exemplars"]
    assert len(exemplars) == section["tail"]["k"]
    for e in exemplars:
        c = e["components"]
        total = (
            c["queueing_s"] + c["straggling_s"] + c["transfer_s"] + c["join_s"]
        )
        assert total == pytest.approx(e["latency_s"], rel=1e-9, abs=1e-12)
        assert any(p["critical"] for p in e["partitions"])
        assert e["parallelism"] == len(e["partitions"])


def test_attribution_components_sum_to_mean_tail_latency():
    att = _simulate(
        stragglers=StragglerInjector.intensive()
    ).timeline["tail"]["attribution"]
    total = (
        att["queueing_s"]
        + att["straggling_s"]
        + att["transfer_s"]
        + att["join_s"]
    )
    assert total == pytest.approx(att["mean_tail_latency_s"], rel=1e-9)
    # 300 requests minus the config's default 10% warmup skip.
    assert att["requests"] == 270


def test_straggler_component_larger_with_stragglers_on():
    """The fig19 acceptance angle: injected stragglers must surface as a
    strictly larger straggling component than a stragglers-off run."""
    on = _simulate(stragglers=StragglerInjector.intensive()).timeline
    off = _simulate(stragglers=StragglerInjector.none()).timeline
    s_on = on["tail"]["attribution"]["straggling_s"]
    s_off = off["tail"]["attribution"]["straggling_s"]
    assert s_on > s_off == 0.0
    assert any(e["straggled"] for e in on["tail"]["exemplars"])


def test_warmup_fraction_skips_head_of_trace():
    result = _simulate(warmup_fraction=0.5)
    tail = result.timeline["tail"]
    assert tail["warmup_skipped"] == 150
    assert tail["attribution"]["requests"] == 150
    assert all(e["req"] >= 150 for e in tail["exemplars"])


def test_miss_flag_reaches_exemplars():
    trace, policy, cluster = _scenario()
    config = SimulationConfig(
        discipline="ps",
        jitter="deterministic",
        seed=1,
        cache_budget=25 * 1024 * 1024,  # room for ~one 20 MB file
        miss_penalty=5.0,
        timeline=TimelineConfig(),
    )
    result = simulate_reads(trace, policy, cluster, config)
    exemplars = result.timeline["tail"]["exemplars"]
    # A 5x penalty pushes missed requests into the slowest-K reservoir.
    assert any(e["missed"] for e in exemplars)
    # The miss penalty lands after the join, so the join component
    # carries it.
    assert result.timeline["tail"]["attribution"]["join_s"] > 0


# -- determinism --------------------------------------------------------


def test_identical_runs_produce_byte_identical_sections():
    a = _simulate(stragglers=StragglerInjector.intensive()).timeline
    b = _simulate(stragglers=StragglerInjector.intensive()).timeline
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


# -- rendering helpers --------------------------------------------------


def test_sparkline_spans_blocks():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0]) == "▁▁"
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"


def test_timeline_series_rows_cover_each_series():
    section = _simulate().timeline
    rows = timeline_series_rows(section)
    names = [r["series"] for r in rows]
    assert "bytes/window" in names
    assert "p99 latency (s)" in names
    for row in rows:
        assert len(row["spark"]) == section["n_windows"]
        assert row["min"] <= row["max"]


def test_tail_attribution_rows_share_sums_to_100():
    section = _simulate().timeline
    rows = tail_attribution_rows(section)
    assert [r["component"] for r in rows] == [
        "queueing", "straggling", "transfer", "join",
    ]
    assert sum(r["share_pct"] for r in rows) == pytest.approx(100.0)


def test_chrome_counter_events_shape():
    section = _simulate().timeline
    events = chrome_counter_events([section])
    meta = [e for e in events if e["ph"] == "M"]
    counters = [e for e in events if e["ph"] == "C"]
    assert len(meta) == 1
    assert meta[0]["args"]["name"] == "repro.simtime"
    assert len(counters) == 3 * section["n_windows"]
    assert all(e["pid"] == 2 for e in counters)
    assert chrome_counter_events([]) == []


# -- degenerate runs ----------------------------------------------------


def test_zero_request_run_finalizes_empty_section():
    from repro.workloads.arrivals import ArrivalTrace

    trace, policy, cluster = _scenario()
    empty = ArrivalTrace(np.empty(0), np.empty(0, dtype=np.int64))
    result = simulate_reads(
        empty,
        policy,
        cluster,
        SimulationConfig(
            discipline="ps",
            jitter="deterministic",
            seed=0,
            timeline=TimelineConfig(),
        ),
    )
    section = result.timeline
    assert section["n_requests"] == 0
    assert section["n_windows"] == 0
    assert section["tail"]["exemplars"] == []
    json.dumps(section)  # still serializable


def test_custom_discipline_without_partition_hooks_charges_join():
    """A discipline that never records partitions still yields a valid
    section — attribution charges everything to the join component."""
    from repro.cluster import register_discipline
    from repro.cluster.engine.registry import _REGISTRY

    class Flat:
        name = "flatjoin"

        def run(self, lc):
            latencies = np.full(lc.n_requests, 2.0)
            server_bytes = np.zeros(lc.cluster.n_servers)
            return lc.result(latencies, server_bytes)

    register_discipline("flatjoin", Flat)
    try:
        trace, policy, cluster = _scenario()
        result = simulate_reads(
            trace,
            policy,
            cluster,
            SimulationConfig(discipline="flatjoin", timeline=TimelineConfig()),
        )
    finally:
        _REGISTRY.pop("flatjoin", None)
    att = result.timeline["tail"]["attribution"]
    assert att["join_s"] == pytest.approx(att["mean_tail_latency_s"])
    assert att["queueing_s"] == att["transfer_s"] == att["straggling_s"] == 0.0
