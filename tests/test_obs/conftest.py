"""Observability tests run against a clean registry and a no-op tracer."""

from __future__ import annotations

import pytest

from repro.obs import NullSink, Tracer, reset_registry, set_tracer


@pytest.fixture(autouse=True)
def clean_observability():
    """Reset the process-wide registry and tracer around every test.

    Instrumented modules (simulator, store workers) write to the global
    singletons, so without this fixture counts would leak across cases.
    """
    reset_registry()
    previous = set_tracer(Tracer(NullSink()))
    yield
    set_tracer(previous)
    reset_registry()
