"""OpenMetrics exposition: rendering, parse-checking, and rate derivation."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    SnapshotDeltaSource,
    parse_openmetrics,
    render_openmetrics,
    render_snapshot_openmetrics,
    snapshots_to_openmetrics,
    timeline_rates,
)
from repro.obs.export import (
    escape_label_value,
    mangle_label_name,
    mangle_metric_name,
)


def _registry():
    reg = MetricsRegistry()
    reg.counter("sim.requests", scheme="sp-cache").inc(10)
    reg.counter("sim.requests", scheme="ec-cache").inc(4)
    reg.gauge("slo.budget_remaining", objective="p99").set(0.75)
    h = reg.histogram("read.latency", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    return reg


class TestMangling:
    def test_metric_name_charset(self):
        assert mangle_metric_name("sim.requests") == "sim_requests"
        assert mangle_metric_name("a-b c%d") == "a_b_c_d"
        # Leading digit gets prefixed to stay a valid identifier.
        assert mangle_metric_name("9lives")[0] != "9"

    def test_label_name_charset(self):
        assert mangle_label_name("worker-id") == "worker_id"

    def test_label_value_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"


class TestRenderOpenmetrics:
    def test_exposition_is_parse_clean(self):
        text = render_openmetrics(_registry())
        families = parse_openmetrics(text)
        assert families["sim_requests"]["type"] == "counter"
        assert families["slo_budget_remaining"]["type"] == "gauge"
        assert families["read_latency"]["type"] == "histogram"

    def test_counter_values_and_labels(self):
        text = render_openmetrics(_registry())
        assert 'sim_requests_total{scheme="sp-cache"} 10' in text
        assert 'sim_requests_total{scheme="ec-cache"} 4' in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_cumulative(self):
        text = render_openmetrics(_registry())
        assert 'read_latency_bucket{le="0.1"} 1' in text
        assert 'read_latency_bucket{le="1"} 2' in text
        assert 'read_latency_bucket{le="10"} 3' in text
        assert 'read_latency_bucket{le="+Inf"} 4' in text
        assert "read_latency_count 4" in text

    def test_prefix_filter(self):
        text = render_openmetrics(_registry(), prefix="sim.")
        assert "sim_requests_total" in text
        assert "read_latency" not in text

    def test_weird_label_values_round_trip(self):
        reg = MetricsRegistry()
        weird = 'sp,cache="we\nird"\\'
        reg.counter("c", scheme=weird).inc(3)
        families = parse_openmetrics(render_openmetrics(reg))
        (sample,) = families["c"]["samples"]
        _name, labels, value = sample
        assert labels["scheme"] == weird
        assert value == 3.0


class TestRenderSnapshot:
    def test_scalars_render_as_unknown(self):
        snap = {"sim.requests{scheme=sp-cache}": 42.0, "note": "skip me"}
        text = render_snapshot_openmetrics(snap)
        families = parse_openmetrics(text)
        assert families["sim_requests"]["type"] == "unknown"
        assert "note" not in text

    def test_histogram_dicts_render_as_summary(self):
        snap = {
            "read.latency": {
                "count": 4, "sum": 55.55, "p50": 0.5, "p95": 5.0, "p99": 50.0,
            }
        }
        families = parse_openmetrics(render_snapshot_openmetrics(snap))
        fam = families["read_latency"]
        assert fam["type"] == "summary"
        quantiles = {
            labels.get("quantile"): value
            for _name, labels, value in fam["samples"]
        }
        assert quantiles["0.5"] == 0.5 and quantiles["0.99"] == 50.0

    def test_extra_labels_land_on_every_sample(self):
        snap = {"sim.requests{scheme=sp-cache}": 1.0}
        text = render_snapshot_openmetrics(
            snap, extra_labels={"experiment": "fig13"}
        )
        assert 'experiment="fig13"' in text
        parse_openmetrics(text)

    def test_snapshots_to_openmetrics(self):
        snapshots = {
            "sp-cache": {
                "scheme": "sp-cache", "engine": "ps", "requests": 300,
                "imbalance_eta": 1.2,
            }
        }
        families = parse_openmetrics(snapshots_to_openmetrics(snapshots))
        (sample,) = families["sim_requests"]["samples"]
        _name, labels, value = sample
        assert labels == {"engine": "ps", "scheme": "sp-cache"}
        assert value == 300.0


class TestParseOpenmetrics:
    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE x counter\nx_total 1\n")

    @pytest.mark.parametrize(
        "line",
        [
            "not a metric line at all!",
            'x{bad labels} 1',
            "x one_point_five",
        ],
    )
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(ValueError):
            parse_openmetrics(f"# TYPE x unknown\n{line}\n# EOF\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="type"):
            parse_openmetrics("# TYPE x wat\n# EOF\n")


class TestSnapshotDeltaSource:
    def test_sim_time_rates(self):
        src = SnapshotDeltaSource(clock=None)
        first = src.delta({"sim.requests": 0.0}, t=0.0)
        assert first["rates"] == {} and first["dt"] == 0.0
        window = src.delta({"sim.requests": 58.0}, t=10.0)
        assert window["dt"] == 10.0
        assert window["rates"]["sim.requests"] == pytest.approx(5.8)

    def test_registry_source_and_wall_clock(self):
        reg = _registry()
        ticks = iter([0.0, 2.0])
        src = SnapshotDeltaSource(reg, clock=lambda: next(ticks))
        src.delta()
        reg.counter("sim.requests", scheme="sp-cache").inc(6)
        window = src.delta()
        key = "sim.requests{scheme=sp-cache}"
        assert window["rates"][key] == pytest.approx(3.0)

    def test_histogram_contributes_count_and_sum_rates(self):
        src = SnapshotDeltaSource(clock=None)
        src.delta({"h": {"count": 0, "sum": 0.0}}, t=0.0)
        window = src.delta({"h": {"count": 10, "sum": 5.0}}, t=5.0)
        assert window["rates"]["h.count"] == pytest.approx(2.0)
        assert window["rates"]["h.sum"] == pytest.approx(1.0)

    def test_decrease_clamps_to_zero(self):
        src = SnapshotDeltaSource(clock=None)
        src.delta({"c": 100.0}, t=0.0)
        window = src.delta({"c": 3.0}, t=1.0)  # registry reset mid-run
        assert window["rates"]["c"] == 0.0

    def test_non_increasing_t_raises(self):
        src = SnapshotDeltaSource(clock=None)
        src.delta({"c": 0.0}, t=5.0)
        with pytest.raises(ValueError, match="non-increasing"):
            src.delta({"c": 1.0}, t=5.0)

    def test_bad_source_type_raises(self):
        with pytest.raises(TypeError):
            SnapshotDeltaSource(source=42)


class TestTimelineRates:
    def test_rows_from_section(self):
        section = {
            "window_s": 2.0,
            "bytes": [[10.0, 30.0], [0.0, 0.0]],
        }
        rows = timeline_rates(section)
        assert rows[0]["bytes_per_s"] == pytest.approx(20.0)
        assert rows[0]["peak_server_bytes_per_s"] == pytest.approx(15.0)
        assert rows[0]["peak_share"] == pytest.approx(0.75)
        assert rows[1]["peak_share"] == 0.0

    def test_empty_or_windowless_section(self):
        assert timeline_rates({}) == []
        assert timeline_rates({"window_s": 0.0, "bytes": [[1.0]]}) == []
