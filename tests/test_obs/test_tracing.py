"""Tracer/sink behavior: no-op default, ring capacity, JSONL validity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import (
    FileSink,
    NullSink,
    RingBufferSink,
    Tracer,
    get_tracer,
    iter_trace,
    set_tracer,
    use_tracer,
)


class TestNullDefault:
    def test_default_tracer_is_disabled(self):
        assert Tracer().enabled is False
        assert get_tracer().enabled is False  # fixture installs a NullSink

    def test_disabled_event_is_a_noop(self):
        t = Tracer(NullSink())
        t.event("read", ts=1.0, file_id=3)  # must not raise or allocate sink state

    def test_disabled_span_still_runs_body(self):
        t = Tracer(NullSink())
        ran = False
        with t.span("work"):
            ran = True
        assert ran


class TestRingBufferSink:
    def test_keeps_most_recent_records(self):
        sink = RingBufferSink(capacity=3)
        t = Tracer(sink)
        for i in range(5):
            t.event("e", ts=float(i), i=i)
        assert len(sink) == 3
        assert [r["i"] for r in sink.records] == [2, 3, 4]

    def test_clear(self):
        sink = RingBufferSink(capacity=3)
        Tracer(sink).event("e", ts=0.0)
        sink.clear()
        assert len(sink) == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestFileSink:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with FileSink(str(path)) as sink:
            t = Tracer(sink)
            t.event("read", ts=0.5, file_id=7, servers=[1, 2])
            t.event("read_done", ts=0.9, latency=0.4)
        records = list(iter_trace(path))
        assert sink.n_records == 2
        assert records[0] == {
            "event": "read", "ts": 0.5, "file_id": 7, "servers": [1, 2]
        }
        assert records[1]["latency"] == 0.4

    def test_numpy_values_coerced_to_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with FileSink(str(path)) as sink:
            Tracer(sink).event(
                "e",
                ts=np.float64(1.25),
                n=np.int64(3),
                sizes=np.array([1.0, 2.0]),
            )
        # Every line must be plain JSON — no numpy reprs.
        (record,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert record == {"event": "e", "ts": 1.25, "n": 3, "sizes": [1.0, 2.0]}

    def test_unserializable_field_raises(self, tmp_path):
        with FileSink(str(tmp_path / "t.jsonl")) as sink:
            with pytest.raises(TypeError, match="not JSON serializable"):
                Tracer(sink).event("e", ts=0.0, bad=object())


class TestSpansAndGlobals:
    def test_span_records_wall_time(self):
        sink = RingBufferSink()
        with Tracer(sink).span("scale_search", mode="sweep"):
            pass
        (record,) = sink.records
        assert record["event"] == "scale_search"
        assert record["mode"] == "sweep"
        assert record["wall_s"] >= 0.0

    def test_span_emits_even_on_exception(self):
        sink = RingBufferSink()
        with pytest.raises(RuntimeError):
            with Tracer(sink).span("work"):
                raise RuntimeError("boom")
        assert len(sink) == 1

    def test_use_tracer_restores_previous(self):
        before = get_tracer()
        ring = Tracer(RingBufferSink())
        with use_tracer(ring) as active:
            assert active is ring
            assert get_tracer() is ring
        assert get_tracer() is before

    def test_set_tracer_returns_previous(self):
        before = get_tracer()
        ring = Tracer(RingBufferSink())
        assert set_tracer(ring) is before
        assert set_tracer(before) is ring


class TestHeadSamplingSink:
    def _records(self, n=20):
        out = []
        for req in range(n):
            out.append({"event": "read", "req": req, "ts": float(req)})
            out.append({"event": "read_done", "req": req, "latency": 0.1})
        return out

    def test_keeps_one_in_n_pairs(self):
        from repro.obs import HeadSamplingSink

        ring = RingBufferSink()
        sink = HeadSamplingSink(ring, every=5)
        for record in self._records(20):
            sink.emit(record)
        kept = list(ring.records)
        assert [r["req"] for r in kept if r["event"] == "read"] == [0, 5, 10, 15]
        # Both halves of each sampled pair survive together.
        assert [r["req"] for r in kept if r["event"] == "read_done"] == [
            0, 5, 10, 15,
        ]
        assert sink.n_sampled_out == 32

    def test_non_request_events_always_pass(self):
        from repro.obs import HeadSamplingSink

        ring = RingBufferSink()
        sink = HeadSamplingSink(ring, every=1000)
        sink.emit({"event": "simulation_end", "scheme": "sp"})
        sink.emit({"event": "span", "name": "x", "wall_s": 0.0})
        sink.emit({"event": "read", "req": 7})  # sampled out
        assert [r["event"] for r in ring.records] == ["simulation_end", "span"]

    def test_every_one_forwards_everything(self):
        from repro.obs import HeadSamplingSink

        ring = RingBufferSink()
        sink = HeadSamplingSink(ring, every=1)
        for record in self._records(5):
            sink.emit(record)
        assert len(ring) == 10
        assert sink.n_sampled_out == 0

    def test_rejects_non_positive_every(self):
        from repro.obs import HeadSamplingSink

        with pytest.raises(ValueError):
            HeadSamplingSink(RingBufferSink(), every=0)

    def test_delegates_path_and_records_to_file_sink(self, tmp_path):
        from repro.obs import HeadSamplingSink

        path = tmp_path / "sampled.jsonl"
        with HeadSamplingSink(FileSink(path), every=2) as sink:
            for record in self._records(10):
                sink.emit(record)
            assert str(sink.path) == str(path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == sink.n_records == 10  # 5 pairs of 2
        assert all(r["req"] % 2 == 0 for r in lines)
