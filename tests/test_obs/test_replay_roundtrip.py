"""Trace round-trip: write events → replay → in-process numbers, exactly.

This pins the ISSUE's acceptance criterion: a traced run's JSONL is
sufficient to reconstruct each scheme's per-server load vector, and the
imbalance factor computed from the replayed loads equals the one computed
in-process from ``SimulationResult.server_bytes``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SimulationConfig, imbalance_factor, simulate_reads
from repro.obs import (
    FileSink,
    RingBufferSink,
    Tracer,
    event_counts,
    latency_samples,
    load_timeline,
    per_server_loads,
    trace_summary,
)
from repro.policies import ECCachePolicy, SPCachePolicy
from repro.workloads import poisson_trace


@pytest.fixture
def workload(small_population, paper_cluster):
    trace = poisson_trace(small_population, n_requests=400, seed=3)
    policies = [
        SPCachePolicy(small_population, paper_cluster, seed=0),
        ECCachePolicy(small_population, paper_cluster, seed=0),
    ]
    return trace, policies, paper_cluster


def run_traced(trace, policies, cluster, sink, discipline):
    results = {}
    for policy in policies:
        config = SimulationConfig(
            discipline=discipline,
            jitter="deterministic",
            seed=2,
            tracer=Tracer(sink),
        )
        results[policy.name] = simulate_reads(trace, policy, cluster, config)
    return results


@pytest.mark.parametrize("discipline", ["fifo", "ps"])
def test_replayed_loads_match_in_process(workload, discipline):
    trace, policies, cluster = workload
    sink = RingBufferSink(capacity=100_000)
    results = run_traced(trace, policies, cluster, sink, discipline)

    loads = per_server_loads(sink)
    assert set(loads) == set(results)
    for scheme, result in results.items():
        assert loads[scheme].shape == result.server_bytes.shape
        np.testing.assert_allclose(loads[scheme], result.server_bytes)


@pytest.mark.parametrize("discipline", ["fifo", "ps"])
def test_replayed_eta_matches_imbalance_factor(workload, discipline):
    trace, policies, cluster = workload
    sink = RingBufferSink(capacity=100_000)
    results = run_traced(trace, policies, cluster, sink, discipline)

    rows = {row["scheme"]: row for row in trace_summary(sink)}
    for scheme, result in results.items():
        expected = imbalance_factor(result.server_bytes)
        assert rows[scheme]["eta"] == pytest.approx(expected, rel=1e-12)
        assert rows[scheme]["requests"] == result.n_requests
        assert rows[scheme]["bytes_served"] == pytest.approx(
            float(result.server_bytes.sum())
        )


def test_file_and_ring_sinks_replay_identically(workload, tmp_path):
    """JSONL encode/decode must not change the reconstruction."""
    trace, policies, cluster = workload
    ring = RingBufferSink(capacity=100_000)
    run_traced(trace, policies, cluster, ring, "fifo")

    path = tmp_path / "trace.jsonl"
    with FileSink(str(path)) as fsink:
        run_traced(trace, policies, cluster, fsink, "fifo")

    from_ring = per_server_loads(ring)
    from_file = per_server_loads(str(path))
    assert set(from_ring) == set(from_file)
    for scheme in from_ring:
        np.testing.assert_allclose(from_ring[scheme], from_file[scheme])


def test_latency_samples_and_event_counts(workload):
    trace, policies, cluster = workload
    sink = RingBufferSink(capacity=100_000)
    results = run_traced(trace, policies, cluster, sink, "fifo")

    counts = event_counts(sink)
    n_schemes = len(results)
    assert counts["read"] == trace.n_requests * n_schemes
    assert counts["read_done"] == trace.n_requests * n_schemes
    assert counts["simulation_end"] == n_schemes

    lats = latency_samples(sink)
    for scheme, result in results.items():
        assert lats[scheme].size == result.n_requests
        np.testing.assert_allclose(np.sort(lats[scheme]),
                                   np.sort(result.latencies))


def test_load_timeline_buckets_sum_to_total(workload):
    trace, policies, cluster = workload
    sink = RingBufferSink(capacity=100_000)
    results = run_traced(trace, policies, cluster, sink, "fifo")

    timeline = load_timeline(sink, n_buckets=8)
    for scheme, result in results.items():
        edges, loads = timeline[scheme]
        assert edges.shape == (9,)
        assert loads.shape == (8, cluster.n_servers)
        np.testing.assert_allclose(loads.sum(axis=0), result.server_bytes)


def test_trailing_idle_servers_survive_replay(small_population):
    """simulation_end carries n_servers, so a scheme that never touched the
    last servers still reconstructs a full-width load vector (exact eta)."""
    from repro.common import ClusterSpec, Gbps
    from repro.policies import SingleCopyPolicy

    cluster = ClusterSpec(n_servers=37, bandwidth=Gbps)
    policy = SingleCopyPolicy(small_population, cluster, seed=0)
    trace = poisson_trace(small_population, n_requests=50, seed=4)
    sink = RingBufferSink()
    result = simulate_reads(
        trace, policy, cluster,
        SimulationConfig(discipline="fifo", seed=2, tracer=Tracer(sink)),
    )
    (load,) = per_server_loads(sink).values()
    assert load.size == 37
    np.testing.assert_allclose(load, result.server_bytes)


class TestReplayTolerance:
    """Unknown kinds and malformed lines are skipped, never fatal."""

    def test_iter_trace_skips_garbage_lines(self, tmp_path):
        from repro.obs import iter_trace

        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"event": "read", "ts": 0.0}\n'
            "\n"
            "{broken json\n"
            '["a", "list"]\n'
            '{"event": "read_done", "ts": 1.0}\n'
        )
        records = list(iter_trace(path))
        assert [r["event"] for r in records] == ["read", "read_done"]

    def test_unknown_events_counts_unrecognized_kinds(self):
        from repro.obs import KNOWN_EVENTS, unknown_events

        source = [
            {"event": "read", "ts": 0.0},
            {"event": "future_thing"},
            {"event": "future_thing"},
            {"ts": 3.0},  # no event name at all
            {"event": "span", "name": "x"},
        ]
        assert unknown_events(source) == {"?": 1, "future_thing": 2}
        assert "read" in KNOWN_EVENTS and "span" in KNOWN_EVENTS

    def test_replay_ignores_unknown_and_partial_records(self, workload):
        """Foreign records interleaved with a real trace change nothing."""
        from repro.obs import unknown_events

        trace, policies, cluster = workload
        sink = RingBufferSink(capacity=100_000)
        results = run_traced(trace, policies, cluster, sink, "fifo")
        polluted = list(sink.records) + [
            {"event": "future_thing", "ts": 0.5, "servers": [0]},
            {"event": "read"},  # missing ts/servers/sizes
            {"event": "read_done", "scheme": "sp-cache"},  # missing latency
        ]
        loads = per_server_loads(polluted)
        for scheme, result in results.items():
            np.testing.assert_allclose(loads[scheme], result.server_bytes)
        lats = latency_samples(polluted)
        for scheme, result in results.items():
            assert lats[scheme].size == result.n_requests
        assert unknown_events(polluted) == {"future_thing": 1}
