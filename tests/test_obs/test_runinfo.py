"""Run manifests: build/validate/write/load round-trip and schema gates."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    collect_spans,
    config_hash,
    git_sha,
    load_manifest,
    load_manifest_dir,
    span,
    validate_manifest,
    write_manifest,
)


def _manifest(**overrides):
    base = build_manifest(
        "figX",
        [{"k": 1, "v": 2.5}],
        wall_s=1.25,
        scale=0.5,
        seed=23,
        config={"experiment": "figX", "scale": 0.5},
        metrics={"requests": 10},
    )
    base.update(overrides)
    return base


def test_build_manifest_shape():
    m = _manifest()
    assert m["schema_version"] == MANIFEST_SCHEMA_VERSION
    assert m["experiment"] == "figX"
    assert m["wall_s"] == 1.25
    assert m["rows"] == [{"k": 1, "v": 2.5}]
    assert m["config_hash"] == config_hash({"experiment": "figX", "scale": 0.5})
    assert m["created_unix"] > 0
    assert validate_manifest(m) is m


def test_git_sha_in_this_checkout():
    sha = git_sha()
    assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


def test_config_hash_is_order_independent():
    a = config_hash({"x": 1, "y": [1, 2]})
    b = config_hash({"y": [1, 2], "x": 1})
    assert a == b
    assert a != config_hash({"x": 2, "y": [1, 2]})


def test_build_manifest_accepts_span_records():
    with collect_spans() as collector:
        with span("root"):
            with span("leaf"):
                pass
    m = build_manifest("figY", [], wall_s=0.0, spans=collector.records)
    assert [s["name"] for s in m["spans"]] == ["leaf", "root"]
    assert all("span_id" in s and "wall_s" in s for s in m["spans"])


def test_write_and_load_roundtrip(tmp_path):
    m = _manifest()
    path = write_manifest(m, tmp_path / "figX.json")
    loaded = load_manifest(path)
    assert loaded == json.loads(json.dumps(m, default=str))


@pytest.mark.parametrize(
    "overrides",
    [
        {"schema_version": 99},
        {"wall_s": -1.0},
        {"rows": ["not a dict"]},
        {"spans": [{"name": "x"}]},  # missing wall_s
        {"spans": [{"name": "x", "wall_s": -0.1}]},
        {"config": "not a dict"},
        {"experiment": 7},
        {"timelines": "not a list"},
        {"timelines": [{"no": "scheme"}]},
        {"popularity": "not a list"},
        {"popularity": [{"no": "scheme"}]},
        {"slo": "not a list"},
        {"slo": [{"no": "scheme"}]},
        {"causal": "not a list"},
        {"causal": [{"no": "scheme"}]},
        {"membership": "not a list"},
        {"membership": [{"no": "epochs"}]},
        {"peak_rss_bytes": "big"},
        {"peak_rss_bytes": -1},
        {"total_requests": -5},
        {"total_requests": 1.5},
    ],
)
def test_validate_rejects_bad_manifests(overrides):
    with pytest.raises(ValueError):
        validate_manifest(_manifest(**overrides))


def test_v2_manifest_requires_timelines_key():
    m = _manifest()
    del m["timelines"]
    with pytest.raises(ValueError, match="timelines"):
        validate_manifest(m)


def test_v1_manifest_without_timelines_still_loads():
    """Old manifests written before the timelines key keep validating."""
    m = _manifest()
    m["schema_version"] = 1
    del m["timelines"]
    assert validate_manifest(m) is m


def test_build_manifest_carries_timeline_sections():
    section = {"scheme": "sp-cache", "engine": "ps", "n_windows": 3}
    m = build_manifest("figZ", [], wall_s=0.0, timelines=[section])
    assert m["timelines"] == [section]
    assert m["schema_version"] == MANIFEST_SCHEMA_VERSION == 7


def test_build_manifest_carries_causal_sections():
    section = {
        "scheme": "sp-cache",
        "engine": "fifo",
        "conservation": {"ok": True, "max_rel_err": 0.0},
    }
    m = build_manifest("figZ", [], wall_s=0.0, causal=[section])
    assert m["causal"] == [section]
    assert validate_manifest(m) is m


def test_v5_manifest_without_causal_still_loads():
    """Manifests written before the causal key keep validating."""
    m = _manifest()
    m["schema_version"] = 5
    del m["causal"]
    del m["membership"]
    assert validate_manifest(m) is m


def test_build_manifest_carries_membership_sections():
    section = {
        "scheme": "sp-cache",
        "n_epochs": 2,
        "epochs": [{"epoch": 0, "n_servers": 4}, {"epoch": 1, "n_servers": 5}],
    }
    m = build_manifest("figZ", [], wall_s=0.0, membership=[section])
    assert m["membership"] == [section]
    assert validate_manifest(m) is m


def test_v6_manifest_without_membership_still_loads():
    """Manifests written before the membership key keep validating."""
    m = _manifest()
    m["schema_version"] = 6
    del m["membership"]
    assert validate_manifest(m) is m


def test_build_manifest_carries_slo_sections():
    section = {"scheme": "sp-cache", "engine": "fifo", "breaches": 2}
    m = build_manifest("figZ", [], wall_s=0.0, slo=[section])
    assert m["slo"] == [section]
    assert validate_manifest(m) is m


def test_v4_manifest_without_slo_still_loads():
    """Manifests written before the slo key keep validating."""
    m = _manifest()
    m["schema_version"] = 4
    del m["slo"]
    assert validate_manifest(m) is m


def test_build_manifest_carries_popularity_sections():
    section = {"scheme": "sp-cache", "engine": "fifo", "requests": 100}
    m = build_manifest("figZ", [], wall_s=0.0, popularity=[section])
    assert m["popularity"] == [section]
    assert validate_manifest(m) is m


def test_v2_manifest_without_popularity_still_loads():
    """Manifests written before the popularity key keep validating."""
    m = _manifest()
    m["schema_version"] = 2
    del m["popularity"]
    del m["peak_rss_bytes"]
    del m["total_requests"]
    assert validate_manifest(m) is m


def test_v3_manifest_without_resource_fields_still_loads():
    """Manifests written before peak RSS / request totals keep validating."""
    m = _manifest()
    m["schema_version"] = 3
    del m["peak_rss_bytes"]
    del m["total_requests"]
    assert validate_manifest(m) is m


def test_manifest_records_peak_rss_and_total_requests():
    m = build_manifest(
        "figR",
        [],
        wall_s=0.0,
        metrics={
            "sim.requests{scheme=sp-cache,engine=fifo}": 400.0,
            "sim.requests{scheme=ec-cache,engine=ps}": 250.0,
            "sim.reads{scheme=sp-cache,engine=fifo}": 4000.0,
        },
    )
    assert m["total_requests"] == 650
    # This process certainly has pages resident on Linux/macOS.
    assert m["peak_rss_bytes"] is None or m["peak_rss_bytes"] > 0


def test_manifest_resource_field_overrides():
    m = build_manifest(
        "figR", [], wall_s=0.0, peak_rss=123456, total_requests=9
    )
    assert m["peak_rss_bytes"] == 123456
    assert m["total_requests"] == 9


def test_validate_rejects_missing_key():
    m = _manifest()
    del m["config_hash"]
    with pytest.raises(ValueError, match="config_hash"):
        validate_manifest(m)


def test_load_manifest_dir_skips_foreign_json(tmp_path):
    write_manifest(_manifest(), tmp_path / "figX.json")
    (tmp_path / "BENCH_x.json").write_text('{"wall_seconds": {}}')
    (tmp_path / "broken.json").write_text("{nope")
    manifests, skipped = load_manifest_dir(tmp_path)
    assert list(manifests) == ["figX"]
    assert sorted(skipped) == ["BENCH_x.json", "broken.json"]
