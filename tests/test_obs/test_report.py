"""Report rendering and the manifest regression diff."""

from __future__ import annotations

import copy

import pytest

from repro.obs import build_manifest
from repro.obs.report import diff_manifests, render_diff, render_report


def _manifests(**kwargs):
    m = build_manifest(
        "figX",
        [{"n": 100, "eta": 1.5}, {"n": 200, "eta": 1.2}],
        wall_s=2.0,
        scale=0.5,
        seed=23,
        config={"experiment": "figX"},
        spans=[
            {"name": "experiment", "span_id": 1, "parent": None,
             "start": 0.0, "wall_s": 2.0},
            {"name": "scale_search", "span_id": 2, "parent": 1,
             "start": 0.1, "wall_s": 1.4},
        ],
        metrics={"requests": 400, "sim.latency": {"p95": 0.25}},
        **kwargs,
    )
    return {"figX": m}


def test_render_report_markdown():
    text = render_report(_manifests())
    assert text.startswith("# Experiment report")
    assert "## figX" in text
    assert "| n | eta |" in text
    assert "scale_search" in text  # span table present
    assert "| figX | 2 |" in text  # summary row: 2 rows


def test_render_report_empty():
    assert "no manifests" in render_report({})


def test_summary_surfaces_rss_and_throughput():
    """Schema-v4 resource fields (recorded since they landed, never
    displayed) now show up as summary columns."""
    manifests = _manifests(peak_rss=256 * 1024 * 1024, total_requests=500)
    text = render_report(manifests)
    assert "peak_rss_mb" in text and "req_per_s" in text
    assert "| 256 |" in text  # 256 MiB
    assert "250" in text  # 500 requests / 2.0s wall


def test_summary_dashes_when_resources_absent():
    manifests = _manifests()
    for m in manifests.values():
        m["peak_rss_bytes"] = None
        m["total_requests"] = None
    text = render_report(manifests)
    assert "peak_rss_mb" in text


def test_report_renders_slo_subtable():
    manifests = _manifests(
        slo=[
            {
                "scheme": "sp-cache",
                "objectives": [
                    {
                        "name": "p99_latency", "met": False,
                        "bad_fraction": 0.5, "budget": 0.01,
                        "budget_remaining": -49.0, "breaches": 3,
                    }
                ],
            }
        ]
    )
    text = render_report(manifests)
    assert "SLOs (burn-rate evaluation):" in text
    assert "p99_latency" in text and "NO" in text


def test_report_skips_slo_subtable_when_absent():
    assert "SLOs" not in render_report(_manifests())


def test_identical_manifests_diff_clean():
    base = _manifests()
    assert diff_manifests(base, copy.deepcopy(base)) == []


def test_wall_time_regression_flagged():
    base = _manifests()
    new = copy.deepcopy(base)
    new["figX"]["wall_s"] = base["figX"]["wall_s"] * 2 + 1.0
    regs = diff_manifests(base, new)
    assert [r["kind"] for r in regs] == ["wall"]
    assert regs[0]["key"] == "wall_s"


def test_small_absolute_wall_growth_ignored():
    # +100 % but under the min_wall_s floor: timing noise, not a regression.
    base = _manifests()
    base["figX"]["wall_s"] = 0.1
    base["figX"]["spans"] = []
    new = copy.deepcopy(base)
    new["figX"]["wall_s"] = 0.2
    assert diff_manifests(base, new) == []
    assert diff_manifests(base, new, min_wall_s=0.05) != []


def test_span_wall_regression_flagged():
    base = _manifests()
    new = copy.deepcopy(base)
    new["figX"]["spans"][1]["wall_s"] = 5.0
    regs = diff_manifests(base, new)
    assert any(r["kind"] == "span_wall" and r["key"] == "scale_search"
               for r in regs)


def test_metric_drift_flagged_exactly():
    base = _manifests()
    new = copy.deepcopy(base)
    new["figX"]["rows"][0]["eta"] = 1.6
    new["figX"]["metrics"]["sim.latency"]["p95"] = 0.30
    regs = diff_manifests(base, new)
    keys = {r["key"] for r in regs}
    assert keys == {"rows[0].eta", "metrics.sim.latency.p95"}
    assert all(r["kind"] == "metric" for r in regs)


def test_timing_rows_use_wall_rule():
    # fig10-style manifests declare config.timing_rows: row values are
    # measured wall clock, so run-to-run jitter must not trip the gate.
    base = _manifests()
    base["figX"]["config"]["timing_rows"] = True
    new = copy.deepcopy(base)
    new["figX"]["rows"][0]["eta"] = 1.55  # +3 % "timing noise"
    assert diff_manifests(base, new) == []
    new["figX"]["rows"][0]["eta"] = 9.0  # way past tolerance and floor
    regs = diff_manifests(base, new)
    assert [r["kind"] for r in regs] == ["wall"]


def test_seconds_metrics_use_wall_rule():
    base = _manifests()
    base["figX"]["metrics"]["span.experiment.seconds"] = {"sum": 0.5}
    new = copy.deepcopy(base)
    new["figX"]["metrics"]["span.experiment.seconds"] = {"sum": 0.55}
    assert diff_manifests(base, new) == []


def test_missing_experiment_is_regression():
    regs = diff_manifests(_manifests(), {})
    assert [r["kind"] for r in regs] == ["missing"]


def test_absent_metric_is_regression():
    base = _manifests()
    new = copy.deepcopy(base)
    del new["figX"]["metrics"]["requests"]
    regs = diff_manifests(base, new)
    assert any(r["key"] == "metrics.requests" and r["new"] == "absent"
               for r in regs)


def test_negative_tolerances_rejected():
    with pytest.raises(ValueError):
        diff_manifests({}, {}, wall_tolerance=-1)


def test_render_diff_wording():
    assert "no regressions" in render_diff([], 1, 1)
    regs = [{"experiment": "figX", "kind": "wall", "key": "wall_s",
             "base": 1.0, "new": 3.0, "change": "+200%"}]
    text = render_diff(regs, 1, 1)
    assert "1 regression(s)" in text and "wall_s" in text
