"""Smoke test: disabled tracing costs < 10% on a 5k-request simulation.

The baseline is ``uninstrumented_fifo`` from ``benchmarks/bench_obs_overhead``
— a frozen copy of the pre-observability engine loop — so the ratio measures
exactly what the instrumentation added to the hot path (one hoisted
``tracer.enabled`` check per run plus two flag assignments per request).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

from repro.cluster.simulation import SimulationConfig, simulate_reads

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
BENCH = BENCH_DIR / "bench_obs_overhead.py"


def _load_module(name):
    spec = importlib.util.spec_from_file_location(
        name, BENCH_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault(name, module)
    spec.loader.exec_module(module)
    return module


def _load_bench():
    return _load_module("bench_obs_overhead")


def test_noop_sink_overhead_under_10_percent():
    bench = _load_bench()
    trace, policy, cluster = bench.overhead_workload(n_requests=5000)
    config = SimulationConfig(discipline="fifo", jitter="deterministic", seed=2)

    # Interleaved best-of-7 pairs (see paired_times) absorb CPU frequency
    # drift; retry once so a scheduler hiccup on a loaded box doesn't flake.
    for attempt in range(2):
        t_ref, t_noop = bench.paired_times(
            [
                lambda: bench.uninstrumented_fifo(
                    trace, policy, cluster, config
                ),
                lambda: simulate_reads(trace, policy, cluster, config),
            ]
        )
        ratio = t_noop / t_ref
        if ratio < 1.10:
            break
    assert ratio < 1.10, (
        f"no-op tracing overhead {100 * (ratio - 1):.1f}% exceeds the 10% "
        f"budget (reference {t_ref:.4f}s, instrumented {t_noop:.4f}s)"
    )


def test_enabled_popularity_overhead_under_5_percent():
    """Streaming popularity observation *on* (default 2048-request
    windows) must stay under the 5% budget quoted in
    ``docs/observability.md``: the hot path is one list append plus a
    window-boundary check, and server loads come from snapshot-diffing
    the engine's own byte vector (the bench records ~1.02x; retries
    absorb scheduler noise on loaded CI boxes)."""
    _load_bench()  # bench_popularity_overhead imports from it
    bench = _load_module("bench_popularity_overhead")
    # Scheduler noise only ever *inflates* the measured ratio, so the
    # best of a few attempts is the honest estimate of the real overhead.
    ratio = float("inf")
    for attempt in range(4):
        rows = bench.run_popularity_overhead(n_requests=5000, repeats=5)
        ratio = min(ratio, rows[1]["vs_off"])
        if ratio < 1.05:
            break
    assert ratio < 1.05, (
        f"enabled popularity overhead {100 * (ratio - 1):.1f}% exceeds "
        f"the 5% budget (off {rows[0]['seconds']:.4f}s, "
        f"on {rows[1]['seconds']:.4f}s)"
    )


def test_enabled_slo_overhead_under_5_percent():
    """SLO evaluation *on* (the default loose objectives) must stay
    under the 5% budget: the hot path is one miss-flag list append per
    request; window bucketing and burn-rate sums are a single vectorized
    finalize pass (the bench records ~1.01x; best-of retries absorb
    scheduler noise on loaded CI boxes)."""
    _load_bench()  # bench_slo_overhead imports from it
    bench = _load_module("bench_slo_overhead")
    ratio = float("inf")
    for attempt in range(4):
        rows = bench.run_slo_overhead(n_requests=5000, repeats=5)
        ratio = min(ratio, rows[1]["vs_off"])
        if ratio < 1.05:
            break
    assert ratio < 1.05, (
        f"enabled SLO overhead {100 * (ratio - 1):.1f}% exceeds the 5% "
        f"budget (off {rows[0]['seconds']:.4f}s, "
        f"on {rows[1]['seconds']:.4f}s)"
    )


def test_enabled_causal_overhead_under_5_percent():
    """Causal collection *on* must stay under the 5% budget: the hot
    path is the same buffered-append recorder interface the timeline
    collector uses; edge classification and the conservation check are
    one vectorized finalize pass (best-of retries absorb scheduler
    noise on loaded CI boxes)."""
    _load_bench()  # bench_causal_overhead imports from it
    bench = _load_module("bench_causal_overhead")
    ratio = float("inf")
    for attempt in range(4):
        rows = bench.run_causal_overhead(n_requests=5000, repeats=5)
        ratio = min(ratio, rows[1]["vs_off"])
        if ratio < 1.05:
            break
    assert ratio < 1.05, (
        f"enabled causal overhead {100 * (ratio - 1):.1f}% exceeds the 5% "
        f"budget (off {rows[0]['seconds']:.4f}s, "
        f"on {rows[1]['seconds']:.4f}s)"
    )


def test_enabled_timeline_overhead_under_budget():
    """Timelines *on* at the default window width must stay well inside
    the 25% enabled-path budget on the fig13-like PS workload (the bench
    records ~1.02x; the bound is generous to absorb CI noise)."""
    bench = _load_bench()
    for attempt in range(2):
        rows = bench.run_timeline_overhead(n_requests=2000, repeats=3)
        ratio = rows[-1]["vs_off"]
        if ratio < 1.25:
            break
    assert ratio < 1.25, (
        f"enabled timeline overhead {100 * (ratio - 1):.1f}% exceeds the "
        f"25% budget"
    )
