"""Population/trace persistence round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import paper_fileset, poisson_trace
from repro.workloads.io import (
    load_population,
    load_trace,
    save_population,
    save_trace,
    trace_from_csv,
    trace_to_csv,
)


def test_population_roundtrip(tmp_path):
    pop = paper_fileset(50, size_mb=40, zipf_exponent=1.1, total_rate=7.0)
    path = tmp_path / "pop.npz"
    save_population(path, pop)
    back = load_population(path)
    assert np.array_equal(back.sizes, pop.sizes)
    assert np.allclose(back.popularities, pop.popularities)
    assert back.total_rate == 7.0


def test_trace_roundtrip_npz(tmp_path):
    pop = paper_fileset(20, size_mb=10)
    trace = poisson_trace(pop, n_requests=500, seed=1)
    path = tmp_path / "trace.npz"
    save_trace(path, trace)
    back = load_trace(path)
    assert np.array_equal(back.times, trace.times)
    assert np.array_equal(back.file_ids, trace.file_ids)


def test_trace_roundtrip_csv(tmp_path):
    pop = paper_fileset(20, size_mb=10)
    trace = poisson_trace(pop, n_requests=200, seed=2)
    path = tmp_path / "trace.csv"
    trace_to_csv(path, trace)
    back = trace_from_csv(path)
    assert np.allclose(back.times, trace.times, atol=1e-8)
    assert np.array_equal(back.file_ids, trace.file_ids)


def test_wrong_magic_rejected(tmp_path):
    pop = paper_fileset(5, size_mb=1)
    pop_path = tmp_path / "pop.npz"
    save_population(pop_path, pop)
    with pytest.raises(ValueError):
        load_trace(pop_path)
    trace = poisson_trace(pop, n_requests=10, seed=0)
    trace_path = tmp_path / "trace.npz"
    save_trace(trace_path, trace)
    with pytest.raises(ValueError):
        load_population(trace_path)


def test_csv_without_header_rejected(tmp_path):
    bad = tmp_path / "bad.csv"
    bad.write_text("1,2\n3,4\n")
    with pytest.raises(ValueError):
        trace_from_csv(bad)
