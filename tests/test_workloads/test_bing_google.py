"""Straggler profile and bursty-arrival models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.bing import BingStragglerProfile
from repro.workloads.google import GoogleArrivalModel


class TestBingProfile:
    def test_conditional_factors_at_least_threshold(self):
        prof = BingStragglerProfile()
        factors = prof.sample_factors(5000, seed=0)
        assert factors.min() >= 1.5
        assert factors.max() <= 12.0

    def test_unconditional_hit_rate(self):
        prof = BingStragglerProfile(probability=0.05)
        mult = prof.sample_multipliers(200_000, seed=1)
        assert (mult > 1.0).mean() == pytest.approx(0.05, abs=0.005)

    def test_disabled_never_slows(self):
        prof = BingStragglerProfile().disabled()
        assert np.all(prof.sample_multipliers(1000, seed=2) == 1.0)

    def test_moments_match_empirical(self):
        prof = BingStragglerProfile(probability=0.05)
        m1, m2, m3 = prof.moments()
        mult = prof.sample_multipliers(400_000, seed=3)
        assert m1 == pytest.approx(mult.mean(), rel=0.02)
        assert m2 == pytest.approx((mult**2).mean(), rel=0.05)
        assert m3 == pytest.approx((mult**3).mean(), rel=0.10)

    def test_moments_are_increasing(self):
        m1, m2, m3 = BingStragglerProfile().moments()
        assert 1.0 < m1 < m2 < m3

    def test_validation(self):
        with pytest.raises(ValueError):
            BingStragglerProfile(probability=1.5)
        with pytest.raises(ValueError):
            BingStragglerProfile(quantiles=(0.0, 0.5), factors=(2.0, 1.0))
        with pytest.raises(ValueError):
            BingStragglerProfile(quantiles=(0.1, 1.0), factors=(1.5, 2.0))


class TestGoogleArrivals:
    def test_long_run_rate_matches(self):
        model = GoogleArrivalModel()
        times = model.arrival_times(total_rate=20.0, horizon=2000.0, seed=0)
        assert times.size == pytest.approx(40_000, rel=0.1)

    def test_sorted_within_horizon(self):
        times = GoogleArrivalModel().arrival_times(5.0, 100.0, seed=1)
        assert np.all(np.diff(times) >= 0)
        assert times[-1] < 100.0

    def test_burstier_than_poisson(self):
        model = GoogleArrivalModel(burst_ratio=10.0)
        iod = model.index_of_dispersion(20.0, 3000.0, window=5.0, seed=2)
        assert iod > 1.5  # Poisson would give ~1

    def test_state_rates_average_to_total(self):
        model = GoogleArrivalModel(burst_ratio=8.0, burst_fraction=0.2)
        quiet, bursty = model.state_rates(10.0)
        avg = 0.8 * quiet + 0.2 * bursty
        assert avg == pytest.approx(10.0)
        assert bursty == pytest.approx(8 * quiet)

    def test_validation(self):
        with pytest.raises(ValueError):
            GoogleArrivalModel(burst_ratio=0.5)
        with pytest.raises(ValueError):
            GoogleArrivalModel(burst_fraction=1.5)
        with pytest.raises(ValueError):
            GoogleArrivalModel().arrival_times(-1.0, 10.0)
