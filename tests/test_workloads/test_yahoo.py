"""Yahoo!-trace generator matches the statistics the paper reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.yahoo import (
    YahooTraceModel,
    access_count_buckets,
    yahoo_file_population,
)


@pytest.fixture(scope="module")
def sample():
    return YahooTraceModel().sample(60_000, seed=1)


def test_cold_fraction_near_paper(sample):
    counts, _ = sample
    assert (counts < 10).mean() == pytest.approx(0.78, abs=0.02)


def test_hot_fraction_near_paper(sample):
    counts, _ = sample
    assert (counts >= 100).mean() == pytest.approx(0.02, abs=0.005)


def test_hot_files_are_15_to_30x_larger(sample):
    counts, sizes = sample
    ratio = sizes[counts >= 100].mean() / sizes[counts < 10].mean()
    assert 15 <= ratio <= 30


def test_counts_are_positive_integers(sample):
    counts, _ = sample
    assert counts.dtype.kind == "i"
    assert counts.min() >= 1


def test_sizes_positive(sample):
    _, sizes = sample
    assert np.all(sizes > 0)


def test_access_count_buckets_partition_everything(sample):
    counts, sizes = sample
    buckets = access_count_buckets(counts, sizes)
    assert sum(b["fraction"] for b in buckets) == pytest.approx(1.0)
    assert [b["bucket"] for b in buckets] == ["[1,10)", "[10,100)", ">=100"]


def test_access_count_buckets_misaligned_raises():
    with pytest.raises(ValueError):
        access_count_buckets(np.array([1, 2]), np.array([1.0]))


def test_model_validates_fractions():
    with pytest.raises(ValueError):
        YahooTraceModel(cold_fraction=0.99, hot_fraction=0.02)
    with pytest.raises(ValueError):
        YahooTraceModel(hot_size_ratio=2.0, warm_size_ratio=5.0)


def test_yahoo_population_larger_files_more_popular():
    pop = yahoo_file_population(500, total_rate=10.0, seed=2)
    order = np.argsort(-pop.popularities)
    sizes_by_popularity = pop.sizes[order]
    # Spearman-style check: popularity rank order equals size rank order.
    assert np.all(np.diff(sizes_by_popularity) <= 0)


def test_yahoo_population_rate():
    pop = yahoo_file_population(100, total_rate=7.5, seed=0)
    assert pop.total_rate == 7.5
    assert pop.n_files == 100
