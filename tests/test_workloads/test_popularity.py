"""Zipf popularity generation and fitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.popularity import (
    shuffled_popularity,
    zipf_exponent_fit,
    zipf_popularity,
)


@given(
    st.integers(min_value=1, max_value=500),
    st.floats(min_value=0.0, max_value=3.0),
)
@settings(max_examples=80)
def test_zipf_is_probability_vector(n, exp):
    p = zipf_popularity(n, exp)
    assert p.shape == (n,)
    assert np.all(p > 0)
    assert p.sum() == pytest.approx(1.0)


def test_zipf_descending():
    p = zipf_popularity(100, 1.05)
    assert np.all(np.diff(p) < 0)


def test_zipf_zero_exponent_uniform():
    p = zipf_popularity(10, 0.0)
    assert np.allclose(p, 0.1)


def test_zipf_rejects_bad_args():
    with pytest.raises(ValueError):
        zipf_popularity(0, 1.0)
    with pytest.raises(ValueError):
        zipf_popularity(10, -0.5)


def test_zipf_exponent_fit_recovers_exponent():
    for exp in (0.8, 1.05, 1.3):
        p = zipf_popularity(500, exp)
        assert zipf_exponent_fit(p) == pytest.approx(exp, abs=0.02)


def test_shuffled_popularity_preserves_multiset():
    p = zipf_popularity(50, 1.1)
    q = shuffled_popularity(p, seed=3)
    assert not np.array_equal(p, q)  # overwhelmingly likely
    assert np.allclose(np.sort(p), np.sort(q))


def test_shuffled_popularity_deterministic_with_seed():
    p = zipf_popularity(50, 1.1)
    assert np.array_equal(
        shuffled_popularity(p, seed=5), shuffled_popularity(p, seed=5)
    )
