"""Streaming workloads: seeded replay, chunk invariance, eager parity.

The determinism contract (``docs/engine.md``): a stream is a pure
function of its constructor arguments.  Two passes over the same stream,
any chunk size, any process — same arrivals, bit for bit, and identical
to the eager builders in :mod:`repro.workloads.arrivals` /
:mod:`repro.workloads.google`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.common import FilePopulation
from repro.workloads import (
    GoogleStream,
    MaterializedStream,
    PoissonStream,
    as_trace,
    is_stream,
    poisson_trace,
)
from repro.workloads.arrivals import trace_from_times
from repro.workloads.google import GoogleArrivalModel
from repro.workloads.popularity import zipf_popularity
from repro.workloads.streams import _check_value_seed


def _pop(n=20, rate=6.0):
    return FilePopulation(
        sizes=np.full(n, 2e6),
        popularities=zipf_popularity(n, 1.2),
        total_rate=rate,
    )


def _streams():
    pop = _pop()
    return [
        PoissonStream(pop, n_requests=700, seed=3),
        GoogleStream(pop, total_rate=40.0, horizon=12.0, seed=3),
        MaterializedStream(poisson_trace(pop, n_requests=300, seed=9)),
    ]


def _concat(stream, chunk_size):
    times, fids = [], []
    for t, f in stream.chunks(chunk_size):
        assert t.size == f.size
        times.append(t)
        fids.append(f)
    return np.concatenate(times), np.concatenate(fids)


@pytest.mark.parametrize("stream", _streams(), ids=lambda s: type(s).__name__)
def test_two_passes_are_identical(stream):
    t1, f1 = _concat(stream, 128)
    t2, f2 = _concat(stream, 128)
    assert np.array_equal(t1, t2)
    assert np.array_equal(f1, f2)


@pytest.mark.parametrize("stream", _streams(), ids=lambda s: type(s).__name__)
@pytest.mark.parametrize("chunk_size", [1, 37, 512, 10_000])
def test_chunk_size_never_changes_the_draws(stream, chunk_size):
    t_ref, f_ref = _concat(stream, 100_000)
    t, f = _concat(stream, chunk_size)
    assert np.array_equal(t, t_ref)
    assert np.array_equal(f, f_ref)


@pytest.mark.parametrize("stream", _streams(), ids=lambda s: type(s).__name__)
def test_materialize_equals_chunked_pass(stream):
    trace = stream.materialize()
    t, f = _concat(stream, 101)
    assert np.array_equal(trace.times, t)
    assert np.array_equal(trace.file_ids, f)
    assert trace.n_requests == stream.n_requests == t.size


def test_poisson_stream_matches_eager_builder():
    pop = _pop()
    eager = poisson_trace(pop, n_requests=700, seed=3)
    lazy = PoissonStream(pop, n_requests=700, seed=3).materialize()
    assert np.array_equal(eager.times, lazy.times)
    assert np.array_equal(eager.file_ids, lazy.file_ids)


def test_google_stream_matches_eager_builder():
    pop = _pop()
    times = GoogleArrivalModel().arrival_times(40.0, horizon=12.0, seed=3)
    eager = trace_from_times(times, pop, seed=3)
    lazy = GoogleStream(pop, total_rate=40.0, horizon=12.0, seed=3)
    mat = lazy.materialize()
    assert np.array_equal(eager.times, mat.times)
    assert np.array_equal(eager.file_ids, mat.file_ids)


def _worker_digest(kind: str, chunk_size: int) -> str:
    """Module-level (picklable) worker: hash one full pass of a stream."""
    import hashlib

    import numpy as np

    from repro.workloads import GoogleStream, PoissonStream
    from repro.workloads.popularity import zipf_popularity
    from repro.common import FilePopulation

    pop = FilePopulation(
        sizes=np.full(20, 2e6),
        popularities=zipf_popularity(20, 1.2),
        total_rate=6.0,
    )
    if kind == "poisson":
        stream = PoissonStream(pop, n_requests=700, seed=3)
    else:
        stream = GoogleStream(pop, total_rate=40.0, horizon=12.0, seed=3)
    # Separate digests per column: a combined hash would depend on how
    # the chunk boundaries interleave times with file ids.
    d_times, d_fids = hashlib.sha1(), hashlib.sha1()
    for t, f in stream.chunks(chunk_size):
        d_times.update(np.ascontiguousarray(t).tobytes())
        d_fids.update(np.ascontiguousarray(f).tobytes())
    return d_times.hexdigest() + d_fids.hexdigest()


@pytest.mark.parametrize("kind", ["poisson", "google"])
def test_streams_are_deterministic_across_worker_processes(kind):
    """--jobs N replay: every worker sees the same draws as this process."""
    local = _worker_digest(kind, 256)
    with ProcessPoolExecutor(max_workers=2) as pool:
        remote = list(pool.map(_worker_digest, [kind, kind], [256, 97]))
    assert remote == [local, local]


def test_fingerprints_key_on_content():
    pop = _pop()
    a = PoissonStream(pop, n_requests=700, seed=3)
    b = PoissonStream(pop, n_requests=700, seed=3)
    c = PoissonStream(pop, n_requests=700, seed=4)
    d = PoissonStream(pop, n_requests=701, seed=3)
    assert a.fingerprint() == b.fingerprint()
    assert len({a.fingerprint(), c.fingerprint(), d.fingerprint()}) == 3
    g = GoogleStream(pop, total_rate=40.0, horizon=12.0, seed=3)
    assert g.fingerprint() != a.fingerprint()


def test_generator_seeds_are_rejected():
    """A Generator seed would be consumed by the first pass — replay
    would silently diverge, so streams refuse it up front."""
    pop = _pop()
    rng = np.random.default_rng(0)
    with pytest.raises(TypeError, match="seed"):
        PoissonStream(pop, n_requests=10, seed=rng)
    with pytest.raises(TypeError, match="seed"):
        GoogleStream(pop, total_rate=1.0, horizon=1.0, seed=rng)
    with pytest.raises(TypeError, match="seed"):
        _check_value_seed(rng)


def test_is_stream_and_as_trace():
    pop = _pop()
    stream = PoissonStream(pop, n_requests=50, seed=1)
    trace = poisson_trace(pop, n_requests=50, seed=1)
    assert is_stream(stream)
    assert not is_stream(trace)
    assert not is_stream(object())
    assert as_trace(trace) is trace
    out = as_trace(stream)
    assert np.array_equal(out.times, trace.times)
    assert np.array_equal(out.file_ids, trace.file_ids)


def test_bad_chunk_sizes_raise():
    pop = _pop()
    stream = PoissonStream(pop, n_requests=10, seed=0)
    for bad in (0, -1, 2.5):
        with pytest.raises(ValueError):
            list(stream.chunks(bad))
