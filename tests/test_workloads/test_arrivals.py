"""Arrival processes: Poisson statistics, trace invariants, merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import FilePopulation
from repro.workloads.arrivals import (
    ArrivalTrace,
    merge_traces,
    poisson_arrivals,
    poisson_trace,
    sample_file_choices,
    trace_from_times,
)
from repro.workloads.popularity import zipf_popularity


def _pop(n=10, rate=5.0):
    return FilePopulation(
        sizes=np.full(n, 1e6),
        popularities=zipf_popularity(n, 1.1),
        total_rate=rate,
    )


def test_poisson_count_matches_rate():
    times = poisson_arrivals(rate=50.0, horizon=100.0, seed=0)
    # 5000 expected; 4 sigma ~ 280.
    assert 4700 < times.size < 5300
    assert np.all(times < 100.0)
    assert np.all(np.diff(times) >= 0)


def test_poisson_exact_count():
    times = poisson_arrivals(rate=2.0, n_requests=137, seed=1)
    assert times.size == 137


def test_poisson_interarrival_mean():
    times = poisson_arrivals(rate=10.0, n_requests=20000, seed=2)
    gaps = np.diff(times)
    assert gaps.mean() == pytest.approx(0.1, rel=0.05)


def test_poisson_rejects_bad_args():
    with pytest.raises(ValueError):
        poisson_arrivals(rate=0.0, horizon=1.0)
    with pytest.raises(ValueError):
        poisson_arrivals(rate=1.0)  # neither horizon nor count
    with pytest.raises(ValueError):
        poisson_arrivals(rate=1.0, horizon=1.0, n_requests=5)  # both


def test_file_choices_follow_popularity():
    p = zipf_popularity(5, 1.0)
    choices = sample_file_choices(p, 50000, seed=3)
    freq = np.bincount(choices, minlength=5) / 50000
    assert np.allclose(freq, p, atol=0.01)


def test_trace_validation():
    with pytest.raises(ValueError):
        ArrivalTrace(np.array([2.0, 1.0]), np.array([0, 1]))  # unsorted
    with pytest.raises(ValueError):
        ArrivalTrace(np.array([-1.0]), np.array([0]))  # negative
    with pytest.raises(ValueError):
        ArrivalTrace(np.array([1.0]), np.array([0, 1]))  # misaligned


def test_trace_empirical_rate():
    trace = poisson_trace(_pop(rate=8.0), n_requests=20000, seed=4)
    assert trace.empirical_rate() == pytest.approx(8.0, rel=0.05)


def test_trace_slice_time():
    trace = poisson_trace(_pop(rate=10.0), horizon=100.0, seed=5)
    window = trace.slice_time(10.0, 20.0)
    assert window.n_requests > 0
    assert window.times[0] >= 0
    assert window.horizon < 10.0


def test_trace_from_times_sorts():
    pop = _pop()
    trace = trace_from_times(np.array([3.0, 1.0, 2.0]), pop, seed=6)
    assert np.array_equal(trace.times, [1.0, 2.0, 3.0])


def test_merge_traces_interleaves():
    pop = _pop()
    a = poisson_trace(pop, n_requests=100, seed=7)
    b = poisson_trace(pop, n_requests=100, seed=8)
    merged = merge_traces([a, b])
    assert merged.n_requests == 200
    assert np.all(np.diff(merged.times) >= 0)


def test_merge_traces_empty():
    merged = merge_traces([])
    assert merged.n_requests == 0
