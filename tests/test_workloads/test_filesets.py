"""Canned populations and replica-count helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import MB
from repro.workloads.filesets import paper_fileset, replication_counts_topk


def test_paper_fileset_basics():
    pop = paper_fileset(500, size_mb=100, zipf_exponent=1.05, total_rate=18.0)
    assert pop.n_files == 500
    assert np.all(pop.sizes == 100 * MB)
    assert pop.total_rate == 18.0
    assert pop.popularities[0] > pop.popularities[-1]


def test_paper_fileset_loads_descending():
    pop = paper_fileset(50, size_mb=40, zipf_exponent=1.1)
    assert np.all(np.diff(pop.loads) < 0)


def test_replication_counts_topk_paper_config():
    pop = paper_fileset(100, size_mb=100)
    counts = replication_counts_topk(pop, top_fraction=0.10, replicas=4)
    assert counts.sum() == 100 - 10 + 10 * 4  # 40% overhead on equal sizes
    hot = np.argsort(-pop.popularities)[:10]
    assert np.all(counts[hot] == 4)
    cold = np.argsort(-pop.popularities)[10:]
    assert np.all(counts[cold] == 1)


def test_replication_counts_zero_fraction():
    pop = paper_fileset(10, size_mb=1)
    assert np.all(replication_counts_topk(pop, top_fraction=0.0) == 1)


def test_replication_counts_validation():
    pop = paper_fileset(10, size_mb=1)
    with pytest.raises(ValueError):
        replication_counts_topk(pop, top_fraction=1.5)
    with pytest.raises(ValueError):
        replication_counts_topk(pop, replicas=0)
