"""GF(256) field axioms and matrix algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.galois import GF256

bytes_st = st.integers(min_value=0, max_value=255)
nonzero_st = st.integers(min_value=1, max_value=255)


def test_add_is_xor():
    assert GF256.add(0b1010, 0b0110) == 0b1100


def test_add_self_is_zero():
    a = np.arange(256, dtype=np.uint8)
    assert np.all(GF256.add(a, a) == 0)


@given(bytes_st, bytes_st)
def test_mul_commutative(a, b):
    assert GF256.mul(a, b) == GF256.mul(b, a)


@given(bytes_st, bytes_st, bytes_st)
@settings(max_examples=200)
def test_mul_associative(a, b, c):
    assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))


@given(bytes_st, bytes_st, bytes_st)
@settings(max_examples=200)
def test_distributive(a, b, c):
    left = GF256.mul(a, GF256.add(b, c))
    right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
    assert left == right


@given(bytes_st)
def test_mul_identity(a):
    assert GF256.mul(a, 1) == a


@given(bytes_st)
def test_mul_zero(a):
    assert GF256.mul(a, 0) == 0


@given(nonzero_st)
def test_inverse(a):
    assert GF256.mul(a, GF256.inv(a)) == 1


def test_inv_zero_raises():
    with pytest.raises(ZeroDivisionError):
        GF256.inv(0)


def test_div_zero_raises():
    with pytest.raises(ZeroDivisionError):
        GF256.div(5, 0)


@given(bytes_st, nonzero_st)
def test_div_mul_roundtrip(a, b):
    assert GF256.mul(GF256.div(a, b), b) == a


def test_div_of_zero_is_zero():
    assert GF256.div(0, 7) == 0


@given(nonzero_st, st.integers(min_value=0, max_value=10))
def test_pow_matches_repeated_mul(a, e):
    expected = np.uint8(1)
    for _ in range(e):
        expected = GF256.mul(expected, a)
    assert GF256.pow(a, e) == expected


def test_pow_zero_base():
    assert GF256.pow(0, 3) == 0
    assert GF256.pow(0, 0) == 1


def test_mul_vectorized_matches_scalar():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 256, 1000).astype(np.uint8)
    b = rng.integers(0, 256, 1000).astype(np.uint8)
    vec = GF256.mul(a, b)
    for i in range(0, 1000, 97):
        assert vec[i] == GF256.mul(int(a[i]), int(b[i]))


def test_matmul_identity():
    rng = np.random.default_rng(1)
    m = rng.integers(0, 256, (5, 7)).astype(np.uint8)
    eye = np.eye(5, dtype=np.uint8)
    assert np.array_equal(GF256.matmul(eye, m), m)


def test_matmul_shape_mismatch():
    with pytest.raises(ValueError):
        GF256.matmul(np.zeros((2, 3), np.uint8), np.zeros((4, 2), np.uint8))


def test_mat_inv_roundtrip():
    rng = np.random.default_rng(2)
    for n in (1, 2, 5, 8):
        # Vandermonde blocks are guaranteed invertible.
        m = GF256.vandermonde(n + 3, n)[:n]
        inv = GF256.mat_inv(m)
        assert np.array_equal(
            GF256.matmul(m, inv), np.eye(n, dtype=np.uint8)
        )
        assert np.array_equal(
            GF256.matmul(inv, m), np.eye(n, dtype=np.uint8)
        )
    del rng


def test_mat_inv_singular_raises():
    singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(np.linalg.LinAlgError):
        GF256.mat_inv(singular)


def test_mat_inv_requires_square():
    with pytest.raises(ValueError):
        GF256.mat_inv(np.zeros((2, 3), np.uint8))


def test_vandermonde_any_k_rows_invertible():
    vand = GF256.vandermonde(8, 4)
    rng = np.random.default_rng(3)
    for _ in range(20):
        rows = rng.choice(8, size=4, replace=False)
        GF256.mat_inv(vand[rows])  # must not raise


def test_vandermonde_too_many_points():
    with pytest.raises(ValueError):
        GF256.vandermonde(257, 4)
