"""Byte-level split/unsplit and file-granularity RS codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.codec import RSFileCodec, pad_to_shards, split_bytes, unsplit_bytes


@given(st.binary(max_size=2000), st.integers(min_value=1, max_value=40))
@settings(max_examples=100)
def test_split_unsplit_roundtrip(data, k):
    parts = split_bytes(data, k)
    assert len(parts) == k
    assert unsplit_bytes(parts) == data


@given(st.binary(min_size=1, max_size=2000), st.integers(min_value=1, max_value=40))
@settings(max_examples=100)
def test_split_sizes_differ_by_at_most_one(data, k):
    sizes = [len(p) for p in split_bytes(data, k)]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == len(data)
    # Longer partitions come first, preserving contiguity.
    assert sizes == sorted(sizes, reverse=True)


def test_split_rejects_bad_k():
    with pytest.raises(ValueError):
        split_bytes(b"abc", 0)


def test_pad_to_shards_shape_and_content():
    shards, orig = pad_to_shards(b"0123456789", 4)
    assert shards.shape == (4, 3)
    assert orig == 10
    flat = shards.reshape(-1)
    assert bytes(flat[:10]) == b"0123456789"
    assert flat[10] == 0 and flat[11] == 0


def test_pad_to_shards_empty():
    shards, orig = pad_to_shards(b"", 3)
    assert shards.shape == (3, 1)
    assert orig == 0


@given(st.binary(max_size=5000))
@settings(max_examples=50, deadline=None)
def test_rs_file_codec_roundtrip(data):
    codec = RSFileCodec(k=4, n=7)
    shards, orig_len = codec.encode_file(data)
    assert len(shards) == 7
    out = codec.decode_file([6, 1, 3, 0], [shards[i] for i in (6, 1, 3, 0)], orig_len)
    assert out == data


def test_rs_file_codec_records_timings():
    codec = RSFileCodec(k=3, n=5)
    shards, orig_len = codec.encode_file(b"x" * 100_000)
    assert codec.last_encode_seconds > 0
    codec.decode_file([4, 2, 1], [shards[i] for i in (4, 2, 1)], orig_len)
    assert codec.last_decode_seconds > 0


def test_rs_file_codec_overhead():
    assert RSFileCodec(k=10, n=14).overhead == pytest.approx(0.4)


def test_rs_file_codec_rejects_mismatched_shards():
    codec = RSFileCodec(k=2, n=4)
    shards, orig_len = codec.encode_file(b"hello world")
    with pytest.raises(ValueError):
        codec.decode_file([0, 1], [shards[0], shards[1][:-1]], orig_len)
    with pytest.raises(ValueError):
        codec.decode_file([], [], orig_len)
