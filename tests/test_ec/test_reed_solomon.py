"""Reed-Solomon: any k of n shards reconstruct the data."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.reed_solomon import ReedSolomon


def _random_data(k: int, width: int, seed: int = 0) -> np.ndarray:
    return (
        np.random.default_rng(seed).integers(0, 256, (k, width)).astype(np.uint8)
    )


def test_systematic_prefix():
    rs = ReedSolomon(4, 7)
    data = _random_data(4, 50)
    coded = rs.encode(data)
    assert np.array_equal(coded[:4], data)
    assert coded.shape == (7, 50)


def test_decode_from_systematic_shards():
    rs = ReedSolomon(4, 7)
    data = _random_data(4, 33)
    coded = rs.encode(data)
    out = rs.decode(np.arange(4), coded[:4])
    assert np.array_equal(out, data)


def test_decode_from_parity_only():
    rs = ReedSolomon(3, 6)
    data = _random_data(3, 20, seed=1)
    coded = rs.encode(data)
    ids = [3, 4, 5]
    assert np.array_equal(rs.decode(ids, coded[ids]), data)


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=1, max_value=64),
    st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_any_k_shards_decode(k, extra_parity, width, pyrandom):
    n = k + extra_parity
    rs = ReedSolomon(k, n)
    data = _random_data(k, width, seed=17)
    coded = rs.encode(data)
    ids = pyrandom.sample(range(n), k)
    assert np.array_equal(rs.decode(ids, coded[ids]), data)


def test_extra_shards_are_ignored():
    rs = ReedSolomon(4, 8)
    data = _random_data(4, 10, seed=2)
    coded = rs.encode(data)
    ids = [7, 2, 5, 0, 3]  # k + 1 shards, late binding style
    assert np.array_equal(rs.decode(ids, coded[ids]), data)


def test_reconstruct_lost_shard():
    rs = ReedSolomon(5, 9)
    data = _random_data(5, 40, seed=3)
    coded = rs.encode(data)
    for missing in (0, 4, 8):
        survivors = [i for i in range(9) if i != missing][:5]
        rebuilt = rs.reconstruct_shard(missing, survivors, coded[survivors])
        assert np.array_equal(rebuilt, coded[missing])


def test_overhead():
    assert ReedSolomon(10, 14).overhead == pytest.approx(0.4)
    assert ReedSolomon(5, 5).overhead == 0.0


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ReedSolomon(0, 4)
    with pytest.raises(ValueError):
        ReedSolomon(5, 4)
    with pytest.raises(ValueError):
        ReedSolomon(10, 257)


def test_decode_validates_inputs():
    rs = ReedSolomon(3, 5)
    data = _random_data(3, 8, seed=4)
    coded = rs.encode(data)
    with pytest.raises(ValueError):
        rs.decode([0, 1], coded[:2])  # too few shards
    with pytest.raises(ValueError):
        rs.decode([0, 0, 1], coded[[0, 0, 1]])  # duplicate ids
    with pytest.raises(ValueError):
        rs.decode([0, 1, 9], coded[:3])  # id out of range


def test_encode_validates_shape():
    rs = ReedSolomon(3, 5)
    with pytest.raises(ValueError):
        rs.encode(np.zeros((4, 10), dtype=np.uint8))


def test_corrupted_parity_changes_decode():
    """Decoding from a tampered shard must not silently equal the data."""
    rs = ReedSolomon(3, 6)
    data = _random_data(3, 16, seed=5)
    coded = rs.encode(data)
    tampered = coded.copy()
    tampered[4, 0] ^= 0xFF
    out = rs.decode([0, 4, 5], tampered[[0, 4, 5]])
    assert not np.array_equal(out, data)
