"""Consistent-hash ring: stability, balance, and relocation bounds.

The headline property (the reason the ring exists as a churn baseline):
adding one server to an ``N``-server ring relocates on the order of
``1/N`` of keys — bounded here at ``2/N`` — while hash-mod relocates
almost everything.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import (
    HashRing,
    hash_mod_assignment,
    place_hash_mod,
    place_on_ring,
    relocated_fraction,
    ring_assignment,
)

KEYS = np.arange(2048)


@settings(max_examples=25, deadline=None)
@given(
    n_servers=st.integers(min_value=4, max_value=24),
    new_id=st.integers(min_value=100, max_value=10_000),
)
def test_single_add_relocates_about_one_nth_on_ring(n_servers, new_id):
    server_ids = list(range(n_servers))
    before = ring_assignment(KEYS, server_ids)
    after = ring_assignment(KEYS, server_ids + [new_id])
    frac = relocated_fraction(before, after)
    assert frac <= 2.0 / n_servers
    # Keys that did move all moved *to* the new server — the ring never
    # shuffles ownership between surviving servers.
    moved = before != after
    assert frac > 0.0
    assert set(after[moved]) == {new_id}


@settings(max_examples=25, deadline=None)
@given(n_servers=st.integers(min_value=4, max_value=24))
def test_single_add_relocates_most_keys_under_hash_mod(n_servers):
    server_ids = list(range(n_servers))
    before = hash_mod_assignment(KEYS, server_ids)
    after = hash_mod_assignment(KEYS, server_ids + [n_servers])
    # Expectation is (N-1)/N ≈ 1 - 1/N; allow generous slack below it.
    assert relocated_fraction(before, after) >= 0.5


def test_ring_beats_hash_mod_on_single_node_change():
    server_ids = list(range(12))
    ring_frac = relocated_fraction(
        ring_assignment(KEYS, server_ids),
        ring_assignment(KEYS, server_ids + [12]),
    )
    mod_frac = relocated_fraction(
        hash_mod_assignment(KEYS, server_ids),
        hash_mod_assignment(KEYS, server_ids + [12]),
    )
    assert ring_frac < mod_frac


def test_remove_only_relocates_departed_servers_keys():
    server_ids = list(range(10))
    before = ring_assignment(KEYS, server_ids)
    after = ring_assignment(KEYS, [s for s in server_ids if s != 3])
    moved = before != after
    assert set(before[moved]) == {3}
    assert not np.any(after == 3)


def test_assignment_is_deterministic_and_order_independent():
    a = ring_assignment(KEYS, [5, 1, 9, 2])
    b = ring_assignment(KEYS, [2, 9, 1, 5])
    assert np.array_equal(a, b)


def test_ring_balance_is_tolerable():
    """Virtual nodes keep the per-server share within a few x of fair."""
    assignment = ring_assignment(np.arange(20_000), list(range(10)))
    counts = np.bincount(assignment, minlength=10)
    assert counts.min() > 0
    assert counts.max() / (20_000 / 10) < 2.0


def test_incremental_add_remove_matches_fresh_ring():
    ring = HashRing(range(8))
    ring.add_server(99)
    ring.remove_server(2)
    fresh = HashRing([s for s in range(8) if s != 2] + [99])
    assert np.array_equal(ring.assign(KEYS), fresh.assign(KEYS))


def test_servers_for_returns_k_distinct_servers():
    ring = HashRing(range(6))
    for key in (0, 17, 123456):
        got = ring.servers_for(key, 4)
        assert got.size == 4
        assert np.unique(got).size == 4
        assert set(got) <= set(range(6))


@pytest.mark.parametrize("placer", [place_on_ring, place_hash_mod])
def test_placements_are_distinct_and_active(placer):
    ks = np.array([1, 3, 6, 4, 2])
    server_ids = [0, 1, 4, 5, 7, 9]
    layout = placer(ks, server_ids)
    assert len(layout) == ks.size
    for k, servers in zip(ks, layout):
        assert servers.size == k
        assert np.unique(servers).size == k
        assert set(servers) <= set(server_ids)


def test_place_on_ring_overlap_survives_membership_change():
    """Most partition placements survive a single-server add."""
    ks = np.full(50, 4)
    old = place_on_ring(ks, list(range(12)))
    new = place_on_ring(ks, list(range(13)))
    overlap = sum(
        np.intersect1d(o, n).size for o, n in zip(old, new)
    ) / sum(ks)
    assert overlap > 0.6


def test_ring_errors():
    ring = HashRing(range(3))
    with pytest.raises(ValueError):
        ring.add_server(1)  # duplicate
    with pytest.raises(ValueError):
        ring.remove_server(17)
    with pytest.raises(ValueError):
        ring.servers_for(0, 4)  # k > len(ring)
    with pytest.raises(ValueError):
        HashRing([]).server_for(1)
