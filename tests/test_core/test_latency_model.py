"""Fork-join M/G/1 bound: consistency with theory and the simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SimulationConfig, simulate_reads
from repro.cluster.network import GoodputModel
from repro.common import ClusterSpec, FilePopulation
from repro.core import ForkJoinModel, partition_counts
from repro.core.placement import place_partitions_random
from repro.workloads import paper_fileset, poisson_trace
from repro.policies import SPCachePolicy


def _single_file_model(rate: float, size: float, bandwidth: float):
    pop = FilePopulation(
        sizes=np.array([size]), popularities=np.array([1.0]), total_rate=rate
    )
    cluster = ClusterSpec(n_servers=1, bandwidth=bandwidth)
    return pop, cluster


def test_single_mm1_bound_equals_closed_form():
    """One file, one server, k=1: the bound must equal the M/M/1 mean
    sojourn 1/(mu - lambda)."""
    lam, size, bw = 4.0, 1.0, 8.0  # mu = 8
    pop, cluster = _single_file_model(lam, size, bw)
    model = ForkJoinModel(pop, cluster)
    ev = model.evaluate(np.array([1]), [np.array([0])])
    assert ev.stable
    assert ev.mean_bound == pytest.approx(1 / (bw - lam), rel=1e-9)


def test_unstable_queue_gives_infinite_bound():
    pop, cluster = _single_file_model(10.0, 1.0, 8.0)  # rho = 1.25
    model = ForkJoinModel(pop, cluster)
    ev = model.evaluate(np.array([1]), [np.array([0])])
    assert not ev.stable
    assert np.isinf(ev.mean_bound)
    assert ev.max_utilisation > 1.0


def test_bound_upper_bounds_fifo_simulation():
    """The Eq. (9) bound must sit above the matching FIFO simulation."""
    pop = paper_fileset(40, size_mb=20, zipf_exponent=1.05, total_rate=6.0)
    cluster = ClusterSpec(n_servers=10, bandwidth=50e6)
    ks = partition_counts(pop, alpha=2e-7, n_servers=10)
    servers_of = place_partitions_random(ks, 10, seed=3)
    bound = ForkJoinModel(pop, cluster).evaluate(ks, servers_of).mean_bound

    policy = SPCachePolicy(pop, cluster, alpha=2e-7, seed=99)
    policy.servers_of = servers_of  # pin the same placement
    policy.piece_sizes = [
        np.full(int(k), s / k) for k, s in zip(ks, pop.sizes)
    ]
    trace = poisson_trace(pop, n_requests=12000, seed=4)
    sim = simulate_reads(
        trace,
        policy,
        cluster,
        SimulationConfig(
            discipline="fifo", jitter="exponential", goodput=None, seed=5
        ),
    )
    assert sim.steady_state_latencies().mean() <= bound * 1.05


def test_goodput_inflates_bound():
    pop = paper_fileset(30, size_mb=50, total_rate=4.0)
    cluster = ClusterSpec(n_servers=10)
    ks = partition_counts(pop, alpha=2e-8, n_servers=10)
    servers_of = place_partitions_random(ks, 10, seed=0)
    plain = ForkJoinModel(pop, cluster).evaluate(ks, servers_of).mean_bound
    lossy = (
        ForkJoinModel(pop, cluster, goodput=GoodputModel())
        .evaluate(ks, servers_of)
        .mean_bound
    )
    assert lossy >= plain


def test_straggler_moments_inflate_bound():
    pop = paper_fileset(30, size_mb=50, total_rate=4.0)
    cluster = ClusterSpec(n_servers=10)
    ks = partition_counts(pop, alpha=2e-7, n_servers=10)
    servers_of = place_partitions_random(ks, 10, seed=0)
    plain = ForkJoinModel(pop, cluster).evaluate(ks, servers_of).mean_bound
    slow = (
        ForkJoinModel(pop, cluster, straggler_moments=(1.1, 1.7, 5.5))
        .evaluate(ks, servers_of)
        .mean_bound
    )
    assert slow > plain


def test_client_cap_inflates_wide_reads_only():
    pop = paper_fileset(10, size_mb=100, total_rate=1.0)
    cluster = ClusterSpec(n_servers=30)  # client cap = 3x server NIC
    ks_narrow = np.ones(10, dtype=np.int64)
    ks_wide = np.full(10, 30, dtype=np.int64)
    for ks in (ks_narrow, ks_wide):
        servers_of = place_partitions_random(ks, 30, seed=0)
        plain = ForkJoinModel(pop, cluster).evaluate(ks, servers_of)
        capped = ForkJoinModel(pop, cluster, client_cap=True).evaluate(
            ks, servers_of
        )
        if ks[0] == 1:
            assert capped.mean_bound == pytest.approx(plain.mean_bound)
        else:
            assert capped.mean_bound > plain.mean_bound


def test_deterministic_service_bound_below_exponential():
    pop = paper_fileset(30, size_mb=50, total_rate=4.0)
    cluster = ClusterSpec(n_servers=10)
    ks = partition_counts(pop, alpha=2e-7, n_servers=10)
    servers_of = place_partitions_random(ks, 10, seed=0)
    exp = ForkJoinModel(pop, cluster).evaluate(ks, servers_of).mean_bound
    det = (
        ForkJoinModel(pop, cluster, service_distribution="deterministic")
        .evaluate(ks, servers_of)
        .mean_bound
    )
    assert det < exp


def test_evaluate_validates_inputs(small_population, small_cluster):
    model = ForkJoinModel(small_population, small_cluster)
    n = small_population.n_files
    ks = np.ones(n, dtype=np.int64)
    with pytest.raises(ValueError):
        model.evaluate(ks[:-1], [np.array([0])] * n)
    with pytest.raises(ValueError):
        model.evaluate(ks, [np.array([0])] * (n - 1))
    with pytest.raises(ValueError):
        model.evaluate(ks, [np.array([0, 1])] * n)  # lengths != ks
    bad_servers = [np.array([99])] * n
    with pytest.raises(ValueError):
        model.evaluate(ks, bad_servers)
