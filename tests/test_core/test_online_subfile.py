"""Sec. 8 extensions: online partition adjustment and sub-file partition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import MB, ClusterSpec, Gbps
from repro.core.online import AdjustOp, OnlineAdjuster
from repro.core.partitioner import partition_counts
from repro.core.subfile import SegmentedFile, subfile_partition
from repro.workloads import paper_fileset


class TestOnlineAdjuster:
    def _adjuster(self, alpha_mb=2.0, tolerance=2.0):
        pop = paper_fileset(40, size_mb=100, zipf_exponent=1.1, total_rate=8.0)
        cluster = ClusterSpec(n_servers=20, bandwidth=Gbps)
        alpha = alpha_mb / MB
        ks = partition_counts(pop, alpha, n_servers=20)
        return (
            OnlineAdjuster(pop, cluster, alpha, ks, tolerance=tolerance),
            pop,
        )

    def test_no_observations_uniform_estimate(self):
        adj, pop = self._adjuster()
        est = adj.estimated_popularities()
        assert np.allclose(est, 1 / pop.n_files)

    def test_burst_triggers_split(self):
        adj, pop = self._adjuster()
        cold = pop.n_files - 1  # a cold file with k=1
        assert adj.ks[cold] == 1
        adj.observe_many(np.full(500, cold))  # sudden burst on it
        ops = adj.plan()
        split_ops = [o for o in ops if o.file_id == cold]
        assert split_ops and split_ops[0].action == "split"
        assert split_ops[0].new_k == 2

    def test_cooling_triggers_merge(self):
        adj, pop = self._adjuster()
        hot = 0
        assert adj.ks[hot] > 1
        # The window now says the old hot file is never read.
        adj.observe_many(np.full(800, pop.n_files - 1))
        ops = adj.plan()
        merge_ops = [o for o in ops if o.file_id == hot]
        assert merge_ops and merge_ops[0].action == "merge"

    def test_step_applies_and_accounts(self):
        adj, pop = self._adjuster()
        adj.observe_many(np.full(600, pop.n_files - 1))
        ops = adj.step()
        assert adj.ops_applied == len(ops)
        assert adj.total_moved_bytes > 0
        # Doubling ladder: each op moved at most half the file.
        for op in ops:
            assert op.moved_bytes <= pop.sizes[op.file_id] / 2 + 1e-9

    def test_converges_to_steady_plan(self):
        """Repeated rounds on a stationary window must stop emitting ops."""
        adj, pop = self._adjuster()
        rng = np.random.default_rng(0)
        adj.observe_many(
            rng.choice(pop.n_files, size=2000, p=pop.popularities)
        )
        for _ in range(12):
            ops = adj.step()
        assert ops == []  # the doubling ladder has settled

    def test_stale_op_rejected(self):
        adj, pop = self._adjuster()
        op = AdjustOp(0, "merge", old_k=99, new_k=49, moved_bytes=1.0)
        with pytest.raises(ValueError):
            adj.apply([op])

    def test_adjustment_time_parallel(self):
        adj, pop = self._adjuster()
        ops = [
            AdjustOp(0, "split", adj.ks[0], adj.ks[0] * 2, 50 * MB),
            AdjustOp(1, "split", adj.ks[1], adj.ks[1] * 2, 10 * MB),
        ]
        # Parallel: cost of the largest transfer only.
        assert adj.adjustment_time(ops) == pytest.approx(50 * MB / Gbps)
        assert adj.adjustment_time([]) == 0.0

    def test_validation(self):
        pop = paper_fileset(5, size_mb=10)
        cluster = ClusterSpec(n_servers=5)
        ks = np.ones(5, dtype=np.int64)
        with pytest.raises(ValueError):
            OnlineAdjuster(pop, cluster, alpha=0.0, initial_ks=ks)
        with pytest.raises(ValueError):
            OnlineAdjuster(pop, cluster, alpha=1.0, initial_ks=ks, tolerance=1.0)
        with pytest.raises(ValueError):
            OnlineAdjuster(pop, cluster, alpha=1.0, initial_ks=ks[:-1])

    def test_adjust_op_validation(self):
        with pytest.raises(ValueError):
            AdjustOp(0, "split", old_k=4, new_k=4, moved_bytes=1.0)
        with pytest.raises(ValueError):
            AdjustOp(0, "merge", old_k=4, new_k=8, moved_bytes=1.0)


class TestSubfilePartition:
    def test_hot_segment_gets_more_partitions(self):
        f = SegmentedFile(
            segment_sizes=np.array([50 * MB, 50 * MB]),
            segment_popularities=np.array([0.9, 0.1]),
        )
        ks = subfile_partition(f, file_popularity=0.5, alpha=1.0 / MB, n_servers=30)
        assert ks[0] > ks[1]
        assert ks[1] >= 1

    def test_uniform_degenerates_to_even_split(self):
        f = SegmentedFile(
            segment_sizes=np.full(4, 25 * MB),
            segment_popularities=np.full(4, 0.25),
        )
        ks = subfile_partition(f, 0.4, alpha=1.0 / MB, n_servers=30)
        assert np.all(ks == ks[0])

    def test_clamped_to_cluster(self):
        f = SegmentedFile(
            segment_sizes=np.array([1000 * MB]),
            segment_popularities=np.array([1.0]),
        )
        ks = subfile_partition(f, 1.0, alpha=1.0 / MB, n_servers=10)
        assert ks[0] == 10

    def test_loads_and_size(self):
        f = SegmentedFile(
            segment_sizes=np.array([10.0, 30.0]),
            segment_popularities=np.array([0.5, 0.5]),
        )
        assert f.size == 40.0
        assert np.allclose(f.segment_loads, [5.0, 15.0])
        assert f.n_segments == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentedFile(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            SegmentedFile(np.array([1.0]), np.array([0.5, 0.5]))
        f = SegmentedFile(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            subfile_partition(f, 0.0, 1.0, 10)
        with pytest.raises(ValueError):
            subfile_partition(f, 0.5, -1.0, 10)
        with pytest.raises(ValueError):
            subfile_partition(f, 0.5, 1.0, 0)
