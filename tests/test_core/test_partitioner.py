"""Eq. (1) partition sizing invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import FilePopulation
from repro.core.partitioner import max_load, partition_counts, partition_sizes


def test_basic_formula():
    loads = np.array([0.0, 0.4, 1.0, 2.3])
    ks = partition_counts(loads, alpha=1.0)
    assert list(ks) == [1, 1, 1, 3]


def test_minimum_one_partition():
    assert partition_counts(np.zeros(5), alpha=10.0).min() == 1


def test_clamped_to_server_count():
    ks = partition_counts(np.array([100.0]), alpha=1.0, n_servers=8)
    assert ks[0] == 8


def test_accepts_population(small_population):
    ks = partition_counts(small_population, alpha=1e-6, n_servers=10)
    assert ks.shape == (small_population.n_files,)


@given(
    st.floats(min_value=1e-9, max_value=1e3),
    st.lists(
        st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50
    ),
)
@settings(max_examples=100)
def test_counts_monotone_in_alpha_and_load(alpha, loads):
    loads = np.array(loads)
    k1 = partition_counts(loads, alpha)
    k2 = partition_counts(loads, alpha * 2)
    assert np.all(k2 >= k1)  # more alpha, never fewer partitions
    order = np.argsort(loads)
    assert np.all(np.diff(k1[order]) >= 0)  # hotter => at least as many


@given(st.floats(min_value=1e-6, max_value=100.0))
@settings(max_examples=50)
def test_partition_load_bounded_by_inverse_alpha(alpha):
    """Per-partition load L_i / k_i <= 1/alpha whenever unclamped."""
    loads = np.linspace(0.1, 50.0, 40)
    ks = partition_counts(loads, alpha)
    per_part = loads / ks
    unclamped = ks > 1  # files where ceil actually bit
    assert np.all(per_part[unclamped] <= 1 / alpha + 1e-9)


def test_rejects_bad_args():
    with pytest.raises(ValueError):
        partition_counts(np.array([1.0]), alpha=0.0)
    with pytest.raises(ValueError):
        partition_counts(np.array([-1.0]), alpha=1.0)
    with pytest.raises(ValueError):
        partition_counts(np.array([1.0]), alpha=1.0, n_servers=0)


def test_partition_sizes(small_population):
    ks = np.ones(small_population.n_files, dtype=np.int64) * 2
    sizes = partition_sizes(small_population, ks)
    assert np.allclose(sizes, small_population.sizes / 2)
    with pytest.raises(ValueError):
        partition_sizes(small_population, ks[:-1])
    with pytest.raises(ValueError):
        partition_sizes(small_population, ks * 0)


def test_max_load(small_population):
    assert max_load(small_population) == small_population.loads.max()
