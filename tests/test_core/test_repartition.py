"""Algorithm 2: plan invariants and timing model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import imbalance_factor
from repro.common import MB, ClusterSpec, Gbps
from repro.core import plan_repartition
from repro.core.placement import (
    place_partitions_random,
    placement_server_loads,
)
from repro.core.partitioner import partition_counts
from repro.core.repartition import (
    repartition_time_parallel,
    repartition_time_sequential,
)
from repro.workloads import paper_fileset, shuffled_popularity


@pytest.fixture
def shifted_setup():
    cluster = ClusterSpec(n_servers=20, bandwidth=Gbps)
    pop = paper_fileset(120, size_mb=50, zipf_exponent=1.05, total_rate=10.0)
    alpha = 2.0 / MB
    old_ks = partition_counts(pop, alpha, n_servers=20)
    old_servers = place_partitions_random(old_ks, 20, seed=0)
    shifted = pop.with_popularities(
        shuffled_popularity(pop.popularities, seed=1)
    )
    plan = plan_repartition(
        shifted, cluster, old_ks, old_servers, alpha=alpha, seed=2
    )
    return cluster, pop, shifted, alpha, old_ks, old_servers, plan


def test_plan_covers_every_file(shifted_setup):
    *_, shifted, alpha, old_ks, old_servers, plan = (
        shifted_setup[0],
        shifted_setup[1],
        shifted_setup[2],
        shifted_setup[3],
        shifted_setup[4],
        shifted_setup[5],
        shifted_setup[6],
    )
    n = shifted.n_files
    assert plan.new_ks.shape == (n,)
    assert len(plan.new_servers_of) == n
    for k, servers in zip(plan.new_ks, plan.new_servers_of):
        assert servers.size == k
        assert np.unique(servers).size == k  # distinct servers


def test_unchanged_files_stay_in_place(shifted_setup):
    _, _, _, _, old_ks, old_servers, plan = shifted_setup
    for i in np.nonzero(~plan.changed)[0]:
        assert np.array_equal(plan.new_servers_of[i], old_servers[i])
        assert plan.repartitioner_of[i] == -1


def test_changed_files_get_local_repartitioner(shifted_setup):
    _, _, _, _, old_ks, old_servers, plan = shifted_setup
    for i in np.nonzero(plan.changed)[0]:
        assert plan.repartitioner_of[i] in old_servers[i]


def test_changed_flags_match_k_difference(shifted_setup):
    _, _, _, _, old_ks, _, plan = shifted_setup
    assert np.array_equal(plan.changed, plan.new_ks != old_ks)


def test_no_shift_means_no_repartition():
    cluster = ClusterSpec(n_servers=10, bandwidth=Gbps)
    pop = paper_fileset(50, size_mb=50, total_rate=5.0)
    alpha = 1.0 / MB
    old_ks = partition_counts(pop, alpha, n_servers=10)
    old_servers = place_partitions_random(old_ks, 10, seed=0)
    plan = plan_repartition(pop, cluster, old_ks, old_servers, alpha=alpha)
    assert plan.n_changed == 0
    assert repartition_time_parallel(plan, pop, cluster, old_ks) == 0.0


def test_parallel_much_faster_than_sequential(shifted_setup):
    cluster, _, shifted, _, old_ks, _, plan = shifted_setup
    par = repartition_time_parallel(plan, shifted, cluster, old_ks)
    seq = repartition_time_sequential(plan, shifted, cluster, old_ks)
    assert par < seq / 5  # the paper reports two orders of magnitude


def test_sequential_time_is_two_full_passes(shifted_setup):
    cluster, _, shifted, _, old_ks, _, plan = shifted_setup
    expected = 2 * shifted.sizes.sum() / cluster.bandwidths[0]
    assert repartition_time_sequential(
        plan, shifted, cluster, old_ks
    ) == pytest.approx(expected)


def test_greedy_plan_balances_load(shifted_setup):
    cluster, _, shifted, _, old_ks, old_servers, plan = shifted_setup
    eta_new = imbalance_factor(
        placement_server_loads(
            plan.new_servers_of, shifted.loads, cluster.n_servers
        )
    )
    eta_stale = imbalance_factor(
        placement_server_loads(old_servers, shifted.loads, cluster.n_servers)
    )
    assert eta_new < eta_stale  # re-balancing must actually help


def test_plan_runs_search_when_alpha_omitted():
    cluster = ClusterSpec(n_servers=10, bandwidth=Gbps)
    pop = paper_fileset(30, size_mb=50, total_rate=5.0)
    old_ks = np.ones(30, dtype=np.int64)
    old_servers = place_partitions_random(old_ks, 10, seed=0)
    plan = plan_repartition(pop, cluster, old_ks, old_servers, seed=1)
    assert plan.alpha > 0


def test_plan_validates_layout():
    cluster = ClusterSpec(n_servers=10, bandwidth=Gbps)
    pop = paper_fileset(30, size_mb=50, total_rate=5.0)
    with pytest.raises(ValueError):
        plan_repartition(
            pop, cluster, np.ones(29, dtype=np.int64), [np.array([0])] * 30
        )
