"""Algorithm 1: initialization, stop rules, and outcome quality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.network import GoodputModel
from repro.common import ClusterSpec, Gbps, MB
from repro.core import optimal_scale_factor, partition_counts
from repro.workloads import BingStragglerProfile, paper_fileset


@pytest.fixture(scope="module")
def pop300():
    return paper_fileset(300, size_mb=100, zipf_exponent=1.05, total_rate=8.0)


@pytest.fixture(scope="module")
def cluster30():
    return ClusterSpec(n_servers=30, bandwidth=Gbps)


def test_initial_alpha_splits_hottest_into_n_over_3(pop300, cluster30):
    result = optimal_scale_factor(pop300, cluster30, seed=0)
    first_alpha = result.trajectory[0][0]
    k_max = partition_counts(pop300, first_alpha, n_servers=30).max()
    assert k_max == 10  # N/3


def test_paper_mode_stops_on_flatness(pop300, cluster30):
    result = optimal_scale_factor(pop300, cluster30, mode="paper", seed=0)
    assert result.n_iterations < 60
    # Final two trajectory bounds differ by <= 1 %, or the clamp was hit.
    if result.n_iterations >= 2:
        (_, b_prev), (_, b_last) = result.trajectory[-2:]
        ks_last = partition_counts(
            pop300, result.trajectory[-1][0], n_servers=30
        )
        assert (
            abs(b_last - b_prev) <= 0.011 * b_prev or ks_last.min() == 30
        )


def test_returned_alpha_is_best_of_trajectory(pop300, cluster30):
    result = optimal_scale_factor(pop300, cluster30, seed=0)
    finite = [b for _, b in result.trajectory if np.isfinite(b)]
    assert result.bound == pytest.approx(min(finite))


def test_sweep_mode_reaches_saturation_or_cap(pop300, cluster30):
    result = optimal_scale_factor(pop300, cluster30, mode="sweep", seed=0)
    last_alpha = result.trajectory[-1][0]
    ks = partition_counts(pop300, last_alpha, n_servers=30)
    assert ks.min() == 30 or result.n_iterations == 60


def test_sweep_bound_no_worse_than_paper(pop300, cluster30):
    kwargs = dict(
        goodput=GoodputModel(),
        client_cap=True,
        service_distribution="deterministic",
        seed=0,
    )
    paper = optimal_scale_factor(pop300, cluster30, mode="paper", **kwargs)
    sweep = optimal_scale_factor(pop300, cluster30, mode="sweep", **kwargs)
    assert sweep.bound <= paper.bound + 1e-12


def test_selective_outcome_on_fig11_workload(cluster30):
    """100 files, straggler-aware paper search: only a minority split
    (the Fig. 11 result)."""
    pop = paper_fileset(100, size_mb=100, zipf_exponent=1.05, total_rate=8.0)
    result = optimal_scale_factor(
        pop,
        cluster30,
        goodput=GoodputModel(),
        straggler_moments=BingStragglerProfile().moments(),
        client_cap=True,
        service_distribution="deterministic",
        mode="paper",
        seed=0,
    )
    ks = partition_counts(pop, result.alpha, n_servers=30)
    split_fraction = (ks > 1).mean()
    assert 0.02 <= split_fraction <= 0.6
    assert ks.max() > 1  # the hottest file definitely splits


def test_alpha_grows_with_load(cluster30):
    """Heavier aggregate load should not shrink the chosen alpha."""
    light = paper_fileset(200, size_mb=100, total_rate=4.0)
    heavy = paper_fileset(200, size_mb=100, total_rate=20.0)
    kwargs = dict(
        goodput=GoodputModel(),
        client_cap=True,
        service_distribution="deterministic",
        mode="sweep",
        seed=0,
    )
    a_light = optimal_scale_factor(light, cluster30, **kwargs).alpha
    a_heavy = optimal_scale_factor(heavy, cluster30, **kwargs).alpha
    assert a_heavy >= a_light * 0.5  # never collapses under load


def test_validation(pop300, cluster30):
    with pytest.raises(ValueError):
        optimal_scale_factor(pop300, cluster30, growth=1.0)
    with pytest.raises(ValueError):
        optimal_scale_factor(pop300, cluster30, improvement_threshold=0.0)
    with pytest.raises(ValueError):
        optimal_scale_factor(pop300, cluster30, mode="magic")


def test_trajectory_alphas_form_geometric_ladder(pop300, cluster30):
    result = optimal_scale_factor(pop300, cluster30, seed=0)
    alphas = [a for a, _ in result.trajectory]
    ratios = np.diff(np.log(alphas))
    assert np.allclose(ratios, np.log(1.5))


def test_deterministic_given_seed(pop300, cluster30):
    a = optimal_scale_factor(pop300, cluster30, seed=42)
    b = optimal_scale_factor(pop300, cluster30, seed=42)
    assert a.alpha == b.alpha and a.bound == b.bound


def test_alpha_in_sane_units(pop300, cluster30):
    """On the Fig. 8 workload the paper-mode elbow lands near 1-3 in
    MB-load units (Fig. 8 shows it at ~1-2)."""
    result = optimal_scale_factor(pop300, cluster30, mode="paper", seed=0)
    assert 0.2 <= result.alpha * MB <= 10.0
