"""Property-based invariants of Algorithm 2's repartition plans."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import MB, ClusterSpec, FilePopulation, Gbps
from repro.core import plan_repartition
from repro.core.partitioner import partition_counts
from repro.core.placement import place_partitions_random
from repro.workloads.popularity import zipf_popularity

N_SERVERS = 12


@st.composite
def shifted_workloads(draw):
    n_files = draw(st.integers(min_value=2, max_value=40))
    sizes = np.array(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=200.0),
                min_size=n_files,
                max_size=n_files,
            )
        )
    ) * MB
    exponent = draw(st.floats(min_value=0.0, max_value=1.5))
    rate = draw(st.floats(min_value=0.5, max_value=20.0))
    perm_seed = draw(st.integers(min_value=0, max_value=2**16))
    alpha_mb = draw(st.floats(min_value=0.05, max_value=50.0))
    pop = FilePopulation(
        sizes=sizes,
        popularities=zipf_popularity(n_files, exponent),
        total_rate=rate,
    )
    rng = np.random.default_rng(perm_seed)
    shifted = pop.with_popularities(rng.permutation(pop.popularities))
    return pop, shifted, alpha_mb / MB


@given(shifted_workloads())
@settings(max_examples=80, deadline=None)
def test_plan_invariants(workload):
    pop, shifted, alpha = workload
    cluster = ClusterSpec(n_servers=N_SERVERS, bandwidth=Gbps)
    old_ks = partition_counts(pop, alpha, n_servers=N_SERVERS)
    old_servers = place_partitions_random(old_ks, N_SERVERS, seed=0)
    plan = plan_repartition(
        shifted, cluster, old_ks, old_servers, alpha=alpha, seed=1
    )

    expected_ks = partition_counts(shifted, alpha, n_servers=N_SERVERS)
    # 1. The plan realizes exactly Eq. (1) under the new popularity.
    assert np.array_equal(plan.new_ks, expected_ks)
    # 2. changed <=> the partition count moved.
    assert np.array_equal(plan.changed, expected_ks != old_ks)
    for i in range(pop.n_files):
        servers = plan.new_servers_of[i]
        # 3. Every file's layout matches its count, on distinct servers.
        assert servers.size == plan.new_ks[i]
        assert np.unique(servers).size == servers.size
        if plan.changed[i]:
            # 4. Changed files are handled by a repartitioner that already
            #    holds one of their partitions (no extra collection hop).
            assert plan.repartitioner_of[i] in old_servers[i]
        else:
            # 5. Unchanged files are never moved.
            assert np.array_equal(servers, old_servers[i])
            assert plan.repartitioner_of[i] == -1
    # 6. Fraction bookkeeping.
    assert plan.changed_fraction == plan.changed.mean()
