"""Eq. (9) solver: correctness against brute force and scipy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import minimize_scalar

from repro.core.convex import fork_join_upper_bound, fork_join_upper_bound_batch


def _objective(z, means, variances):
    diff = means - z
    return z + 0.5 * diff.sum() + 0.5 * np.sqrt(diff**2 + variances).sum()


def test_single_queue_bound_is_the_mean():
    assert fork_join_upper_bound([2.5], [4.0]) == pytest.approx(2.5)


def test_zero_variance_bound_is_max_mean():
    """With no variance the max of sojourns is deterministic."""
    means = np.array([1.0, 3.0, 2.0])
    out = fork_join_upper_bound(means, np.zeros(3))
    assert out == pytest.approx(3.0, abs=1e-6)


def test_matches_scipy_brent():
    rng = np.random.default_rng(0)
    for _ in range(20):
        m = rng.integers(2, 12)
        means = rng.uniform(0.1, 5.0, m)
        variances = rng.uniform(0.0, 4.0, m)
        ours = fork_join_upper_bound(means, variances)
        ref = minimize_scalar(
            lambda z: _objective(z, means, variances),
            bracket=(means.min() - 10, means.max() + 10),
        )
        assert ours == pytest.approx(ref.fun, rel=1e-6)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=100.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=2,
        max_size=10,
    )
)
@settings(max_examples=100, deadline=None)
def test_bound_at_least_max_mean(queue_stats):
    """E[max] >= max E => the upper bound must be too."""
    means = np.array([m for m, _ in queue_stats])
    variances = np.array([v for _, v in queue_stats])
    out = fork_join_upper_bound(means, variances)
    assert out >= means.max() - 1e-8


@given(
    st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=8)
)
@settings(max_examples=60, deadline=None)
def test_bound_increases_with_variance(means):
    means = np.array(means)
    low = fork_join_upper_bound(means, np.full(means.size, 0.1))
    high = fork_join_upper_bound(means, np.full(means.size, 5.0))
    assert high >= low


def test_batch_matches_scalar():
    rng = np.random.default_rng(1)
    means = rng.uniform(0.1, 3.0, (30, 5))
    variances = rng.uniform(0.0, 2.0, (30, 5))
    batch = fork_join_upper_bound_batch(means, variances)
    for i in range(0, 30, 7):
        assert batch[i] == pytest.approx(
            fork_join_upper_bound(means[i], variances[i])
        )


def test_infinite_stats_give_infinite_bound():
    out = fork_join_upper_bound_batch(
        np.array([[1.0, np.inf], [1.0, 2.0]]),
        np.array([[1.0, 1.0], [1.0, 1.0]]),
    )
    assert np.isinf(out[0])
    assert np.isfinite(out[1])


def test_input_validation():
    with pytest.raises(ValueError):
        fork_join_upper_bound_batch(np.ones((2, 3)), np.ones((2, 2)))
    with pytest.raises(ValueError):
        fork_join_upper_bound_batch(np.ones((1, 2)), -np.ones((1, 2)))
