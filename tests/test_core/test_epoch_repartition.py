"""Epoch-aware Algorithm 2: membership-forced moves, patching, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ChurnSchedule, ClusterTopology
from repro.common import MB, ClusterSpec, FilePopulation
from repro.core import plan_epoch_repartition
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset


def _layout(n_files=20, n_servers=6, seed=5):
    pop = paper_fileset(n_files, size_mb=10, zipf_exponent=1.1, total_rate=4.0)
    policy = SPCachePolicy(pop, ClusterSpec(n_servers, 1e9), seed=seed)
    layout = [np.sort(np.asarray(s)) for s in policy.servers_of]
    return pop, policy, policy.partition_counts(), layout


def test_pure_add_with_stable_cap_moves_nothing():
    pop, policy, ks, layout = _layout()
    topo = ClusterTopology(6, ChurnSchedule().add(1.0, 2))
    plan = plan_epoch_repartition(
        pop, topo.final, ks, layout,
        alpha=policy.alpha, max_partitions=6, id_space=topo.id_space,
    )
    assert plan.n_changed == 0
    assert plan.moved_bytes == 0.0
    assert plan.disruption_window_s == 0.0
    for old, new in zip(layout, plan.new_servers_of):
        assert np.array_equal(old, new)


def test_removal_forces_only_hosting_files():
    pop, policy, ks, layout = _layout()
    # Replace server 2 with a fresh one at the same timestamp.
    topo = ClusterTopology(
        6, ChurnSchedule().remove_ids(1.0, [2]).add(1.0, 1)
    )
    epoch = topo.final
    plan = plan_epoch_repartition(
        pop, epoch, ks, layout,
        alpha=policy.alpha, max_partitions=6, id_space=topo.id_space,
    )
    hosting = {i for i, s in enumerate(layout) if 2 in s}
    assert set(np.nonzero(plan.changed)[0]) == hosting
    assert set(np.nonzero(plan.epoch_forced)[0]) == hosting
    # k is unchanged for every forced file, so every move is a patch.
    assert plan.n_patched == plan.n_changed > 0
    active = set(epoch.server_ids)
    for i, servers in enumerate(plan.new_servers_of):
        assert set(servers) <= active
        assert np.unique(servers).size == servers.size
        assert servers.size == plan.new_ks[i]
        if i in hosting:
            # Survivors stay put; only the lost slot was re-assigned.
            survivors = set(layout[i]) - {2}
            assert survivors <= set(servers)
    # Patched bytes: each forced file re-pulls exactly one S_i/k_i slice.
    expected = sum(pop.sizes[i] / plan.new_ks[i] for i in hosting)
    assert plan.moved_bytes == pytest.approx(expected)


def test_k_change_triggers_full_repartition():
    sizes = np.full(4, 100.0) * MB
    pop = FilePopulation(
        sizes=sizes,
        popularities=np.full(4, 0.25),
        total_rate=4.0,
    )
    ks = np.full(4, 2, dtype=np.int64)
    layout = [np.array([0, 1]), np.array([1, 2]), np.array([2, 3]),
              np.array([3, 0])]
    topo = ClusterTopology(4, ChurnSchedule().add(1.0, 2))
    # alpha * L_i = 4 for every file: all re-scale 2 -> 4, full
    # Algorithm 2, no patches.
    plan = plan_epoch_repartition(
        pop, topo.final, ks, layout,
        alpha=16 / (100.0 * MB), id_space=topo.id_space,
    )
    assert plan.n_changed == 4
    assert plan.n_patched == 0
    assert np.all(plan.new_ks == 4)
    assert np.all(plan.repartitioner_of[plan.changed] >= 0)
    assert plan.moved_bytes > 0


def test_disruption_window_is_slowest_server():
    pop, policy, ks, layout = _layout()
    topo = ClusterTopology(
        6, ChurnSchedule().remove_ids(1.0, [0]).add(1.0, 1)
    )
    plan = plan_epoch_repartition(
        pop, topo.final, ks, layout,
        alpha=policy.alpha, max_partitions=6, id_space=topo.id_space,
    )
    bw = topo.final.spec.bandwidths[0]
    expected = plan.per_server_bytes[list(topo.final.server_ids)].max() / bw
    assert plan.disruption_window_s == pytest.approx(expected)


def test_old_layout_shape_is_validated():
    pop, policy, ks, layout = _layout()
    topo = ClusterTopology(6, ChurnSchedule().add(1.0))
    with pytest.raises(ValueError, match="cover every file"):
        plan_epoch_repartition(pop, topo.final, ks[:-1], layout)


def test_id_space_must_cover_active_ids():
    pop, policy, ks, layout = _layout()
    topo = ClusterTopology(6, ChurnSchedule().add(1.0))
    with pytest.raises(ValueError, match="id_space"):
        plan_epoch_repartition(
            pop, topo.final, ks, layout, alpha=policy.alpha, id_space=6
        )
