"""Placement strategies: distinctness, balance, incremental extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import imbalance_factor
from repro.core.placement import (
    extend_placement,
    place_partitions_greedy,
    place_partitions_random,
    placement_server_loads,
)


@given(
    st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=40),
    st.integers(min_value=10, max_value=30),
)
@settings(max_examples=60)
def test_random_placement_distinct_servers(ks, n_servers):
    ks = np.array(ks)
    servers_of = place_partitions_random(ks, n_servers, seed=0)
    for k, servers in zip(ks, servers_of):
        assert servers.size == k
        assert np.unique(servers).size == k
        assert servers.min() >= 0 and servers.max() < n_servers


def test_random_placement_rejects_oversized_k():
    with pytest.raises(ValueError):
        place_partitions_random(np.array([5]), 4)
    with pytest.raises(ValueError):
        place_partitions_random(np.array([0]), 4)


def test_greedy_placement_balances_better_than_random():
    rng = np.random.default_rng(0)
    loads = rng.pareto(1.2, 200) + 0.1
    ks = np.minimum(np.ceil(loads).astype(np.int64), 20)
    greedy = place_partitions_greedy(ks, loads, 20)
    random = place_partitions_random(ks, 20, seed=1)
    eta_greedy = imbalance_factor(placement_server_loads(greedy, loads, 20))
    eta_random = imbalance_factor(placement_server_loads(random, loads, 20))
    assert eta_greedy < eta_random


def test_greedy_respects_distinctness():
    loads = np.array([10.0, 5.0, 1.0])
    ks = np.array([4, 2, 1])
    servers_of = place_partitions_greedy(ks, loads, 5)
    for k, servers in zip(ks, servers_of):
        assert np.unique(servers).size == k


def test_greedy_uses_initial_loads():
    """A pre-loaded server should be avoided."""
    initial = np.array([100.0, 0.0, 0.0])
    servers_of = place_partitions_greedy(
        np.array([2]), np.array([1.0]), 3, initial_server_loads=initial
    )
    assert 0 not in servers_of[0]


def test_extend_placement_grows_without_moving():
    old = place_partitions_random(np.array([2, 1]), 10, seed=0)
    new = extend_placement(old, np.array([5, 1]), 10, seed=1)
    assert np.array_equal(new[0][:2], old[0])  # existing servers kept
    assert np.unique(new[0]).size == 5
    assert np.array_equal(new[1], old[1])


def test_extend_placement_shrinks_by_truncation():
    old = place_partitions_random(np.array([6]), 10, seed=0)
    new = extend_placement(old, np.array([3]), 10, seed=1)
    assert np.array_equal(new[0], old[0][:3])


def test_extend_placement_validation():
    old = place_partitions_random(np.array([2]), 4, seed=0)
    with pytest.raises(ValueError):
        extend_placement(old, np.array([5]), 4)
    with pytest.raises(ValueError):
        extend_placement(old, np.array([1, 1]), 4)


def test_server_loads_accounting():
    servers_of = [np.array([0, 1]), np.array([1])]
    loads = np.array([4.0, 3.0])
    out = placement_server_loads(servers_of, loads, 3)
    assert np.allclose(out, [2.0, 5.0, 0.0])


def test_server_loads_alignment_error():
    with pytest.raises(ValueError):
        placement_server_loads([np.array([0])], np.array([1.0, 2.0]), 2)
