"""Theorem 1: closed forms, Monte Carlo agreement, asymptotics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import MB
from repro.core.partitioner import partition_counts
from repro.core.theory import (
    ec_load_variance,
    monte_carlo_load_variance,
    sp_load_variance,
    variance_ratio,
    variance_ratio_limit,
)
from repro.workloads import paper_fileset


@pytest.fixture(scope="module")
def loads():
    return paper_fileset(100, size_mb=100, zipf_exponent=1.1).loads


def test_sp_variance_monte_carlo_agrees(loads):
    alpha, n_servers = 1.0 / MB, 100
    exact = sp_load_variance(loads, alpha, n_servers)
    ks = partition_counts(loads, alpha, n_servers=n_servers)
    mc = monte_carlo_load_variance(
        loads, ks, n_servers, serve_probability_extra=0, n_trials=20000, seed=0
    )
    assert mc == pytest.approx(exact, rel=0.1)


def test_ec_variance_monte_carlo_agrees(loads):
    k, n, n_servers = 10, 14, 100
    exact = ec_load_variance(loads, k, n, n_servers)
    ks = np.full(loads.size, k, dtype=np.int64)
    mc = monte_carlo_load_variance(
        loads, ks, n_servers, serve_probability_extra=1, n_trials=20000, seed=1
    )
    assert mc == pytest.approx(exact, rel=0.1)


def test_ratio_exact_composition(loads):
    alpha, k, n, n_servers = 1.0 / MB, 10, 14, 100
    ratio = variance_ratio(loads, alpha, k, n, n_servers)
    assert ratio == pytest.approx(
        ec_load_variance(loads, k, n, n_servers)
        / sp_load_variance(loads, alpha, n_servers)
    )


def test_ratio_approaches_limit_for_large_n(loads):
    """Eq. (2)'s limit holds as N -> infinity — *under the theorem's
    assumption* that k_i = alpha * L_i exactly.  We pick alpha large enough
    that no file sits on the k >= 1 floor and the ceil rounding is < 3 %.
    """
    alpha = 40.0 / loads.min()  # every k_i >= 40: ceil error negligible
    k, n = 10, 14
    limit = variance_ratio_limit(loads, alpha, k)
    big = variance_ratio(loads, alpha, k, n, n_servers=100_000_000)
    # The paper's derivation drops late binding's +1 in (k+1)/N ~ k/N;
    # the exact ratio carries it, hence the (k+1)/k factor.
    assert big == pytest.approx(limit * (k + 1) / k, rel=0.03)


def test_floor_at_one_partition_weakens_the_limit(loads):
    """With realistic alphas most files sit at k = 1, so the exact ratio
    deviates from Eq. (2)'s idealized limit — same order, not equal."""
    alpha, k, n = 0.5 / MB, 10, 14
    limit = variance_ratio_limit(loads, alpha, k)
    exact = variance_ratio(loads, alpha, k, n, n_servers=100_000)
    assert 0.2 * limit < exact < 5 * limit


def test_sp_beats_ec_under_heavy_skew():
    """With a very hot file the ratio scales like O(L_max): EC-Cache's
    per-server variance dwarfs SP-Cache's."""
    loads = paper_fileset(200, size_mb=100, zipf_exponent=1.4).loads
    ratio = variance_ratio(loads, alpha=10.0 / MB, k=10, n=14, n_servers=5000)
    assert ratio > 10


def test_limit_grows_linearly_with_lmax():
    """Doubling every load doubles the Eq. (2) limit (O(L_max) scaling)."""
    loads = paper_fileset(50, size_mb=100, zipf_exponent=1.2).loads
    a, k = 1.0 / MB, 10
    assert variance_ratio_limit(loads * 2, a, k) == pytest.approx(
        2 * variance_ratio_limit(loads, a, k)
    )


def test_validation(loads):
    with pytest.raises(ValueError):
        ec_load_variance(loads, k=10, n=5, n_servers=100)
    with pytest.raises(ValueError):
        variance_ratio_limit(np.zeros(3), 1.0, 10)
    with pytest.raises(ValueError):
        monte_carlo_load_variance(
            loads, np.ones(loads.size - 1, dtype=np.int64), 100
        )
    with pytest.raises(ValueError):
        monte_carlo_load_variance(
            loads, np.full(loads.size, 200, dtype=np.int64), 100
        )
