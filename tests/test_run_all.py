"""The run_all CLI: argument handling and output files."""

from __future__ import annotations

from repro.experiments.run_all import main


def test_single_cheap_experiment(tmp_path, capsys):
    code = main(["--only", "fig06", "--out", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig06" in out and "goodput_1gbps" in out
    written = (tmp_path / "fig06.txt").read_text()
    assert "partitions" in written


def test_unknown_experiment_errors(tmp_path, capsys):
    code = main(["--only", "fig99", "--out", str(tmp_path)])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_scale_flag_reaches_runner(tmp_path, capsys):
    code = main(["--only", "fig03", "--scale", "0.05", "--out", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "fig03.txt").exists()
