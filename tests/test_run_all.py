"""The run_all CLI: argument handling, output files, and run telemetry."""

from __future__ import annotations

import json

from repro.experiments.run_all import main, run_experiment
from repro.obs import load_events, load_manifest, span_tree, validate_manifest


def test_single_cheap_experiment(tmp_path, capsys):
    code = main(["--only", "fig06", "--out", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig06" in out and "goodput_1gbps" in out
    written = (tmp_path / "fig06.txt").read_text()
    assert "partitions" in written


def test_unknown_experiment_errors(tmp_path, capsys):
    code = main(["--only", "fig99", "--out", str(tmp_path)])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_scale_flag_reaches_runner(tmp_path, capsys):
    code = main(["--only", "fig03", "--scale", "0.05", "--out", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "fig03.txt").exists()


def test_fig10_emits_schema_valid_manifest(tmp_path, capsys):
    """Acceptance: `run_all --only fig10 --scale 0.1` writes a manifest
    that passes schema validation and carries spans + metrics."""
    assert main(["--only", "fig10", "--scale", "0.1",
                 "--out", str(tmp_path)]) == 0
    manifest = load_manifest(tmp_path / "fig10.json")
    assert validate_manifest(manifest) is manifest
    assert manifest["experiment"] == "fig10"
    assert manifest["scale"] == 0.1
    assert manifest["config"]["timing_rows"] is True
    assert manifest["wall_s"] > 0
    assert len(manifest["rows"]) >= 1
    names = {s["name"] for s in manifest["spans"]}
    assert "experiment" in names and "scale_search" in names
    assert any(k.startswith("span.") for k in manifest["metrics"])


def test_run_experiment_isolates_metrics_registry():
    from repro.obs import get_registry

    before = get_registry()
    rows, manifest = run_experiment("fig06")
    assert get_registry() is before  # restored after the run
    assert manifest["rows"] == rows
    assert manifest["scale"] is None  # fig06 takes no --scale


def test_traced_run_replays_to_span_tree(tmp_path, capsys):
    """Satellite: a traced pass reconstructs the span hierarchy — parent
    ids resolve, durations are non-negative, the root covers children."""
    trace = tmp_path / "run.jsonl"
    chrome = tmp_path / "run.trace.json"
    assert main(["--only", "fig10", "--scale", "0.1",
                 "--out", str(tmp_path), "--trace", str(trace),
                 "--chrome-trace", str(chrome)]) == 0

    roots = span_tree(load_events(trace))
    exp_roots = [r for r in roots if r["name"] == "experiment"]
    assert len(exp_roots) == 1
    root = exp_roots[0]
    assert root["parent"] is None and root["children"]

    def walk(node):
        yield node
        for child in node["children"]:
            yield from walk(child)

    nodes = list(walk(root))
    ids = {n["span_id"] for n in nodes}
    for node in nodes:
        assert node["wall_s"] >= 0
        for child in node["children"]:
            assert child["parent"] in ids
            assert node["ts"] <= child["ts"]
            assert node["ts"] + node["wall_s"] >= child["ts"] + child["wall_s"]

    # The Chrome export of the same pass is structurally valid.
    doc = json.loads(chrome.read_text())
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == len(nodes)
    assert all(e["dur"] >= 0 for e in xs)


def test_timeline_experiment_manifest_carries_sections(tmp_path, capsys):
    """fig12 is in the timeline set: its manifest must carry schema-valid
    sections, one per scheme simulated, and flag it in the config."""
    chrome = tmp_path / "run.trace.json"
    assert main(["--only", "fig12", "--scale", "0.1", "--out", str(tmp_path),
                 "--chrome-trace", str(chrome)]) == 0
    manifest = load_manifest(tmp_path / "fig12.json")
    assert validate_manifest(manifest) is manifest
    assert manifest["config"]["timelines"] is True
    sections = manifest["timelines"]
    assert sections
    for section in sections:
        assert section["scheme"]
        assert section["n_windows"] >= 0
        assert "attribution" in section["tail"]

    # The Chrome trace of the same pass embeds the counter events.
    doc = json.loads(chrome.read_text())
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters
    assert {e["name"].rsplit(" ", 1)[-1] for e in counters} == {
        "bytes", "busy", "queue",
    }


def test_non_timeline_experiment_manifest_has_empty_sections(tmp_path, capsys):
    assert main(["--only", "fig10", "--scale", "0.1",
                 "--out", str(tmp_path)]) == 0
    manifest = load_manifest(tmp_path / "fig10.json")
    assert manifest["timelines"] == []
    assert manifest["config"]["timelines"] is False
