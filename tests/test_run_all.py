"""The run_all CLI: argument handling, output files, and run telemetry."""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments import registry as experiment_registry
from repro.experiments.registry import experiment
from repro.experiments.run_all import main, run_experiment
from repro.obs import (
    get_registry,
    load_events,
    load_manifest,
    span_tree,
    validate_manifest,
)
from repro.obs.report import diff_manifests


def test_single_cheap_experiment(tmp_path, capsys):
    code = main(["--only", "fig06", "--out", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig06" in out and "goodput_1gbps" in out
    written = (tmp_path / "fig06.txt").read_text()
    assert "partitions" in written


def test_unknown_experiment_errors(tmp_path, capsys):
    code = main(["--only", "fig99", "--out", str(tmp_path)])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "fig01" in err and "theorem1" in err  # fail-fast lists valid names


def test_only_accepts_comma_lists_and_globs(tmp_path, capsys):
    code = main(["--only", "fig06,fig0[34]", "--scale", "0.05",
                 "--out", str(tmp_path)])
    assert code == 0
    for name in ("fig03", "fig04", "fig06"):
        assert (tmp_path / f"{name}.json").exists()
    assert not (tmp_path / "fig05.json").exists()


def test_list_prints_registry_table(tmp_path, capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "experiment registry" in out
    assert "fig13" in out and "theorem1" in out
    assert "sweep_params" in out and "timeline" in out


def test_jobs_rejects_tracing_and_bad_counts(tmp_path, capsys):
    assert main(["--jobs", "0", "--out", str(tmp_path)]) == 2
    assert main(["--jobs", "2", "--trace", str(tmp_path / "t.jsonl"),
                 "--out", str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "--jobs" in err


def test_parallel_pass_matches_serial_modulo_wall(tmp_path, capsys):
    """Acceptance: a --jobs pass produces the same rows and diff-clean
    manifests (wall-clock spans excepted) as a serial pass."""
    serial, parallel = tmp_path / "serial", tmp_path / "parallel"
    assert main(["--only", "fig03,fig06", "--scale", "0.05",
                 "--out", str(serial)]) == 0
    assert main(["--only", "fig03,fig06", "--scale", "0.05", "--jobs", "2",
                 "--out", str(parallel)]) == 0
    base, new = {}, {}
    for name in ("fig03", "fig06"):
        base[name] = load_manifest(serial / f"{name}.json")
        new[name] = load_manifest(parallel / f"{name}.json")
        assert new[name]["rows"] == base[name]["rows"]
        assert new[name]["config_hash"] == base[name]["config_hash"]
    assert diff_manifests(base, new, wall_tolerance=math.inf) == []


def test_run_experiment_restores_registry_when_runner_raises():
    """Regression (teardown in try/finally): a raising runner must not
    leak the private metrics registry into the process."""

    @experiment(paper={"claim": "boom"}, name="zz_failing")
    def run_zz_failing(scale: float = 1.0) -> list[dict]:
        """Deliberately failing spec."""
        raise RuntimeError("runner exploded")

    before = get_registry()
    try:
        with pytest.raises(RuntimeError, match="runner exploded"):
            run_experiment("zz_failing", scale=0.5)
        assert get_registry() is before
        # The wrapper is reusable afterwards: telemetry contexts unwound.
        rows, manifest = run_experiment("fig06")
        assert manifest["experiment"] == "fig06" and rows
        assert get_registry() is before
    finally:
        experiment_registry._REGISTRY.pop("zz_failing", None)


def test_run_experiment_forwards_sweep_params():
    rows, manifest = run_experiment("fig06", ks=(1, 2))
    assert [r["partitions"] for r in rows] == [1, 2]
    assert manifest["config"]["params"] == {"ks": "(1, 2)"}


def test_scale_flag_reaches_runner(tmp_path, capsys):
    code = main(["--only", "fig03", "--scale", "0.05", "--out", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "fig03.txt").exists()


def test_fig10_emits_schema_valid_manifest(tmp_path, capsys):
    """Acceptance: `run_all --only fig10 --scale 0.1` writes a manifest
    that passes schema validation and carries spans + metrics."""
    assert main(["--only", "fig10", "--scale", "0.1",
                 "--out", str(tmp_path)]) == 0
    manifest = load_manifest(tmp_path / "fig10.json")
    assert validate_manifest(manifest) is manifest
    assert manifest["experiment"] == "fig10"
    assert manifest["scale"] == 0.1
    assert manifest["config"]["timing_rows"] is True
    assert manifest["wall_s"] > 0
    assert len(manifest["rows"]) >= 1
    names = {s["name"] for s in manifest["spans"]}
    assert "experiment" in names and "scale_search" in names
    assert any(k.startswith("span.") for k in manifest["metrics"])


def test_run_experiment_isolates_metrics_registry():
    from repro.obs import get_registry

    before = get_registry()
    rows, manifest = run_experiment("fig06")
    assert get_registry() is before  # restored after the run
    assert manifest["rows"] == rows
    assert manifest["scale"] is None  # fig06 takes no --scale


def test_traced_run_replays_to_span_tree(tmp_path, capsys):
    """Satellite: a traced pass reconstructs the span hierarchy — parent
    ids resolve, durations are non-negative, the root covers children."""
    trace = tmp_path / "run.jsonl"
    chrome = tmp_path / "run.trace.json"
    assert main(["--only", "fig10", "--scale", "0.1",
                 "--out", str(tmp_path), "--trace", str(trace),
                 "--chrome-trace", str(chrome)]) == 0

    roots = span_tree(load_events(trace))
    exp_roots = [r for r in roots if r["name"] == "experiment"]
    assert len(exp_roots) == 1
    root = exp_roots[0]
    assert root["parent"] is None and root["children"]

    def walk(node):
        yield node
        for child in node["children"]:
            yield from walk(child)

    nodes = list(walk(root))
    ids = {n["span_id"] for n in nodes}
    for node in nodes:
        assert node["wall_s"] >= 0
        for child in node["children"]:
            assert child["parent"] in ids
            assert node["ts"] <= child["ts"]
            assert node["ts"] + node["wall_s"] >= child["ts"] + child["wall_s"]

    # The Chrome export of the same pass is structurally valid.
    doc = json.loads(chrome.read_text())
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == len(nodes)
    assert all(e["dur"] >= 0 for e in xs)


def test_timeline_experiment_manifest_carries_sections(tmp_path, capsys):
    """fig12 is in the timeline set: its manifest must carry schema-valid
    sections, one per scheme simulated, and flag it in the config."""
    chrome = tmp_path / "run.trace.json"
    assert main(["--only", "fig12", "--scale", "0.1", "--out", str(tmp_path),
                 "--chrome-trace", str(chrome)]) == 0
    manifest = load_manifest(tmp_path / "fig12.json")
    assert validate_manifest(manifest) is manifest
    assert manifest["config"]["timelines"] is True
    sections = manifest["timelines"]
    assert sections
    for section in sections:
        assert section["scheme"]
        assert section["n_windows"] >= 0
        assert "attribution" in section["tail"]

    # The Chrome trace of the same pass embeds the counter events.
    doc = json.loads(chrome.read_text())
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters
    assert {e["name"].rsplit(" ", 1)[-1] for e in counters} == {
        "bytes", "busy", "queue",
    }


def test_non_timeline_experiment_manifest_has_empty_sections(tmp_path, capsys):
    assert main(["--only", "fig10", "--scale", "0.1",
                 "--out", str(tmp_path)]) == 0
    manifest = load_manifest(tmp_path / "fig10.json")
    assert manifest["timelines"] == []
    assert manifest["config"]["timelines"] is False
    assert manifest["membership"] == []


def test_churn_experiment_manifest_carries_membership(tmp_path, capsys):
    """fig_churn publishes one schema-valid membership section per
    placement strategy, with per-epoch bytes-moved accounting."""
    assert main(["--only", "fig_churn", "--scale", "0.1",
                 "--out", str(tmp_path)]) == 0
    manifest = load_manifest(tmp_path / "fig_churn.json")
    assert validate_manifest(manifest) is manifest
    sections = manifest["membership"]
    assert {s["scheme"] for s in sections} == {
        "hash-mod", "ring", "sp-cache"
    }
    for section in sections:
        assert section["n_epochs"] == len(section["epochs"]) >= 2
        assert section["events"]
        for entry in section["epochs"]:
            assert entry["moved_bytes"] >= 0.0
            assert entry["disruption_window_s"] >= 0.0
        # The epoch-0 baseline never moves anything.
        assert section["epochs"][0]["moved_bytes"] == 0.0
