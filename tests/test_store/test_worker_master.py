"""Worker block store and master metadata service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import get_registry, reset_registry
from repro.store.master import Master, PartitionLocation
from repro.store.worker import BlockNotFound, Worker


class TestBlockNotFound:
    @pytest.fixture(autouse=True)
    def clean_registry(self):
        reset_registry()
        yield
        reset_registry()

    def test_is_keyerror_subclass(self):
        """Existing recovery paths catch KeyError; the dedicated exception
        must keep satisfying them."""
        assert issubclass(BlockNotFound, KeyError)

    def test_get_missing_raises_with_context(self):
        w = Worker(3)
        with pytest.raises(BlockNotFound) as exc:
            w.get_block(9, 2)
        assert exc.value.worker_id == 3
        assert exc.value.file_id == 9
        assert exc.value.index == 2
        assert "worker 3" in str(exc.value)

    def test_delete_missing_raises(self):
        with pytest.raises(BlockNotFound):
            Worker(0).delete_block(9, 9)

    def test_misses_counted_per_op(self):
        w = Worker(1)
        with pytest.raises(BlockNotFound):
            w.get_block(5, 0)
        with pytest.raises(BlockNotFound):
            w.get_block(5, 1)
        with pytest.raises(BlockNotFound):
            w.delete_block(5, 0)
        reg = get_registry()
        assert reg.counter(
            "store.block_misses", worker_id=1, op="get"
        ).snapshot() == 2.0
        assert reg.counter(
            "store.block_misses", worker_id=1, op="delete"
        ).snapshot() == 1.0


class TestWorker:
    def test_put_get_roundtrip(self):
        w = Worker(0)
        w.put_block(1, 0, b"hello")
        assert w.get_block(1, 0) == b"hello"
        assert w.bytes_served == 5
        assert w.n_blocks == 1

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            Worker(0).get_block(9, 9)

    def test_capacity_evicts_lru(self):
        w = Worker(0, capacity=10)
        w.put_block(1, 0, b"aaaaaa")
        evicted = w.put_block(2, 0, b"bbbbbb")
        assert evicted == [(1, 0)]
        assert (1, 0) not in w
        assert (2, 0) in w

    def test_get_refreshes_recency(self):
        w = Worker(0, capacity=12)
        w.put_block(1, 0, b"aaaa")
        w.put_block(2, 0, b"bbbb")
        w.get_block(1, 0)
        evicted = w.put_block(3, 0, b"cccccc")
        assert (2, 0) in [tuple(e) for e in evicted]
        assert (1, 0) in w

    def test_delete_file_drops_all_blocks(self):
        w = Worker(0)
        w.put_block(1, 0, b"a")
        w.put_block(1, 1, b"b")
        w.put_block(2, 0, b"c")
        assert w.delete_file(1) == 2
        assert w.n_blocks == 1

    def test_crash_loses_everything(self):
        w = Worker(0, capacity=100)
        w.put_block(1, 0, b"data")
        w.crash()
        assert w.n_blocks == 0
        w.put_block(1, 0, b"data")  # still usable after crash
        assert w.get_block(1, 0) == b"data"

    def test_used_bytes(self):
        w = Worker(0, capacity=100)
        w.put_block(1, 0, b"12345")
        assert w.used_bytes == 5


class TestMaster:
    def test_register_and_lookup(self):
        m = Master(5)
        locs = [PartitionLocation(0, 0), PartitionLocation(3, 1)]
        meta = m.register_file(7, size=100, locations=locs)
        assert 7 in m
        assert meta.k == 2
        assert meta.worker_ids == [0, 3]
        assert m.n_files == 1

    def test_duplicate_registration_rejected(self):
        m = Master(3)
        m.register_file(1, 10, [PartitionLocation(0, 0)])
        with pytest.raises(ValueError):
            m.register_file(1, 10, [PartitionLocation(1, 0)])

    def test_placed_bytes_accounting(self):
        m = Master(4)
        m.register_file(1, 100, [PartitionLocation(0, 0), PartitionLocation(1, 1)])
        assert m.placed_bytes[0] == 50
        m.unregister_file(1)
        assert np.all(m.placed_bytes == 0)

    def test_relocate(self):
        m = Master(4)
        m.register_file(1, 100, [PartitionLocation(0, 0)])
        meta = m.relocate_file(1, [PartitionLocation(2, 0), PartitionLocation(3, 1)])
        assert meta.worker_ids == [2, 3]
        assert m.placed_bytes[0] == 0
        assert m.placed_bytes[2] == 50

    def test_random_workers_distinct(self):
        m = Master(10, seed=1)
        for _ in range(20):
            ws = m.choose_random_workers(7)
            assert len(set(ws)) == 7

    def test_random_workers_too_many(self):
        with pytest.raises(ValueError):
            Master(3).choose_random_workers(4)

    def test_least_loaded_workers(self):
        m = Master(3)
        m.placed_bytes[:] = [5.0, 1.0, 3.0]
        assert list(m.choose_least_loaded_workers(2)) == [1, 2]

    def test_popularity_tracking(self):
        m = Master(3)
        m.register_file(0, 10, [PartitionLocation(0, 0)])
        m.register_file(1, 10, [PartitionLocation(1, 0)])
        for _ in range(3):
            m.record_access(0)
        m.record_access(1)
        ids, sizes, pops = m.popularity_snapshot()
        assert list(ids) == [0, 1]
        assert pops[0] == pytest.approx(0.75)
        m.reset_access_counts()
        _, _, pops2 = m.popularity_snapshot()
        assert pops2[0] == pytest.approx(0.5)  # all-zero window -> uniform

    def test_ec_meta_k(self):
        m = Master(20)
        locs = [PartitionLocation(i, i) for i in range(14)]
        meta = m.register_file(1, 1000, locs, ec_k=10, ec_n=14)
        assert meta.k == 10

    def test_replica_meta_k(self):
        m = Master(5)
        groups = [[PartitionLocation(0, 0)], [PartitionLocation(1, 1)]]
        meta = m.register_file(
            1, 100, [g[0] for g in groups], replica_groups=groups
        )
        assert meta.k == 1
