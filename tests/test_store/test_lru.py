"""Byte-budgeted LRU invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.lru import LRUCache


def test_basic_put_touch():
    lru = LRUCache(100)
    lru.put("a", 40)
    lru.put("b", 40)
    assert lru.touch("a")
    assert not lru.touch("zzz")
    assert lru.hits == 1 and lru.misses == 1
    assert lru.used_bytes == 80
    assert lru.free_bytes == 20


def test_eviction_order_is_lru():
    lru = LRUCache(100)
    lru.put("a", 40)
    lru.put("b", 40)
    lru.touch("a")  # b is now coldest
    evicted = lru.put("c", 40)
    assert evicted == ["b"]
    assert "a" in lru and "c" in lru


def test_eviction_callback_and_counter():
    dropped = []
    lru = LRUCache(10, on_evict=lambda k, s: dropped.append((k, s)))
    lru.put(1, 6)
    lru.put(2, 6)
    assert dropped == [(1, 6.0)]
    assert lru.evictions == 1


def test_reinsert_updates_size_and_recency():
    lru = LRUCache(100)
    lru.put("a", 10)
    lru.put("b", 10)
    lru.put("a", 50)  # resize + refresh
    assert lru.used_bytes == 60
    evicted = lru.put("c", 45)
    assert evicted == ["b"]


def test_item_larger_than_capacity_rejected():
    lru = LRUCache(10)
    with pytest.raises(ValueError):
        lru.put("big", 11)


def test_remove():
    lru = LRUCache(10)
    lru.put("a", 5)
    assert lru.remove("a") == 5
    assert lru.used_bytes == 0
    with pytest.raises(KeyError):
        lru.remove("a")


def test_hit_ratio_and_reset():
    lru = LRUCache(10)
    lru.put("a", 1)
    lru.touch("a")
    lru.touch("b")
    assert lru.hit_ratio() == 0.5
    lru.reset_stats()
    assert lru.hit_ratio() == 0.0


def test_iteration_cold_to_hot():
    lru = LRUCache(100)
    for key in "abc":
        lru.put(key, 10)
    lru.touch("a")
    assert list(lru) == ["b", "c", "a"]


def test_capacity_validation():
    with pytest.raises(ValueError):
        LRUCache(0)
    lru = LRUCache(10)
    with pytest.raises(ValueError):
        lru.put("a", -1)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.floats(min_value=0, max_value=30),
        ),
        max_size=200,
    )
)
@settings(max_examples=100)
def test_used_bytes_never_exceed_capacity(ops):
    """Invariant: after any sequence of puts, usage <= capacity and equals
    the sum of resident entries."""
    lru = LRUCache(100)
    for key, size in ops:
        if size > 100:
            continue
        lru.put(key, size)
        assert lru.used_bytes <= 100 + 1e-9
        assert lru.used_bytes == pytest.approx(
            sum(lru.size_of(k) for k in lru)
        )
