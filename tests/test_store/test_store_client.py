"""Byte-level round trips through the store under every scheme, plus
eviction/crash recovery via under-store and lineage (Sec. 8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import Master, StoreClient, Worker


def make_store(n_workers=12, capacity=float("inf"), seed=0):
    master = Master(n_workers, seed=seed)
    workers = [Worker(i, capacity=capacity) for i in range(n_workers)]
    return StoreClient(master, workers, seed=seed)


def random_bytes(n, seed=0):
    return bytes(np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8))


@given(st.binary(min_size=0, max_size=5000), st.integers(min_value=1, max_value=12))
@settings(max_examples=60, deadline=None)
def test_partitioned_roundtrip(data, k):
    client = make_store()
    client.write(1, data, k=k)
    assert client.read(1) == data


@given(st.binary(min_size=1, max_size=3000))
@settings(max_examples=30, deadline=None)
def test_ec_roundtrip(data):
    client = make_store()
    client.write_ec(1, data, k=5, n=8)
    assert client.read(1) == data


@given(st.binary(min_size=0, max_size=3000), st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_replicated_roundtrip(data, replicas):
    client = make_store()
    client.write_replicated(1, data, replicas=replicas)
    assert client.read(1) == data


def test_partitions_on_distinct_workers():
    client = make_store()
    meta = client.write(1, random_bytes(1000), k=7)
    assert len({loc.worker_id for loc in meta.locations}) == 7


def test_reads_update_popularity():
    client = make_store()
    client.write(1, b"x" * 100, k=2)
    for _ in range(5):
        client.read(1)
    assert client.master.meta(1).access_count == 5


def test_ec_survives_parity_worker_loss():
    client = make_store()
    data = random_bytes(2000, seed=1)
    meta = client.write_ec(1, data, k=4, n=7)
    # Kill three of the workers holding shards: 4 survive, enough.
    for loc in meta.locations[:3]:
        client.workers[loc.worker_id].delete_block(1, loc.index)
    assert client.read(1) == data
    assert client.recoveries == 0  # decoded, not recovered


def test_replication_survives_replica_loss():
    client = make_store()
    data = random_bytes(500, seed=2)
    meta = client.write_replicated(1, data, replicas=3)
    for group in meta.replica_groups[:2]:
        client.workers[group[0].worker_id].delete_block(1, group[0].index)
    assert client.read(1) == data


def test_recovery_from_under_store():
    client = make_store()
    data = random_bytes(800, seed=3)
    client.write(1, data, k=4)
    client.checkpoint(1)
    for w in client.workers:
        w.crash()
    assert client.read(1) == data
    assert client.recoveries == 1
    # Re-cached: the next read hits memory, no new recovery.
    assert client.read(1) == data
    assert client.recoveries == 1


def test_recovery_via_lineage_recompute():
    client = make_store()
    parent = random_bytes(300, seed=4)
    client.write(1, parent, k=2)
    client.checkpoint(1)
    derived = bytes(b ^ 0xFF for b in parent)
    client.write(2, derived, k=3)
    client.lineage.register(
        2, parents=(1,), recompute=lambda ps: bytes(b ^ 0xFF for b in ps[0])
    )
    for w in client.workers:
        w.crash()
    assert client.read(2) == derived
    assert client.recoveries >= 1


def test_unrecoverable_loss_raises():
    client = make_store()
    client.write(1, b"gone", k=2)  # never checkpointed, no lineage
    for w in client.workers:
        w.crash()
    with pytest.raises(KeyError):
        client.read(1)


def test_repartition_preserves_bytes_and_relocates():
    client = make_store()
    data = random_bytes(1200, seed=5)
    client.write(1, data, k=2)
    meta = client.repartition(1, new_k=6)
    assert len(meta.locations) == 6
    assert client.read(1) == data


def test_repartition_rejects_non_partitioned():
    client = make_store()
    client.write_ec(1, b"x" * 100, k=2, n=4)
    with pytest.raises(ValueError):
        client.repartition(1, new_k=3)


def test_eviction_then_understore_fallback():
    """Tiny workers: writing file 2 evicts file 1's blocks; reading file 1
    falls back to the checkpoint."""
    client = make_store(n_workers=4, capacity=150)
    a = random_bytes(400, seed=6)
    b = random_bytes(400, seed=7)
    client.write(1, a, k=4)
    client.checkpoint(1)
    client.write(2, b, k=4)  # evicts most of file 1
    client.checkpoint(2)  # both can't be resident at once on 150 B workers
    assert client.read(1) == a  # recovered from the checkpoint, evicts 2
    assert client.read(2) == b  # and vice versa
    assert client.recoveries >= 2


def test_write_placement_strategies():
    client = make_store()
    client.master.placed_bytes[:] = 0
    client.master.placed_bytes[0] = 1e9  # server 0 heavily loaded
    meta = client.write(1, b"y" * 100, k=3, placement="least_loaded")
    assert 0 not in [loc.worker_id for loc in meta.locations]
    with pytest.raises(ValueError):
        client.write(2, b"z", k=1, placement="bogus")
