"""Causal span trees across the store data plane.

Every store operation must propagate trace context down its call chain:
``store.put`` parents the master placement and the per-block worker
writes, ``store.read`` parents the lookup and the reads, and a miss
path hangs the whole recovery chain — ``store.recover`` →
``lineage.recover`` (one span per recursion level) → the nested reads
and re-cache writes — under the read that triggered it.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    RingBufferSink,
    Tracer,
    get_registry,
    span_forest,
    use_tracer,
)
from repro.obs import events as ev
from repro.store import Master, StoreClient, Worker


def make_store(n_workers=8, capacity=float("inf"), seed=0):
    master = Master(n_workers, seed=seed)
    workers = [Worker(i, capacity=capacity) for i in range(n_workers)]
    return StoreClient(master, workers, seed=seed)


@pytest.fixture()
def sink():
    buffer = RingBufferSink()
    with use_tracer(Tracer(buffer)):
        yield buffer


def _roots(sink, name=None):
    roots = span_forest(list(sink.records))
    if name is not None:
        roots = [r for r in roots if r.get("name") == name]
    return roots


def _child_names(node):
    return sorted(c["name"] for c in node["children"])


def test_put_parents_placement_and_writes(sink):
    client = make_store()
    client.write(1, b"x" * 1000, k=4)
    (root,) = _roots(sink)
    assert root["name"] == "store.put"
    assert root["parent_id"] is None
    assert root["kind"] == "partitioned"
    assert _child_names(root) == ["master.place"] + ["worker.write"] * 4
    for child in root["children"]:
        assert child["trace_id"] == root["trace_id"]
        assert child["parent_id"] == root["span_id"]


def test_read_parents_lookup_and_block_reads(sink):
    client = make_store()
    client.write(1, b"y" * 900, k=3)
    client.read(1)
    reads = _roots(sink, "store.read")
    assert len(reads) == 1
    (read_root,) = reads
    assert _child_names(read_root) == ["master.lookup"] + ["worker.read"] * 3
    # worker.read spans carry enough identity to localize the block
    for child in read_root["children"]:
        if child["name"] == "worker.read":
            assert {"worker_id", "file_id", "index"} <= set(child)


def test_each_store_trace_is_its_own_root(sink):
    client = make_store()
    client.write(1, b"a" * 100, k=2)
    client.write(2, b"b" * 100, k=2)
    client.read(1)
    roots = _roots(sink)
    assert [r["name"] for r in roots] == [
        "store.put", "store.put", "store.read"
    ]
    assert len({r["trace_id"] for r in roots}) == 3


def test_miss_recovery_chain_hangs_under_the_read(sink):
    """A crashed worker set forces lineage recomputation; the whole
    recovery — recover span, recursive lineage levels, the parent's
    nested read, and the re-cache writes — must share the triggering
    read's trace."""
    client = make_store()
    client.write(5, b"p" * 400, k=2)
    client.lineage.register(
        7, parents=(5,), recompute=lambda parts: parts[0][:100]
    )
    client.write(7, b"p" * 100, k=2)
    # lose only the derived file: its recompute pulls parent 5 through a
    # nested store.read inside the lineage recursion
    for worker in client.workers:
        worker.delete_file(7)
    sink.records.clear()

    data = client.read(7)
    assert data == b"p" * 100

    (read_root,) = _roots(sink, "store.read")
    assert read_root["file_id"] == 7
    # the miss path: lookup, the failed block read, then recovery
    names = _child_names(read_root)
    assert names.count("store.recover") == 1
    recover = next(
        c for c in read_root["children"] if c["name"] == "store.recover"
    )
    # recovery = one lineage recursion root + the re-cache block writes
    (lineage_7,) = [
        c for c in recover["children"] if c["name"] == "lineage.recover"
    ]
    assert lineage_7["file_id"] == 7
    recache = [
        c for c in recover["children"] if c["name"] == "worker.write"
    ]
    assert len(recache) == 2  # k=2 partitions re-cached
    # recursion level for the parent, with its nested store.read inside
    lineage_5 = next(
        c
        for c in lineage_7["children"]
        if c["name"] == "lineage.recover" and c["file_id"] == 5
    )
    nested_reads = [
        c for c in lineage_5["children"] if c["name"] == "store.read"
    ]
    assert len(nested_reads) == 1
    assert nested_reads[0]["file_id"] == 5
    # every span in the tree shares the read's trace id
    stack = [read_root]
    while stack:
        node = stack.pop()
        assert node["trace_id"] == read_root["trace_id"]
        stack.extend(node["children"])
    # a RECOVERY event was traced for the triggering file
    recoveries = [
        r for r in sink.records if r.get("event") == ev.RECOVERY
    ]
    assert recoveries and recoveries[-1]["file_id"] == 7
    assert recoveries[-1]["bytes"] == 100
    assert client.recoveries >= 1


def test_recovery_counters_feed_registry(sink):
    client = make_store()
    client.write(1, b"q" * 200, k=1)
    client.lineage.register(
        2, parents=(1,), recompute=lambda parts: parts[0]
    )
    client.write(2, b"q" * 200, k=1)
    before_rec = get_registry().counter("store.recoveries").value
    before_cmp = get_registry().counter("lineage.recomputes").value
    for worker in client.workers:
        worker.delete_file(2)
    client.read(2)
    assert get_registry().counter("store.recoveries").value == before_rec + 1
    assert (
        get_registry().counter("lineage.recomputes").value == before_cmp + 1
    )


def test_evictions_open_worker_spans(sink):
    worker = Worker(0, capacity=250)
    worker.put_block(1, 0, b"z" * 200)
    worker.put_block(2, 0, b"z" * 200)  # evicts (1, 0)
    evicts = [
        r
        for r in sink.records
        if r.get("event") == ev.CSPAN and r.get("name") == "worker.evict"
    ]
    assert len(evicts) == 1
    assert evicts[0]["file_id"] == 1
    # the evict happened inside the second put, so it parents under it
    writes = [
        r
        for r in sink.records
        if r.get("event") == ev.CSPAN and r.get("name") == "worker.write"
    ]
    assert evicts[0]["parent_id"] in {w["span_id"] for w in writes}


def test_disabled_tracer_opens_no_spans():
    client = make_store()
    client.write(1, b"n" * 100, k=2)
    client.read(1)
    # nothing to assert via a sink — the default tracer is a no-op; the
    # operation succeeding without a context var leak is the contract
    from repro.obs import current_context

    assert current_context() is None
