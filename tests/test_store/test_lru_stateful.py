"""Model-based (stateful) testing of the LRU cache against a reference
implementation built from a plain list + dict."""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.store.lru import LRUCache

CAPACITY = 100.0


class _ReferenceLRU:
    """Straight-line reimplementation used as the oracle."""

    def __init__(self, capacity: float):
        self.capacity = capacity
        self.order: list[int] = []  # cold -> hot
        self.sizes: dict[int, float] = {}

    def touch(self, key: int) -> bool:
        if key in self.sizes:
            self.order.remove(key)
            self.order.append(key)
            return True
        return False

    def put(self, key: int, size: float) -> list[int]:
        if key in self.sizes:
            self.order.remove(key)
            del self.sizes[key]
        evicted = []
        while sum(self.sizes.values()) + size > self.capacity and self.order:
            cold = self.order.pop(0)
            del self.sizes[cold]
            evicted.append(cold)
        self.order.append(key)
        self.sizes[key] = size
        return evicted

    def remove(self, key: int) -> None:
        self.order.remove(key)
        del self.sizes[key]


class LRUComparison(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.real = LRUCache(CAPACITY)
        self.ref = _ReferenceLRU(CAPACITY)

    keys = st.integers(min_value=0, max_value=12)
    sizes = st.floats(min_value=0.0, max_value=60.0)

    @rule(key=keys, size=sizes)
    def put(self, key, size):
        assert self.real.put(key, size) == self.ref.put(key, size)

    @rule(key=keys)
    def touch(self, key):
        assert self.real.touch(key) == self.ref.touch(key)

    @rule(key=keys)
    def remove(self, key):
        if key in self.ref.sizes:
            self.real.remove(key)
            self.ref.remove(key)
        else:
            with pytest.raises(KeyError):
                self.real.remove(key)

    @invariant()
    def same_contents_and_order(self):
        assert list(self.real) == self.ref.order
        assert self.real.used_bytes == pytest.approx(
            sum(self.ref.sizes.values())
        )
        assert self.real.used_bytes <= CAPACITY + 1e-9


TestLRUComparison = LRUComparison.TestCase
TestLRUComparison.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
