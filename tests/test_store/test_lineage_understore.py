"""Lineage DAG recovery and under-store bookkeeping."""

from __future__ import annotations

import pytest

from repro.store.lineage import LineageGraph
from repro.store.under_store import UnderStore


class TestUnderStore:
    def test_checkpoint_read(self):
        us = UnderStore()
        us.checkpoint(1, b"abc")
        assert us.read(1) == b"abc"
        assert 1 in us and len(us) == 1
        assert us.writes == 1 and us.reads == 1

    def test_missing_read_raises(self):
        with pytest.raises(KeyError):
            UnderStore().read(5)

    def test_overwrite_and_delete(self):
        us = UnderStore()
        us.checkpoint(1, b"v1")
        us.checkpoint(1, b"v2")
        assert us.read(1) == b"v2"
        us.delete(1)
        assert 1 not in us


class TestLineage:
    def test_direct_recovery_from_source(self):
        g = LineageGraph()
        out = g.recover(1, lambda fid: b"cached" if fid == 1 else None)
        assert out == b"cached"

    def test_recompute_single_level(self):
        g = LineageGraph()
        g.register(2, (1,), lambda ps: ps[0] + b"!")
        sources = {1: b"base"}
        assert g.recover(2, sources.get) == b"base!"

    def test_recursive_recompute(self):
        g = LineageGraph()
        g.register(2, (1,), lambda ps: ps[0] * 2)
        g.register(3, (2,), lambda ps: ps[0] + b"x")
        sources = {1: b"a"}
        assert g.recover(3, sources.get) == b"aax"

    def test_multi_parent(self):
        g = LineageGraph()
        g.register(3, (1, 2), lambda ps: ps[0] + ps[1])
        sources = {1: b"foo", 2: b"bar"}
        assert g.recover(3, sources.get) == b"foobar"

    def test_missing_everything_raises(self):
        g = LineageGraph()
        g.register(2, (1,), lambda ps: ps[0])
        with pytest.raises(KeyError):
            g.recover(2, lambda fid: None)

    def test_self_parent_rejected(self):
        g = LineageGraph()
        with pytest.raises(ValueError):
            g.register(1, (1,), lambda ps: ps[0])

    def test_cycle_rejected(self):
        g = LineageGraph()
        g.register(2, (1,), lambda ps: ps[0])
        g.register(1, (3,), lambda ps: ps[0])
        with pytest.raises(ValueError):
            g.register(3, (2,), lambda ps: ps[0])
        assert 3 not in g  # the bad record was rolled back
