"""Model-based testing of the byte store under failure injection.

A random interleaving of writes (all three schemes), reads, repartitions,
checkpoints, and worker crashes must never corrupt data: every read either
returns exactly the written bytes or raises ``KeyError`` (lost without a
checkpoint) — never wrong bytes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.store import Master, StoreClient, Worker

N_WORKERS = 8


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        master = Master(N_WORKERS, seed=0)
        self.client = StoreClient(
            master, [Worker(i) for i in range(N_WORKERS)], seed=0
        )
        self.oracle: dict[int, bytes] = {}
        self.checkpointed: set[int] = set()
        self.next_id = 0
        self.rng = np.random.default_rng(1234)

    payloads = st.binary(min_size=1, max_size=400)

    @rule(data=payloads, k=st.integers(min_value=1, max_value=N_WORKERS))
    def write_plain(self, data, k):
        self.client.write(self.next_id, data, k=k)
        self.oracle[self.next_id] = data
        self.next_id += 1

    @rule(data=payloads)
    def write_ec(self, data):
        self.client.write_ec(self.next_id, data, k=3, n=6)
        self.oracle[self.next_id] = data
        self.next_id += 1

    @rule(data=payloads, r=st.integers(min_value=1, max_value=3))
    def write_replicated(self, data, r):
        self.client.write_replicated(self.next_id, data, replicas=r)
        self.oracle[self.next_id] = data
        self.next_id += 1

    def _pick(self):
        ids = sorted(self.oracle)
        return ids[self.rng.integers(len(ids))] if ids else None

    @precondition(lambda self: self.oracle)
    @rule()
    def read_and_verify(self):
        fid = self._pick()
        try:
            data = self.client.read(fid)
        except KeyError:
            # Loss is only legal when the file was never checkpointed.
            assert fid not in self.checkpointed
            # Re-write it so the metadata stays consistent for the oracle.
            del self.oracle[fid]
            return
        assert data == self.oracle[fid], "read returned corrupted bytes"

    @precondition(lambda self: self.oracle)
    @rule()
    def checkpoint_one(self):
        fid = self._pick()
        try:
            self.client.checkpoint(fid)
        except KeyError:
            del self.oracle[fid]
            return
        self.checkpointed.add(fid)

    @precondition(lambda self: self.oracle)
    @rule(new_k=st.integers(min_value=1, max_value=N_WORKERS))
    def repartition_plain(self, new_k):
        fid = self._pick()
        meta = self.client.master.meta(fid)
        if meta.ec_k is not None or meta.replica_groups:
            with pytest.raises(ValueError):
                self.client.repartition(fid, new_k)
            return
        try:
            self.client.repartition(fid, new_k)
        except KeyError:
            if fid not in self.checkpointed:
                del self.oracle[fid]

    @rule(wid=st.integers(min_value=0, max_value=N_WORKERS - 1))
    def crash_worker(self, wid):
        self.client.workers[wid].crash()


TestStoreMachine = StoreMachine.TestCase
TestStoreMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
