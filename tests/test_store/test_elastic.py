"""Elastic membership in the store: grow/drain workers, recovery across
epochs, and the sharper ``ServerRemovedError`` diagnosis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ChurnSchedule, ClusterTopology
from repro.store import Master, ServerRemovedError, StoreClient, Worker


def make_store(n_workers=4, seed=0):
    master = Master(n_workers, seed=seed)
    workers = [Worker(i) for i in range(n_workers)]
    return StoreClient(master, workers, seed=seed)


def random_bytes(n, seed=0):
    return bytes(
        np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8)
    )


# -- master membership ------------------------------------------------------


def test_grow_extends_id_space():
    master = Master(3, seed=0)
    new_ids = master.grow(2)
    assert new_ids == [3, 4]
    assert master.n_workers == 5
    assert master.n_active == 5


def test_deactivate_excludes_from_placement():
    master = Master(4, seed=0)
    master.deactivate_worker(1)
    assert master.n_active == 3
    assert not master.is_active(1)
    for _ in range(50):
        assert 1 not in master.choose_random_workers(3)
        assert 1 not in master.choose_least_loaded_workers(3)
    with pytest.raises(ValueError):
        master.choose_random_workers(4)  # only 3 active


def test_cannot_drain_the_last_worker():
    master = Master(2, seed=0)
    master.deactivate_worker(0)
    with pytest.raises(ValueError):
        master.deactivate_worker(1)
    master.activate_worker(0)
    master.deactivate_worker(1)
    assert master.active_workers == [0]


def test_deactivate_unknown_worker_rejected():
    master = Master(2, seed=0)
    with pytest.raises(ValueError):
        master.deactivate_worker(5)


# -- epoch application ------------------------------------------------------


def test_apply_epoch_grows_and_drains():
    client = make_store(n_workers=3)
    topo = ClusterTopology(
        3, ChurnSchedule().add(10.0, 1).remove_ids(20.0, [1])
    )
    client.apply_epoch(topo.final)
    assert client.master.n_workers == 4  # id space covers the add
    assert client.master.active_workers == [0, 2, 3]
    assert client.removed == {1}
    assert len(client.workers) == 4


def test_apply_epoch_is_idempotent_and_reversible():
    client = make_store(n_workers=3)
    topo = ClusterTopology(3, ChurnSchedule().remove_ids(5.0, [2]))
    client.apply_epoch(topo.final)
    client.apply_epoch(topo.final)
    assert client.master.active_workers == [0, 1]
    client.apply_epoch(topo.initial)
    assert client.master.active_workers == [0, 1, 2]
    assert client.removed == set()


# -- recovery through a membership change -----------------------------------


def _drain_worker_of(client, file_id):
    """Apply an epoch that removes the first worker holding file_id."""
    lost = client.master.meta(file_id).locations[0].worker_id
    n = client.master.n_workers
    topo = ClusterTopology(
        n, ChurnSchedule().remove_ids(1.0, [lost]).add(1.0, 1)
    )
    client.apply_epoch(topo.final)
    return lost, topo


def test_checkpointed_file_recovers_and_replaces_off_removed_worker():
    client = make_store(n_workers=4)
    data = random_bytes(900, seed=3)
    client.write(7, data, k=3)
    client.checkpoint(7)
    lost, _ = _drain_worker_of(client, 7)
    assert client.read(7) == data
    meta = client.master.meta(7)
    workers = {loc.worker_id for loc in meta.locations}
    assert lost not in workers
    assert len(workers) == 3
    # And the re-placed copy serves without touching the dead worker.
    assert client.read(7) == data


def test_lineage_file_recovers_through_epoch_change():
    client = make_store(n_workers=4)
    parent = random_bytes(400, seed=4)
    client.write(1, parent, k=2)
    client.checkpoint(1)
    derived = bytes(b ^ 0xFF for b in parent)
    client.write(2, derived, k=3)
    client.lineage.register(
        2, (1,), lambda inputs: bytes(b ^ 0xFF for b in inputs[0])
    )
    lost, _ = _drain_worker_of(client, 2)
    assert client.read(2) == derived
    workers = {loc.worker_id for loc in client.master.meta(2).locations}
    assert lost not in workers


def test_unpersisted_file_raises_server_removed_error():
    client = make_store(n_workers=4)
    client.write(9, random_bytes(300, seed=5), k=2)
    lost, _ = _drain_worker_of(client, 9)
    with pytest.raises(ServerRemovedError) as exc_info:
        client.read(9)
    err = exc_info.value
    assert err.file_id == 9
    assert err.server_id == lost
    assert "removed from the cluster" in str(err)
    assert isinstance(err, KeyError)  # old callers still catch it


def test_plain_eviction_still_raises_plain_keyerror():
    """Without a membership change, the old diagnosis is unchanged."""
    client = make_store(n_workers=4)
    meta = client.write(3, random_bytes(200, seed=6), k=2)
    for loc in meta.locations:
        client.workers[loc.worker_id].delete_block(3, loc.index)
    with pytest.raises(KeyError) as exc_info:
        client.read(3)
    assert not isinstance(exc_info.value, ServerRemovedError)
