"""Smoke tests for the experiment runners: schemas, scaling knobs, and
cheap qualitative checks (the full claims are asserted by benchmarks/)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig01_trace_stats import run_fig01
from repro.experiments.fig03_replication import run_fig03
from repro.experiments.fig04_decoding import run_fig04
from repro.experiments.fig06_goodput import run_fig06
from repro.experiments.fig10_config_overhead import run_fig10
from repro.experiments.fig11_partition_sizes import run_fig11
from repro.experiments.fig16_repartition import run_fig16
from repro.experiments.fig16_sketch import run_fig16_sketch
from repro.experiments.fig22_write_latency import run_fig22
from repro.experiments.fig_churn import run_fig_churn
from repro.experiments.registry import load_all
from repro.experiments.skew_resilience import (
    compare_schemes,
    default_schemes,
    sec73_population,
)
from repro.experiments.theorem1 import run_theorem1
from repro.experiments.config import EC2_CLUSTER


def test_fig01_buckets_and_ratio():
    rows = run_fig01(n_files=20_000, seed=1)
    assert rows[0]["bucket"] == "[1,10)"
    assert rows[0]["file_fraction"] == pytest.approx(0.78, abs=0.03)


def test_fig03_memory_grows_linearly():
    rows = run_fig03(scale=0.05)
    overheads = [r["memory_overhead_pct"] for r in rows]
    assert overheads == pytest.approx([0, 10, 20, 30, 40], abs=0.01)


def test_fig04_decode_throughput_positive():
    rows = run_fig04(sizes_mb=(1, 5), trials=1)
    assert all(r["decode_s_numpy"] > 0 for r in rows)
    assert all(0 < r["overhead_calibrated"] < 1 for r in rows)


def test_fig06_matches_calibration():
    rows = run_fig06(ks=(1, 20, 100))
    assert rows[0]["goodput_1gbps"] == pytest.approx(1.0)
    assert rows[1]["goodput_1gbps"] == pytest.approx(0.8, abs=0.02)


def test_fig10_is_fast_and_linear_ish():
    rows = run_fig10(file_counts=(200, 400), trials=1)
    assert rows[-1]["config_time_s"] < 30


def test_fig11_selective_and_monotone():
    rows = run_fig11(n_files=50, rate=8.0)
    ranked = [r for r in rows if isinstance(r["popularity_rank"], int)]
    counts = [r["partitions"] for r in ranked]
    assert counts == sorted(counts, reverse=True)


def test_fig16_parallel_beats_sequential():
    rows = run_fig16(file_counts=(60,), trials=2)
    assert rows[0]["speedup"] > 10


def test_fig16_sketch_meets_acceptance_gates():
    rows = run_fig16_sketch(scale=0.2, seed=1)
    r = rows[0]
    assert r["topk_precision"] >= 0.9
    assert r["alpha_rel_err"] <= 0.10
    assert r["drift_alerts"] >= 1
    # The sketch-driven plan must recover most of the oracle's win.
    assert r["eta_sketch"] < r["eta_stale"]
    assert r["eta_gap"] < 0.1 * r["eta_stale"]


def test_fig22_sp_fastest_writer():
    rows = run_fig22(sizes_mb=(50, 200))
    for r in rows[:-1]:
        assert r["sp_write_s"] <= r["ec_write_s"]
        assert r["sp_write_s"] <= r["rep_write_s"]


def test_fig_churn_movement_ordering():
    """The churn claims: sp-cache rides pure adds/drains for free, the
    ring relocates ~1/N keys per single-server change, hash-mod
    relocates almost everything."""
    rows = run_fig_churn(scale=0.1)
    by = {(r["strategy"], r["epoch"]): r for r in rows}
    n_epochs = 1 + max(e for _, e in by)
    assert {s for s, _ in by} == {"hash-mod", "ring", "sp-cache"}

    # Diurnal epochs 1..4 add/drain only empty-handed servers: free for
    # sp-cache, paid by both hash baselines.
    for e in range(1, n_epochs - 1):
        assert by["sp-cache", e]["moved_mb"] == 0.0
        assert by["sp-cache", e]["disruption_s"] == 0.0
        assert by["hash-mod", e]["moved_mb"] > 0
        assert by["ring", e]["moved_mb"] > 0
        # Single-partition owner churn: ring stays near 1/N (2 servers
        # change per diurnal step -> allow 2 * 2/N), hash-mod reshuffles.
        assert by["ring", e]["moved_key_frac"] <= 4.0 / 12.0
        assert by["hash-mod", e]["moved_key_frac"] >= 0.5

    # The final epoch replaces a data-holding server: everyone pays, and
    # the disruption inflates the p99 while the move is in flight.
    last = n_epochs - 1
    for strategy in ("hash-mod", "ring", "sp-cache"):
        r = by[strategy, last]
        assert r["moved_mb"] > 0
        assert r["disruption_s"] > 0
        assert r["p99_disrupted_s"] >= r["p99_steady_s"]


def test_theorem1_monte_carlo_close():
    rows = run_theorem1(n_files=80, n_servers=120, n_trials=3000)
    vals = {r["quantity"]: r["value"] for r in rows}
    assert vals["ratio exact"] > 1.0


def test_compare_schemes_returns_all_stats():
    pop = sec73_population(rate=8.0, n_files=60)
    stats = compare_schemes(pop, EC2_CLUSTER, default_schemes(), scale=0.05)
    assert set(stats) == {"sp-cache", "ec-cache", "selective-replication"}
    for s in stats.values():
        assert s["mean_s"] > 0
        assert s["server_bytes"].shape == (30,)
        assert np.isfinite(s["eta"])


def test_registry_covers_every_experiment():
    expected = {
        "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig08",
        "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
        "fig16_sketch", "fig19", "fig20", "fig21", "fig22", "fig_churn",
        "theorem1",
    }
    specs = load_all()
    assert set(specs) == expected
    for spec in specs.values():
        assert callable(spec.runner)
        assert isinstance(spec.accepts_scale, bool)
