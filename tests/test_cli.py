"""CLI subcommands: argument plumbing and output shape."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

FAST = [
    "--files", "30", "--size-mb", "20", "--rate", "5",
    "--servers", "10", "--requests", "300",
]


def test_simulate_prints_summary(capsys):
    assert main(["simulate", "--scheme", "sp", *FAST]) == 0
    out = capsys.readouterr().out
    assert "mean latency" in out and "sp-cache" in out


def test_simulate_every_scheme(capsys):
    for scheme in ("ec", "replication", "simple", "chunking", "single"):
        assert main(["simulate", "--scheme", scheme, *FAST]) == 0
    out = capsys.readouterr().out
    assert "single-copy" in out


def test_compare_table(capsys):
    assert main(["compare", "--schemes", "sp,ec", *FAST]) == 0
    out = capsys.readouterr().out
    assert "sp-cache" in out and "ec-cache" in out
    assert "mem_overhead_pct" in out


def test_compare_unknown_scheme(capsys):
    assert main(["compare", "--schemes", "sp,bogus", *FAST]) == 2
    assert "unknown scheme" in capsys.readouterr().err


def test_configure(capsys):
    assert main(
        ["configure", "--files", "50", "--size-mb", "50", "--rate", "8",
         "--servers", "10"]
    ) == 0
    out = capsys.readouterr().out
    assert "alpha" in out and "files split" in out


def test_experiments_forwarding(tmp_path, capsys):
    assert main(
        ["experiments", "--only", "fig06", "--out", str(tmp_path)]
    ) == 0
    assert (tmp_path / "fig06.txt").exists()


def test_stragglers_choices_rejected():
    with pytest.raises(SystemExit):
        main(["simulate", "--stragglers", "tornado", *FAST])


def test_simulate_json(capsys):
    assert main(["simulate", "--scheme", "sp", "--json", *FAST]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["scheme"] == "sp-cache"
    assert record["requests"] == 300
    assert record["mean_s"] > 0
    assert record["metrics"]["engine"] in ("fifo", "ps")
    assert record["metrics"]["imbalance_eta"] == pytest.approx(record["eta"])


def test_simulate_seed_reproducible(capsys):
    main(["simulate", "--json", "--seed", "7", *FAST])
    first = capsys.readouterr().out
    main(["simulate", "--json", "--seed", "7", *FAST])
    second = capsys.readouterr().out
    assert json.loads(first) == json.loads(second)
    main(["simulate", "--json", "--seed", "8", *FAST])
    other = json.loads(capsys.readouterr().out)
    assert other["mean_s"] != json.loads(first)["mean_s"]


def test_compare_json(capsys):
    assert main(["compare", "--schemes", "sp,single", "--json", *FAST]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [r["scheme"] for r in rows] == ["sp-cache", "single-copy"]
    assert all("eta" in r and "mem_overhead_pct" in r for r in rows)


def test_trace_subcommand_writes_jsonl(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    assert main(
        ["trace", "--schemes", "sp,single", "--out", str(out), *FAST]
    ) == 0
    assert "traced" in capsys.readouterr().out
    lines = [json.loads(l) for l in out.read_text().splitlines()]
    reads = [r for r in lines if r["event"] == "read"]
    assert len(reads) == 2 * 300  # both schemes, every request
    assert {r["event"] for r in lines} >= {"read", "read_done", "simulation_end"}


def test_stats_subcommand(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    main(["trace", "--schemes", "sp", "--out", str(out), *FAST])
    capsys.readouterr()
    assert main(["stats", str(out), "--timeline", "4", "--per-server"]) == 0
    printed = capsys.readouterr().out
    assert "sp-cache" in printed
    assert "per-server load" in printed
    assert "load timeline" in printed
    assert "event counts" in printed


def test_stats_rejects_traceless_file(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["stats", str(empty)]) == 1
    assert "no read events" in capsys.readouterr().err


def test_stats_bad_inputs_fail_cleanly(tmp_path, capsys):
    assert main(["stats", str(tmp_path / "missing.jsonl")]) == 2
    assert "no such trace file" in capsys.readouterr().err

    # Corrupt lines and field-less reads are skipped, not fatal; with
    # nothing usable left the command still reports the empty trace.
    corrupt = tmp_path / "corrupt.jsonl"
    corrupt.write_text('{"event": "read"}\n{broken\n')
    assert main(["stats", str(corrupt)]) == 1
    assert "no read events" in capsys.readouterr().err

    good = tmp_path / "ok.jsonl"
    good.write_text("")
    assert main(["stats", str(good), "--timeline", "-3"]) == 2
    assert "--timeline" in capsys.readouterr().err


def test_stats_tolerates_corrupt_and_unknown_records(tmp_path, capsys):
    """A trace with trailing garbage and unknown event kinds still
    replays: bad lines are skipped and unknown kinds are counted."""
    out = tmp_path / "run.jsonl"
    main(["trace", "--schemes", "sp", "--out", str(out), *FAST])
    with out.open("a") as fh:
        fh.write("{broken json\n")
        fh.write('{"event": "future_thing", "ts": 1.0}\n')
        fh.write('["not", "a", "dict"]\n')
    capsys.readouterr()
    assert main(["stats", str(out), "--json"]) == 0
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert payload["summary"][0]["scheme"] == "sp-cache"
    assert payload["unknown_events"] == {"future_thing": 1}
    # Table mode surfaces the skipped kinds on stderr.
    assert main(["stats", str(out)]) == 0
    assert "future_thing" in capsys.readouterr().err


def test_stats_prints_metrics_snapshot(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    main(["trace", "--schemes", "sp", "--out", str(out), *FAST])
    capsys.readouterr()
    assert main(["stats", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "metrics snapshot" in printed


def test_stats_json_metrics_snapshot_ordering(tmp_path, capsys):
    from repro.cluster.engine.lifecycle import METRIC_SNAPSHOT_KEYS

    out = tmp_path / "run.jsonl"
    main(["trace", "--schemes", "sp,single", "--out", str(out), *FAST])
    capsys.readouterr()
    assert main(["stats", str(out), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["metrics"]) == {"sp-cache", "single-copy"}
    for snapshot in payload["metrics"].values():
        documented = [k for k in snapshot if k in METRIC_SNAPSHOT_KEYS]
        expected = [k for k in METRIC_SNAPSHOT_KEYS if k in snapshot]
        assert documented == expected  # documented keys lead, in order
        assert snapshot["requests"] == 300


def _write_manifests(outdir):
    assert main(
        ["experiments", "--only", "fig06", "--out", str(outdir)]
    ) == 0


def test_report_renders_markdown(tmp_path, capsys):
    _write_manifests(tmp_path)
    capsys.readouterr()
    assert main(["report", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# Experiment report")
    assert "## fig06" in out


def test_report_json_and_out_file(tmp_path, capsys):
    _write_manifests(tmp_path)
    capsys.readouterr()
    assert main(["report", str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "fig06" in payload

    target = tmp_path / "REPORT.md"
    assert main(["report", str(tmp_path), "--out", str(target)]) == 0
    assert target.read_text().startswith("# Experiment report")


def test_report_diff_identical_runs_clean(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    _write_manifests(base)
    _write_manifests(fresh)
    capsys.readouterr()
    assert main(["report", str(fresh), "--diff", str(base)]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_report_diff_flags_inflated_wall_time(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    _write_manifests(base)
    _write_manifests(fresh)
    manifest = json.loads((fresh / "fig06.json").read_text())
    manifest["wall_s"] = manifest["wall_s"] * 10 + 5.0
    (fresh / "fig06.json").write_text(json.dumps(manifest))
    capsys.readouterr()
    assert main(["report", str(fresh), "--diff", str(base)]) == 1
    out = capsys.readouterr().out
    assert "regression(s)" in out and "wall_s" in out


def test_report_empty_and_missing_dirs(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nope")]) == 2
    assert "no such manifest directory" in capsys.readouterr().err
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["report", str(empty)]) == 2
    assert "no run manifests" in capsys.readouterr().err


def test_traced_compare_replays_to_matching_eta(tmp_path, capsys):
    """Acceptance: the JSONL trace of a compare run is sufficient to
    reconstruct per-server loads whose imbalance factor matches the one
    computed in-process from SimulationResult.server_bytes."""
    trace = tmp_path / "cmp.jsonl"
    assert main(
        ["compare", "--schemes", "sp,ec,single", "--json",
         "--trace", str(trace), *FAST]
    ) == 0
    in_process = {
        r["scheme"]: r["eta"] for r in json.loads(capsys.readouterr().out)
    }
    assert main(["stats", str(trace), "--json"]) == 0
    replayed = {
        r["scheme"]: r["eta"]
        for r in json.loads(capsys.readouterr().out)["summary"]
    }
    assert set(replayed) == set(in_process)
    for scheme, eta in in_process.items():
        assert replayed[scheme] == pytest.approx(eta, rel=1e-12)


def _write_timeline_manifest(path):
    """A real (small) manifest carrying timeline sections."""
    from repro.cluster import SimulationConfig, simulate_reads
    from repro.common import ClusterSpec, Gbps
    from repro.obs import TimelineConfig, build_manifest, collect_timelines, write_manifest
    from repro.policies import SPCachePolicy
    from repro.workloads import paper_fileset, poisson_trace

    cluster = ClusterSpec(n_servers=10, bandwidth=Gbps)
    pop = paper_fileset(30, size_mb=20, zipf_exponent=1.1, total_rate=5)
    policy = SPCachePolicy(pop, cluster, seed=5)
    trace = poisson_trace(pop, n_requests=200, seed=11)
    config = SimulationConfig(
        discipline="ps", jitter="deterministic", seed=1,
        timeline=TimelineConfig(),
    )
    with collect_timelines() as sections:
        simulate_reads(trace, policy, cluster, config)
    manifest = build_manifest(
        "figT", [], wall_s=0.1, timelines=sections
    )
    write_manifest(manifest, path)
    return sections


def test_timeline_subcommand_renders_sparklines(tmp_path, capsys):
    manifest = tmp_path / "figT.json"
    _write_timeline_manifest(manifest)
    assert main(["timeline", str(manifest)]) == 0
    out = capsys.readouterr().out
    assert "sp-cache" in out
    assert "bytes/window" in out and "p99 latency (s)" in out
    assert any(ch in out for ch in "▁▂▃▄▅▆▇█")


def test_timeline_subcommand_json(tmp_path, capsys):
    manifest = tmp_path / "figT.json"
    sections = _write_timeline_manifest(manifest)
    assert main(["timeline", str(manifest), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == len(sections) == 1
    entry = payload[0]
    assert entry["scheme"] == "sp-cache"
    assert entry["n_requests"] == 200
    assert [r["series"] for r in entry["series"]] == [
        "bytes/window", "busy frac (max server)",
        "queue depth (mean)", "p99 latency (s)",
    ]


def test_tail_subcommand_table_and_json(tmp_path, capsys):
    manifest = tmp_path / "figT.json"
    _write_timeline_manifest(manifest)
    assert main(["tail", str(manifest)]) == 0
    out = capsys.readouterr().out
    assert "queueing" in out and "transfer" in out
    assert "slowest" in out

    assert main(["tail", str(manifest), "--json", "--top", "3"]) == 0
    payload = json.loads(capsys.readouterr().out)
    att = payload[0]["attribution"]
    total = (
        att["queueing_s"] + att["straggling_s"]
        + att["transfer_s"] + att["join_s"]
    )
    assert total == pytest.approx(att["mean_tail_latency_s"], rel=1e-9)
    assert len(payload[0]["exemplars"]) == 3


def test_timeline_accepts_bare_section_list(tmp_path, capsys):
    sections = _write_timeline_manifest(tmp_path / "unused.json")
    bare = tmp_path / "sections.json"
    bare.write_text(json.dumps(sections))
    assert main(["timeline", str(bare)]) == 0
    assert "sp-cache" in capsys.readouterr().out


def test_timeline_bad_inputs_fail_cleanly(tmp_path, capsys):
    assert main(["timeline", str(tmp_path / "missing.json")]) == 2
    assert "no such file" in capsys.readouterr().err

    not_json = tmp_path / "x.json"
    not_json.write_text("{nope")
    assert main(["timeline", str(not_json)]) == 2
    assert "not JSON" in capsys.readouterr().err

    foreign = tmp_path / "y.json"
    foreign.write_text('{"wall_seconds": 1}')
    assert main(["tail", str(foreign)]) == 2
    assert "neither" in capsys.readouterr().err

    v1 = tmp_path / "v1.json"
    v1.write_text('{"timelines": []}')
    assert main(["tail", str(v1)]) == 2
    assert "no timeline sections" in capsys.readouterr().err


def test_trace_sample_thins_read_pairs(tmp_path):
    out = tmp_path / "sampled.jsonl"
    assert main(
        ["trace", "--schemes", "sp", "--out", str(out), "--sample", "10",
         *FAST]
    ) == 0
    lines = [json.loads(l) for l in out.read_text().splitlines()]
    reads = [r for r in lines if r["event"] == "read"]
    dones = [r for r in lines if r["event"] == "read_done"]
    assert len(reads) == 30  # 1-in-10 of 300
    # Both halves of every sampled pair survive.
    assert sorted(r["req"] for r in reads) == sorted(r["req"] for r in dones)
    assert all(r["req"] % 10 == 0 for r in reads)
    # Lifecycle events are never sampled out.
    assert any(r["event"] == "simulation_end" for r in lines)


def test_simulate_sample_matches_unsampled_run(tmp_path, capsys):
    full, thin = tmp_path / "full.jsonl", tmp_path / "thin.jsonl"
    main(["simulate", "--trace", str(full), *FAST])
    main(["simulate", "--trace", str(thin), "--sample", "5", *FAST])
    capsys.readouterr()
    full_reads = [
        json.loads(l) for l in full.read_text().splitlines()
        if '"read"' in l
    ]
    thin_reads = [
        json.loads(l) for l in thin.read_text().splitlines()
        if '"read"' in l
    ]
    assert len(thin_reads) == 60  # 300 / 5
    kept = {r["req"]: r for r in full_reads if r["req"] % 5 == 0}
    assert {r["req"] for r in thin_reads} == set(kept)


def test_sample_rejects_bad_values():
    with pytest.raises(SystemExit):
        main(["trace", "--schemes", "sp", "--out", "/tmp/x", "--sample", "0",
              *FAST])
    with pytest.raises(SystemExit):
        main(["trace", "--schemes", "sp", "--out", "/tmp/x",
              "--sample", "two", *FAST])


def test_trace_sample_exceeding_length_keeps_first_request(tmp_path):
    """--sample N with N >= the trace length keeps exactly request 0."""
    out = tmp_path / "sampled.jsonl"
    assert main(
        ["trace", "--schemes", "sp", "--out", str(out), "--sample", "1000",
         *FAST]
    ) == 0
    lines = [json.loads(l) for l in out.read_text().splitlines()]
    reads = [r for r in lines if r["event"] == "read"]
    dones = [r for r in lines if r["event"] == "read_done"]
    assert [r["req"] for r in reads] == [0]
    assert [r["req"] for r in dones] == [0]
    assert any(r["event"] == "simulation_end" for r in lines)


def test_trace_sample_is_deterministic(tmp_path):
    """Two identical sampled runs keep identical simulator events.

    Control-plane events (``scale_iter`` etc.) carry wall-clock
    timestamps, so the determinism contract covers the sim-time stream:
    the same requests survive sampling with the same payloads.
    """
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    args = ["trace", "--schemes", "sp,ec", "--sample", "7", "--seed", "3",
            *FAST]
    assert main([*args, "--out", str(a)]) == 0
    assert main([*args, "--out", str(b)]) == 0

    def sim_events(path):
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        return [
            r for r in lines
            if r["event"] in ("read", "read_done", "simulation_end")
        ]

    first, second = sim_events(a), sim_events(b)
    assert first and first == second


def _write_popularity_manifest(path):
    """A real (small) manifest carrying one popularity section."""
    from repro.cluster import SimulationConfig, simulate_reads
    from repro.common import ClusterSpec, Gbps
    from repro.obs import PopularityConfig, build_manifest, write_manifest
    from repro.policies import SPCachePolicy
    from repro.workloads import paper_fileset, poisson_trace

    cluster = ClusterSpec(n_servers=10, bandwidth=Gbps)
    pop = paper_fileset(30, size_mb=20, zipf_exponent=1.1, total_rate=5)
    policy = SPCachePolicy(pop, cluster, seed=5)
    trace = poisson_trace(pop, n_requests=200, seed=11)
    config = SimulationConfig(
        discipline="fifo", jitter="deterministic", seed=1,
        popularity=PopularityConfig(window_requests=50, min_window_count=10),
    )
    result = simulate_reads(trace, policy, cluster, config)
    manifest = build_manifest(
        "figP", [], wall_s=0.1, popularity=[result.popularity]
    )
    write_manifest(manifest, path)
    return result.popularity


def test_top_renders_manifest_sections(tmp_path, capsys):
    manifest = tmp_path / "figP.json"
    _write_popularity_manifest(manifest)
    assert main(["top", str(manifest)]) == 0
    out = capsys.readouterr().out
    assert "sp-cache [fifo]" in out
    assert "200 requests" in out
    assert "rank" in out and "est_count" in out
    assert "imbalance (EWMA)" in out
    assert "alerts:" in out


def test_top_json_and_k(tmp_path, capsys):
    manifest = tmp_path / "figP.json"
    section = _write_popularity_manifest(manifest)
    assert main(["top", str(manifest), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    assert payload[0]["scheme"] == section["scheme"] == "sp-cache"
    assert payload[0]["requests"] == 200

    assert main(["top", str(manifest), "--k", "3"]) == 0
    table = capsys.readouterr().out
    assert "| 3 " in table and "| 4 " not in table


def test_top_replays_jsonl_trace(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main(
        ["trace", "--schemes", "sp,single", "--out", str(trace), *FAST]
    ) == 0
    capsys.readouterr()
    assert main(["top", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "sp-cache [trace]" in out and "single-copy [trace]" in out


def test_top_bad_inputs_fail_cleanly(tmp_path, capsys):
    assert main(["top", str(tmp_path / "missing.json")]) == 2
    assert "no such file" in capsys.readouterr().err

    # A JSON object with no popularity/scheme/read events replays to
    # zero sections.
    foreign = tmp_path / "foreign.json"
    foreign.write_text('{"wall_seconds": 1}')
    assert main(["top", str(foreign)]) == 2
    assert "no popularity sections" in capsys.readouterr().err

    # Corrupt lines are skipped by trace replay, leaving zero sections.
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{nope")
    assert main(["top", str(garbage)]) == 2
    assert "no popularity sections" in capsys.readouterr().err

    v2 = tmp_path / "v2.json"
    v2.write_text('{"popularity": []}')
    assert main(["top", str(v2)]) == 2
    assert "no popularity sections" in capsys.readouterr().err


def test_watch_renders_one_frame_and_exits(tmp_path, capsys):
    manifest = tmp_path / "figP.json"
    _write_popularity_manifest(manifest)
    assert main(
        ["watch", str(manifest), "--frames", "1", "--interval", "0"]
    ) == 0
    assert "sp-cache [fifo]" in capsys.readouterr().out

    assert main(
        ["watch", str(tmp_path / "missing.json"), "--frames", "2",
         "--interval", "0"]
    ) == 2
    assert "waiting for popularity data" in capsys.readouterr().out


def test_report_diff_rejects_mismatched_schema_versions(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    _write_manifests(base)
    _write_manifests(fresh)
    manifest = json.loads((base / "fig06.json").read_text())
    manifest["schema_version"] = 2
    del manifest["popularity"]
    (base / "fig06.json").write_text(json.dumps(manifest))
    capsys.readouterr()
    assert main(["report", str(fresh), "--diff", str(base)]) == 2
    err = capsys.readouterr().err
    assert "schema mismatch" in err
    assert "regenerate both" in err


# -- live telemetry surface: dash, openmetrics export, SLO plumbing --------


def _write_trace(tmp_path, schemes="sp"):
    trace = tmp_path / "run.jsonl"
    assert main(
        ["trace", "--schemes", schemes, "--out", str(trace), *FAST]
    ) == 0
    return trace


def test_stats_openmetrics_exposition(tmp_path, capsys):
    from repro.obs import parse_openmetrics

    trace = _write_trace(tmp_path)
    capsys.readouterr()
    assert main(["stats", str(trace), "--format", "openmetrics"]) == 0
    out = capsys.readouterr().out
    families = parse_openmetrics(out)
    assert "sim_requests" in families
    assert 'scheme="sp-cache"' in out
    assert out.endswith("# EOF\n")


def test_stats_slo_reevaluation(tmp_path, capsys):
    trace = _write_trace(tmp_path)
    capsys.readouterr()
    assert main(["stats", str(trace), "--slo", "p99<0.001"]) == 0
    out = capsys.readouterr().out
    assert "SLO evaluation: p99<0.001" in out
    assert "p99_latency" in out and "NO" in out

    assert main(["stats", str(trace), "--slo", "wat<1"]) == 2
    assert "bad --slo spec" in capsys.readouterr().err


def test_stats_renders_traced_slo_breaches(tmp_path, capsys):
    """A run traced with a tight ambient SLO lands breach events that
    `repro stats` surfaces as an alert table."""
    from repro.obs import parse_slo, use_slo

    trace = tmp_path / "run.jsonl"
    with use_slo(parse_slo("p99<0.001")):
        assert main(
            ["trace", "--schemes", "sp", "--out", str(trace), *FAST]
        ) == 0
    capsys.readouterr()
    assert main(["stats", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "SLO alerts (traced)" in out
    assert "slo_breach" in out


def test_report_openmetrics(tmp_path, capsys):
    from repro.obs import parse_openmetrics

    _write_manifests(tmp_path)
    capsys.readouterr()
    assert main(["report", str(tmp_path), "--format", "openmetrics"]) == 0
    out = capsys.readouterr().out
    families = parse_openmetrics(out)
    assert families
    assert 'experiment="fig06"' in out

    target = tmp_path / "metrics.om"
    assert main(
        ["report", str(tmp_path), "--format", "openmetrics",
         "--out", str(target)]
    ) == 0
    assert target.read_text().endswith("# EOF\n")


def test_experiments_forwards_slo(tmp_path):
    """The acceptance scenario: a fig13-style run under a deliberately
    tight p99 objective must land a populated slo section
    with at least one breach."""
    assert main(
        ["experiments", "--only", "fig13", "--scale", "0.05",
         "--out", str(tmp_path), "--slo", "p99<0.001"]
    ) == 0
    manifest = json.loads((tmp_path / "fig13.json").read_text())
    assert manifest["schema_version"] == 7
    assert manifest["slo"]
    assert sum(s["breaches"] for s in manifest["slo"]) >= 1
    assert manifest["config"]["slo"] == "p99<0.001"
    schemes = {s["scheme"] for s in manifest["slo"]}
    assert "sp-cache" in schemes

    assert main(
        ["experiments", "--only", "fig06", "--out", str(tmp_path),
         "--slo", "wat<1"]
    ) == 2


def test_dash_renders_trace(tmp_path, capsys):
    trace = _write_trace(tmp_path)
    capsys.readouterr()
    assert main(["dash", str(trace), "--plain"]) == 0
    out = capsys.readouterr().out
    assert "== sp-cache ==" in out
    assert "servers (" in out and "hot keys:" in out


def test_dash_renders_manifest(tmp_path, capsys):
    # fig06 is an analytic table — no simulation, so nothing to board.
    # fig13 (small scale) exercises the full manifest ingestion path.
    assert main(
        ["experiments", "--only", "fig13", "--scale", "0.05",
         "--out", str(tmp_path)]
    ) == 0
    capsys.readouterr()
    assert main(["dash", str(tmp_path / "fig13.json"), "--plain"]) == 0
    out = capsys.readouterr().out
    assert "== sp-cache ==" in out and "requests=" in out
    assert "servers (" in out


def test_dash_reads_stdin(tmp_path, capsys, monkeypatch):
    import io

    trace = _write_trace(tmp_path)
    capsys.readouterr()
    monkeypatch.setattr("sys.stdin", io.StringIO(trace.read_text()))
    assert main(["dash", "-", "--plain"]) == 0
    assert "== sp-cache ==" in capsys.readouterr().out


def test_dash_follow_renders_final_frame(tmp_path, capsys):
    trace = _write_trace(tmp_path)
    capsys.readouterr()
    assert main(
        ["dash", str(trace), "--follow", "--plain", "--interval", "0.05",
         "--idle-limit", "0.2"]
    ) == 0
    out = capsys.readouterr().out
    assert "== sp-cache ==" in out


def test_dash_bad_inputs_fail_cleanly(tmp_path, capsys):
    assert main(["dash", str(tmp_path / "missing.json"), "--plain"]) == 2
    assert "no such file" in capsys.readouterr().err
    assert main(
        ["dash", str(tmp_path / "missing.jsonl"), "--follow", "--plain",
         "--idle-limit", "0.1"]
    ) == 2
    assert "no such trace file" in capsys.readouterr().err


# -- satellite: top/watch resilience on degenerate traces ------------------


def test_top_empty_trace_file(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["top", str(empty)]) == 2
    assert "no popularity sections" in capsys.readouterr().err


def test_top_truncated_trace_keeps_complete_lines(tmp_path, capsys):
    trace = _write_trace(tmp_path)
    lines = trace.read_text().splitlines()
    truncated = tmp_path / "truncated.jsonl"
    # Cut mid-record: everything before the cut still replays.
    truncated.write_text(
        "\n".join(lines[: len(lines) // 2]) + '\n{"event": "rea'
    )
    assert main(["top", str(truncated)]) == 0
    assert "sp-cache [trace]" in capsys.readouterr().out


def test_top_unknown_event_kinds_are_ignored(tmp_path, capsys):
    trace = _write_trace(tmp_path)
    spiked = tmp_path / "spiked.jsonl"
    spiked.write_text(
        '{"event": "from_the_future", "scheme": "sp-cache"}\n'
        + trace.read_text()
        + '{"event": "also_unknown", "ts": 1}\n'
    )
    assert main(["top", str(spiked)]) == 0
    assert "sp-cache [trace]" in capsys.readouterr().out


def test_watch_empty_then_unknown_trace(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(
        ["watch", str(empty), "--frames", "1", "--interval", "0"]
    ) == 2
    assert "waiting for popularity data" in capsys.readouterr().out

    unknown = tmp_path / "unknown.jsonl"
    unknown.write_text('{"event": "mystery"}\n{"not": "an event"}\n')
    assert main(
        ["watch", str(unknown), "--frames", "1", "--interval", "0"]
    ) == 2
    assert "waiting for popularity data" in capsys.readouterr().out


def test_stats_empty_trace_fails_cleanly(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["stats", str(empty)]) == 1
    assert "no read events" in capsys.readouterr().err


def _causal_trace(tmp_path, name="causal.jsonl"):
    out = tmp_path / name
    assert main(
        ["trace", "--schemes", "sp", "--causal", "--out", str(out), *FAST]
    ) == 0
    return out


def test_critical_renders_trace(tmp_path, capsys):
    trace = _causal_trace(tmp_path)
    capsys.readouterr()
    assert main(["critical", str(trace), "--top", "3"]) == 0
    printed = capsys.readouterr().out
    assert "conservation ok" in printed
    assert "300 DAG(s) rebuilt, 0 dropped" in printed
    assert "slowest 3 critical paths" in printed
    assert "queue_s" in printed


def test_critical_check_and_chrome_export(tmp_path, capsys):
    trace = _causal_trace(tmp_path)
    chrome = tmp_path / "spans.chrome.json"
    capsys.readouterr()
    assert main(
        ["critical", str(trace), "--check", "--chrome", str(chrome)]
    ) == 0
    printed = capsys.readouterr().out
    assert "check ok" in printed
    assert "all span trees complete" in printed
    events = json.loads(chrome.read_text())["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"X", "s", "f"} <= phases
    flows = [e for e in events if e["ph"] in ("s", "f")]
    assert len([e for e in flows if e["ph"] == "s"]) == len(flows) / 2


def test_critical_reads_manifest_sections(tmp_path, capsys):
    assert main(
        ["simulate", "--scheme", "sp", "--causal", "--json", *FAST]
    ) == 0
    section = json.loads(capsys.readouterr().out)["causal"]
    manifest = tmp_path / "fig.json"
    manifest.write_text(json.dumps({"causal": [section]}))
    assert main(["critical", str(manifest)]) == 0
    assert "conservation ok" in capsys.readouterr().out
    # manifests carry aggregates, not span trees — no Chrome export
    assert main(
        ["critical", str(manifest), "--chrome", str(tmp_path / "c.json")]
    ) == 2
    assert "needs a JSONL trace" in capsys.readouterr().err


def test_critical_check_flags_violations(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps([{
        "scheme": "sp-cache",
        "conservation": {"ok": False, "max_rel_err": 0.5},
        "edges": {}, "chains": [],
    }]))
    assert main(["critical", str(bad), "--check"]) == 1
    assert "conservation violated" in capsys.readouterr().err


def test_critical_bad_inputs_fail_cleanly(tmp_path, capsys):
    assert main(["critical", str(tmp_path / "missing.json")]) == 2
    assert "no such file" in capsys.readouterr().err
    # a trace without cspan events yields no causal sections
    plain = tmp_path / "plain.jsonl"
    main(["trace", "--schemes", "sp", "--out", str(plain), *FAST])
    capsys.readouterr()
    assert main(["critical", str(plain)]) == 2
    capsys.readouterr()


def test_simulate_causal_table_and_compare_column(capsys):
    assert main(["simulate", "--scheme", "sp", "--causal", *FAST]) == 0
    assert "critical-path edges" in capsys.readouterr().out
    assert main(["compare", "--schemes", "sp,single", "--causal", *FAST]) == 0
    assert "crit_ok" in capsys.readouterr().out


def test_stats_layered_event_table_with_store_kinds(tmp_path, capsys):
    """The traced-event table names each kind's layer, including the
    store-plane kinds and causal spans; recoveries get a summary line."""
    trace = _causal_trace(tmp_path)
    with trace.open("a") as fh:
        fh.write(
            '{"event": "recovery", "ts": 1.0, "file_id": 7,'
            ' "bytes": 100, "wall_s": 0.5}\n'
        )
        fh.write('{"event": "block_put", "ts": 0.5, "file_id": 7}\n')
        fh.write('{"event": "block_evict", "ts": 0.6, "file_id": 3}\n')
    capsys.readouterr()
    assert main(["stats", str(trace), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["recoveries"] == {"count": 1, "bytes": 100, "wall_s": 0.5}
    assert payload["unknown_events"] == {}
    assert main(["stats", str(trace)]) == 0
    printed = capsys.readouterr().out
    assert "lineage recoveries: 1 file(s), 100 bytes" in printed
    for layer, kind in (
        ("store", "recovery"), ("store", "block_put"),
        ("store", "block_evict"), ("causal", "cspan"),
        ("simulator", "read"),
    ):
        assert kind in printed, kind
        assert layer in printed, layer
