"""CLI subcommands: argument plumbing and output shape."""

from __future__ import annotations

import pytest

from repro.cli import main

FAST = [
    "--files", "30", "--size-mb", "20", "--rate", "5",
    "--servers", "10", "--requests", "300",
]


def test_simulate_prints_summary(capsys):
    assert main(["simulate", "--scheme", "sp", *FAST]) == 0
    out = capsys.readouterr().out
    assert "mean latency" in out and "sp-cache" in out


def test_simulate_every_scheme(capsys):
    for scheme in ("ec", "replication", "simple", "chunking", "single"):
        assert main(["simulate", "--scheme", scheme, *FAST]) == 0
    out = capsys.readouterr().out
    assert "single-copy" in out


def test_compare_table(capsys):
    assert main(["compare", "--schemes", "sp,ec", *FAST]) == 0
    out = capsys.readouterr().out
    assert "sp-cache" in out and "ec-cache" in out
    assert "mem_overhead_pct" in out


def test_compare_unknown_scheme(capsys):
    assert main(["compare", "--schemes", "sp,bogus", *FAST]) == 2
    assert "unknown scheme" in capsys.readouterr().err


def test_configure(capsys):
    assert main(
        ["configure", "--files", "50", "--size-mb", "50", "--rate", "8",
         "--servers", "10"]
    ) == 0
    out = capsys.readouterr().out
    assert "alpha" in out and "files split" in out


def test_experiments_forwarding(tmp_path, capsys):
    assert main(
        ["experiments", "--only", "fig06", "--out", str(tmp_path)]
    ) == 0
    assert (tmp_path / "fig06.txt").exists()


def test_stragglers_choices_rejected():
    with pytest.raises(SystemExit):
        main(["simulate", "--stragglers", "tornado", *FAST])
