"""CLI subcommands: argument plumbing and output shape."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

FAST = [
    "--files", "30", "--size-mb", "20", "--rate", "5",
    "--servers", "10", "--requests", "300",
]


def test_simulate_prints_summary(capsys):
    assert main(["simulate", "--scheme", "sp", *FAST]) == 0
    out = capsys.readouterr().out
    assert "mean latency" in out and "sp-cache" in out


def test_simulate_every_scheme(capsys):
    for scheme in ("ec", "replication", "simple", "chunking", "single"):
        assert main(["simulate", "--scheme", scheme, *FAST]) == 0
    out = capsys.readouterr().out
    assert "single-copy" in out


def test_compare_table(capsys):
    assert main(["compare", "--schemes", "sp,ec", *FAST]) == 0
    out = capsys.readouterr().out
    assert "sp-cache" in out and "ec-cache" in out
    assert "mem_overhead_pct" in out


def test_compare_unknown_scheme(capsys):
    assert main(["compare", "--schemes", "sp,bogus", *FAST]) == 2
    assert "unknown scheme" in capsys.readouterr().err


def test_configure(capsys):
    assert main(
        ["configure", "--files", "50", "--size-mb", "50", "--rate", "8",
         "--servers", "10"]
    ) == 0
    out = capsys.readouterr().out
    assert "alpha" in out and "files split" in out


def test_experiments_forwarding(tmp_path, capsys):
    assert main(
        ["experiments", "--only", "fig06", "--out", str(tmp_path)]
    ) == 0
    assert (tmp_path / "fig06.txt").exists()


def test_stragglers_choices_rejected():
    with pytest.raises(SystemExit):
        main(["simulate", "--stragglers", "tornado", *FAST])


def test_simulate_json(capsys):
    assert main(["simulate", "--scheme", "sp", "--json", *FAST]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["scheme"] == "sp-cache"
    assert record["requests"] == 300
    assert record["mean_s"] > 0
    assert record["metrics"]["engine"] in ("fifo", "ps")
    assert record["metrics"]["imbalance_eta"] == pytest.approx(record["eta"])


def test_simulate_seed_reproducible(capsys):
    main(["simulate", "--json", "--seed", "7", *FAST])
    first = capsys.readouterr().out
    main(["simulate", "--json", "--seed", "7", *FAST])
    second = capsys.readouterr().out
    assert json.loads(first) == json.loads(second)
    main(["simulate", "--json", "--seed", "8", *FAST])
    other = json.loads(capsys.readouterr().out)
    assert other["mean_s"] != json.loads(first)["mean_s"]


def test_compare_json(capsys):
    assert main(["compare", "--schemes", "sp,single", "--json", *FAST]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [r["scheme"] for r in rows] == ["sp-cache", "single-copy"]
    assert all("eta" in r and "mem_overhead_pct" in r for r in rows)


def test_trace_subcommand_writes_jsonl(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    assert main(
        ["trace", "--schemes", "sp,single", "--out", str(out), *FAST]
    ) == 0
    assert "traced" in capsys.readouterr().out
    lines = [json.loads(l) for l in out.read_text().splitlines()]
    reads = [r for r in lines if r["event"] == "read"]
    assert len(reads) == 2 * 300  # both schemes, every request
    assert {r["event"] for r in lines} >= {"read", "read_done", "simulation_end"}


def test_stats_subcommand(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    main(["trace", "--schemes", "sp", "--out", str(out), *FAST])
    capsys.readouterr()
    assert main(["stats", str(out), "--timeline", "4", "--per-server"]) == 0
    printed = capsys.readouterr().out
    assert "sp-cache" in printed
    assert "per-server load" in printed
    assert "load timeline" in printed
    assert "event counts" in printed


def test_stats_rejects_traceless_file(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["stats", str(empty)]) == 1
    assert "no read events" in capsys.readouterr().err


def test_stats_bad_inputs_fail_cleanly(tmp_path, capsys):
    assert main(["stats", str(tmp_path / "missing.jsonl")]) == 2
    assert "no such trace file" in capsys.readouterr().err

    corrupt = tmp_path / "corrupt.jsonl"
    corrupt.write_text('{"event": "read"}\n{broken\n')
    assert main(["stats", str(corrupt)]) == 2
    assert "not a JSONL trace" in capsys.readouterr().err

    good = tmp_path / "ok.jsonl"
    good.write_text("")
    assert main(["stats", str(good), "--timeline", "-3"]) == 2
    assert "--timeline" in capsys.readouterr().err


def test_stats_prints_metrics_snapshot(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    main(["trace", "--schemes", "sp", "--out", str(out), *FAST])
    capsys.readouterr()
    assert main(["stats", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "metrics snapshot" in printed


def test_stats_json_metrics_snapshot_ordering(tmp_path, capsys):
    from repro.cluster.engine.lifecycle import METRIC_SNAPSHOT_KEYS

    out = tmp_path / "run.jsonl"
    main(["trace", "--schemes", "sp,single", "--out", str(out), *FAST])
    capsys.readouterr()
    assert main(["stats", str(out), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["metrics"]) == {"sp-cache", "single-copy"}
    for snapshot in payload["metrics"].values():
        documented = [k for k in snapshot if k in METRIC_SNAPSHOT_KEYS]
        expected = [k for k in METRIC_SNAPSHOT_KEYS if k in snapshot]
        assert documented == expected  # documented keys lead, in order
        assert snapshot["requests"] == 300


def _write_manifests(outdir):
    assert main(
        ["experiments", "--only", "fig06", "--out", str(outdir)]
    ) == 0


def test_report_renders_markdown(tmp_path, capsys):
    _write_manifests(tmp_path)
    capsys.readouterr()
    assert main(["report", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# Experiment report")
    assert "## fig06" in out


def test_report_json_and_out_file(tmp_path, capsys):
    _write_manifests(tmp_path)
    capsys.readouterr()
    assert main(["report", str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "fig06" in payload

    target = tmp_path / "REPORT.md"
    assert main(["report", str(tmp_path), "--out", str(target)]) == 0
    assert target.read_text().startswith("# Experiment report")


def test_report_diff_identical_runs_clean(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    _write_manifests(base)
    _write_manifests(fresh)
    capsys.readouterr()
    assert main(["report", str(fresh), "--diff", str(base)]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_report_diff_flags_inflated_wall_time(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    _write_manifests(base)
    _write_manifests(fresh)
    manifest = json.loads((fresh / "fig06.json").read_text())
    manifest["wall_s"] = manifest["wall_s"] * 10 + 5.0
    (fresh / "fig06.json").write_text(json.dumps(manifest))
    capsys.readouterr()
    assert main(["report", str(fresh), "--diff", str(base)]) == 1
    out = capsys.readouterr().out
    assert "regression(s)" in out and "wall_s" in out


def test_report_empty_and_missing_dirs(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nope")]) == 2
    assert "no such manifest directory" in capsys.readouterr().err
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["report", str(empty)]) == 2
    assert "no run manifests" in capsys.readouterr().err


def test_traced_compare_replays_to_matching_eta(tmp_path, capsys):
    """Acceptance: the JSONL trace of a compare run is sufficient to
    reconstruct per-server loads whose imbalance factor matches the one
    computed in-process from SimulationResult.server_bytes."""
    trace = tmp_path / "cmp.jsonl"
    assert main(
        ["compare", "--schemes", "sp,ec,single", "--json",
         "--trace", str(trace), *FAST]
    ) == 0
    in_process = {
        r["scheme"]: r["eta"] for r in json.loads(capsys.readouterr().out)
    }
    assert main(["stats", str(trace), "--json"]) == 0
    replayed = {
        r["scheme"]: r["eta"]
        for r in json.loads(capsys.readouterr().out)["summary"]
    }
    assert set(replayed) == set(in_process)
    for scheme, eta in in_process.items():
        assert replayed[scheme] == pytest.approx(eta, rel=1e-12)
