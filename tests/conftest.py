"""Shared fixtures: small populations and clusters that keep tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import MB, ClusterSpec, FilePopulation, Gbps
from repro.workloads import paper_fileset, zipf_popularity


@pytest.fixture
def small_cluster() -> ClusterSpec:
    """10 servers, 1 Gbps, unbounded memory."""
    return ClusterSpec(n_servers=10, bandwidth=Gbps)


@pytest.fixture
def paper_cluster() -> ClusterSpec:
    """The paper's 30-server EC2 layout."""
    return ClusterSpec(n_servers=30, bandwidth=Gbps)


@pytest.fixture
def small_population() -> FilePopulation:
    """20 files x 10 MB, Zipf(1.05), 4 req/s."""
    return paper_fileset(20, size_mb=10, zipf_exponent=1.05, total_rate=4.0)


@pytest.fixture
def skewed_population() -> FilePopulation:
    """60 files with mixed sizes and heavy skew."""
    rng = np.random.default_rng(7)
    sizes = rng.uniform(1, 50, size=60) * MB
    return FilePopulation(
        sizes=sizes,
        popularities=zipf_popularity(60, 1.1),
        total_rate=6.0,
    )
