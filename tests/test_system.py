"""End-to-end tests of the assembled SP-Cache system (Fig. 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import imbalance_factor
from repro.common import ClusterSpec, Gbps
from repro.system import SPCacheSystem


def _filled_system(n_files=30, size=50_000, seed=0):
    system = SPCacheSystem(ClusterSpec(n_servers=12, bandwidth=Gbps), seed=seed)
    rng = np.random.default_rng(seed)
    payloads = {}
    for fid in range(n_files):
        data = bytes(rng.integers(0, 256, size, dtype=np.uint8))
        payloads[fid] = data
        system.write(fid, data)
    return system, payloads


def _zipf_access(system, n_files, n_requests=1500, exponent=1.2, seed=1):
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_files + 1, dtype=float)
    p = ranks**-exponent
    p /= p.sum()
    for fid in rng.choice(n_files, size=n_requests, p=p):
        system.read(int(fid))


def test_writes_land_unsplit():
    system, _ = _filled_system()
    assert np.all(system.partition_counts_now() == 1)


def test_reads_roundtrip_before_and_after_rebalance():
    system, payloads = _filled_system()
    _zipf_access(system, len(payloads))
    system.rebalance(total_rate=10.0)
    for fid, data in payloads.items():
        assert system.read(fid) == data


def test_rebalance_partitions_hot_files_more():
    system, payloads = _filled_system()
    _zipf_access(system, len(payloads))
    report = system.rebalance(total_rate=10.0)
    assert report.n_repartitioned > 0
    ks = system.partition_counts_now()
    # File 0 (hottest under Zipf) holds at least as many partitions as the
    # coldest file, and strictly more than one.
    assert ks[0] > 1
    assert ks[0] >= ks[-1]


def test_rebalance_improves_placement_balance():
    system, payloads = _filled_system(n_files=40)
    _zipf_access(system, 40, n_requests=2500)
    before = imbalance_factor(system.server_placed_bytes())
    system.rebalance(total_rate=10.0)
    after = imbalance_factor(system.server_placed_bytes())
    assert after <= before + 1e-9


def test_second_rebalance_moves_little_when_stationary():
    """With an unchanged popularity law, round two should touch far fewer
    files than round one (Fig. 17's logic at the byte level)."""
    system, payloads = _filled_system(n_files=40)
    _zipf_access(system, 40, n_requests=2500, seed=1)
    first = system.rebalance(total_rate=10.0)
    _zipf_access(system, 40, n_requests=2500, seed=2)  # same law, new window
    second = system.rebalance(total_rate=10.0)
    assert second.n_repartitioned <= first.n_repartitioned


def test_expected_k_matches_layout_after_rebalance():
    system, payloads = _filled_system()
    _zipf_access(system, len(payloads))
    system.rebalance(total_rate=10.0, reset_window=False)
    ks = system.partition_counts_now()
    for fid in (0, 5, len(payloads) - 1):
        assert system.expected_k(fid, total_rate=10.0) == ks[fid]


def test_rebalance_requires_files():
    system = SPCacheSystem(ClusterSpec(n_servers=4, bandwidth=Gbps))
    with pytest.raises(RuntimeError):
        system.rebalance()


def test_expected_k_requires_configuration():
    system, _ = _filled_system(n_files=3)
    with pytest.raises(RuntimeError):
        system.expected_k(0)


def test_checkpoint_and_crash_recovery_through_system():
    system, payloads = _filled_system(n_files=5)
    for fid in payloads:
        system.checkpoint(fid)
    for worker in system.workers:
        worker.crash()
    for fid, data in payloads.items():
        assert system.read(fid) == data
