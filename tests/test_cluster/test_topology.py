"""Epoch-versioned membership: semantics, events, and fixed-topology parity.

The parity tests are the refactor's safety net: a
:class:`~repro.cluster.topology.ClusterTopology` standing in for a
``ClusterSpec`` anywhere in the data path — policy constructor, engine,
batched engine — must leave every simulated byte untouched, including
against the pre-refactor golden rows.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import (
    ChurnSchedule,
    ClusterTopology,
    SimulationConfig,
    StragglerInjector,
    as_cluster_spec,
    simulate_reads,
)
from repro.cluster.network import GoodputModel
from repro.common import ClusterSpec, Gbps
from repro.obs import RingBufferSink, Tracer, events as ev
from repro.policies import ECCachePolicy, SelectiveReplicationPolicy, SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace
from repro.workloads.bing import BingStragglerProfile

GOLDEN = Path(__file__).parent / "golden_engine_parity.json"


# -- membership semantics ---------------------------------------------------


def test_fixed_topology_has_one_epoch():
    topo = ClusterTopology.fixed(6)
    assert topo.is_fixed
    assert topo.n_epochs == 1
    assert topo.n_servers == 6
    assert topo.id_space == 6
    assert tuple(topo.initial.server_ids) == tuple(range(6))
    assert list(topo.events) == []


def test_adds_get_fresh_ids_and_removes_are_lifo():
    schedule = ChurnSchedule().add(10.0, 2).remove(20.0, 1)
    topo = ClusterTopology(3, schedule)
    assert [e.n_servers for e in topo.epochs] == [3, 5, 4]
    assert tuple(topo.epochs[1].server_ids) == (0, 1, 2, 3, 4)
    # Newest-first removal: server 4 (the youngest) leaves first.
    assert tuple(topo.epochs[2].server_ids) == (0, 1, 2, 3)
    assert topo.id_space == 5


def test_ids_are_never_recycled():
    schedule = ChurnSchedule().add(1.0, 1).remove(2.0, 1).add(3.0, 1)
    topo = ClusterTopology(2, schedule)
    # The re-add mints id 3; dead id 2 stays dead.
    assert tuple(topo.final.server_ids) == (0, 1, 3)


def test_same_timestamp_ops_fold_into_one_epoch():
    schedule = ChurnSchedule().remove_ids(5.0, [1]).add(5.0, 1)
    topo = ClusterTopology(3, schedule)
    assert topo.n_epochs == 2
    assert tuple(topo.final.server_ids) == (0, 2, 3)
    assert len(topo.events) == 2


def test_epoch_at_picks_the_enclosing_epoch():
    topo = ClusterTopology(2, ChurnSchedule().add(10.0).add(20.0))
    assert topo.epoch_at(0.0).index == 0
    assert topo.epoch_at(9.999).index == 0
    assert topo.epoch_at(10.0).index == 1
    assert topo.epoch_at(1e9).index == 2


def test_removing_everything_is_rejected():
    with pytest.raises(ValueError):
        ClusterTopology(2, ChurnSchedule().remove(1.0, 2))


def test_dense_stable_roundtrip():
    topo = ClusterTopology(4, ChurnSchedule().remove_ids(1.0, [1]))
    epoch = topo.final
    stable = np.array([0, 2, 3])
    dense = epoch.to_dense(stable)
    assert np.array_equal(epoch.stable_of[dense], stable)


def test_diurnal_schedule_shape():
    topo = ClusterTopology(
        12,
        ChurnSchedule.diurnal(t_peak=60.0, t_trough=240.0, amplitude=4, steps=2),
    )
    assert [e.n_servers for e in topo.epochs] == [12, 14, 16, 14, 12]
    assert topo.final.server_ids == topo.initial.server_ids


def test_emit_events_and_membership_section():
    topo = ClusterTopology(3, ChurnSchedule().add(1.0).remove(2.0))
    tracer = Tracer(RingBufferSink(64))
    n = topo.emit_events(tracer)
    records = [r for r in tracer.sink.records]
    kinds = [r["event"] for r in records]
    assert n == len(records) == 2 + 3  # 2 membership + 3 epoch events
    assert kinds.count(ev.MEMBERSHIP) == 2
    assert kinds.count(ev.EPOCH) == 3
    section = topo.membership_section(scheme="x")
    assert section["scheme"] == "x"
    assert section["n_epochs"] == 3
    assert [e["epoch"] for e in section["epochs"]] == [0, 1, 2]
    assert json.dumps(section)  # JSON-able as a manifest section


def test_as_cluster_spec_passthrough_and_epoch0():
    spec = ClusterSpec(5, 2e8, client_bandwidth=1e9)
    assert as_cluster_spec(spec) is spec
    topo = ClusterTopology.fixed(5, bandwidth=2e8, client_bandwidth=1e9)
    got = as_cluster_spec(topo)
    assert got.n_servers == 5
    assert np.array_equal(got.bandwidths, spec.bandwidths)
    assert got.client_bandwidth == spec.client_bandwidth


# -- fixed-topology byte parity ---------------------------------------------


def _golden_scenario(cluster):
    pop = paper_fileset(40, size_mb=20, zipf_exponent=1.1, total_rate=8.0)
    policy = SPCachePolicy(pop, cluster, alpha=2e-7, seed=5)
    trace = poisson_trace(pop, n_requests=400, seed=11)
    return trace, policy, pop


@pytest.mark.parametrize("discipline", ["fifo", "ps"])
def test_fixed_topology_reproduces_pre_refactor_golden(discipline):
    """ClusterTopology.fixed() pins the same bytes as the original
    monolithic engines' golden rows."""
    topo = ClusterTopology.fixed(6, bandwidth=1e8, client_bandwidth=4e8)
    trace, policy, pop = _golden_scenario(topo)
    config = SimulationConfig(
        discipline=discipline,
        jitter="exponential",
        goodput=GoodputModel(),
        stragglers=StragglerInjector(BingStragglerProfile(probability=0.2)),
        cache_budget=pop.total_bytes * 0.6,
        miss_penalty=2.0,
        seed=23,
    )
    result = simulate_reads(trace, policy, topo, config)
    golden = json.loads(GOLDEN.read_text())[discipline]
    assert [float(x).hex() for x in result.latencies] == golden["latencies"]
    assert [
        float(x).hex() for x in result.server_bytes
    ] == golden["server_bytes"]
    assert result.hits == golden["hits"]
    assert result.misses == golden["misses"]


@pytest.mark.parametrize(
    "make_policy",
    [
        lambda pop, c: SPCachePolicy(pop, c, seed=5),
        lambda pop, c: SelectiveReplicationPolicy(pop, c, seed=5),
        lambda pop, c: ECCachePolicy(pop, c, k=3, n=5, seed=5),
    ],
    ids=["sp-cache", "selective-replication", "ec-cache"],
)
@pytest.mark.parametrize("discipline", ["fifo", "ps", "limited(4)"])
@pytest.mark.parametrize("batch_size", [None, 64])
def test_topology_vs_spec_parity_across_policies(
    make_policy, discipline, batch_size
):
    """Every policy and discipline, scalar and batched: spec in,
    topology in, identical floats out."""
    spec = ClusterSpec(6, 1e8, client_bandwidth=4e8)
    topo = ClusterTopology.fixed(6, bandwidth=1e8, client_bandwidth=4e8)
    pop = paper_fileset(30, size_mb=10, zipf_exponent=1.1, total_rate=6.0)
    trace = poisson_trace(pop, n_requests=200, seed=11)
    config = SimulationConfig(
        discipline=discipline, seed=23, batch_size=batch_size
    )
    a = simulate_reads(trace, make_policy(pop, spec), spec, config)
    b = simulate_reads(trace, make_policy(pop, topo), topo, config)
    np.testing.assert_array_equal(a.latencies, b.latencies)
    np.testing.assert_array_equal(a.server_bytes, b.server_bytes)
    assert (a.hits, a.misses) == (b.hits, b.misses)


def test_policy_exposes_topology_and_spec():
    topo = ClusterTopology.fixed(4)
    pop = paper_fileset(8)
    policy = SPCachePolicy(pop, topo, seed=1)
    assert policy.topology is topo
    assert policy.cluster.n_servers == 4
    spec_policy = SPCachePolicy(pop, ClusterSpec(4, Gbps), seed=1)
    assert spec_policy.topology is None
