"""Property test: the heap-free FIFO engine equals an independent
event-driven multi-server fork-join simulator on randomized workloads."""

from __future__ import annotations

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import SimulationConfig, simulate_reads
from repro.cluster.client import ReadOp
from repro.common import ClusterSpec
from repro.workloads.arrivals import ArrivalTrace

N_SERVERS = 4


class _ScriptedPlanner:
    """Replays a fixed list of (servers, sizes, join) read plans."""

    def __init__(self, plans):
        self.plans = plans
        self.cursor = 0

    def plan_read(self, fid, rng):
        plan = self.plans[self.cursor]
        self.cursor += 1
        return ReadOp(
            server_ids=np.array(plan[0]),
            sizes=np.array(plan[1], dtype=float),
            join_count=plan[2],
        )

    def footprint(self, fid):
        return 1.0


def _reference_forkjoin(times, plans, bandwidth):
    """Brute-force per-server FIFO queues on a global event heap."""
    server_free = np.zeros(N_SERVERS)
    latencies = np.empty(len(times))
    # Requests processed in arrival order; within a request, reads enqueue
    # in plan order (matching the engine's vector semantics).
    heap = []  # just to mirror an event-driven structure
    for j, (t, (servers, sizes, join)) in enumerate(zip(times, plans)):
        completions = []
        for s, size in zip(servers, sizes):
            start = max(t, server_free[s])
            done = start + size / bandwidth
            server_free[s] = done
            completions.append(done)
            heapq.heappush(heap, (done, j))
        completions.sort()
        latencies[j] = completions[join - 1] - t
    return latencies


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0),  # inter-arrival gap
            st.lists(
                st.sampled_from(range(N_SERVERS)),
                min_size=1,
                max_size=N_SERVERS,
                unique=True,
            ),
            st.integers(min_value=1, max_value=N_SERVERS),  # join seed
            st.lists(
                st.floats(min_value=0.01, max_value=10.0),
                min_size=N_SERVERS,
                max_size=N_SERVERS,
            ),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=120, deadline=None)
def test_fifo_engine_matches_reference(specs):
    times = np.cumsum([gap for gap, *_ in specs])
    plans = []
    for _, servers, join_seed, sizes in specs:
        k = len(servers)
        join = 1 + (join_seed - 1) % k
        plans.append((servers, sizes[:k], join))
    trace = ArrivalTrace(times, np.zeros(len(specs), dtype=np.int64))
    cluster = ClusterSpec(n_servers=N_SERVERS, bandwidth=2.0)
    config = SimulationConfig(
        discipline="fifo", jitter="deterministic", goodput=None, seed=0
    )
    engine = simulate_reads(trace, _ScriptedPlanner(plans), cluster, config)
    reference = _reference_forkjoin(times, plans, bandwidth=2.0)
    assert np.allclose(engine.latencies, reference)


def test_reference_sanity():
    """Hand-checked case: two requests colliding on server 0."""
    times = np.array([0.0, 1.0])
    plans = [([0, 1], [4.0, 2.0], 2), ([0], [2.0], 1)]
    lat = _reference_forkjoin(times, plans, bandwidth=2.0)
    # Request 0: server0 0->2, server1 0->1; join on both => 2.0.
    assert lat[0] == pytest.approx(2.0)
    # Request 1 arrives at 1, waits for server0 until 2, runs 1 s => 2.0.
    assert lat[1] == pytest.approx(2.0)
