"""Degenerate inputs through every registered discipline.

Zero-request traces and single-server clusters — the corners where the
heap engine has nothing to pop and ``record_run_metrics`` has no last
arrival to stamp ``simulation_end`` with (it must fall back to 0.0).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    SimulationConfig,
    available_disciplines,
    simulate_reads,
)
from repro.cluster.client import ReadOp
from repro.common import ClusterSpec
from repro.obs import RingBufferSink, Tracer
from repro.obs.events import SIMULATION_END
from repro.workloads.arrivals import ArrivalTrace


def _specs() -> list[str]:
    """One runnable spec per registered discipline name."""
    return [
        "limited(2)" if name == "limited" else name
        for name in available_disciplines()
    ]


class _SingleServerPlanner:
    def plan_read(self, fid, rng):
        return ReadOp(server_ids=np.array([0]), sizes=np.array([2.0]))

    def footprint(self, fid):
        return 2.0


def _cfg(discipline, **kw):
    base = dict(
        discipline=discipline, jitter="deterministic", goodput=None, seed=0
    )
    base.update(kw)
    return SimulationConfig(**base)


@pytest.mark.parametrize("discipline", _specs())
def test_zero_request_trace(discipline):
    trace = ArrivalTrace(np.empty(0), np.empty(0, dtype=np.int64))
    cluster = ClusterSpec(n_servers=3, bandwidth=1.0)
    result = simulate_reads(
        trace, _SingleServerPlanner(), cluster, _cfg(discipline)
    )
    assert result.n_requests == 0
    assert result.latencies.size == 0
    assert result.hit_ratio == 1.0
    assert np.all(result.server_bytes == 0.0)
    assert result.metrics["requests"] == 0
    assert result.metrics["bytes_served"] == 0.0
    with pytest.raises(ValueError):  # empty samples are an upstream bug
        result.summary()


@pytest.mark.parametrize("discipline", _specs())
def test_zero_request_trace_simulation_end_ts_falls_back(discipline):
    """With no arrivals there is no clock; ``simulation_end`` stamps 0.0."""
    sink = RingBufferSink()
    trace = ArrivalTrace(np.empty(0), np.empty(0, dtype=np.int64))
    cluster = ClusterSpec(n_servers=2, bandwidth=1.0)
    simulate_reads(
        trace,
        _SingleServerPlanner(),
        cluster,
        _cfg(discipline, tracer=Tracer(sink)),
    )
    ends = [r for r in sink.records if r["event"] == SIMULATION_END]
    assert len(ends) == 1
    assert ends[0]["ts"] == 0.0
    assert ends[0]["requests"] == 0


@pytest.mark.parametrize("discipline", _specs())
def test_single_server_cluster(discipline):
    """n_servers=1 collapses every fork to one queue; bytes conserve and
    latencies are at least the wire time."""
    n = 40
    trace = ArrivalTrace(
        np.linspace(0.0, 20.0, n), np.zeros(n, dtype=np.int64)
    )
    cluster = ClusterSpec(n_servers=1, bandwidth=2.0, client_bandwidth=1e12)
    result = simulate_reads(
        trace, _SingleServerPlanner(), cluster, _cfg(discipline)
    )
    assert result.server_bytes.shape == (1,)
    assert result.server_bytes[0] == pytest.approx(2.0 * n)
    assert np.all(result.latencies >= 1.0 - 1e-12)  # 2 bytes at rate 2
    assert np.all(np.isfinite(result.latencies))


@pytest.mark.parametrize("discipline", _specs())
def test_single_request_single_server(discipline):
    """The smallest possible run: one read, one server, exact wire time."""
    trace = ArrivalTrace(np.array([0.0]), np.array([0]))
    cluster = ClusterSpec(n_servers=1, bandwidth=2.0, client_bandwidth=1e12)
    result = simulate_reads(
        trace, _SingleServerPlanner(), cluster, _cfg(discipline)
    )
    assert result.latencies[0] == pytest.approx(1.0)
    assert result.metrics["engine"]  # discipline stamped its name
