"""Cross-engine causal-DAG parity on the engine-parity workloads.

Span identity is deterministic — trace ids hash ``(scheme, engine,
request)`` and span ids hash the role within the tree — so a scalar and
a batched pass of one workload must produce *byte-identical* causal
sections and span-tree DAGs, for every discipline.  The conservation
invariant (critical-path segment sum == end-to-end latency) must hold
at 1e-9 relative tolerance everywhere, and a trace round trip must
reconstruct 100 % of the request DAGs.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import SimulationConfig, simulate_reads
from repro.common import ClusterSpec
from repro.obs import (
    CausalConfig,
    RingBufferSink,
    Tracer,
    causal_from_trace,
    span_forest,
    use_tracer,
)
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace

DISCIPLINES = ("fifo", "ps", "limited(3)")


def _shared_scenario():
    """Same shape as ``test_timeline_parity._shared_scenario`` (a
    fig13-style fork-join workload small enough to run per-discipline)."""
    cluster = ClusterSpec(n_servers=5, bandwidth=1e8, client_bandwidth=1e15)
    pop = paper_fileset(30, size_mb=20, zipf_exponent=1.1, total_rate=8.0)
    policy = SPCachePolicy(pop, cluster, alpha=2e-7, seed=5)
    trace = poisson_trace(pop, n_requests=300, seed=11)
    return trace, policy, cluster


def _run(discipline, **overrides):
    trace, policy, cluster = _shared_scenario()
    base = dict(
        discipline=discipline,
        jitter="deterministic",
        goodput=None,
        seed=23,
        causal=CausalConfig(),
    )
    base.update(overrides)
    return simulate_reads(trace, policy, cluster, SimulationConfig(**base))


def _canonical(section):
    return json.dumps(section, sort_keys=True)


@pytest.mark.parametrize("discipline", DISCIPLINES)
def test_batched_section_is_byte_identical_to_scalar(discipline):
    scalar = _run(discipline).causal
    batched = _run(discipline, batch_size=64).causal
    assert _canonical(batched) == _canonical(scalar)


@pytest.mark.parametrize("discipline", DISCIPLINES)
def test_conservation_holds_at_1e9(discipline):
    for batch_size in (None, 64):
        section = _run(discipline, batch_size=batch_size).causal
        conservation = section["conservation"]
        assert conservation["checked"] == 300
        assert conservation["max_rel_err"] <= 1e-9, (
            discipline, batch_size
        )
        assert conservation["ok"]


@pytest.mark.parametrize("discipline", DISCIPLINES)
def test_emitted_dags_identical_scalar_vs_batched(discipline):
    """The span *trees* (not just the aggregates) must match node for
    node: same deterministic ids, same parent edges, same edge values."""
    forests = []
    for batch_size in (None, 64):
        sink = RingBufferSink()
        with use_tracer(Tracer(sink)):
            _run(discipline, batch_size=batch_size)
        roots = [
            r
            for r in span_forest(sink.records)
            if r.get("name") == "request"
        ]
        # Canonicalize: children sorted by span id, volatile nothing —
        # every field of a cspan record is deterministic by design.
        def strip(node):
            clean = {k: v for k, v in node.items() if k != "children"}
            clean["children"] = sorted(
                (strip(c) for c in node["children"]),
                key=lambda c: c["span_id"],
            )
            return clean

        forests.append(
            json.dumps(
                sorted(
                    (strip(r) for r in roots),
                    key=lambda r: r["span_id"],
                ),
                sort_keys=True,
            )
        )
    scalar, batched = forests
    assert scalar == batched


@pytest.mark.parametrize("discipline", DISCIPLINES)
def test_trace_round_trip_reconstructs_every_request(discipline):
    sink = RingBufferSink()
    with use_tracer(Tracer(sink)):
        result = _run(discipline)
    (section,) = causal_from_trace(sink.records)
    assert section["reconstructed"] == result.n_requests
    assert section["dropped"] == 0
    assert section["conservation"]["ok"]
    assert section["conservation"]["max_rel_err"] <= 1e-9


def test_limited_inf_causal_is_exactly_ps():
    """The discipline-endpoint guarantee extends to causal sections,
    modulo the engine label (which names the discipline by design)."""
    ps = _run("ps").causal
    inf = _run("limited(inf)").causal

    def canonical(section):
        data = dict(section)
        data.pop("engine")
        # chain trace ids hash the engine label; compare the physics
        data["chains"] = [
            {k: v for k, v in c.items() if k != "trace_id"}
            for c in data["chains"]
        ]
        return json.dumps(data, sort_keys=True)

    assert canonical(inf) == canonical(ps)
