"""Vectorized batch planner: bit-exact parity with the scalar engine.

The batched planner (:mod:`repro.cluster.engine.batch`) is a pure
throughput optimization — the acceptance bar is *byte identity*, not
statistical closeness.  Every RNG mode the planner can take ("loop",
"jitter", "scan", "mask", "none"), every discipline, any batch size,
duplicate-server plans, LRU admission, observability collectors, and
streaming input must reproduce the scalar :class:`SimulationResult`
exactly (floats compared via ``float.hex`` through ``array_equal``).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import (
    SimulationConfig,
    StragglerInjector,
    simulate_reads,
)
from repro.cluster.client import ReadOp
from repro.cluster.engine import DEFAULT_BATCH_SIZE, get_batch_size, use_batching
from repro.cluster.network import GoodputModel
from repro.common import ClusterSpec
from repro.policies import SPCachePolicy
from repro.workloads import PoissonStream, paper_fileset, poisson_trace
from repro.workloads.bing import BingStragglerProfile


def _scenario():
    cluster = ClusterSpec(n_servers=6, bandwidth=1e8, client_bandwidth=4e8)
    pop = paper_fileset(40, size_mb=20, zipf_exponent=1.1, total_rate=8.0)
    policy = SPCachePolicy(pop, cluster, alpha=2e-7, seed=5)
    trace = poisson_trace(pop, n_requests=400, seed=11)
    return trace, policy, cluster, pop


def _assert_identical(a, b, context=""):
    assert np.array_equal(a.latencies, b.latencies), f"latencies {context}"
    assert np.array_equal(a.server_bytes, b.server_bytes), f"bytes {context}"
    assert np.array_equal(a.arrival_times, b.arrival_times), context
    assert np.array_equal(a.file_ids, b.file_ids), context
    assert a.hits == b.hits and a.misses == b.misses, context
    # The end-of-run snapshot (incl. straggler_reads, imbalance_eta) is
    # sim-time only — fully deterministic, so it must match exactly too.
    assert a.metrics == b.metrics, context


def _configs(pop):
    """One config per planner RNG mode (loop/scan/mask/jitter/none)."""
    return {
        # jitter + stragglers interleave per request -> "loop"
        "loop": SimulationConfig(
            jitter="exponential",
            goodput=GoodputModel(),
            stragglers=StragglerInjector(
                BingStragglerProfile(probability=0.2)
            ),
            seed=23,
            cache_budget=0.6 * pop.total_bytes,
            miss_penalty=2.0,
        ),
        # per-read stragglers as the run's only RNG consumer -> "scan"
        "scan": SimulationConfig(
            jitter="deterministic",
            stragglers=StragglerInjector.natural(),
            seed=23,
        ),
        # per-server stragglers -> "mask"
        "mask": SimulationConfig(
            jitter="deterministic",
            stragglers=StragglerInjector.intensive(),
            seed=23,
        ),
        # jitter alone batches into one exponential draw -> "jitter"
        "jitter": SimulationConfig(
            jitter="exponential",
            stragglers=StragglerInjector.none(),
            seed=23,
        ),
        # fully deterministic -> "none"
        "none": SimulationConfig(
            jitter="deterministic",
            stragglers=StragglerInjector.none(),
            seed=23,
        ),
    }


@pytest.mark.parametrize("discipline", ["fifo", "ps", "limited(2)"])
@pytest.mark.parametrize("mode", ["loop", "scan", "mask", "jitter", "none"])
def test_batched_matches_scalar_bitwise(discipline, mode):
    trace, policy, cluster, pop = _scenario()
    cfg = replace(_configs(pop)[mode], discipline=discipline)
    scalar = simulate_reads(trace, policy, cluster, cfg)
    for batch_size in (1, 64, 1000):
        batched = simulate_reads(
            trace, policy, cluster, replace(cfg, batch_size=batch_size)
        )
        _assert_identical(
            scalar, batched, f"{discipline}/{mode}/bs={batch_size}"
        )


class _DupServerPlanner:
    """Plans every read across duplicated server ids (k=3, two distinct).

    Exercises the scalar-replay fallback: the vectorized per-server FIFO
    recurrence assumes one queue entry per flow, so duplicate servers
    inside one plan must take the exact fancy-index path the scalar
    engine uses.
    """

    def __init__(self, pop):
        self.sizes = pop.sizes

    def plan_read(self, file_id, rng=None):
        return ReadOp(
            server_ids=np.array([file_id % 3, file_id % 3, 2], dtype=np.int64),
            sizes=np.full(3, float(self.sizes[file_id]) / 3.0),
        )

    def footprint(self):
        return float(np.sum(self.sizes))


@pytest.mark.parametrize("discipline", ["fifo", "ps"])
def test_duplicate_server_plans_replay_scalar_semantics(discipline):
    trace, _, cluster, pop = _scenario()
    planner = _DupServerPlanner(pop)
    cfg = SimulationConfig(
        discipline=discipline,
        jitter="deterministic",
        stragglers=StragglerInjector.none(),
        seed=23,
    )
    scalar = simulate_reads(trace, planner, cluster, cfg)
    batched = simulate_reads(
        trace, planner, cluster, replace(cfg, batch_size=64)
    )
    _assert_identical(scalar, batched, f"dup/{discipline}")


@pytest.mark.parametrize("discipline", ["fifo", "ps", "limited(2)"])
def test_stream_input_matches_materialized_trace(discipline):
    trace, policy, cluster, pop = _scenario()
    cfg = SimulationConfig(
        discipline=discipline,
        jitter="deterministic",
        stragglers=StragglerInjector.natural(),
        seed=23,
        batch_size=64,
    )
    from_trace = simulate_reads(trace, policy, cluster, cfg)
    stream = PoissonStream(pop, n_requests=400, seed=11)
    from_stream = simulate_reads(stream, policy, cluster, cfg)
    _assert_identical(from_trace, from_stream, f"stream/{discipline}")


def test_ambient_batching_context():
    trace, policy, cluster, pop = _scenario()
    cfg = SimulationConfig(
        jitter="deterministic", stragglers=StragglerInjector.natural(), seed=23
    )
    scalar = simulate_reads(trace, policy, cluster, cfg)
    assert get_batch_size() is None
    with use_batching(128):
        assert get_batch_size() == 128
        ambient = simulate_reads(trace, policy, cluster, cfg)
        # An explicit config wins over the ambient value.
        explicit = simulate_reads(
            trace, policy, cluster, replace(cfg, batch_size=32)
        )
    assert get_batch_size() is None
    _assert_identical(scalar, ambient, "ambient")
    _assert_identical(scalar, explicit, "explicit-override")
    with use_batching():
        assert get_batch_size() == DEFAULT_BATCH_SIZE


def test_batch_size_validation():
    with pytest.raises(ValueError):
        SimulationConfig(batch_size=0)
    with pytest.raises(TypeError):
        SimulationConfig(batch_size=2.5)
    with pytest.raises(TypeError):
        SimulationConfig(batch_size=True)
