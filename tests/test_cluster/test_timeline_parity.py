"""Cross-discipline timeline parity on the engine-parity workloads.

The discipline-endpoint guarantees (``limited(1)`` collapses to ``fifo``,
``limited(inf)`` *is* ``ps``) must extend to the observability layer:
identical physics must produce identical timeline sections, regardless
of which engine — the vectorized per-request loop or the event heap —
recorded them.  Sections are compared with the ``engine`` label removed,
since that (by design) names the discipline that ran.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import SimulationConfig, StragglerInjector, simulate_reads
from repro.cluster.network import GoodputModel
from repro.common import ClusterSpec
from repro.obs import TimelineConfig
from repro.policies import SPCachePolicy
from repro.workloads import paper_fileset, poisson_trace
from repro.workloads.bing import BingStragglerProfile


def _shared_scenario():
    """Same shape as ``test_engine_parity._shared_scenario``: the huge
    client NIC keeps the client cap from binding, which is what makes
    ``limited(1)`` equivalent to the FIFO model."""
    cluster = ClusterSpec(n_servers=5, bandwidth=1e8, client_bandwidth=1e15)
    pop = paper_fileset(30, size_mb=20, zipf_exponent=1.1, total_rate=8.0)
    policy = SPCachePolicy(pop, cluster, alpha=2e-7, seed=5)
    trace = poisson_trace(pop, n_requests=300, seed=11)
    return trace, policy, cluster


def _run(discipline, **overrides):
    trace, policy, cluster = _shared_scenario()
    base = dict(
        discipline=discipline,
        jitter="deterministic",
        goodput=None,
        seed=23,
        timeline=TimelineConfig(),
    )
    base.update(overrides)
    return simulate_reads(trace, policy, cluster, SimulationConfig(**base))


def _canonical(section):
    data = dict(section)
    data.pop("engine")
    return json.dumps(data, sort_keys=True)


def test_limited_inf_timeline_is_exactly_ps():
    """The two heap configurations must agree byte for byte."""
    ps = _run("ps").timeline
    inf = _run("limited(inf)").timeline
    assert _canonical(inf) == _canonical(ps)


def test_limited_inf_timeline_matches_ps_with_stragglers_and_jitter():
    kwargs = dict(
        jitter="exponential",
        goodput=GoodputModel(),
        stragglers=StragglerInjector(BingStragglerProfile(probability=0.2)),
    )
    ps = _run("ps", **kwargs).timeline
    inf = _run("limited(inf)", **kwargs).timeline
    assert _canonical(inf) == _canonical(ps)


def test_limited_one_timeline_matches_fifo():
    """c=1 reproduces the FIFO physics; the recorders differ (vectorized
    blocks vs. event-heap scalars), so series agree to float tolerance."""
    fifo = _run("fifo").timeline
    lim1 = _run("limited(1)").timeline
    assert lim1["window_s"] == pytest.approx(fifo["window_s"])
    assert lim1["n_windows"] == fifo["n_windows"]
    for key in ("bytes", "busy_s", "queue_depth"):
        np.testing.assert_allclose(
            np.asarray(lim1[key]),
            np.asarray(fifo[key]),
            atol=1e-6,
            err_msg=key,
        )
    att_f = fifo["tail"]["attribution"]
    att_l = lim1["tail"]["attribution"]
    for key in (
        "mean_tail_latency_s",
        "queueing_s",
        "straggling_s",
        "transfer_s",
        "join_s",
        "p99_s",
    ):
        assert att_l[key] == pytest.approx(att_f[key], abs=1e-9), key
    assert [e["req"] for e in lim1["tail"]["exemplars"]] == [
        e["req"] for e in fifo["tail"]["exemplars"]
    ]


def test_timelines_do_not_perturb_results():
    """Recording a timeline must not change the simulated physics."""
    for discipline in ("fifo", "ps", "limited(3)"):
        plain = _run(discipline, timeline=None)
        observed = _run(discipline)
        assert np.array_equal(observed.latencies, plain.latencies)
        assert np.array_equal(observed.server_bytes, plain.server_bytes)
        assert plain.timeline is None and observed.timeline is not None
