"""Processor-sharing engine specifics: late binding, fairness, stragglers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SimulationConfig, StragglerInjector, simulate_reads
from repro.cluster.client import ReadOp
from repro.common import ClusterSpec
from repro.workloads.arrivals import ArrivalTrace
from repro.workloads.bing import BingStragglerProfile


def _cfg(**kw):
    base = dict(discipline="ps", jitter="deterministic", goodput=None, seed=0)
    base.update(kw)
    return SimulationConfig(**base)


class _Plan:
    def __init__(self, servers, sizes, join=-1):
        self.op = ReadOp(
            server_ids=np.array(servers),
            sizes=np.array(sizes, dtype=float),
            join_count=join,
        )

    def plan_read(self, fid, rng):
        return self.op

    def footprint(self, fid):
        return float(self.op.sizes.sum())


def test_late_bound_extra_flow_still_ships_bytes():
    """The k+1-th read is not cancelled at the join: its bytes count."""
    trace = ArrivalTrace(np.array([0.0]), np.array([0]))
    cluster = ClusterSpec(n_servers=3, bandwidth=1.0, client_bandwidth=1e12)
    planner = _Plan([0, 1, 2], [1.0, 1.0, 5.0], join=2)
    result = simulate_reads(trace, planner, cluster, _cfg())
    # Join fires when the two 1-byte flows finish (t = 1).
    assert result.latencies[0] == pytest.approx(1.0)
    # But the 5-byte flow is still accounted to its server.
    assert result.server_bytes[2] == pytest.approx(5.0)
    assert result.server_bytes.sum() == pytest.approx(7.0)


def test_fair_share_across_requests_on_one_server():
    """Three equal flows on one server finish together at 3x the solo time."""
    trace = ArrivalTrace(np.zeros(3), np.zeros(3, dtype=np.int64))
    cluster = ClusterSpec(n_servers=1, bandwidth=3.0, client_bandwidth=1e12)
    planner = _Plan([0], [3.0])
    result = simulate_reads(trace, planner, cluster, _cfg())
    assert np.allclose(result.latencies, 3.0)


def test_staggered_arrivals_exact_ps_schedule():
    """Hand-computed PS schedule: flow A (2 bytes) arrives at t=0, flow B
    (1 byte) at t=1, server rate 1.

    t in [0,1): A alone, drains 1 byte (1 left).
    t in [1, ...): A and B share at 1/2 each; B needs 1 byte -> 2 s more?
    No: both have 1 byte left at t=1, each drains at 1/2 -> both finish
    at t=3.
    """
    trace = ArrivalTrace(np.array([0.0, 1.0]), np.array([0, 0]))
    cluster = ClusterSpec(n_servers=1, bandwidth=1.0, client_bandwidth=1e12)

    class Two:
        def __init__(self):
            self.calls = 0

        def plan_read(self, fid, rng):
            self.calls += 1
            size = 2.0 if self.calls == 1 else 1.0
            return ReadOp(server_ids=np.array([0]), sizes=np.array([size]))

        def footprint(self, fid):
            return 1.0

    result = simulate_reads(trace, Two(), cluster, _cfg())
    assert result.latencies[0] == pytest.approx(3.0)  # A: t=0 -> 3
    assert result.latencies[1] == pytest.approx(2.0)  # B: t=1 -> 3


def test_straggler_delays_join_but_frees_bandwidth():
    """A straggling flow reports late; a request arriving after it must
    not queue behind the sleep."""
    trace = ArrivalTrace(np.array([0.0, 0.1]), np.array([0, 0]))
    cluster = ClusterSpec(n_servers=1, bandwidth=10.0, client_bandwidth=1e12)
    planner = _Plan([0], [10.0])  # 1 s of wire time each, serial-ish
    inj = StragglerInjector(BingStragglerProfile(probability=1.0))
    result = simulate_reads(trace, planner, cluster, _cfg(stragglers=inj, seed=3))
    # Both requests straggle (p = 1) and report at least 1.5x late.
    wire = np.array([i for i in result.latencies])
    assert np.all(wire >= 1.5)
    # Without capacity coupling, the second request's latency is within
    # the two-flow PS bound plus its own delay — not the sum of sleeps.
    # (Two overlapping 1 s flows => both wires done by ~2 s; reports add
    # (f-1) * nominal 1 s each, f <= 12.)
    assert result.latencies.max() < 2.0 + 12.0


def test_goodput_applies_per_request_fanout():
    trace = ArrivalTrace(np.array([0.0]), np.array([0]))
    cluster = ClusterSpec(n_servers=2, bandwidth=1.0, client_bandwidth=1e12)
    from repro.cluster.network import GoodputModel

    planner = _Plan([0, 1], [1.0, 1.0])
    plain = simulate_reads(trace, planner, cluster, _cfg())
    lossy = simulate_reads(
        trace, planner, cluster, _cfg(goodput=GoodputModel())
    )
    assert lossy.latencies[0] > plain.latencies[0]


def test_fifo_and_ps_agree_on_isolated_reads():
    """With one request at a time in the system, the disciplines match."""
    n = 50
    trace = ArrivalTrace(
        np.arange(n) * 100.0, np.zeros(n, dtype=np.int64)
    )
    cluster = ClusterSpec(n_servers=4, bandwidth=1.0, client_bandwidth=1e12)
    planner = _Plan([0, 1, 2, 3], [2.0, 2.0, 2.0, 2.0])
    ps = simulate_reads(trace, planner, cluster, _cfg())
    fifo = simulate_reads(
        trace, planner, cluster, _cfg(discipline="fifo")
    )
    assert np.allclose(ps.latencies, fifo.latencies)


def test_empty_trace():
    trace = ArrivalTrace(np.empty(0), np.empty(0, dtype=np.int64))
    cluster = ClusterSpec(n_servers=1, bandwidth=1.0)
    result = simulate_reads(trace, _Plan([0], [1.0]), cluster, _cfg())
    assert result.n_requests == 0
    assert result.hit_ratio == 1.0
