"""Behavioral properties of the simulator across engines and features."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SimulationConfig, StragglerInjector, simulate_reads
from repro.cluster.client import ReadOp
from repro.common import ClusterSpec, Gbps, MB
from repro.policies import SPCachePolicy, SingleCopyPolicy
from repro.workloads import paper_fileset, poisson_trace
from repro.workloads.arrivals import ArrivalTrace
from repro.workloads.bing import BingStragglerProfile

CLUSTER = ClusterSpec(n_servers=10, bandwidth=Gbps)
POP = paper_fileset(30, size_mb=20, zipf_exponent=1.1, total_rate=6.0)
TRACE = poisson_trace(POP, n_requests=1500, seed=0)


def _run(policy, config):
    return simulate_reads(TRACE, policy, CLUSTER, config)


@pytest.mark.parametrize("discipline", ["fifo", "ps"])
def test_conservation_of_bytes(discipline):
    """Every scheduled byte must be accounted to some server."""
    policy = SPCachePolicy(POP, CLUSTER, alpha=2e-7, seed=1)
    result = _run(
        policy,
        SimulationConfig(
            discipline=discipline, jitter="deterministic", seed=2
        ),
    )
    expected = POP.sizes[TRACE.file_ids].sum()
    assert result.server_bytes.sum() == pytest.approx(expected, rel=1e-9)


@pytest.mark.parametrize("discipline", ["fifo", "ps"])
def test_latencies_at_least_wire_time(discipline):
    """No request can finish faster than its bytes through the client NIC
    (goodput disabled, no decode)."""
    policy = SingleCopyPolicy(POP, CLUSTER, seed=1)
    result = _run(
        policy,
        SimulationConfig(
            discipline=discipline,
            jitter="deterministic",
            goodput=None,
            seed=2,
        ),
    )
    sizes = POP.sizes[TRACE.file_ids]
    floor = sizes / CLUSTER.bandwidths[0]  # single-stream: server NIC
    assert np.all(result.latencies >= floor - 1e-9)


def test_deterministic_given_seed():
    policy = SPCachePolicy(POP, CLUSTER, alpha=2e-7, seed=1)
    cfg = SimulationConfig(seed=5)
    a = _run(policy, cfg).latencies
    b = _run(policy, cfg).latencies
    assert np.array_equal(a, b)


def test_stragglers_increase_latency_not_load():
    """Delay-only semantics: stragglers lift latencies but server bytes
    stay identical (a sleeping thread ships no extra bytes)."""
    policy = SPCachePolicy(POP, CLUSTER, alpha=1e-6, seed=1)
    clean = _run(
        policy, SimulationConfig(jitter="deterministic", seed=3)
    )
    slow = _run(
        policy,
        SimulationConfig(
            jitter="deterministic",
            stragglers=StragglerInjector(BingStragglerProfile(0.3)),
            seed=3,
        ),
    )
    assert slow.latencies.mean() > clean.latencies.mean()
    assert np.array_equal(slow.server_bytes, clean.server_bytes)


def test_late_binding_dodges_stragglers():
    """Joining on k of k+1 reads beats joining on all k+1 when stragglers
    delay completions."""
    n = 4000
    trace = ArrivalTrace(
        np.linspace(0, 4000, n), np.zeros(n, dtype=np.int64)
    )

    class Fanout:
        def __init__(self, join):
            self.join = join

        def plan_read(self, fid, rng):
            return ReadOp(
                server_ids=np.arange(5),
                sizes=np.full(5, 1 * MB),
                join_count=self.join,
            )

        def footprint(self, fid):
            return 5 * MB

    cfg = SimulationConfig(
        jitter="deterministic",
        stragglers=StragglerInjector(BingStragglerProfile(0.2)),
        seed=4,
    )
    cluster = ClusterSpec(n_servers=5, bandwidth=Gbps)
    all5 = simulate_reads(trace, Fanout(5), cluster, cfg).summary()
    any4 = simulate_reads(trace, Fanout(4), cluster, cfg).summary()
    assert any4.mean < all5.mean


def test_post_fraction_and_seconds_applied():
    trace = ArrivalTrace(np.array([0.0]), np.array([0]))

    class Decoded:
        def plan_read(self, fid, rng):
            return ReadOp(
                server_ids=np.array([0]),
                sizes=np.array([float(Gbps)]),  # exactly 1 s of wire time
                post_fraction=0.2,
                post_seconds=0.5,
            )

        def footprint(self, fid):
            return float(Gbps)

    cluster = ClusterSpec(n_servers=1, bandwidth=Gbps, client_bandwidth=Gbps)
    cfg = SimulationConfig(jitter="deterministic", goodput=None, seed=0)
    result = simulate_reads(trace, Decoded(), cluster, cfg)
    assert result.latencies[0] == pytest.approx(1.0 * 1.2 + 0.5)


def test_cache_budget_miss_penalty_and_hits():
    policy = SingleCopyPolicy(POP, CLUSTER, seed=1)
    tight = SimulationConfig(
        jitter="deterministic",
        cache_budget=POP.total_bytes * 0.3,
        miss_penalty=3.0,
        seed=3,
    )
    loose = SimulationConfig(
        jitter="deterministic",
        cache_budget=POP.total_bytes * 10,
        seed=3,
    )
    r_tight = _run(policy, tight)
    r_loose = _run(policy, loose)
    assert r_tight.misses > r_loose.misses
    assert r_tight.hit_ratio < 1.0
    # Every file is touched at least once: first access always misses.
    assert r_loose.misses == len(np.unique(TRACE.file_ids))
    assert r_tight.latencies.mean() > r_loose.latencies.mean()


def test_warmup_fraction_trims_prefix():
    policy = SingleCopyPolicy(POP, CLUSTER, seed=1)
    result = _run(policy, SimulationConfig(seed=3, warmup_fraction=0.5))
    assert result.steady_state_latencies().size == result.n_requests // 2


def test_config_validation():
    with pytest.raises(ValueError):
        SimulationConfig(cache_budget=0.0)
    with pytest.raises(ValueError):
        SimulationConfig(miss_penalty=0.5)
    with pytest.raises(ValueError):
        SimulationConfig(warmup_fraction=1.0)
