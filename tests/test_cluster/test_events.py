"""Heap-based event queue semantics."""

from __future__ import annotations

import pytest

from repro.cluster.events import EventQueue


def test_runs_in_time_order():
    q = EventQueue()
    fired = []
    q.schedule(3.0, lambda: fired.append("c"))
    q.schedule(1.0, lambda: fired.append("a"))
    q.schedule(2.0, lambda: fired.append("b"))
    q.run()
    assert fired == ["a", "b", "c"]
    assert q.now == 3.0
    assert q.processed == 3


def test_ties_fire_in_schedule_order():
    q = EventQueue()
    fired = []
    for tag in range(5):
        q.schedule(1.0, lambda t=tag: fired.append(t))
    q.run()
    assert fired == [0, 1, 2, 3, 4]


def test_schedule_after_and_nested():
    q = EventQueue()
    fired = []

    def first():
        fired.append(q.now)
        q.schedule_after(2.0, lambda: fired.append(q.now))

    q.schedule(1.0, first)
    q.run()
    assert fired == [1.0, 3.0]


def test_run_until_stops_clock():
    q = EventQueue()
    fired = []
    q.schedule(1.0, lambda: fired.append(1))
    q.schedule(5.0, lambda: fired.append(5))
    q.run(until=3.0)
    assert fired == [1]
    assert q.now == 3.0
    assert len(q) == 1


def test_max_events_guard():
    q = EventQueue()

    def loop():
        q.schedule_after(1.0, loop)

    q.schedule(0.0, loop)
    q.run(max_events=10)
    assert q.processed == 10


def test_cannot_schedule_in_past():
    q = EventQueue()
    q.schedule(5.0, lambda: None)
    q.step()
    with pytest.raises(ValueError):
        q.schedule(1.0, lambda: None)
    with pytest.raises(ValueError):
        q.schedule_after(-1.0, lambda: None)


def test_step_empty_returns_false():
    assert EventQueue().step() is False
