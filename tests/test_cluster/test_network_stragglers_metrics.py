"""Goodput model, straggler injector, metrics, and read/write ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.client import ReadOp, WriteOp, write_latency
from repro.cluster.metrics import (
    coefficient_of_variation,
    imbalance_factor,
    latency_improvement,
    summarize_latencies,
)
from repro.cluster.network import GoodputModel, transfer_time
from repro.cluster.stragglers import StragglerInjector
from repro.common import Gbps, Mbps
from repro.workloads.bing import BingStragglerProfile


class TestGoodputModel:
    def test_single_connection_is_lossless(self):
        assert GoodputModel().factor(1, Gbps) == pytest.approx(1.0)

    def test_calibration_points(self):
        m = GoodputModel()
        assert m.factor(20, Gbps) == pytest.approx(0.80, abs=0.02)
        assert m.factor(100, Gbps) == pytest.approx(0.62, abs=0.02)
        assert m.factor(100, 500 * Mbps) == pytest.approx(0.60, abs=0.02)

    def test_monotone_nonincreasing(self):
        m = GoodputModel()
        ks = np.arange(1, 101)
        factors = m.factor(ks, Gbps)
        assert np.all(np.diff(factors) <= 1e-12)

    def test_lower_bandwidth_loses_more(self):
        m = GoodputModel()
        assert m.factor(50, 500 * Mbps) <= m.factor(50, Gbps)

    def test_clamped_beyond_knots(self):
        m = GoodputModel()
        assert m.factor(100000, Gbps) == pytest.approx(m.factor(100, Gbps))

    def test_identity_model(self):
        m = GoodputModel.identity()
        assert m.factor(100, Gbps) == 1.0

    def test_transfer_time(self):
        assert transfer_time(100.0, 10.0) == pytest.approx(10.0)
        assert transfer_time(100.0, 10.0, 0.5) == pytest.approx(20.0)


class TestStragglerInjector:
    def test_none_is_disabled(self):
        inj = StragglerInjector.none()
        assert not inj.enabled
        assert np.all(inj.multipliers(np.arange(10)) == 1.0)

    def test_presets(self):
        assert StragglerInjector.natural().profile.probability == 0.02
        assert StragglerInjector.injected().profile.probability == 0.05
        intensive = StragglerInjector.intensive()
        assert intensive.mode == "per_server"

    def test_per_read_rate(self):
        inj = StragglerInjector.injected()
        mult = inj.multipliers(np.zeros(100_000, dtype=np.int64), seed=0)
        assert (mult > 1).mean() == pytest.approx(0.05, abs=0.005)

    def test_per_server_only_hits_masked(self):
        inj = StragglerInjector(
            BingStragglerProfile(probability=0.5), mode="per_server"
        )
        mask = np.array([True, False])
        servers = np.array([0, 1] * 1000)
        mult = inj.multipliers(servers, straggler_mask=mask, seed=1)
        assert np.all(mult[1::2] == 1.0)  # server 1 is clean
        assert np.all(mult[0::2] > 1.0)  # server 0 always straggles

    def test_per_server_requires_mask(self):
        inj = StragglerInjector(
            BingStragglerProfile(probability=0.5), mode="per_server"
        )
        with pytest.raises(ValueError):
            inj.multipliers(np.array([0, 1]))

    def test_straggler_servers_probability(self):
        inj = StragglerInjector.intensive()
        masks = [inj.straggler_servers(30, seed=s).sum() for s in range(200)]
        assert 0.5 < np.mean(masks) < 3.5  # E = 1.5


class TestMetrics:
    def test_summary_fields(self):
        lat = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
        s = summarize_latencies(lat)
        assert s.mean == pytest.approx(22.0)
        assert s.p50 == pytest.approx(3.0)
        assert s.n == 5
        assert s.row()["p95"] == s.p95

    def test_cv(self):
        assert coefficient_of_variation(np.ones(10)) == 0.0
        sample = np.array([0.0, 2.0])
        assert coefficient_of_variation(sample) == pytest.approx(1.0)

    def test_imbalance_factor(self):
        assert imbalance_factor(np.array([1.0, 1.0])) == 0.0
        assert imbalance_factor(np.array([1.0, 3.0])) == pytest.approx(0.5)
        assert imbalance_factor(np.zeros(3)) == 0.0

    def test_latency_improvement(self):
        assert latency_improvement(2.0, 1.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            latency_improvement(0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_latencies(np.array([]))
        with pytest.raises(ValueError):
            summarize_latencies(np.array([-1.0]))

    def test_summary_rejects_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            summarize_latencies(np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="finite"):
            summarize_latencies(np.array([1.0, np.inf]))

    def test_cv_imbalance_shared_edge_contract(self):
        """Empty raises, all-zero is 0.0, non-finite raises — for both."""
        for fn in (coefficient_of_variation, imbalance_factor):
            with pytest.raises(ValueError):
                fn(np.array([]))
            assert fn(np.zeros(5)) == 0.0
            with pytest.raises(ValueError, match="finite"):
                fn(np.array([1.0, np.nan]))
            with pytest.raises(ValueError, match="finite"):
                fn(np.array([np.inf, 1.0]))


class TestOps:
    def test_read_op_defaults(self):
        op = ReadOp(server_ids=np.array([0, 1]), sizes=np.array([1.0, 2.0]))
        assert op.join_count == 2
        assert op.parallelism == 2

    def test_read_op_validation(self):
        with pytest.raises(ValueError):
            ReadOp(server_ids=np.array([]), sizes=np.array([]))
        with pytest.raises(ValueError):
            ReadOp(server_ids=np.array([0]), sizes=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            ReadOp(
                server_ids=np.array([0, 1]),
                sizes=np.array([1.0, 1.0]),
                join_count=3,
            )
        with pytest.raises(ValueError):
            ReadOp(
                server_ids=np.array([0]),
                sizes=np.array([1.0]),
                post_fraction=-0.5,
            )

    def test_write_op_and_latency(self):
        op = WriteOp(sizes=np.array([50.0, 50.0]), pre_seconds=1.0)
        assert op.total_bytes == 100.0
        assert op.n_connections == 2
        lat = write_latency(op, client_bandwidth=10.0)
        assert lat == pytest.approx(1.0 + 10.0)

    def test_write_latency_goodput_penalty(self):
        op = WriteOp(sizes=np.full(100, 1.0))
        plain = write_latency(op, client_bandwidth=10.0)
        lossy = write_latency(op, 10.0, GoodputModel())
        assert lossy > plain
