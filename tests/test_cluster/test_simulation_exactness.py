"""The fast FIFO engine is exact: cross-checked against an independent
heap-based M/M/1 simulator and against closed-form queueing theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SimulationConfig, simulate_reads
from repro.cluster.client import ReadOp
from repro.cluster.events import EventQueue
from repro.common import ClusterSpec
from repro.workloads.arrivals import ArrivalTrace


class _SingleFilePlanner:
    """Every request reads one fixed-size object from server 0."""

    def __init__(self, size: float):
        self.size = size

    def plan_read(self, file_id, rng):
        return ReadOp(
            server_ids=np.array([0]), sizes=np.array([self.size])
        )

    def footprint(self, file_id):
        return self.size


def _mm1_reference(times: np.ndarray, services: np.ndarray) -> np.ndarray:
    """Independent event-driven FIFO queue built on EventQueue."""
    q = EventQueue()
    completions = np.empty(times.size)
    state = {"busy": False, "queue": []}

    def finish(idx: int) -> None:
        completions[idx] = q.now
        if state["queue"]:
            nxt = state["queue"].pop(0)
            q.schedule_after(services[nxt], lambda: finish(nxt))
        else:
            state["busy"] = False

    def arrive(idx: int) -> None:
        if state["busy"]:
            state["queue"].append(idx)
        else:
            state["busy"] = True
            q.schedule_after(services[idx], lambda: finish(idx))

    for j, t in enumerate(times):
        q.schedule(float(t), lambda j=j: arrive(j))
    q.run()
    return completions - times


@pytest.fixture
def fifo_config():
    return SimulationConfig(
        discipline="fifo", jitter="exponential", goodput=None, seed=7
    )


def test_fifo_engine_matches_independent_heap_simulator(fifo_config):
    """Same service-time draws => identical latencies, event by event."""
    rng = np.random.default_rng(1)
    n = 2000
    times = np.cumsum(rng.exponential(0.2, n))
    trace = ArrivalTrace(times, np.zeros(n, dtype=np.int64))
    cluster = ClusterSpec(n_servers=1, bandwidth=1.0)

    size = 0.1  # mean service 0.1 s at bandwidth 1
    result = simulate_reads(
        trace, _SingleFilePlanner(size), cluster, fifo_config
    )
    # Reproduce the exact service draws the engine used (same seed/order).
    rng2 = np.random.default_rng(7)
    services = np.array([rng2.exponential(size) for _ in range(n)])
    expected = _mm1_reference(times, services)
    assert np.allclose(result.latencies, expected)


def test_mm1_mean_sojourn_matches_theory():
    """M/M/1: E[T] = 1 / (mu - lambda)."""
    lam, mu = 5.0, 8.0
    n = 120_000
    rng = np.random.default_rng(2)
    times = np.cumsum(rng.exponential(1 / lam, n))
    trace = ArrivalTrace(times, np.zeros(n, dtype=np.int64))
    cluster = ClusterSpec(n_servers=1, bandwidth=mu)  # size 1 => rate mu
    config = SimulationConfig(
        discipline="fifo", jitter="exponential", goodput=None, seed=3
    )
    result = simulate_reads(trace, _SingleFilePlanner(1.0), cluster, config)
    measured = result.steady_state_latencies().mean()
    assert measured == pytest.approx(1 / (mu - lam), rel=0.05)


def test_md1_mean_wait_matches_pollaczek_khinchine():
    """M/D/1: W = rho / (2 (1 - rho)) * s; sojourn = W + s."""
    lam, s = 4.0, 0.15
    rho = lam * s
    n = 120_000
    rng = np.random.default_rng(3)
    times = np.cumsum(rng.exponential(1 / lam, n))
    trace = ArrivalTrace(times, np.zeros(n, dtype=np.int64))
    cluster = ClusterSpec(n_servers=1, bandwidth=1.0)
    config = SimulationConfig(
        discipline="fifo", jitter="deterministic", goodput=None, seed=4
    )
    result = simulate_reads(trace, _SingleFilePlanner(s), cluster, config)
    expected = s + rho / (2 * (1 - rho)) * s
    assert result.steady_state_latencies().mean() == pytest.approx(
        expected, rel=0.05
    )


def test_ps_engine_matches_ps_theory_mean():
    """M/M/1-PS has the same mean sojourn as M/M/1-FIFO: 1/(mu - lambda)."""
    lam, mu = 5.0, 8.0
    n = 120_000
    rng = np.random.default_rng(5)
    times = np.cumsum(rng.exponential(1 / lam, n))
    trace = ArrivalTrace(times, np.zeros(n, dtype=np.int64))
    # client_bandwidth huge so only the server NIC matters.
    cluster = ClusterSpec(n_servers=1, bandwidth=mu, client_bandwidth=1e12)
    config = SimulationConfig(
        discipline="ps", jitter="exponential", goodput=None, seed=6
    )
    result = simulate_reads(trace, _SingleFilePlanner(1.0), cluster, config)
    assert result.steady_state_latencies().mean() == pytest.approx(
        1 / (mu - lam), rel=0.05
    )


def test_ps_single_flow_transfer_time_is_size_over_bandwidth():
    trace = ArrivalTrace(np.array([0.0]), np.array([0]))
    cluster = ClusterSpec(n_servers=1, bandwidth=10.0, client_bandwidth=1e12)
    config = SimulationConfig(
        discipline="ps", jitter="deterministic", goodput=None, seed=0
    )
    result = simulate_reads(trace, _SingleFilePlanner(5.0), cluster, config)
    assert result.latencies[0] == pytest.approx(0.5)


def test_ps_two_concurrent_flows_share_bandwidth():
    """Two simultaneous unit reads on a rate-1 server: PS finishes both at
    t=2 (each gets 1/2), while FIFO finishes them at 1 and 2."""
    trace = ArrivalTrace(np.array([0.0, 0.0]), np.array([0, 0]))
    cluster = ClusterSpec(n_servers=1, bandwidth=1.0, client_bandwidth=1e12)
    base = dict(jitter="deterministic", goodput=None, seed=0)
    ps = simulate_reads(
        trace,
        _SingleFilePlanner(1.0),
        cluster,
        SimulationConfig(discipline="ps", **base),
    )
    assert np.allclose(np.sort(ps.latencies), [2.0, 2.0])
    fifo = simulate_reads(
        trace,
        _SingleFilePlanner(1.0),
        cluster,
        SimulationConfig(discipline="fifo", **base),
    )
    assert np.allclose(np.sort(fifo.latencies), [1.0, 2.0])


def test_ps_client_cap_limits_parallel_read():
    """A 2-way parallel read against idle servers is limited by the client
    NIC: 2 partitions x 1 byte at client bandwidth 1 => 2 s, not 1 s."""

    class TwoWay:
        def plan_read(self, file_id, rng):
            return ReadOp(
                server_ids=np.array([0, 1]), sizes=np.array([1.0, 1.0])
            )

        def footprint(self, file_id):
            return 2.0

    trace = ArrivalTrace(np.array([0.0]), np.array([0]))
    cluster = ClusterSpec(n_servers=2, bandwidth=100.0, client_bandwidth=1.0)
    config = SimulationConfig(
        discipline="ps", jitter="deterministic", goodput=None, seed=0
    )
    result = simulate_reads(trace, TwoWay(), cluster, config)
    assert result.latencies[0] == pytest.approx(2.0)
