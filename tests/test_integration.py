"""End-to-end scenarios exercising the public API across packages.

These tests assert the paper's *qualitative* claims hold in the simulator:
SP-Cache balances better than the baselines, wins under load, keeps the
hit-ratio lead with throttled budgets, and repartitions cheaply.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ClusterSpec,
    ECCachePolicy,
    Gbps,
    SelectiveReplicationPolicy,
    SimulationConfig,
    SingleCopyPolicy,
    SPCachePolicy,
    StragglerInjector,
    imbalance_factor,
    paper_fileset,
    poisson_trace,
    simulate_reads,
)
from repro.core import plan_repartition
from repro.core.repartition import (
    repartition_time_parallel,
    repartition_time_sequential,
)
from repro.workloads import shuffled_popularity

CLUSTER = ClusterSpec(n_servers=30, bandwidth=Gbps)


def _compare(rate, stragglers=None, n_requests=2500, n_files=200):
    pop = paper_fileset(n_files, size_mb=100, zipf_exponent=1.05, total_rate=rate)
    trace = poisson_trace(pop, n_requests=n_requests, seed=1)
    cfg = SimulationConfig(
        jitter="deterministic",
        stragglers=stragglers or StragglerInjector.natural(),
        seed=2,
    )
    out = {}
    for policy in (
        SPCachePolicy(pop, CLUSTER, seed=3),
        ECCachePolicy(pop, CLUSTER, seed=3),
        SelectiveReplicationPolicy(pop, CLUSTER, seed=3),
        SingleCopyPolicy(pop, CLUSTER, seed=3),
    ):
        res = simulate_reads(trace, policy, CLUSTER, cfg)
        out[policy.name] = (res.summary(), res)
    return out


@pytest.fixture(scope="module")
def heavy_load():
    return _compare(rate=18.0)


def test_sp_cache_balances_best(heavy_load):
    etas = {
        name: imbalance_factor(res.server_bytes)
        for name, (_, res) in heavy_load.items()
    }
    assert etas["sp-cache"] < etas["ec-cache"] < etas["selective-replication"]


def test_sp_cache_fastest_under_heavy_load(heavy_load):
    means = {name: s.mean for name, (s, _) in heavy_load.items()}
    assert means["sp-cache"] < means["ec-cache"]
    assert means["sp-cache"] < means["selective-replication"]
    assert means["sp-cache"] < means["single-copy"]


def test_sp_cache_tail_wins_under_heavy_load(heavy_load):
    p95s = {name: s.p95 for name, (s, _) in heavy_load.items()}
    assert p95s["sp-cache"] < p95s["ec-cache"]
    assert p95s["sp-cache"] < p95s["selective-replication"]


def test_sp_cache_competitive_at_light_load():
    """At light load SP-Cache must at least be in EC-Cache's ballpark
    (the paper shows it ahead; our physics gives a near-tie)."""
    out = _compare(rate=6.0)
    sp = out["sp-cache"][0].mean
    ec = out["ec-cache"][0].mean
    assert sp < ec * 1.25


def test_sp_uses_40pct_less_memory_than_baselines():
    pop = paper_fileset(100, size_mb=100, total_rate=8.0)
    sp = SPCachePolicy(pop, CLUSTER, seed=0)
    ec = ECCachePolicy(pop, CLUSTER, seed=0)
    rep = SelectiveReplicationPolicy(pop, CLUSTER, seed=0)
    assert sp.memory_overhead() == pytest.approx(0.0, abs=1e-9)
    assert ec.memory_overhead() == pytest.approx(0.4)
    assert rep.memory_overhead() == pytest.approx(0.3, abs=0.01)


def test_hit_ratio_ordering_with_throttled_budget():
    pop = paper_fileset(150, size_mb=100, total_rate=10.0)
    trace = poisson_trace(pop, n_requests=4000, seed=4)
    budget = 0.4 * pop.total_bytes
    hits = {}
    for policy in (
        SPCachePolicy(pop, CLUSTER, seed=5),
        ECCachePolicy(pop, CLUSTER, seed=5),
        SelectiveReplicationPolicy(pop, CLUSTER, seed=5),
    ):
        res = simulate_reads(
            trace,
            policy,
            CLUSTER,
            SimulationConfig(
                jitter="deterministic", cache_budget=budget, seed=6
            ),
        )
        hits[policy.name] = res.hit_ratio
    assert hits["sp-cache"] >= hits["ec-cache"] >= hits["selective-replication"]


def test_repartition_cycle_end_to_end():
    """Popularity shifts -> Algorithm 2 plan -> balanced again, quickly."""
    pop = paper_fileset(120, size_mb=50, total_rate=10.0)
    policy = SPCachePolicy(pop, CLUSTER, straggler_aware=True, seed=7)
    shifted = pop.with_popularities(
        shuffled_popularity(pop.popularities, seed=8)
    )
    plan = plan_repartition(
        shifted,
        CLUSTER,
        policy.partition_counts(),
        policy.servers_of,
        alpha=policy.alpha,
        seed=9,
    )
    par = repartition_time_parallel(plan, shifted, CLUSTER, policy.partition_counts())
    seq = repartition_time_sequential(plan, shifted, CLUSTER, policy.partition_counts())
    assert par < 10.0  # paper: < 3 s at 350 files; ours comparable
    assert seq / par > 20.0  # order(s) of magnitude
    assert 0 < plan.changed_fraction < 0.8


def test_decode_overhead_hurts_ec_cache():
    """Switching decode off should strictly improve EC-Cache — a sanity
    check that the post-join penalty is actually wired through."""
    pop = paper_fileset(100, size_mb=100, total_rate=10.0)
    trace = poisson_trace(pop, n_requests=2000, seed=10)
    cfg = SimulationConfig(jitter="deterministic", seed=11)
    with_decode = simulate_reads(
        trace, ECCachePolicy(pop, CLUSTER, decode_overhead=0.2, seed=12), CLUSTER, cfg
    ).summary()
    without = simulate_reads(
        trace, ECCachePolicy(pop, CLUSTER, decode_overhead=0.0, seed=12), CLUSTER, cfg
    ).summary()
    assert without.mean < with_decode.mean


def test_single_copy_collapses_under_load():
    """The motivating observation: without load balancing, latency explodes
    as the request rate grows."""
    slow = _compare(rate=20.0, n_files=100)["single-copy"][0].mean
    fast = _compare(rate=4.0, n_files=100)["single-copy"][0].mean
    assert slow > 3 * fast
