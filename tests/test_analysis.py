"""Stats helpers and table rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_ci, cdf_points, percentile_summary
from repro.analysis.tables import format_table, print_table


def test_percentile_summary():
    s = percentile_summary(np.arange(101, dtype=float))
    assert s["p50"] == pytest.approx(50.0)
    assert s["p95"] == pytest.approx(95.0)
    with pytest.raises(ValueError):
        percentile_summary(np.array([]))


def test_bootstrap_ci_brackets_mean():
    rng = np.random.default_rng(0)
    sample = rng.normal(10.0, 2.0, 500)
    lo, hi = bootstrap_ci(sample, seed=1)
    assert lo < sample.mean() < hi
    assert hi - lo < 1.0  # reasonably tight at n=500


def test_bootstrap_validation():
    with pytest.raises(ValueError):
        bootstrap_ci(np.array([]))
    with pytest.raises(ValueError):
        bootstrap_ci(np.ones(5), confidence=1.5)


def test_cdf_points_monotone():
    xs, ps = cdf_points(np.random.default_rng(1).exponential(1.0, 400))
    assert np.all(np.diff(xs) >= 0)
    assert ps[0] == 0.0 and ps[-1] == 1.0


def test_format_table_alignment():
    rows = [
        {"name": "sp", "mean": 0.5},
        {"name": "ec-cache", "mean": 12.345678},
    ]
    text = format_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "sp" in lines[3] and "12.3" in lines[4]
    # All data lines equally wide.
    assert len(set(len(l) for l in lines[2:])) == 1


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="x")


def test_format_number_styles():
    rows = [{"v": 0.0001}, {"v": 0.0}, {"v": 123456.0}, {"v": 1.5}]
    text = format_table(rows)
    assert "0.0001" in text and "1.23e+05" in text and "1.5" in text


def test_print_table_smoke(capsys):
    print_table([{"a": 1}], title="hello")
    out = capsys.readouterr().out
    assert "hello" in out and "a" in out
