"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``simulate``
    Run one scheme on a synthetic workload and print latency statistics.
``compare``
    Race SP-Cache against the baselines on one trace (a CLI version of
    ``examples/quickstart.py``).
``configure``
    Run the scale-factor search and show the resulting partition layout.
``experiments``
    Regenerate evaluation tables (thin wrapper over
    ``repro.experiments.run_all``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.cluster import (
    SimulationConfig,
    StragglerInjector,
    imbalance_factor,
    simulate_reads,
)
from repro.common import MB, ClusterSpec, Gbps
from repro.core import optimal_scale_factor, partition_counts
from repro.cluster.network import GoodputModel
from repro.policies import (
    ECCachePolicy,
    FixedChunkingPolicy,
    SelectiveReplicationPolicy,
    SimplePartitionPolicy,
    SingleCopyPolicy,
    SPCachePolicy,
)
from repro.workloads import paper_fileset, poisson_trace

__all__ = ["main"]

def _ec_policy(pop, cl, seed):
    """(10, 14) as in the paper, shrunk proportionally on tiny clusters."""
    n = min(14, cl.n_servers)
    k = max(n - 4, 1)
    return ECCachePolicy(pop, cl, k=k, n=n, seed=seed)


_SCHEMES = {
    "sp": lambda pop, cl, seed: SPCachePolicy(pop, cl, seed=seed),
    "ec": _ec_policy,
    "replication": lambda pop, cl, seed: SelectiveReplicationPolicy(
        pop, cl, seed=seed
    ),
    "simple": lambda pop, cl, seed: SimplePartitionPolicy(pop, cl, seed=seed),
    "chunking": lambda pop, cl, seed: FixedChunkingPolicy(
        pop, cl, chunk_size=8 * MB, seed=seed
    ),
    "single": lambda pop, cl, seed: SingleCopyPolicy(pop, cl, seed=seed),
}

_STRAGGLERS = {
    "none": StragglerInjector.none,
    "natural": StragglerInjector.natural,
    "injected": StragglerInjector.injected,
    "intensive": StragglerInjector.intensive,
}


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--files", type=int, default=300)
    parser.add_argument("--size-mb", type=float, default=100.0)
    parser.add_argument("--zipf", type=float, default=1.05)
    parser.add_argument("--rate", type=float, default=10.0)
    parser.add_argument("--servers", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)


def _workload(args):
    cluster = ClusterSpec(n_servers=args.servers, bandwidth=Gbps)
    pop = paper_fileset(
        args.files,
        size_mb=args.size_mb,
        zipf_exponent=args.zipf,
        total_rate=args.rate,
    )
    return pop, cluster


def _simulate_one(pop, cluster, scheme, args):
    policy = _SCHEMES[scheme](pop, cluster, args.seed)
    trace = poisson_trace(pop, n_requests=args.requests, seed=args.seed + 1)
    config = SimulationConfig(
        jitter="deterministic",
        stragglers=_STRAGGLERS[args.stragglers](),
        seed=args.seed + 2,
    )
    result = simulate_reads(trace, policy, cluster, config)
    summary = result.summary()
    return policy, result, summary


def _cmd_simulate(args) -> int:
    pop, cluster = _workload(args)
    policy, result, summary = _simulate_one(pop, cluster, args.scheme, args)
    rows = [
        {"metric": "scheme", "value": policy.name},
        {"metric": "mean latency (s)", "value": summary.mean},
        {"metric": "p95 latency (s)", "value": summary.p95},
        {"metric": "p99 latency (s)", "value": summary.p99},
        {"metric": "CV", "value": summary.cv},
        {"metric": "imbalance eta", "value": imbalance_factor(result.server_bytes)},
        {"metric": "memory overhead %", "value": policy.memory_overhead() * 100},
    ]
    print(format_table(rows, title=f"simulate: {args.scheme}"))
    return 0


def _cmd_compare(args) -> int:
    pop, cluster = _workload(args)
    rows = []
    for scheme in args.schemes.split(","):
        scheme = scheme.strip()
        if scheme not in _SCHEMES:
            print(f"unknown scheme {scheme!r}", file=sys.stderr)
            return 2
        policy, result, summary = _simulate_one(pop, cluster, scheme, args)
        rows.append(
            {
                "scheme": policy.name,
                "mean_s": summary.mean,
                "p95_s": summary.p95,
                "eta": imbalance_factor(result.server_bytes),
                "mem_overhead_pct": policy.memory_overhead() * 100,
            }
        )
    print(format_table(rows, title=f"compare @ rate {args.rate}"))
    return 0


def _cmd_configure(args) -> int:
    pop, cluster = _workload(args)
    search = optimal_scale_factor(
        pop,
        cluster,
        goodput=GoodputModel(),
        client_cap=True,
        service_distribution="deterministic",
        mode=args.mode,
        seed=args.seed,
    )
    ks = partition_counts(pop, search.alpha, n_servers=cluster.n_servers)
    rows = [
        {"metric": "alpha (MB-load units)", "value": search.alpha * MB},
        {"metric": "latency bound (s)", "value": search.bound},
        {"metric": "search iterations", "value": search.n_iterations},
        {"metric": "k (hottest file)", "value": int(ks.max())},
        {"metric": "k (median file)", "value": int(np.median(ks))},
        {"metric": "files split", "value": f"{(ks > 1).mean():.0%}"},
    ]
    print(format_table(rows, title="Algorithm 1 configuration"))
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments.run_all import main as run_all_main

    forwarded = []
    if args.only:
        forwarded += ["--only", args.only]
    forwarded += ["--scale", str(args.scale), "--out", args.out]
    return run_all_main(forwarded)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run one scheme on a workload")
    _add_workload_args(p_sim)
    p_sim.add_argument("--scheme", choices=sorted(_SCHEMES), default="sp")
    p_sim.add_argument("--requests", type=int, default=3000)
    p_sim.add_argument(
        "--stragglers", choices=sorted(_STRAGGLERS), default="natural"
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_cmp = sub.add_parser("compare", help="race several schemes")
    _add_workload_args(p_cmp)
    p_cmp.add_argument("--schemes", default="sp,ec,replication")
    p_cmp.add_argument("--requests", type=int, default=3000)
    p_cmp.add_argument(
        "--stragglers", choices=sorted(_STRAGGLERS), default="natural"
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_cfg = sub.add_parser("configure", help="run the scale-factor search")
    _add_workload_args(p_cfg)
    p_cfg.add_argument("--mode", choices=("paper", "sweep"), default="sweep")
    p_cfg.set_defaults(func=_cmd_configure)

    p_exp = sub.add_parser("experiments", help="regenerate evaluation tables")
    p_exp.add_argument("--only", default=None)
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.add_argument("--out", default="results")
    p_exp.set_defaults(func=_cmd_experiments)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
