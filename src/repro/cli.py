"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``simulate``
    Run one scheme on a synthetic workload and print latency statistics.
``compare``
    Race SP-Cache against the baselines on one trace (a CLI version of
    ``examples/quickstart.py``).
``configure``
    Run the scale-factor search and show the resulting partition layout.
``trace``
    Run scheme(s) with structured tracing enabled and write the JSONL
    event stream (schema in ``docs/observability.md``).
``stats``
    Replay a JSONL trace into per-server load vectors, an optional load
    timeline, a per-scheme summary table, and the per-scheme end-of-run
    metric snapshots (``METRIC_SNAPSHOT_KEYS`` ordering).  Traced SLO
    breach/recovery events render as an alert table; ``--slo SPEC``
    re-evaluates the trace post hoc; ``--format openmetrics`` emits the
    snapshots as a Prometheus/OpenMetrics text exposition.
``dash``
    Render the cluster health board — per-server load bars, latency
    percentiles, hot keys, SLO budgets, and active alerts — from a run
    manifest, a JSONL trace (``--follow`` tails a live one), or JSONL
    on stdin.  ``--plain`` suppresses terminal clear codes for CI.
``timeline``
    Render a manifest's sim-time timeline sections as sparkline tables
    (bytes/window, busiest-server busy fraction, queue depth, windowed
    p99 latency).
``tail``
    Render a manifest's tail-latency attribution — p99 split into
    queueing/straggling/transfer/join — plus the slowest-request
    exemplars with their per-partition breakdowns.
``critical``
    Render causal critical paths: per-edge (queue/service/transfer/
    join) aggregates and the slowest per-request chains, from a
    schema-v6 manifest's ``causal`` sections or a JSONL trace's
    ``cspan`` span trees.  ``--check`` gates on the conservation
    invariant (and full DAG reconstruction for traces); ``--chrome``
    exports span trees with parent->child flow arrows.
``experiments``
    Regenerate evaluation tables and ``results/<exp>.json`` run
    manifests (thin wrapper over ``repro.experiments.run_all``; also
    forwards ``--trace`` / ``--chrome-trace``).  The experiment set is
    the declarative registry (``repro.experiments.registry``):
    ``--list`` prints it, ``--only`` accepts comma-separated names and
    glob patterns (``--only 'fig1*'``), and ``--jobs N`` fans the pass
    out over a process pool (parallel manifests diff clean against a
    serial pass modulo wall-clock spans).
``report``
    Aggregate run manifests into a markdown summary; ``--diff BASE``
    compares against a baseline manifest set and exits non-zero on
    wall-time or metric regressions (the CI gate).  ``--format
    openmetrics`` renders every manifest's metrics snapshot as one
    exposition with per-sample ``experiment`` labels.

``simulate`` and ``compare`` accept ``--seed`` (reproducible runs),
``--json`` (machine-parseable output), ``--trace PATH`` (record the
run's event stream while still printing the usual table), and
``--discipline SPEC`` (a server discipline from the engine registry —
``fifo``, ``ps``, or e.g. ``limited(4)``; see ``docs/engine.md``).
Tracing commands (``simulate --trace``, ``compare --trace``, ``trace``)
also take ``--sample N`` to head-sample the high-volume per-request
events: 1-in-N ``read``/``read_done`` pairs are kept, always both
halves of a pair together.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager

import numpy as np

from repro.analysis.tables import format_table
from repro.cluster import (
    SimulationConfig,
    StragglerInjector,
    available_disciplines,
    imbalance_factor,
    resolve_discipline,
    simulate_reads,
)
from repro.common import MB, ClusterSpec, Gbps
from repro.obs import events as ev
from repro.core import optimal_scale_factor, partition_counts
from repro.cluster.network import GoodputModel
from repro.obs import (
    CausalConfig,
    DashBoard,
    FileSink,
    HeadSamplingSink,
    Tracer,
    causal_from_trace,
    critical_chain_rows,
    critical_edge_rows,
    dash_from_manifest,
    event_counts,
    follow_lines,
    load_events,
    load_manifest_dir,
    load_timeline,
    metrics_snapshots,
    parse_json_lines,
    parse_slo,
    parse_snapshot_key,
    per_server_loads,
    popularity_from_trace,
    render_frame,
    render_snapshot_key,
    render_snapshot_openmetrics,
    slo_from_trace,
    snapshots_to_openmetrics,
    sparkline,
    tail_attribution_rows,
    timeline_series_rows,
    trace_summary,
    unknown_events,
    use_tracer,
    write_causal_chrome_trace,
)
from repro.obs.report import (
    METRIC_TOLERANCE,
    MIN_WALL_S,
    WALL_TOLERANCE,
    SchemaMismatchError,
    diff_manifests,
    render_diff,
    render_report,
)
from repro.policies import (
    ECCachePolicy,
    FixedChunkingPolicy,
    SelectiveReplicationPolicy,
    SimplePartitionPolicy,
    SingleCopyPolicy,
    SPCachePolicy,
)
from repro.workloads import paper_fileset, poisson_trace

__all__ = ["main"]

def _ec_policy(pop, cl, seed):
    """(10, 14) as in the paper, shrunk proportionally on tiny clusters."""
    n = min(14, cl.n_servers)
    k = max(n - 4, 1)
    return ECCachePolicy(pop, cl, k=k, n=n, seed=seed)


_SCHEMES = {
    "sp": lambda pop, cl, seed: SPCachePolicy(pop, cl, seed=seed),
    "ec": _ec_policy,
    "replication": lambda pop, cl, seed: SelectiveReplicationPolicy(
        pop, cl, seed=seed
    ),
    "simple": lambda pop, cl, seed: SimplePartitionPolicy(pop, cl, seed=seed),
    "chunking": lambda pop, cl, seed: FixedChunkingPolicy(
        pop, cl, chunk_size=8 * MB, seed=seed
    ),
    "single": lambda pop, cl, seed: SingleCopyPolicy(pop, cl, seed=seed),
}

_STRAGGLERS = {
    "none": StragglerInjector.none,
    "natural": StragglerInjector.natural,
    "injected": StragglerInjector.injected,
    "intensive": StragglerInjector.intensive,
}


def _discipline_spec(value: str) -> str:
    """argparse type: validate against the discipline registry early."""
    try:
        resolve_discipline(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _sample_every(value: str) -> int:
    """argparse type for ``--sample``: a positive integer."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--sample needs an integer, got {value!r}"
        ) from None
    if n < 1:
        raise argparse.ArgumentTypeError("--sample must be >= 1")
    return n


def _add_sample_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sample",
        type=_sample_every,
        default=1,
        metavar="N",
        help=(
            "head-sample the trace: keep 1-in-N read/read_done pairs "
            "(both halves of a sampled pair always survive; default 1 = all)"
        ),
    )


def _add_batch_size_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        dest="batch_size",
        metavar="B",
        help=(
            "plan requests in vectorized batches of B (bit-exact vs the "
            "scalar engine; default runs scalar)"
        ),
    )


def _add_causal_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--causal",
        action="store_true",
        help=(
            "collect causal spans and critical-path edges (with --trace "
            "or `trace`, request span trees are written as cspan events)"
        ),
    )


def _add_discipline_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--discipline",
        type=_discipline_spec,
        default="ps",
        metavar="SPEC",
        help=(
            "server discipline from the engine registry: "
            f"{', '.join(available_disciplines())} "
            "(parameterised specs like 'limited(4)' work too)"
        ),
    )


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--files", type=int, default=300)
    parser.add_argument("--size-mb", type=float, default=100.0)
    parser.add_argument("--zipf", type=float, default=1.05)
    parser.add_argument("--rate", type=float, default=10.0)
    parser.add_argument("--servers", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)


def _workload(args):
    cluster = ClusterSpec(n_servers=args.servers, bandwidth=Gbps)
    pop = paper_fileset(
        args.files,
        size_mb=args.size_mb,
        zipf_exponent=args.zipf,
        total_rate=args.rate,
    )
    return pop, cluster


def _simulate_one(pop, cluster, scheme, args):
    policy = _SCHEMES[scheme](pop, cluster, args.seed)
    trace = poisson_trace(pop, n_requests=args.requests, seed=args.seed + 1)
    config = SimulationConfig(
        discipline=getattr(args, "discipline", "ps"),
        jitter="deterministic",
        stragglers=_STRAGGLERS[args.stragglers](),
        seed=args.seed + 2,
        batch_size=getattr(args, "batch_size", None),
        causal=(
            CausalConfig() if getattr(args, "causal", False) else None
        ),
    )
    result = simulate_reads(trace, policy, cluster, config)
    summary = result.summary()
    return policy, result, summary


def _trace_sink(path: str, sample: int):
    """A JSONL file sink, head-sampled 1-in-``sample`` when ``sample > 1``."""
    sink = FileSink(path)
    return HeadSamplingSink(sink, sample) if sample > 1 else sink


@contextmanager
def _maybe_trace(path: str | None, sample: int = 1):
    """Install a JSONL file tracer for the block when ``path`` is given.

    ``sample > 1`` records only every ``sample``-th request's
    ``read``/``read_done`` pair (both halves together); all other events
    pass through untouched.
    """
    if not path:
        yield None
        return
    sink = _trace_sink(path, sample)
    try:
        with use_tracer(Tracer(sink)):
            yield sink
    finally:
        sink.close()


def _print_rows(rows, args, title: str) -> None:
    if getattr(args, "json", False):
        print(json.dumps(rows, indent=2))
    else:
        print(format_table(rows, title=title))


def _cmd_simulate(args) -> int:
    pop, cluster = _workload(args)
    with _maybe_trace(args.trace, args.sample) as sink:
        policy, result, summary = _simulate_one(pop, cluster, args.scheme, args)
    if sink is not None:
        print(
            f"trace: {sink.n_records} events -> {sink.path}", file=sys.stderr
        )
    if args.json:
        record = {
            "scheme": policy.name,
            "seed": args.seed,
            "requests": result.n_requests,
            "mean_s": summary.mean,
            "p50_s": summary.p50,
            "p95_s": summary.p95,
            "p99_s": summary.p99,
            "cv": summary.cv,
            "eta": imbalance_factor(result.server_bytes),
            "mem_overhead_pct": policy.memory_overhead() * 100,
            "metrics": result.metrics,
        }
        if result.causal is not None:
            record["causal"] = result.causal
        print(json.dumps(record, indent=2))
        return 0
    rows = [
        {"metric": "scheme", "value": policy.name},
        {"metric": "mean latency (s)", "value": summary.mean},
        {"metric": "p95 latency (s)", "value": summary.p95},
        {"metric": "p99 latency (s)", "value": summary.p99},
        {"metric": "CV", "value": summary.cv},
        {"metric": "imbalance eta", "value": imbalance_factor(result.server_bytes)},
        {"metric": "memory overhead %", "value": policy.memory_overhead() * 100},
    ]
    print(format_table(rows, title=f"simulate: {args.scheme}"))
    if result.causal is not None:
        conservation = result.causal.get("conservation") or {}
        print()
        print(
            format_table(
                critical_edge_rows(result.causal),
                title=(
                    "critical-path edges (conservation "
                    f"{'ok' if conservation.get('ok') else 'VIOLATED'}, "
                    f"max_rel_err {conservation.get('max_rel_err', 0):.2e})"
                ),
            )
        )
    return 0


def _cmd_compare(args) -> int:
    pop, cluster = _workload(args)
    schemes = [s.strip() for s in args.schemes.split(",")]
    for scheme in schemes:
        if scheme not in _SCHEMES:
            print(f"unknown scheme {scheme!r}", file=sys.stderr)
            return 2
    rows = []
    with _maybe_trace(args.trace, args.sample) as sink:
        for scheme in schemes:
            policy, result, summary = _simulate_one(pop, cluster, scheme, args)
            row = {
                "scheme": policy.name,
                "mean_s": summary.mean,
                "p95_s": summary.p95,
                "eta": imbalance_factor(result.server_bytes),
                "mem_overhead_pct": policy.memory_overhead() * 100,
            }
            if result.causal is not None:
                conservation = result.causal.get("conservation") or {}
                row["crit_ok"] = "yes" if conservation.get("ok") else "NO"
            rows.append(row)
    if sink is not None:
        print(
            f"trace: {sink.n_records} events -> {sink.path}", file=sys.stderr
        )
    _print_rows(rows, args, title=f"compare @ rate {args.rate}")
    return 0


def _cmd_configure(args) -> int:
    pop, cluster = _workload(args)
    search = optimal_scale_factor(
        pop,
        cluster,
        goodput=GoodputModel(),
        client_cap=True,
        service_distribution="deterministic",
        mode=args.mode,
        seed=args.seed,
    )
    ks = partition_counts(pop, search.alpha, n_servers=cluster.n_servers)
    rows = [
        {"metric": "alpha (MB-load units)", "value": search.alpha * MB},
        {"metric": "latency bound (s)", "value": search.bound},
        {"metric": "search iterations", "value": search.n_iterations},
        {"metric": "k (hottest file)", "value": int(ks.max())},
        {"metric": "k (median file)", "value": int(np.median(ks))},
        {"metric": "files split", "value": f"{(ks > 1).mean():.0%}"},
    ]
    print(format_table(rows, title="Algorithm 1 configuration"))
    return 0


def _cmd_trace(args) -> int:
    """Run scheme(s) with a JSONL file sink installed, then summarize."""
    pop, cluster = _workload(args)
    schemes = [s.strip() for s in args.schemes.split(",")]
    for scheme in schemes:
        if scheme not in _SCHEMES:
            print(f"unknown scheme {scheme!r}", file=sys.stderr)
            return 2
    sink = _trace_sink(args.out, args.sample)
    try:
        with use_tracer(Tracer(sink)):
            for scheme in schemes:
                _simulate_one(pop, cluster, scheme, args)
    finally:
        sink.close()
    rows = trace_summary(args.out)
    print(
        format_table(
            rows, title=f"traced {sink.n_records} events -> {args.out}"
        )
    )
    return 0


def _cmd_stats(args) -> int:
    """Replay a JSONL trace into load vectors and a summary table."""
    if args.timeline < 0:
        print("--timeline must be a positive bucket count", file=sys.stderr)
        return 2
    try:
        events = load_events(args.tracefile)
    except FileNotFoundError:
        print(f"no such trace file: {args.tracefile}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(
            f"{args.tracefile} is not a JSONL trace ({exc.msg})",
            file=sys.stderr,
        )
        return 2
    if args.format == "openmetrics":
        snapshots = metrics_snapshots(events)
        if not snapshots:
            print("no metric snapshots in trace", file=sys.stderr)
            return 1
        print(snapshots_to_openmetrics(snapshots), end="")
        return 0

    summary_rows = trace_summary(events)
    if not summary_rows:
        print("no read events in trace", file=sys.stderr)
        return 1

    payload = {"summary": summary_rows}
    if not args.json:
        _print_rows(summary_rows, args, title=f"stats: {args.tracefile}")

    if args.per_server:
        loads = per_server_loads(events)
        server_rows = []
        for scheme in sorted(loads):
            for sid, served in enumerate(loads[scheme]):
                server_rows.append(
                    {"scheme": scheme, "server": sid, "bytes": float(served)}
                )
        payload["per_server"] = server_rows
        if not args.json:
            print()
            _print_rows(server_rows, args, title="per-server load")

    if args.timeline:
        timeline_rows = []
        for scheme, (edges, loads) in sorted(
            load_timeline(events, n_buckets=args.timeline).items()
        ):
            running = np.cumsum(loads, axis=0)
            for b in range(loads.shape[0]):
                bucket_loads = loads[b]
                timeline_rows.append(
                    {
                        "scheme": scheme,
                        "t_start": float(edges[b]),
                        "t_end": float(edges[b + 1]),
                        "bytes": float(bucket_loads.sum()),
                        "busiest_server": int(np.argmax(bucket_loads)),
                        "eta_so_far": imbalance_factor(running[b]),
                    }
                )
        payload["timeline"] = timeline_rows
        if not args.json:
            print()
            _print_rows(timeline_rows, args, title="load timeline")

    snapshots = metrics_snapshots(events)
    if snapshots:
        # One row per scheme, columns in the documented
        # METRIC_SNAPSHOT_KEYS order (the keys arrive pre-ordered).
        payload["metrics"] = snapshots
        if not args.json:
            print()
            _print_rows(
                list(snapshots.values()), args, title="metrics snapshot"
            )

    # SLO breach/recovery events recorded by the run itself (a traced
    # run with SLO evaluation enabled emits them through its tracer).
    slo_event_rows = [
        {
            "event": r["event"],
            "scheme": r.get("scheme", "?"),
            "objective": r.get("objective", "?"),
            "severity": r.get("severity", "?"),
            "t": r.get("ts", "-"),
            "burn": r.get("burn", "-"),
        }
        for r in events
        if r.get("event") in (ev.SLO_BREACH, ev.SLO_RECOVERED)
    ]
    if slo_event_rows:
        payload["slo_events"] = slo_event_rows
        if not args.json:
            print()
            _print_rows(slo_event_rows, args, title="SLO alerts (traced)")

    if args.slo is not None:
        # Post-hoc burn-rate evaluation of the trace's read stream
        # against the given objectives (see `repro.obs.slo.parse_slo`).
        try:
            slo_config = parse_slo(args.slo)
        except ValueError as exc:
            print(f"bad --slo spec: {exc}", file=sys.stderr)
            return 2
        slo_rows = [
            {
                "scheme": section["scheme"],
                "objective": obj["name"],
                "met": "yes" if obj["met"] else "NO",
                "bad_frac": obj["bad_fraction"],
                "budget": obj["budget"],
                "budget_left": obj["budget_remaining"],
                "breaches": obj["breaches"],
            }
            for section in slo_from_trace(events, slo_config)
            for obj in section["objectives"]
        ]
        payload["slo"] = slo_rows
        if not args.json:
            print()
            _print_rows(
                slo_rows, args, title=f"SLO evaluation: {args.slo}"
            )

    # Lineage recoveries traced by the store layer: one RECOVERY record
    # per recomputed file, with the recompute wall time and byte count.
    recovery_events = [r for r in events if r.get("event") == ev.RECOVERY]
    if recovery_events:
        recoveries = {
            "count": len(recovery_events),
            "bytes": sum(int(r.get("bytes", 0)) for r in recovery_events),
            "wall_s": float(
                sum(float(r.get("wall_s", 0.0)) for r in recovery_events)
            ),
        }
        payload["recoveries"] = recoveries
        if not args.json:
            print()
            print(
                f"lineage recoveries: {recoveries['count']} file(s), "
                f"{recoveries['bytes']} bytes recomputed in "
                f"{recoveries['wall_s']:.3g}s"
            )

    # Every known event kind renders with its layer (simulator, store,
    # core, popularity, slo, profiling, causal); unknown kinds — traces
    # from newer builds — are counted separately, never dropped silently.
    counts = event_counts(events)
    payload["events"] = counts
    unknown = unknown_events(events)
    payload["unknown_events"] = unknown
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print()
        _print_rows(
            [
                {
                    "layer": ev.EVENT_LAYER.get(k, "unknown"),
                    "event": k,
                    "count": v,
                }
                for k, v in sorted(
                    counts.items(),
                    key=lambda kv: (
                        ev.EVENT_LAYER.get(kv[0], "unknown"),
                        kv[0],
                    ),
                )
            ],
            args,
            title="event counts",
        )
        if unknown:
            total = sum(unknown.values())
            names = ", ".join(unknown)
            print(
                f"skipped {total} record(s) with unknown event "
                f"name(s): {names}",
                file=sys.stderr,
            )
    return 0


def _load_timelines(path: str) -> list[dict] | None:
    """Timeline sections from a manifest, a section list, or one section.

    Accepts a schema-v2 run manifest (its ``timelines`` list), a bare
    JSON list of sections, or a single section object — so both
    ``results/<exp>.json`` and hand-extracted sections render.  Reports
    failure to stderr and returns ``None``.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        print(f"no such file: {path}", file=sys.stderr)
        return None
    except json.JSONDecodeError as exc:
        print(f"{path} is not JSON ({exc.msg})", file=sys.stderr)
        return None
    if isinstance(doc, dict) and "timelines" in doc:
        sections = doc["timelines"]
    elif isinstance(doc, list):
        sections = doc
    elif isinstance(doc, dict) and "scheme" in doc:
        sections = [doc]
    else:
        print(
            f"{path} holds neither a run manifest nor timeline sections",
            file=sys.stderr,
        )
        return None
    sections = [s for s in sections if isinstance(s, dict) and "scheme" in s]
    if not sections:
        print(f"no timeline sections in {path}", file=sys.stderr)
        return None
    return sections


def _section_title(section: dict, i: int) -> str:
    return (
        f"{section['scheme']} [{section.get('engine', '?')}] #{i}: "
        f"{section.get('n_windows', 0)} x {section.get('window_s', 0):.3g}s "
        f"windows, {section.get('n_requests', 0)} requests"
    )


def _cmd_timeline(args) -> int:
    """Render the sim-time timeline series of a manifest's sections."""
    sections = _load_timelines(args.manifest)
    if sections is None:
        return 2
    if args.json:
        payload = [
            {
                "scheme": s["scheme"],
                "engine": s.get("engine"),
                "window_s": s.get("window_s"),
                "n_windows": s.get("n_windows"),
                "n_requests": s.get("n_requests"),
                "clipped_partitions": s.get("clipped_partitions"),
                "clipped_requests": s.get("clipped_requests"),
                "series": timeline_series_rows(s),
            }
            for s in sections
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for i, section in enumerate(sections):
        rows = timeline_series_rows(section)
        if not rows:
            print(f"{_section_title(section, i)}: no windows")
            continue
        print(format_table(rows, title=_section_title(section, i)))
        print()
    return 0


def _cmd_tail(args) -> int:
    """Render tail-latency attribution and the slowest-request exemplars."""
    sections = _load_timelines(args.manifest)
    if sections is None:
        return 2
    if args.json:
        payload = [
            {
                "scheme": s["scheme"],
                "engine": s.get("engine"),
                "attribution": s["tail"]["attribution"],
                "warmup_skipped": s["tail"].get("warmup_skipped", 0),
                "exemplars": s["tail"]["exemplars"][: args.top],
            }
            for s in sections
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for i, section in enumerate(sections):
        tail = section["tail"]
        attribution = tail["attribution"]
        title = (
            f"{_section_title(section, i)} — "
            f"mean of slowest {tail.get('k', 0)}: "
            f"{attribution['mean_tail_latency_s']:.4g}s, "
            f"p99 {attribution['p99_s']:.4g}s"
        )
        print(format_table(tail_attribution_rows(section), title=title))
        exemplar_rows = [
            {
                "req": e["req"],
                "file": e["file_id"],
                "latency_s": e["latency_s"],
                "queue_s": e["components"]["queueing_s"],
                "straggle_s": e["components"]["straggling_s"],
                "transfer_s": e["components"]["transfer_s"],
                "join_s": e["components"]["join_s"],
                "k": e["parallelism"],
                "last_server": e["last_server"],
                "flags": "".join(
                    flag
                    for flag, on in (
                        ("S", e["straggled"]),
                        ("M", e["missed"]),
                    )
                    if on
                )
                or "-",
            }
            for e in tail["exemplars"][: args.top]
        ]
        if exemplar_rows:
            print()
            print(
                format_table(
                    exemplar_rows,
                    title=f"slowest {len(exemplar_rows)} requests",
                )
            )
        print()
    return 0


def _load_causal(path: str) -> tuple[list[dict], bool] | None:
    """Causal sections from a manifest, section JSON, or JSONL trace.

    Accepts a schema-v6 run manifest (its ``causal`` list), a bare JSON
    list of sections, a single section object, or a JSONL event trace
    (``cspan`` span trees are rebuilt into per-request DAGs via
    :func:`repro.obs.causal_from_trace`).  Returns ``(sections,
    from_trace)`` so callers know whether Chrome export is possible, or
    ``None`` after reporting the failure to stderr.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        print(f"no such file: {path}", file=sys.stderr)
        return None
    except json.JSONDecodeError:
        doc = None  # multi-line JSONL trace — rebuild from cspan events
    from_trace = False
    if isinstance(doc, dict) and "causal" in doc:
        sections = doc["causal"]
    elif isinstance(doc, dict) and "conservation" in doc:
        sections = [doc]
    elif isinstance(doc, list):
        sections = doc
    else:
        try:
            sections = causal_from_trace(path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            print(
                f"{path} holds neither a run manifest, causal sections, "
                "nor a readable JSONL trace",
                file=sys.stderr,
            )
            return None
        from_trace = True
    sections = [
        s for s in sections if isinstance(s, dict) and "conservation" in s
    ]
    if not sections:
        print(
            f"no causal sections in {path} (older manifest schema, or a "
            "trace without cspan events?)",
            file=sys.stderr,
        )
        return None
    return sections, from_trace


def _causal_title(section: dict, i: int) -> str:
    conservation = section.get("conservation") or {}
    title = (
        f"{section.get('scheme', '?')} [{section.get('engine', '?')}] #{i}: "
        f"{section.get('n_requests', 0)} requests, conservation "
        f"{'ok' if conservation.get('ok') else 'VIOLATED'} "
        f"(max_rel_err {conservation.get('max_rel_err', 0):.2e})"
    )
    if "reconstructed" in section:
        title += (
            f", {section['reconstructed']} DAG(s) rebuilt, "
            f"{section.get('dropped', 0)} dropped"
        )
    return title


def _causal_check(sections: list[dict], from_trace: bool) -> int:
    """Exit status for ``critical --check``: 0 iff every section holds.

    A section passes when its conservation invariant verified clean and
    — for trace-rebuilt sections — every request's span tree was
    complete (``reconstructed == n_requests`` and nothing dropped).
    """
    failures = []
    for i, section in enumerate(sections):
        conservation = section.get("conservation") or {}
        if not conservation.get("ok"):
            failures.append(
                f"section {i} ({section.get('scheme', '?')}): conservation "
                f"violated (max_rel_err {conservation.get('max_rel_err')})"
            )
        if from_trace:
            n = section.get("n_requests", 0)
            rebuilt = section.get("reconstructed", 0)
            dropped = section.get("dropped", 0)
            if rebuilt != n or dropped:
                failures.append(
                    f"section {i} ({section.get('scheme', '?')}): "
                    f"{rebuilt}/{n} DAGs reconstructed, {dropped} dropped"
                )
    for failure in failures:
        print(f"check failed: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"check ok: {len(sections)} section(s), conservation clean"
            + (", all span trees complete" if from_trace else "")
        )
    return 1 if failures else 0


def _cmd_critical(args) -> int:
    """Render per-request critical paths and causal edge aggregates."""
    loaded = _load_causal(args.source)
    if loaded is None:
        return 2
    sections, from_trace = loaded
    if args.chrome:
        if not from_trace:
            print(
                "--chrome needs a JSONL trace with cspan events "
                "(manifest sections carry no span trees)",
                file=sys.stderr,
            )
            return 2
        n = write_causal_chrome_trace(args.source, args.chrome)
        print(f"chrome trace: {n} span events -> {args.chrome}")
    if args.check:
        return _causal_check(sections, from_trace)
    if args.json:
        print(json.dumps(sections, indent=2, default=str))
        return 0
    for i, section in enumerate(sections):
        print(
            format_table(
                critical_edge_rows(section), title=_causal_title(section, i)
            )
        )
        chain_rows = critical_chain_rows(section, top=args.top)
        if chain_rows:
            print()
            print(
                format_table(
                    chain_rows,
                    title=f"slowest {len(chain_rows)} critical paths",
                )
            )
        print()
    return 0


def _load_popularity(path: str, *, quiet: bool = False) -> list[dict] | None:
    """Popularity sections from a manifest, section JSON, or JSONL trace.

    Accepts a schema-v3 run manifest (its ``popularity`` list), a bare
    JSON list of sections, a single section object, or a JSONL event
    trace (``read`` events are replayed through a fresh monitor, one
    section per scheme).  Reports failure to stderr and returns ``None``.
    """

    def _fail(message: str) -> None:
        if not quiet:
            print(message, file=sys.stderr)

    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        _fail(f"no such file: {path}")
        return None
    except json.JSONDecodeError:
        doc = None  # multi-line JSONL trace, or garbage — replay decides
    if isinstance(doc, dict) and "popularity" in doc:
        sections = doc["popularity"]
    elif isinstance(doc, dict) and "scheme" in doc and "event" not in doc:
        sections = [doc]
    elif isinstance(doc, list):
        sections = doc
    else:
        # Either unparsable as one JSON document (JSONL) or a single
        # trace event line: replay the trace's read events.
        try:
            sections = popularity_from_trace(path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            _fail(
                f"{path} holds neither a run manifest, popularity "
                "sections, nor a readable JSONL trace"
            )
            return None
    sections = [s for s in sections if isinstance(s, dict) and "scheme" in s]
    if not sections:
        _fail(
            f"no popularity sections in {path} (older manifest schema, "
            "or a trace without read events?)"
        )
        return None
    return sections


def _render_popularity(section: dict, i: int, k: int) -> None:
    """Print one section: header, top-K table, drift spark, alerts."""
    alpha = section.get("alpha_est")
    imbalance = section.get("imbalance") or {}
    cv = imbalance.get("ewma_cv")
    max_mean = imbalance.get("ewma_max_mean")
    alerts = section.get("alerts") or []
    title = (
        f"{section['scheme']} [{section.get('engine', '?')}] #{i}: "
        f"{section.get('requests', 0)} requests, "
        f"{section.get('n_windows', 0)} windows"
    )
    if alpha is not None:
        title += f", alpha~{alpha:.3f}"
    top_rows = [
        {
            "rank": rank + 1,
            "file": entry["file_id"],
            "est_count": entry["count"],
            "err_bound": entry["error"],
            "share_pct": 100.0 * entry["share"],
        }
        for rank, entry in enumerate(section.get("top", [])[:k])
    ]
    if top_rows:
        print(format_table(top_rows, title=title))
    else:
        print(f"{title}: no observations")
        return
    lines = []
    if cv is not None:
        lines.append(
            f"imbalance (EWMA): cv {cv:.3f}, max/mean {max_mean:.3f}"
        )
    drift = [
        w["l1_drift"]
        for w in section.get("windows", [])
        if w.get("l1_drift") is not None
    ]
    if drift:
        lines.append(
            f"drift (weighted L1 per window): {sparkline(drift)} "
            f"max {max(drift):.3f}"
        )
    n_drift = sum(1 for a in alerts if a.get("kind") == "drift")
    n_hot = sum(1 for a in alerts if a.get("kind") == "hotspot")
    lines.append(f"alerts: {n_drift} drift, {n_hot} hotspot")
    for line in lines:
        print(line)
    alert_rows = [
        {
            "kind": a.get("kind", "?"),
            "window": a.get("window", "-"),
            "t_start": a.get("t_start", "-"),
            "detail": (
                f"file {a['file_id']} share {a['share']:.2f}"
                if a.get("kind") == "hotspot"
                else f"l1 {a.get('l1', 0):.2f}"
                + (
                    f" churn {a['rank_churn']:.2f}"
                    if a.get("rank_churn") is not None
                    else ""
                )
            ),
            "threshold": a.get("threshold", "-"),
        }
        for a in alerts[-8:]
    ]
    if alert_rows:
        print()
        print(format_table(alert_rows, title="active alerts (last 8)"))


def _cmd_top(args) -> int:
    """Render top-K hot files, skew, imbalance, and alerts."""
    sections = _load_popularity(args.source)
    if sections is None:
        return 2
    if args.json:
        print(json.dumps(sections, indent=2, default=str))
        return 0
    for i, section in enumerate(sections):
        _render_popularity(section, i, args.k)
        print()
    return 0


def _cmd_watch(args) -> int:
    """Re-render ``repro top`` every ``--interval`` seconds."""
    import time as _time

    frame = 0
    while True:
        sections = _load_popularity(args.source, quiet=True)
        if sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        if sections is None:
            print(f"waiting for popularity data in {args.source} ...")
        else:
            for i, section in enumerate(sections):
                _render_popularity(section, i, args.k)
                print()
        frame += 1
        if args.frames and frame >= args.frames:
            return 0 if sections is not None else 2
        _time.sleep(args.interval)


def _dash_board_from_file(path: str) -> "DashBoard | None":
    """A board from a run-manifest JSON file or a JSONL event trace.

    A file that parses as one JSON object with manifest-shaped keys goes
    through :func:`dash_from_manifest`; anything else is replayed as a
    JSONL trace.  Reports failure to stderr and returns ``None``.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        print(f"no such file: {path}", file=sys.stderr)
        return None
    except json.JSONDecodeError:
        doc = None  # multi-line JSONL trace — replay decides below
    if isinstance(doc, dict) and "event" not in doc:
        return dash_from_manifest(doc)
    board = DashBoard()
    try:
        board.feed_many(load_events(path))
    except (OSError, ValueError):
        print(
            f"{path} holds neither a run manifest nor a JSONL trace",
            file=sys.stderr,
        )
        return None
    return board


def _print_frame(board, args) -> None:
    if sys.stdout.isatty() and not args.plain:
        print("\x1b[2J\x1b[H", end="")
    print(render_frame(board, k=args.k), end="")


def _cmd_dash(args) -> int:
    """Render the cluster health board from a manifest, trace, or stdin."""
    import time as _time

    if args.source == "-":
        board = DashBoard()
        board.feed_many(parse_json_lines(sys.stdin))
        _print_frame(board, args)
        return 0

    if not args.follow:
        board = _dash_board_from_file(args.source)
        if board is None:
            return 2
        _print_frame(board, args)
        return 0

    # --follow: tail the growing JSONL trace, re-rendering a frame at
    # most every --interval seconds as records arrive; stop after
    # --idle-limit seconds without growth (and render a final frame).
    try:
        lines = follow_lines(
            args.source,
            poll_s=min(args.interval, 0.5),
            idle_limit=args.idle_limit,
        )
        board = DashBoard()
        frames = 0
        last_render = float("-inf")
        for record in parse_json_lines(lines):
            board.feed(record)
            now = _time.monotonic()
            if now - last_render >= args.interval:
                _print_frame(board, args)
                last_render = now
                frames += 1
                if args.frames and frames >= args.frames:
                    return 0
    except FileNotFoundError:
        print(f"no such trace file: {args.source}", file=sys.stderr)
        return 2
    _print_frame(board, args)
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments.run_all import main as run_all_main

    forwarded = []
    if args.list:
        forwarded.append("--list")
    if args.only:
        forwarded += ["--only", args.only]
    forwarded += [
        "--scale", str(args.scale),
        "--out", args.out,
        "--jobs", str(args.jobs),
    ]
    if args.batch_size is not None:
        forwarded += ["--batch-size", str(args.batch_size)]
    if args.slo is not None:
        forwarded += ["--slo", args.slo]
    if args.trace:
        forwarded += ["--trace", args.trace]
    if args.chrome_trace:
        forwarded += ["--chrome-trace", args.chrome_trace]
    return run_all_main(forwarded)


def _load_manifests(path: str) -> tuple[dict, list[str]] | None:
    """Load a manifest directory, reporting failure to stderr."""
    import pathlib

    p = pathlib.Path(path)
    if not p.is_dir():
        print(f"no such manifest directory: {path}", file=sys.stderr)
        return None
    manifests, skipped = load_manifest_dir(p)
    for name in skipped:
        print(f"skipping {p / name}: not a run manifest", file=sys.stderr)
    return manifests, skipped


def _cmd_report(args) -> int:
    """Aggregate ``results/*.json`` manifests; diff against a baseline."""
    loaded = _load_manifests(args.results)
    if loaded is None:
        return 2
    manifests, _ = loaded
    if not manifests:
        print(f"no run manifests under {args.results}", file=sys.stderr)
        return 2

    if args.diff is None:
        if args.format == "openmetrics":
            # One exposition across all manifests: every sample gains an
            # `experiment` label so families merge without collisions.
            merged: dict = {}
            for name in sorted(manifests):
                snapshot = manifests[name].get("metrics") or {}
                for key, value in snapshot.items():
                    try:
                        metric, labels = parse_snapshot_key(key)
                    except ValueError:
                        continue
                    labels["experiment"] = name
                    merged[render_snapshot_key(metric, labels)] = value
            text = render_snapshot_openmetrics(merged)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(text)
                print(
                    f"openmetrics: {len(manifests)} manifest(s) -> {args.out}"
                )
            else:
                print(text, end="")
            return 0
        if args.json:
            print(json.dumps(manifests, indent=2, default=str))
        else:
            text = render_report(manifests)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(text)
                print(f"report: {len(manifests)} manifest(s) -> {args.out}")
            else:
                print(text, end="")
        return 0

    base_loaded = _load_manifests(args.diff)
    if base_loaded is None:
        return 2
    base, _ = base_loaded
    if not base:
        print(f"no baseline manifests under {args.diff}", file=sys.stderr)
        return 2
    try:
        regressions = diff_manifests(
            base,
            manifests,
            wall_tolerance=args.wall_tolerance,
            metric_tolerance=args.metric_tolerance,
            min_wall_s=args.min_wall_s,
        )
    except SchemaMismatchError as exc:
        print(f"schema mismatch: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(regressions, indent=2, default=str))
    else:
        text = render_diff(regressions, n_base=len(base), n_new=len(manifests))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"diff: {len(regressions)} regression(s) -> {args.out}")
        else:
            print(text, end="")
    return 1 if regressions else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run one scheme on a workload")
    _add_workload_args(p_sim)
    p_sim.add_argument("--scheme", choices=sorted(_SCHEMES), default="sp")
    p_sim.add_argument("--requests", type=int, default=3000)
    p_sim.add_argument(
        "--stragglers", choices=sorted(_STRAGGLERS), default="natural"
    )
    _add_discipline_arg(p_sim)
    _add_batch_size_arg(p_sim)
    _add_causal_arg(p_sim)
    p_sim.add_argument(
        "--json", action="store_true", help="machine-parseable JSON output"
    )
    p_sim.add_argument(
        "--trace", default=None, metavar="PATH",
        help="also record a JSONL event trace to PATH",
    )
    _add_sample_arg(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_cmp = sub.add_parser("compare", help="race several schemes")
    _add_workload_args(p_cmp)
    p_cmp.add_argument("--schemes", default="sp,ec,replication")
    p_cmp.add_argument("--requests", type=int, default=3000)
    p_cmp.add_argument(
        "--stragglers", choices=sorted(_STRAGGLERS), default="natural"
    )
    _add_discipline_arg(p_cmp)
    _add_batch_size_arg(p_cmp)
    _add_causal_arg(p_cmp)
    p_cmp.add_argument(
        "--json", action="store_true", help="machine-parseable JSON output"
    )
    p_cmp.add_argument(
        "--trace", default=None, metavar="PATH",
        help="also record a JSONL event trace to PATH",
    )
    _add_sample_arg(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_cfg = sub.add_parser("configure", help="run the scale-factor search")
    _add_workload_args(p_cfg)
    p_cfg.add_argument("--mode", choices=("paper", "sweep"), default="sweep")
    p_cfg.set_defaults(func=_cmd_configure)

    p_trc = sub.add_parser(
        "trace", help="run scheme(s) with tracing on, write a JSONL trace"
    )
    _add_workload_args(p_trc)
    p_trc.add_argument("--schemes", default="sp")
    p_trc.add_argument("--requests", type=int, default=3000)
    p_trc.add_argument(
        "--stragglers", choices=sorted(_STRAGGLERS), default="natural"
    )
    _add_discipline_arg(p_trc)
    _add_causal_arg(p_trc)
    p_trc.add_argument("--out", required=True, metavar="PATH")
    _add_sample_arg(p_trc)
    p_trc.set_defaults(func=_cmd_trace)

    p_sts = sub.add_parser(
        "stats", help="replay a JSONL trace into load vectors and tables"
    )
    p_sts.add_argument("tracefile", metavar="TRACE.jsonl")
    p_sts.add_argument(
        "--timeline", type=int, default=0, metavar="N",
        help="also print an N-bucket per-server load timeline",
    )
    p_sts.add_argument(
        "--per-server", action="store_true", dest="per_server",
        help="also print the reconstructed per-server byte loads",
    )
    p_sts.add_argument(
        "--json", action="store_true", help="machine-parseable JSON output"
    )
    p_sts.add_argument(
        "--format", choices=("table", "openmetrics"), default="table",
        help=(
            "'openmetrics' prints the trace's end-of-run metric "
            "snapshots as a Prometheus/OpenMetrics text exposition"
        ),
    )
    p_sts.add_argument(
        "--slo", default=None, metavar="SPEC",
        help=(
            "re-evaluate the trace against SLO objectives, e.g. "
            "'p99<0.05,imbalance<3' (see docs/observability.md)"
        ),
    )
    p_sts.set_defaults(func=_cmd_stats)

    p_tml = sub.add_parser(
        "timeline",
        help="render a manifest's sim-time timelines as sparklines",
    )
    p_tml.add_argument(
        "manifest", metavar="MANIFEST",
        help="a results/<exp>.json manifest (or extracted timeline JSON)",
    )
    p_tml.add_argument(
        "--json", action="store_true", help="machine-parseable JSON output"
    )
    p_tml.set_defaults(func=_cmd_timeline)

    p_tail = sub.add_parser(
        "tail",
        help="render tail-latency attribution and slowest-request exemplars",
    )
    p_tail.add_argument(
        "manifest", metavar="MANIFEST",
        help="a results/<exp>.json manifest (or extracted timeline JSON)",
    )
    p_tail.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="show the N slowest exemplars per section (default %(default)s)",
    )
    p_tail.add_argument(
        "--json", action="store_true", help="machine-parseable JSON output"
    )
    p_tail.set_defaults(func=_cmd_tail)

    p_crt = sub.add_parser(
        "critical",
        help="per-request critical paths and causal edge aggregates",
    )
    p_crt.add_argument(
        "source",
        help=(
            "run manifest JSON, causal section(s), or a JSONL trace with "
            "cspan events"
        ),
    )
    p_crt.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="show the N slowest critical paths per section (default 10)",
    )
    p_crt.add_argument(
        "--check", action="store_true",
        help=(
            "exit non-zero unless every section's conservation invariant "
            "holds (and, for traces, every span tree reconstructed)"
        ),
    )
    p_crt.add_argument(
        "--chrome", default=None, metavar="PATH",
        help=(
            "also export the trace's span trees as a Chrome/Perfetto "
            "trace with parent->child flow arrows (JSONL input only)"
        ),
    )
    p_crt.add_argument(
        "--json", action="store_true", help="emit raw sections as JSON"
    )
    p_crt.set_defaults(func=_cmd_critical)

    p_top = sub.add_parser(
        "top",
        help="hot files, estimated skew, imbalance, and alerts",
    )
    p_top.add_argument(
        "source",
        help="run manifest JSON, popularity section(s), or JSONL trace",
    )
    p_top.add_argument(
        "--k", type=int, default=10, help="hot files to show (default 10)"
    )
    p_top.add_argument(
        "--json", action="store_true", help="emit raw sections as JSON"
    )
    p_top.set_defaults(func=_cmd_top)

    p_watch = sub.add_parser(
        "watch",
        help="re-render `repro top` periodically (live view of a trace)",
    )
    p_watch.add_argument(
        "source",
        help="run manifest JSON, popularity section(s), or JSONL trace",
    )
    p_watch.add_argument("--k", type=int, default=10)
    p_watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between renders (default 2)",
    )
    p_watch.add_argument(
        "--frames",
        type=int,
        default=0,
        help="stop after N renders (default 0 = forever)",
    )
    p_watch.set_defaults(func=_cmd_watch)

    p_dash = sub.add_parser(
        "dash",
        help="cluster health board: load bars, hot keys, SLO alerts",
    )
    p_dash.add_argument(
        "source",
        help=(
            "run manifest JSON, JSONL event trace, or '-' for JSONL "
            "records on stdin"
        ),
    )
    p_dash.add_argument(
        "--follow", action="store_true",
        help="tail a growing JSONL trace and re-render as records arrive",
    )
    p_dash.add_argument(
        "--interval", type=float, default=2.0, metavar="SEC",
        help="minimum seconds between frames with --follow (default 2)",
    )
    p_dash.add_argument(
        "--frames", type=int, default=0, metavar="N",
        help="with --follow, stop after N frames (default 0 = forever)",
    )
    p_dash.add_argument(
        "--idle-limit", type=float, default=None, dest="idle_limit",
        metavar="SEC",
        help=(
            "with --follow, stop once the trace stops growing for SEC "
            "seconds (default: follow forever)"
        ),
    )
    p_dash.add_argument(
        "--k", type=int, default=5, help="hot files per scheme (default 5)"
    )
    p_dash.add_argument(
        "--plain", action="store_true",
        help="never emit terminal clear codes (CI / non-TTY frame mode)",
    )
    p_dash.set_defaults(func=_cmd_dash)

    p_exp = sub.add_parser("experiments", help="regenerate evaluation tables")
    p_exp.add_argument(
        "--only", default=None, metavar="NAMES",
        help="comma-separated experiment names and/or glob patterns",
    )
    p_exp.add_argument(
        "--list", action="store_true",
        help="print the experiment registry as a table and exit",
    )
    p_exp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run up to N experiments in parallel worker processes",
    )
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.add_argument(
        "--batch-size", type=int, default=None, dest="batch_size",
        metavar="B",
        help=(
            "vectorized planning batch size for batchable experiments "
            "(bit-exact vs scalar; unset runs the scalar engine)"
        ),
    )
    p_exp.add_argument(
        "--slo", default=None, metavar="SPEC",
        help=(
            "SLO objectives for every experiment, e.g. "
            "'p99<0.05,imbalance<3' (default: the loose built-in set)"
        ),
    )
    p_exp.add_argument("--out", default="results")
    p_exp.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a JSONL event trace of the whole pass to PATH",
    )
    p_exp.add_argument(
        "--chrome-trace", default=None, dest="chrome_trace", metavar="PATH",
        help="write a Chrome/Perfetto trace-event timeline to PATH",
    )
    p_exp.set_defaults(func=_cmd_experiments)

    p_rep = sub.add_parser(
        "report", help="aggregate run manifests; --diff flags regressions"
    )
    p_rep.add_argument(
        "results", nargs="?", default="results", metavar="DIR",
        help="directory of results/<exp>.json run manifests",
    )
    p_rep.add_argument(
        "--diff", default=None, metavar="BASE",
        help="baseline manifest directory; exit 1 if DIR regressed vs BASE",
    )
    p_rep.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the markdown to FILE instead of stdout",
    )
    p_rep.add_argument(
        "--json", action="store_true", help="machine-parseable JSON output"
    )
    p_rep.add_argument(
        "--format", choices=("markdown", "openmetrics"), default="markdown",
        help=(
            "'openmetrics' renders every manifest's metrics snapshot as "
            "one Prometheus/OpenMetrics exposition (samples labelled by "
            "experiment); ignored with --diff"
        ),
    )
    p_rep.add_argument(
        "--wall-tolerance", type=float, default=WALL_TOLERANCE,
        dest="wall_tolerance", metavar="FRAC",
        help="relative wall-time slack before flagging (default %(default)s)",
    )
    p_rep.add_argument(
        "--metric-tolerance", type=float, default=METRIC_TOLERANCE,
        dest="metric_tolerance", metavar="FRAC",
        help="relative metric slack before flagging (default %(default)s)",
    )
    p_rep.add_argument(
        "--min-wall-s", type=float, default=MIN_WALL_S,
        dest="min_wall_s", metavar="SEC",
        help="ignore wall regressions smaller than SEC (default %(default)s)",
    )
    p_rep.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
