"""Caching/load-balancing schemes: SP-Cache and every baseline it fights.

All policies implement the :class:`~repro.cluster.client.ReadPlanner`
protocol consumed by the simulator, plus a write model for the Sec. 7.8
experiment and bookkeeping (memory overhead, placement) used by the
analysis figures.
"""

from repro.policies.base import CachePolicy
from repro.policies.ec_cache import ECCachePolicy
from repro.policies.fixed_chunking import FixedChunkingPolicy
from repro.policies.selective_replication import SelectiveReplicationPolicy
from repro.policies.simple_partition import SimplePartitionPolicy
from repro.policies.single_copy import SingleCopyPolicy
from repro.policies.sp_cache import SPCachePolicy

__all__ = [
    "CachePolicy",
    "ECCachePolicy",
    "FixedChunkingPolicy",
    "SPCachePolicy",
    "SelectiveReplicationPolicy",
    "SimplePartitionPolicy",
    "SingleCopyPolicy",
]
