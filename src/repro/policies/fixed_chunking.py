"""Fixed-size chunking — the HDFS/Azure/Alluxio convention (Secs. 4.3, 7.3).

Files are cut into chunks of a constant byte size regardless of
popularity: ``k_i = ceil(S_i / chunk_size)``, clamped to the cluster size
so chunks still land on distinct servers.  Small chunks balance load but
multiply connections (goodput loss, stragglers); large chunks degenerate to
single-copy caching.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.client import WriteOp
from repro.common import ClusterSpec, FilePopulation
from repro.policies.base import CachePolicy

__all__ = ["FixedChunkingPolicy"]


class FixedChunkingPolicy(CachePolicy):
    """Constant chunk size for every file."""

    name = "fixed-chunking"

    def __init__(
        self,
        population: FilePopulation,
        cluster: ClusterSpec,
        chunk_size: float,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = float(chunk_size)
        super().__init__(population, cluster, seed=seed)

    def _build_layout(self) -> None:
        counts = np.minimum(
            np.ceil(self.population.sizes / self.chunk_size).astype(np.int64),
            self.cluster.n_servers,
        )
        counts = np.maximum(counts, 1)
        self.counts = counts
        self.servers_of = self._place_random(counts)
        self.piece_sizes = [
            np.full(int(k), size / k)
            for k, size in zip(counts, self.population.sizes)
        ]

    def plan_write(self, file_id: int) -> WriteOp:
        """Writes open one connection per *chunk*, not per server.

        Reads clamp the fan-out to distinct servers, but a write really
        ships ``ceil(S / chunk_size)`` chunks (several may land on the same
        server) — the connection cost Fig. 22 charges fixed-size chunking
        for on large files.
        """
        size = float(self.population.sizes[file_id])
        n_chunks = max(int(np.ceil(size / self.chunk_size)), 1)
        return WriteOp(sizes=np.full(n_chunks, size / n_chunks))
