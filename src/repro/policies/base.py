"""Common machinery for caching policies.

A policy binds a file population to a cluster: it decides, per file, how
many pieces exist, where they live, how a read fans out, and what a write
costs.  The shared base implements everything that follows mechanically
from a per-file ``(servers, piece sizes)`` layout; subclasses override the
layout construction and, where semantics differ (late binding, replica
choice), the read plan.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.cluster.client import ReadOp, WriteOp
from repro.cluster.topology import ClusterTopology, as_cluster_spec
from repro.common import ClusterSpec, FilePopulation, make_rng
from repro.core.placement import place_partitions_random, placement_server_loads

__all__ = ["CachePolicy"]


class CachePolicy(ABC):
    """Base class: per-file partition layout plus fork-join read plans."""

    #: Short name used in experiment tables.
    name: str = "base"

    def __init__(
        self,
        population: FilePopulation,
        cluster: ClusterSpec | ClusterTopology,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.population = population
        #: Epoch-versioned membership the policy was built against, or
        #: ``None`` when built from a plain spec.  Layouts always target
        #: ``self.cluster`` — the epoch-0 spec — so fixed topologies
        #: reproduce spec-built layouts byte-for-byte; churn experiments
        #: rebuild or re-plan per epoch (``plan_epoch_repartition``).
        self.topology: ClusterTopology | None = (
            cluster if isinstance(cluster, ClusterTopology) else None
        )
        self.cluster = as_cluster_spec(cluster)
        self._rng = make_rng(seed)
        #: servers_of[i]: distinct servers caching file i's pieces.
        self.servers_of: list[np.ndarray] = []
        #: piece_sizes[i]: bytes of each piece, aligned with servers_of[i].
        self.piece_sizes: list[np.ndarray] = []
        self._build_layout()
        if len(self.servers_of) != population.n_files or len(
            self.piece_sizes
        ) != population.n_files:
            raise AssertionError("layout must cover every file")

    # -- layout -------------------------------------------------------------

    @abstractmethod
    def _build_layout(self) -> None:
        """Fill ``servers_of`` and ``piece_sizes`` for every file."""

    def _place_random(self, counts: np.ndarray) -> list[np.ndarray]:
        return place_partitions_random(
            counts, self.cluster.n_servers, seed=self._rng
        )

    # -- protocol used by the simulator --------------------------------------

    def plan_read(self, file_id: int, rng: np.random.Generator) -> ReadOp:
        """Default read: fetch every piece, join on all of them."""
        del rng
        return ReadOp(
            server_ids=self.servers_of[file_id],
            sizes=self.piece_sizes[file_id],
        )

    def footprint(self, file_id: int) -> float:
        """Cached bytes for the file, including any parity or replicas."""
        return float(self.piece_sizes[file_id].sum())

    # -- write model (Sec. 7.8) ----------------------------------------------

    def plan_write(self, file_id: int) -> WriteOp:
        """Default write: push every piece, no client-side compute."""
        return WriteOp(sizes=self.piece_sizes[file_id])

    # -- accounting -----------------------------------------------------------

    def partition_counts(self) -> np.ndarray:
        return np.array([s.size for s in self.servers_of], dtype=np.int64)

    def total_cached_bytes(self) -> float:
        return float(sum(p.sum() for p in self.piece_sizes))

    def memory_overhead(self) -> float:
        """Redundancy: cached bytes over raw bytes, minus one.

        0.0 for SP-Cache and all redundancy-free schemes; 0.4 for the
        paper's (10, 14) EC-Cache configuration and its 4-replica top-10 %
        selective replication.
        """
        return self.total_cached_bytes() / self.population.total_bytes - 1.0

    def expected_server_loads(self) -> np.ndarray:
        """Per-server expected load ``sum L_i / k_i`` over hosted pieces."""
        return placement_server_loads(
            self.servers_of,
            self.population.loads,
            self.cluster.n_servers,
        )
