"""Simple (uniform) partition — the Sec. 4 strawman.

Every file, hot or cold, is split into the same ``k`` partitions on
distinct random servers.  It shares SP-Cache's redundancy-freeness but
wastes fan-out on cold files, which is what Fig. 5's straggler curve and
the goodput loss punish.
"""

from __future__ import annotations

import numpy as np

from repro.common import ClusterSpec, FilePopulation
from repro.policies.base import CachePolicy

__all__ = ["SimplePartitionPolicy"]


class SimplePartitionPolicy(CachePolicy):
    """Uniform ``k`` partitions for every file (EC-Cache's (k, k) mode)."""

    name = "simple-partition"

    def __init__(
        self,
        population: FilePopulation,
        cluster: ClusterSpec,
        k: int = 9,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > cluster.n_servers:
            raise ValueError("k may not exceed the server count")
        self.k = k
        super().__init__(population, cluster, seed=seed)

    def _build_layout(self) -> None:
        counts = np.full(self.population.n_files, self.k, dtype=np.int64)
        self.servers_of = self._place_random(counts)
        self.piece_sizes = [
            np.full(self.k, size / self.k) for size in self.population.sizes
        ]
