"""Selective replication baseline [9] (Scarlett-style).

Hot files get extra whole-file replicas; a read is served by one replica
chosen uniformly at random.  The paper's matched configuration replicates
the top 10 % most popular files 4x, giving the same 40 % memory overhead as
EC-Cache's (10, 14) code.  Writes push every replica through the client NIC
— the scheme's Sec. 7.8 weakness.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.client import ReadOp, WriteOp
from repro.common import ClusterSpec, FilePopulation
from repro.policies.base import CachePolicy
from repro.workloads.filesets import replication_counts_topk

__all__ = ["SelectiveReplicationPolicy"]


class SelectiveReplicationPolicy(CachePolicy):
    """Popularity-ranked whole-file replication."""

    name = "selective-replication"

    def __init__(
        self,
        population: FilePopulation,
        cluster: ClusterSpec,
        top_fraction: float = 0.10,
        replicas: int = 4,
        replica_counts: np.ndarray | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self._top_fraction = top_fraction
        self._replicas = replicas
        self._replica_counts_arg = replica_counts
        super().__init__(population, cluster, seed=seed)

    def _build_layout(self) -> None:
        if self._replica_counts_arg is not None:
            counts = np.asarray(self._replica_counts_arg, dtype=np.int64)
            if counts.shape != (self.population.n_files,):
                raise ValueError("replica_counts must cover every file")
            if np.any(counts < 1):
                raise ValueError("every file needs at least one replica")
        else:
            counts = replication_counts_topk(
                self.population,
                top_fraction=self._top_fraction,
                replicas=self._replicas,
            )
        if np.any(counts > self.cluster.n_servers):
            raise ValueError("more replicas than servers")
        self.replica_counts = counts
        self.servers_of = self._place_random(counts)
        self.piece_sizes = [
            np.full(int(r), float(size))  # each replica is the whole file
            for r, size in zip(counts, self.population.sizes)
        ]

    def plan_read(self, file_id: int, rng: np.random.Generator) -> ReadOp:
        """Serve from one uniformly chosen replica."""
        servers = self.servers_of[file_id]
        pick = int(rng.integers(servers.size))
        return ReadOp(
            server_ids=servers[pick : pick + 1],
            sizes=self.piece_sizes[file_id][pick : pick + 1],
        )

    def plan_write(self, file_id: int) -> WriteOp:
        """Push every replica (r x the file's bytes over one NIC)."""
        return WriteOp(sizes=self.piece_sizes[file_id])
