"""EC-Cache baseline [8]: online erasure coding with late binding.

Every file is split with a uniform (k, n) Reed-Solomon code — the paper's
evaluation uses (10, 14), i.e. 40 % memory overhead, which its sensitivity
study found best.  A read late-binds: it fetches ``k + 1`` randomly chosen
shards of the ``n`` and completes when any ``k`` arrive, then pays the
decode.  Decode cost is modeled as a fraction of the read latency (the
paper measures 15-30 % for >= 100 MB files, Fig. 4, and uses 20 % in its
own simulations); writes additionally pay encoding at a configurable
throughput before shipping ``n / k`` times the file's bytes.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.client import ReadOp, WriteOp
from repro.common import MB, ClusterSpec, FilePopulation

from repro.policies.base import CachePolicy

__all__ = ["ECCachePolicy"]


class ECCachePolicy(CachePolicy):
    """Uniform (k, n) erasure coding with k+1 late-bound reads."""

    name = "ec-cache"

    def __init__(
        self,
        population: FilePopulation,
        cluster: ClusterSpec,
        k: int = 10,
        n: int = 14,
        decode_overhead: float = 0.2,
        encode_throughput: float = 350 * MB,
        late_binding: bool = True,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if not 1 <= k <= n:
            raise ValueError("require 1 <= k <= n")
        if n > cluster.n_servers:
            raise ValueError("n shards need n distinct servers")
        if decode_overhead < 0:
            raise ValueError("decode_overhead must be non-negative")
        if encode_throughput <= 0:
            raise ValueError("encode_throughput must be positive")
        self.k = k
        self.n = n
        self.decode_overhead = decode_overhead
        self.encode_throughput = encode_throughput
        self.late_binding = late_binding
        super().__init__(population, cluster, seed=seed)

    def _build_layout(self) -> None:
        counts = np.full(self.population.n_files, self.n, dtype=np.int64)
        self.servers_of = self._place_random(counts)
        # Each of the n shards holds S / k bytes (k data + n-k parity).
        self.piece_sizes = [
            np.full(self.n, size / self.k) for size in self.population.sizes
        ]

    def plan_read(self, file_id: int, rng: np.random.Generator) -> ReadOp:
        """Late binding: read ``k + 1`` random shards, join on ``k``."""
        servers = self.servers_of[file_id]
        sizes = self.piece_sizes[file_id]
        fetch = min(self.k + 1, self.n) if self.late_binding else self.k
        idx = rng.choice(self.n, size=fetch, replace=False)
        return ReadOp(
            server_ids=servers[idx],
            sizes=sizes[idx],
            join_count=self.k,
            post_fraction=self.decode_overhead,
        )

    def plan_write(self, file_id: int) -> WriteOp:
        """Encode first, then push all ``n`` shards (``n/k`` x the bytes)."""
        size = float(self.population.sizes[file_id])
        return WriteOp(
            sizes=self.piece_sizes[file_id],
            pre_seconds=size / self.encode_throughput,
        )
