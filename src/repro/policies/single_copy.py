"""Single-copy caching — stock Alluxio, and the disk baseline of Fig. 2.

One unsplit copy per file on a random server.  With memory-speed
bandwidth this is the "W/ caching, no balancing" configuration whose hot
spots motivate the paper; pointing the cluster spec at disk-class
bandwidth instead reproduces the "W/o caching" curve.
"""

from __future__ import annotations

import numpy as np

from repro.common import ClusterSpec, FilePopulation
from repro.policies.base import CachePolicy

__all__ = ["SingleCopyPolicy"]


class SingleCopyPolicy(CachePolicy):
    """One whole-file copy on one random server."""

    name = "single-copy"

    def __init__(
        self,
        population: FilePopulation,
        cluster: ClusterSpec,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(population, cluster, seed=seed)

    def _build_layout(self) -> None:
        counts = np.ones(self.population.n_files, dtype=np.int64)
        self.servers_of = self._place_random(counts)
        self.piece_sizes = [
            np.array([float(size)]) for size in self.population.sizes
        ]
