"""SP-Cache: selective partition (the paper's contribution).

``k_i = ceil(alpha * S_i * P_i)`` partitions per file on distinct random
servers; reads fork to every partition and join on all of them; no parity,
no decode, zero memory overhead.  ``alpha`` is either supplied or found by
Algorithm 1; the default search evaluates the bound with the goodput model
and the Bing straggler moments (see ``repro.core.scale_factor`` for why
that makes the 1 % stop rule land on the elbow reliably).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.network import GoodputModel
from repro.common import ClusterSpec, FilePopulation
from repro.core.partitioner import partition_counts
from repro.core.scale_factor import optimal_scale_factor
from repro.policies.base import CachePolicy
from repro.workloads.bing import BingStragglerProfile

__all__ = ["SPCachePolicy"]


class SPCachePolicy(CachePolicy):
    """Selective partition with load-proportional ``k_i``."""

    name = "sp-cache"

    def __init__(
        self,
        population: FilePopulation,
        cluster: ClusterSpec,
        alpha: float | None = None,
        straggler_aware: bool = False,
        max_partitions: int | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        """``alpha=None`` runs the scale-factor search (sweep mode over the
        overhead-aware bound; see ``repro.core.scale_factor``).

        ``straggler_aware=True`` folds the Bing straggler moments into the
        search's bound.  Off by default: the Eq. (9) bound grows like
        ``sigma * k / 2`` for a ``k``-wide fork-join, which with heavy-tailed
        straggler moments over-penalizes wide fan-outs far beyond their
        simulated cost; turn it on when the deployment faces *intensive*
        per-server stragglers (the Sec. 7.5 regime).

        ``max_partitions`` caps every ``k_i`` below the cluster-size clamp —
        an operational knob for straggler-heavy environments.
        """
        self._alpha_arg = alpha
        self._straggler_aware = straggler_aware
        if max_partitions is not None and max_partitions < 1:
            raise ValueError("max_partitions must be >= 1")
        self._max_partitions = max_partitions
        super().__init__(population, cluster, seed=seed)

    def _build_layout(self) -> None:
        if self._alpha_arg is not None:
            self.alpha = float(self._alpha_arg)
        else:
            moments = (
                BingStragglerProfile().moments()
                if self._straggler_aware
                else None
            )
            self.alpha = optimal_scale_factor(
                self.population,
                self.cluster,
                goodput=GoodputModel(),
                straggler_moments=moments,
                client_cap=True,
                service_distribution="deterministic",
                mode="sweep",
                seed=self._rng,
            ).alpha
        self._straggler_moments_used = self._straggler_aware
        clamp = self.cluster.n_servers
        if self._max_partitions is not None:
            clamp = min(clamp, self._max_partitions)
        ks = partition_counts(self.population, self.alpha, n_servers=clamp)
        self.ks = ks
        self.servers_of = self._place_random(ks)
        self.piece_sizes = [
            np.full(int(k), size / k)
            for k, size in zip(ks, self.population.sizes)
        ]

    def repartition(
        self, new_population: FilePopulation, alpha: float | None = None
    ) -> "SPCachePolicy":
        """Fresh policy for a shifted popularity (periodic re-balancing)."""
        return SPCachePolicy(
            new_population,
            self.cluster,
            alpha=alpha if alpha is not None else self._alpha_arg,
            straggler_aware=self._straggler_aware,
            max_partitions=self._max_partitions,
            seed=self._rng,
        )
