"""Canned file populations matching the paper's experimental setups."""

from __future__ import annotations

import numpy as np

from repro.common import MB, FilePopulation
from repro.workloads.popularity import zipf_popularity

__all__ = ["paper_fileset", "replication_counts_topk"]


def paper_fileset(
    n_files: int,
    size_mb: float = 100.0,
    zipf_exponent: float = 1.05,
    total_rate: float = 8.0,
) -> FilePopulation:
    """Equal-sized, Zipf-popular file population.

    Matches the EC2 experiments: e.g. Sec. 7.3 uses 500 files of 100 MB with
    Zipf(1.05); Sec. 2.2 uses 50 files of 40 MB with Zipf(1.1).
    """
    return FilePopulation.uniform_sizes(
        n_files=n_files,
        size=size_mb * MB,
        popularities=zipf_popularity(n_files, zipf_exponent),
        total_rate=total_rate,
    )


def replication_counts_topk(
    population: FilePopulation,
    top_fraction: float = 0.10,
    replicas: int = 4,
) -> np.ndarray:
    """Per-file replica counts for the selective-replication baseline.

    The paper's configuration (Secs. 3.1, 7.1): the top ``top_fraction`` most
    popular files get ``replicas`` copies, the rest one copy.  With the
    defaults this yields the 40 % memory overhead the paper matches against
    EC-Cache's (10, 14) code.
    """
    if not 0 <= top_fraction <= 1:
        raise ValueError("top_fraction must be in [0, 1]")
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    n = population.n_files
    counts = np.ones(n, dtype=np.int64)
    n_top = int(round(top_fraction * n))
    if n_top:
        hot = np.argsort(-population.popularities)[:n_top]
        counts[hot] = replicas
    return counts
