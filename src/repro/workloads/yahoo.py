"""Synthetic stand-in for the Yahoo! Webscope file-access trace (Fig. 1).

The real trace (40M files over two months) is not publicly redistributable,
so we fit a generator to the statistics the paper reports:

* ~78 % of files are *cold*: accessed fewer than 10 times;
* ~2 % of files are *hot*: accessed at least 100 times, with a heavy tail;
* hot files are 15–30x larger than cold ones on average;
* ~27 % of files stay hot for more than a week (used qualitatively to justify
  12-hour repartition periods — we expose a ``stable_hot_fraction`` knob).

The generator produces joint (access-count, size) samples whose bucketed
marginals reproduce Fig. 1's shape, plus a :func:`yahoo_file_population`
helper implementing Sec. 7.7's workload rule "a larger file is more popular
than a smaller one".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import MB, FilePopulation, make_rng
from repro.workloads.popularity import zipf_popularity

__all__ = ["YahooTraceModel", "access_count_buckets", "yahoo_file_population"]


@dataclass(frozen=True)
class YahooTraceModel:
    """Parametric model of the Yahoo! trace's access-count/size joint law.

    Files fall into three tiers (cold/warm/hot) with the paper's reported
    proportions.  Access counts are drawn per-tier (geometric for cold,
    log-uniform for warm, Pareto for hot) and sizes are lognormal with a
    tier-dependent scale so the hot:cold mean-size ratio lands in the
    paper's 15–30x band.
    """

    cold_fraction: float = 0.78
    hot_fraction: float = 0.02
    cold_mean_size: float = 16 * MB
    hot_size_ratio: float = 22.0  # hot mean size / cold mean size
    warm_size_ratio: float = 5.0
    size_sigma: float = 0.6  # lognormal shape within each tier
    hot_pareto_alpha: float = 1.5  # tail index of hot access counts
    stable_hot_fraction: float = 0.27  # hot for >1 week (Sec. 6.2)

    def __post_init__(self) -> None:
        if not 0 < self.cold_fraction < 1:
            raise ValueError("cold_fraction must be in (0, 1)")
        if not 0 < self.hot_fraction < 1:
            raise ValueError("hot_fraction must be in (0, 1)")
        if self.cold_fraction + self.hot_fraction >= 1:
            raise ValueError("cold_fraction + hot_fraction must be < 1")
        if self.hot_size_ratio <= self.warm_size_ratio:
            raise ValueError("hot files must be larger than warm files")

    @property
    def warm_fraction(self) -> float:
        return 1.0 - self.cold_fraction - self.hot_fraction

    def sample(
        self, n_files: int, seed: int | np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``(access_counts, sizes)`` for ``n_files`` files.

        Returns integer access counts (>= 1) and float sizes in bytes.
        """
        if n_files <= 0:
            raise ValueError("n_files must be positive")
        rng = make_rng(seed)
        tiers = rng.choice(
            3,
            size=n_files,
            p=[self.cold_fraction, self.warm_fraction, self.hot_fraction],
        )
        counts = np.empty(n_files, dtype=np.int64)
        sizes = np.empty(n_files, dtype=np.float64)

        cold = tiers == 0
        warm = tiers == 1
        hot = tiers == 2

        # Cold: 1..9 accesses, geometric-ish decay.
        counts[cold] = np.minimum(rng.geometric(0.4, size=int(cold.sum())), 9)
        # Warm: log-uniform on [10, 100).
        counts[warm] = np.floor(
            10 ** rng.uniform(1.0, 2.0, size=int(warm.sum()))
        ).astype(np.int64)
        counts[warm] = np.clip(counts[warm], 10, 99)
        # Hot: Pareto tail starting at 100.
        counts[hot] = np.floor(
            100 * (1 + rng.pareto(self.hot_pareto_alpha, size=int(hot.sum())))
        ).astype(np.int64)

        scales = np.select(
            [cold, warm, hot],
            [
                self.cold_mean_size,
                self.cold_mean_size * self.warm_size_ratio,
                self.cold_mean_size * self.hot_size_ratio,
            ],
        )
        # Lognormal with unit mean given sigma: exp(N(-sigma^2/2, sigma)).
        shape = rng.lognormal(
            mean=-0.5 * self.size_sigma**2, sigma=self.size_sigma, size=n_files
        )
        sizes[:] = scales * shape
        return counts, sizes


def access_count_buckets(
    counts: np.ndarray,
    sizes: np.ndarray,
    edges: tuple[int, ...] = (1, 10, 100),
) -> list[dict[str, float]]:
    """Bucket files by access count; report fraction and mean size per bucket.

    This is exactly the Fig. 1 aggregation: the blue bars are the file
    fraction per access-count bucket, the orange line the mean size.
    ``edges`` are inclusive lower bounds; the last bucket is open-ended.
    """
    counts = np.asarray(counts)
    sizes = np.asarray(sizes, dtype=np.float64)
    if counts.shape != sizes.shape:
        raise ValueError("counts and sizes must align")
    out: list[dict[str, float]] = []
    bounds = list(edges) + [None]
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        mask = counts >= lo if hi is None else (counts >= lo) & (counts < hi)
        frac = float(mask.mean()) if counts.size else 0.0
        mean_size = float(sizes[mask].mean()) if mask.any() else 0.0
        label = f">={lo}" if hi is None else f"[{lo},{hi})"
        out.append({"bucket": label, "fraction": frac, "mean_size": mean_size})
    return out


def yahoo_file_population(
    n_files: int,
    total_rate: float,
    zipf_exponent: float = 1.1,
    model: YahooTraceModel | None = None,
    seed: int | np.random.Generator | None = None,
) -> FilePopulation:
    """Build the Sec. 7.7 trace-driven population.

    Sizes follow the Yahoo! distribution; popularity follows Zipf with the
    given exponent; and, per the paper, *"a larger file is more popular than
    a smaller one"* — so the Zipf ranks are assigned in descending size
    order.
    """
    model = model or YahooTraceModel()
    rng = make_rng(seed)
    _, sizes = model.sample(n_files, seed=rng)
    pops_by_rank = zipf_popularity(n_files, zipf_exponent)
    order = np.argsort(-sizes)  # largest file gets rank 0 (hottest)
    popularities = np.empty(n_files, dtype=np.float64)
    popularities[order] = pops_by_rank
    return FilePopulation(
        sizes=sizes, popularities=popularities, total_rate=total_rate
    )
