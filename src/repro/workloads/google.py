"""Synthetic stand-in for the Google cluster-trace arrival sequence.

Sec. 7.7 uses the job-submission timestamps of the public Google cluster
trace (660k jobs) as the read-request arrival process, because "cluster jobs
usually read input at the beginning".  The trace itself is large and not
bundled here; what matters to the experiments is that arrivals are *bursty*
(overdispersed relative to Poisson), which is the well-documented character
of the Google trace.

We model this with a two-state Markov-modulated Poisson process (MMPP):
the arrival rate alternates between a quiet state and a bursty state with
exponentially distributed dwell times.  The index of dispersion is > 1 for
any ``burst_ratio > 1``, matching trace burstiness, while the long-run mean
rate is exactly the requested ``total_rate`` so results remain comparable
with the Poisson experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.common import make_rng

__all__ = ["GoogleArrivalModel"]


@dataclass(frozen=True)
class GoogleArrivalModel:
    """Two-state MMPP fitted to Google-trace burstiness.

    Attributes
    ----------
    burst_ratio:
        Ratio of the bursty-state rate to the quiet-state rate.
    burst_fraction:
        Long-run fraction of time spent in the bursty state.
    mean_dwell:
        Mean sojourn time (seconds) in the bursty state; the quiet state's
        dwell is derived from ``burst_fraction``.
    """

    burst_ratio: float = 8.0
    burst_fraction: float = 0.2
    mean_dwell: float = 20.0

    def __post_init__(self) -> None:
        if self.burst_ratio < 1:
            raise ValueError("burst_ratio must be >= 1")
        if not 0 < self.burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.mean_dwell <= 0:
            raise ValueError("mean_dwell must be positive")

    def state_rates(self, total_rate: float) -> tuple[float, float]:
        """(quiet_rate, bursty_rate) whose time-average is ``total_rate``."""
        f, r = self.burst_fraction, self.burst_ratio
        quiet = total_rate / ((1 - f) + f * r)
        return quiet, quiet * r

    def arrival_blocks(
        self,
        total_rate: float,
        horizon: float,
        rng: np.random.Generator,
    ) -> Iterator[np.ndarray]:
        """Yield per-dwell arrival blocks, *unsorted*, in exact draw order.

        Each yielded block holds the arrivals of one quiet/bursty sojourn.
        Successive blocks occupy disjoint, strictly increasing time
        intervals, so the concatenation of per-block sorted arrays equals
        the globally sorted :meth:`arrival_times` output — which is what
        lets :class:`repro.workloads.streams.GoogleStream` emit chunks
        without retaining the whole realization.  The RNG draw sequence
        (state flip, dwell, Poisson count, uniforms-iff-nonempty) is the
        historical one, byte for byte.
        """
        if total_rate <= 0 or horizon <= 0:
            raise ValueError("total_rate and horizon must be positive")
        quiet_rate, bursty_rate = self.state_rates(total_rate)
        # Long-run time fraction in the bursty state must equal
        # burst_fraction: dwell_bursty / (dwell_bursty + dwell_quiet) = f.
        quiet_dwell = (
            self.mean_dwell * (1 - self.burst_fraction) / self.burst_fraction
        )

        t = 0.0
        bursty = bool(rng.random() < self.burst_fraction)
        while t < horizon:
            dwell = rng.exponential(self.mean_dwell if bursty else quiet_dwell)
            end = min(t + dwell, horizon)
            rate = bursty_rate if bursty else quiet_rate
            n = rng.poisson(rate * (end - t))
            if n:
                yield rng.uniform(t, end, size=n)
            t = end
            bursty = not bursty

    def arrival_times(
        self,
        total_rate: float,
        horizon: float,
        seed: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample arrival timestamps on ``[0, horizon)``.

        Alternates quiet/bursty states; within each state arrivals are
        Poisson at the state rate, sampled in a vectorized block.
        """
        chunks = list(
            self.arrival_blocks(total_rate, horizon, make_rng(seed))
        )
        if not chunks:
            return np.empty(0, dtype=np.float64)
        times = np.concatenate(chunks)
        times.sort()
        return times

    def index_of_dispersion(
        self,
        total_rate: float,
        horizon: float,
        window: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> float:
        """Empirical variance-to-mean ratio of per-window arrival counts.

        A Poisson process gives 1.0; this model should exceed it, which the
        tests assert.
        """
        times = self.arrival_times(total_rate, horizon, seed=seed)
        n_windows = max(int(horizon / window), 1)
        counts = np.bincount(
            np.minimum((times / window).astype(np.int64), n_windows - 1),
            minlength=n_windows,
        )
        mean = counts.mean()
        return float(counts.var() / mean) if mean > 0 else 0.0
