"""Seeded lazy workload streams: million-request traces without the RAM.

An :class:`~repro.workloads.arrivals.ArrivalTrace` materializes every
timestamp and file choice up front — fine at 4k requests, hostile at 10⁷.
A :class:`WorkloadStream` is the lazy, replayable equivalent: it knows its
request count and a content fingerprint up front, yields ``(times,
file_ids)`` chunks on demand, and regenerating it from the same seed
produces the identical stream on every pass, in every process.

Determinism contract (what the parity tests pin down):

* **Chunk invariance** — the concatenation of the chunks is independent
  of ``chunk_size``.  This leans on verified bit-exactness properties of
  numpy's PCG64 generator: chunked ``rng.exponential``/``rng.random``/
  ``rng.choice(..., p=p)`` draws concatenate bitwise to the single-call
  draw, and a chunked ``cumsum`` seeded with the previous chunk's last
  value equals the global ``cumsum`` bitwise.
* **Materialized parity** — ``stream.materialize()`` equals the legacy
  eager builder (:func:`~repro.workloads.arrivals.poisson_trace`,
  :meth:`~repro.workloads.google.GoogleArrivalModel.arrival_times` +
  :func:`~repro.workloads.arrivals.trace_from_times`) byte for byte.
  For the Poisson stream, which the eager builder generates from *one*
  generator (all gaps, then all choices), this needs two phase-locked
  generators: the file-choice generator fast-forwards past the gap draws
  by drawing and discarding ``n`` standard exponentials (the generator
  state after ``n`` exponential draws is scale- and chunking-independent).
* **Cross-process replay** — a stream is a small picklable description
  (population, count, seed), so ``--jobs N`` workers regenerate identical
  streams instead of shipping arrays.

Streams require a *value* seed (int or ``None``), never a live
``Generator``: a generator's state would be consumed by the first pass
and the stream could not replay.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterator, Protocol, runtime_checkable

import numpy as np

from repro.common import FilePopulation, make_rng, validate_probability_vector
from repro.workloads.arrivals import ArrivalTrace
from repro.workloads.google import GoogleArrivalModel

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "GoogleStream",
    "MaterializedStream",
    "PoissonStream",
    "WorkloadStream",
    "as_trace",
    "is_stream",
]

#: Default number of requests per yielded chunk.
DEFAULT_CHUNK_SIZE = 65536


@runtime_checkable
class WorkloadStream(Protocol):
    """What the engine and the workload cache require of a lazy trace."""

    @property
    def n_requests(self) -> int:  # pragma: no cover - protocol
        """Total number of requests the stream will yield."""
        ...

    def fingerprint(self) -> str:  # pragma: no cover - protocol
        """Stable content hash of the full stream (without forcing it)."""
        ...

    def chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:  # pragma: no cover
        """Yield ``(times, file_ids)`` arrays of at most ``chunk_size``."""
        ...

    def materialize(self) -> ArrivalTrace:  # pragma: no cover - protocol
        """Force the whole stream into one :class:`ArrivalTrace`."""
        ...


def is_stream(obj: Any) -> bool:
    """``True`` when ``obj`` honours the :class:`WorkloadStream` protocol."""
    return (
        not isinstance(obj, ArrivalTrace)
        and hasattr(obj, "n_requests")
        and callable(getattr(obj, "chunks", None))
        and callable(getattr(obj, "materialize", None))
        and callable(getattr(obj, "fingerprint", None))
    )


def as_trace(workload: ArrivalTrace | WorkloadStream) -> ArrivalTrace:
    """Materialize a stream; pass an :class:`ArrivalTrace` through."""
    if isinstance(workload, ArrivalTrace):
        return workload
    if is_stream(workload):
        return workload.materialize()
    raise TypeError(
        f"expected an ArrivalTrace or WorkloadStream, "
        f"got {type(workload).__name__}"
    )


def _check_chunk_size(chunk_size: int) -> int:
    if not isinstance(chunk_size, int) or chunk_size < 1:
        raise ValueError(f"chunk_size must be a positive int, got {chunk_size!r}")
    return chunk_size


def _check_value_seed(seed: Any) -> None:
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "streams need a replayable value seed (int or None), "
            "not a live Generator"
        )


def _population_digest(digest: "hashlib._Hash", population: FilePopulation) -> None:
    digest.update(np.ascontiguousarray(population.sizes).tobytes())
    digest.update(np.ascontiguousarray(population.popularities).tobytes())
    digest.update(repr(float(population.total_rate)).encode())


class PoissonStream:
    """Lazy equivalent of :func:`~repro.workloads.arrivals.poisson_trace`.

    ``materialize()`` is byte-identical to
    ``poisson_trace(population, n_requests=n_requests, seed=seed)`` and
    the chunk concatenation is byte-identical to ``materialize()`` for
    every chunk size.
    """

    def __init__(
        self,
        population: FilePopulation,
        n_requests: int,
        seed: int | None = 0,
        rate: float | None = None,
    ) -> None:
        if not isinstance(population, FilePopulation):
            raise TypeError(
                f"population must be a FilePopulation, "
                f"got {type(population).__name__}"
            )
        if n_requests < 0:
            raise ValueError("n_requests must be non-negative")
        _check_value_seed(seed)
        self.population = population
        self._n_requests = int(n_requests)
        self.seed = seed
        self.rate = float(rate) if rate is not None else float(
            population.total_rate
        )
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    @property
    def n_requests(self) -> int:
        return self._n_requests

    def fingerprint(self) -> str:
        digest = hashlib.sha1()
        digest.update(b"poisson_stream/1\x00")
        _population_digest(digest, self.population)
        digest.update(repr((self.rate, self._n_requests, self.seed)).encode())
        return digest.hexdigest()

    def chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        chunk_size = _check_chunk_size(chunk_size)
        n = self._n_requests
        if n == 0:
            return
        p = validate_probability_vector(self.population.popularities)
        # The eager builder threads ONE generator through all gap draws,
        # then all file choices.  Split that into two phase-locked
        # generators: gaps read from a fresh generator; choices read from
        # a second fresh generator fast-forwarded past exactly n
        # exponential draws (state after n draws is scale- and
        # chunking-independent), i.e. parked where the eager builder's
        # generator sat when it started choosing files.
        rng_gaps = make_rng(self.seed)
        rng_files = make_rng(self.seed)
        skipped = 0
        while skipped < n:
            c = min(chunk_size, n - skipped)
            rng_files.exponential(1.0, size=c)
            skipped += c
        scale = 1.0 / self.rate
        offset = 0.0
        done = 0
        while done < n:
            c = min(chunk_size, n - done)
            gaps = rng_gaps.exponential(scale, size=c)
            # Seeding the chunk cumsum with the previous chunk's last
            # value reproduces the global cumsum bitwise (sequential
            # left-to-right float additions either way).
            times = np.cumsum(np.concatenate(([offset], gaps)))[1:]
            offset = float(times[-1])
            file_ids = rng_files.choice(p.size, size=c, p=p)
            yield times, file_ids.astype(np.int64, copy=False)
            done += c

    def materialize(self) -> ArrivalTrace:
        times: list[np.ndarray] = []
        file_ids: list[np.ndarray] = []
        for t, f in self.chunks():
            times.append(t)
            file_ids.append(f)
        if not times:
            return ArrivalTrace(np.empty(0), np.empty(0, dtype=np.int64))
        return ArrivalTrace(np.concatenate(times), np.concatenate(file_ids))


class GoogleStream:
    """Lazy equivalent of the fig. 21 Google-MMPP trace build.

    ``materialize()`` is byte-identical to
    ``trace_from_times(model.arrival_times(rate, horizon, seed),
    population, seed=choice_seed)``: MMPP blocks occupy disjoint,
    increasing time ranges, so concatenating per-block sorted arrays
    equals the global sort, and chunked file choices concatenate to the
    eager single draw.

    The request count of an MMPP realization is random; it is discovered
    (and cached) by one counting replay of the block generator —
    timestamps are regenerated per pass, never retained.
    """

    def __init__(
        self,
        population: FilePopulation,
        total_rate: float,
        horizon: float,
        seed: int | None = 0,
        choice_seed: int | None = None,
        model: GoogleArrivalModel | None = None,
    ) -> None:
        if not isinstance(population, FilePopulation):
            raise TypeError(
                f"population must be a FilePopulation, "
                f"got {type(population).__name__}"
            )
        _check_value_seed(seed)
        _check_value_seed(choice_seed)
        self.population = population
        self.total_rate = float(total_rate)
        self.horizon = float(horizon)
        self.seed = seed
        self.choice_seed = choice_seed if choice_seed is not None else seed
        self.model = model if model is not None else GoogleArrivalModel()
        if not isinstance(self.model, GoogleArrivalModel):
            raise TypeError(
                f"model must be a GoogleArrivalModel, "
                f"got {type(self.model).__name__}"
            )
        self._count: int | None = None

    @property
    def n_requests(self) -> int:
        if self._count is None:
            count = 0
            for block in self.model.arrival_blocks(
                self.total_rate, self.horizon, make_rng(self.seed)
            ):
                count += block.size
            self._count = count
        return self._count

    def fingerprint(self) -> str:
        digest = hashlib.sha1()
        digest.update(b"google_stream/1\x00")
        _population_digest(digest, self.population)
        digest.update(
            repr(
                (
                    self.total_rate,
                    self.horizon,
                    self.seed,
                    self.choice_seed,
                    self.model.burst_ratio,
                    self.model.burst_fraction,
                    self.model.mean_dwell,
                )
            ).encode()
        )
        return digest.hexdigest()

    def chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        chunk_size = _check_chunk_size(chunk_size)
        p = validate_probability_vector(self.population.popularities)
        rng_files = make_rng(self.choice_seed)
        pending: list[np.ndarray] = []
        pending_n = 0
        for block in self.model.arrival_blocks(
            self.total_rate, self.horizon, make_rng(self.seed)
        ):
            # Blocks are disjoint in time and increasing, so sorting each
            # block equals slicing the globally sorted trace.
            pending.append(np.sort(block))
            pending_n += block.size
            while pending_n >= chunk_size:
                flat = np.concatenate(pending) if len(pending) > 1 else pending[0]
                times, rest = flat[:chunk_size], flat[chunk_size:]
                pending = [rest] if rest.size else []
                pending_n = rest.size
                file_ids = rng_files.choice(p.size, size=times.size, p=p)
                yield times, file_ids.astype(np.int64, copy=False)
        if pending_n:
            times = np.concatenate(pending) if len(pending) > 1 else pending[0]
            file_ids = rng_files.choice(p.size, size=times.size, p=p)
            yield times, file_ids.astype(np.int64, copy=False)

    def materialize(self) -> ArrivalTrace:
        times: list[np.ndarray] = []
        file_ids: list[np.ndarray] = []
        for t, f in self.chunks():
            times.append(t)
            file_ids.append(f)
        if not times:
            return ArrivalTrace(np.empty(0), np.empty(0, dtype=np.int64))
        trace = ArrivalTrace(np.concatenate(times), np.concatenate(file_ids))
        if self._count is None:
            self._count = trace.n_requests
        return trace


class MaterializedStream:
    """Adapter presenting an eager :class:`ArrivalTrace` as a stream."""

    def __init__(self, trace: ArrivalTrace) -> None:
        if not isinstance(trace, ArrivalTrace):
            raise TypeError(
                f"trace must be an ArrivalTrace, got {type(trace).__name__}"
            )
        self.trace = trace

    @property
    def n_requests(self) -> int:
        return self.trace.n_requests

    def fingerprint(self) -> str:
        digest = hashlib.sha1()
        digest.update(b"materialized_stream/1\x00")
        digest.update(np.ascontiguousarray(self.trace.times).tobytes())
        digest.update(np.ascontiguousarray(self.trace.file_ids).tobytes())
        return digest.hexdigest()

    def chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        chunk_size = _check_chunk_size(chunk_size)
        times = self.trace.times
        file_ids = self.trace.file_ids
        for lo in range(0, times.size, chunk_size):
            hi = lo + chunk_size
            yield times[lo:hi], file_ids[lo:hi]

    def materialize(self) -> ArrivalTrace:
        return self.trace
