"""Request arrival processes.

The EC2 experiments use independent Poisson clients (Sec. 2.2, 7.1); the
trace-driven simulation replaces Poisson with a recorded arrival sequence
(Sec. 7.7).  Both reduce to an :class:`ArrivalTrace`: sorted timestamps plus
the file each request targets.  Sampling is fully vectorized — one
``rng.exponential`` / ``rng.choice`` call per trace, no Python-level loops —
so generating hundreds of thousands of requests is effectively free next to
simulating them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import FilePopulation, make_rng, validate_probability_vector

__all__ = [
    "ArrivalTrace",
    "poisson_arrivals",
    "sample_file_choices",
    "merge_traces",
    "trace_from_times",
]


@dataclass(frozen=True)
class ArrivalTrace:
    """A finite request stream: ``times[j]`` is when request ``j`` arrives
    and ``file_ids[j]`` which file it reads."""

    times: np.ndarray
    file_ids: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.float64)
        file_ids = np.asarray(self.file_ids, dtype=np.int64)
        if times.ndim != 1 or file_ids.shape != times.shape:
            raise ValueError("times and file_ids must be aligned 1-D arrays")
        if times.size and np.any(np.diff(times) < 0):
            raise ValueError("times must be sorted nondecreasing")
        if times.size and times[0] < 0:
            raise ValueError("times must be non-negative")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "file_ids", file_ids)

    @property
    def n_requests(self) -> int:
        return int(self.times.size)

    @property
    def horizon(self) -> float:
        return float(self.times[-1]) if self.times.size else 0.0

    def empirical_rate(self) -> float:
        """Requests per second over the observed span."""
        if self.n_requests < 2:
            return 0.0
        span = self.horizon - float(self.times[0])
        return (self.n_requests - 1) / span if span > 0 else float("inf")

    def slice_time(self, start: float, end: float) -> "ArrivalTrace":
        """Sub-trace with arrivals in ``[start, end)``, times re-based to 0."""
        mask = (self.times >= start) & (self.times < end)
        return ArrivalTrace(self.times[mask] - start, self.file_ids[mask])


def poisson_arrivals(
    rate: float,
    horizon: float | None = None,
    n_requests: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample Poisson(``rate``) arrival timestamps.

    Provide either ``horizon`` (duration in seconds) or ``n_requests``
    (exact count).  Inter-arrival gaps are sampled in one vectorized
    exponential draw and cumulatively summed.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if (horizon is None) == (n_requests is None):
        raise ValueError("provide exactly one of horizon or n_requests")
    rng = make_rng(seed)
    if n_requests is not None:
        if n_requests < 0:
            raise ValueError("n_requests must be non-negative")
        gaps = rng.exponential(1.0 / rate, size=n_requests)
        return np.cumsum(gaps)
    assert horizon is not None
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    # Oversample by 4 sigma, then trim — avoids a Python accumulation loop.
    expect = rate * horizon
    n_guess = int(expect + 4 * np.sqrt(expect) + 16)
    while True:
        times = np.cumsum(rng.exponential(1.0 / rate, size=n_guess))
        if times[-1] >= horizon:
            return times[times < horizon]
        n_guess *= 2  # pragma: no cover - astronomically rare


def sample_file_choices(
    popularities: np.ndarray,
    n_requests: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw the target file of each request i.i.d. from the popularity law."""
    p = validate_probability_vector(np.asarray(popularities))
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    rng = make_rng(seed)
    return rng.choice(p.size, size=n_requests, p=p)


def trace_from_times(
    times: np.ndarray,
    population: FilePopulation,
    seed: int | np.random.Generator | None = None,
) -> ArrivalTrace:
    """Attach popularity-sampled file targets to raw arrival timestamps.

    Used for trace-driven arrivals (e.g. the Google MMPP model) where the
    timestamps come from one source and the file choice from the popularity
    law, mirroring Sec. 7.7.
    """
    times = np.sort(np.asarray(times, dtype=np.float64))
    file_ids = sample_file_choices(population.popularities, times.size, seed=seed)
    return ArrivalTrace(times=times, file_ids=file_ids)


def poisson_trace(
    population: FilePopulation,
    horizon: float | None = None,
    n_requests: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> ArrivalTrace:
    """Poisson arrivals at the population's aggregate rate, Zipf file choice.

    Thinning property: per-file arrival processes are then independent
    Poisson with rates ``lambda_i``, matching the paper's model exactly.
    """
    rng = make_rng(seed)
    times = poisson_arrivals(
        population.total_rate, horizon=horizon, n_requests=n_requests, seed=rng
    )
    return trace_from_times(times, population, seed=rng)


def merge_traces(traces: list[ArrivalTrace]) -> ArrivalTrace:
    """Time-merge several client traces into one aggregate stream."""
    if not traces:
        return ArrivalTrace(np.empty(0), np.empty(0, dtype=np.int64))
    times = np.concatenate([t.times for t in traces])
    file_ids = np.concatenate([t.file_ids for t in traces])
    order = np.argsort(times, kind="stable")
    return ArrivalTrace(times[order], file_ids[order])
