"""Skewed file-popularity vectors.

The paper configures file popularity as a Zipf distribution with exponent
1.05 (EC2 experiments, Sec. 7.1) or 1.1 (motivating experiments in Sec. 2.2
and the trace-driven simulation in Sec. 7.7).
"""

from __future__ import annotations

import numpy as np

from repro.common import make_rng

__all__ = ["zipf_popularity", "shuffled_popularity", "zipf_exponent_fit"]


def zipf_popularity(n_files: int, exponent: float = 1.05) -> np.ndarray:
    """Zipf(``exponent``) popularity over ``n_files`` ranks.

    ``P_i ∝ (i+1)^-exponent`` for rank ``i`` starting at 0; normalized to
    sum to 1.  Rank 0 is the hottest file.
    """
    if n_files <= 0:
        raise ValueError("n_files must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, n_files + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def shuffled_popularity(
    popularities: np.ndarray, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Randomly permute popularity ranks across files.

    Models the popularity *shift* used in Sec. 7.4: the marginal distribution
    (same Zipf) is preserved but which file holds which rank changes, which
    is a more drastic shift than production traces exhibit.
    """
    rng = make_rng(seed)
    popularities = np.asarray(popularities, dtype=np.float64)
    return rng.permutation(popularities)


def zipf_exponent_fit(popularities: np.ndarray) -> float:
    """Least-squares fit of the Zipf exponent from a popularity vector.

    Used by tests to confirm generators produce the intended skew.  Fits
    ``log P_i = c - s * log rank`` over the sorted (descending) vector and
    returns ``s``.
    """
    p = np.sort(np.asarray(popularities, dtype=np.float64))[::-1]
    p = p[p > 0]
    if p.size < 2:
        raise ValueError("need at least two positive popularities to fit")
    ranks = np.arange(1, p.size + 1, dtype=np.float64)
    slope, _ = np.polyfit(np.log(ranks), np.log(p), 1)
    return float(-slope)
