"""Straggler delay-factor profile from the Microsoft Bing cluster.

Secs. 4.2 and 7.5 inject stragglers as follows: with probability 0.05 a
partition read is delayed "by a factor randomly drawn from the distribution
profiled in the Microsoft Bing cluster trace" (the Mantri study [43]).  The
raw trace is proprietary; Mantri reports that outlier tasks run 1.5x or more
slower than the median, with a heavy tail where the slowest tasks take up to
~10x.  We encode that published shape as an empirical inverse-CDF over
slowdown factors, which is what the injection actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import make_rng

__all__ = ["BingStragglerProfile"]

# Published shape of the Mantri outlier slowdown distribution: quantiles of
# the delay factor conditioned on the task being a straggler.  Piecewise
# linear between knots; factor 1.5 is Mantri's threshold for calling a task
# an outlier, and the tail reaches ~10x.
_DEFAULT_QUANTILES = (0.0, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0)
_DEFAULT_FACTORS = (1.5, 2.0, 2.5, 3.5, 6.0, 10.0, 12.0)


@dataclass(frozen=True)
class BingStragglerProfile:
    """Empirical slowdown-factor distribution for injected stragglers.

    ``probability`` is the chance that any single partition read (or, in
    Sec. 7.5, a server) straggles; conditioned on straggling, the service
    time is multiplied by a factor drawn from the inverse-CDF defined by
    ``quantiles``/``factors``.
    """

    probability: float = 0.05
    quantiles: tuple[float, ...] = _DEFAULT_QUANTILES
    factors: tuple[float, ...] = _DEFAULT_FACTORS

    def __post_init__(self) -> None:
        if not 0 <= self.probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        q = np.asarray(self.quantiles, dtype=np.float64)
        f = np.asarray(self.factors, dtype=np.float64)
        if q.shape != f.shape or q.size < 2:
            raise ValueError("quantiles and factors must align, length >= 2")
        if q[0] != 0.0 or q[-1] != 1.0 or np.any(np.diff(q) < 0):
            raise ValueError("quantiles must be nondecreasing from 0 to 1")
        if np.any(f < 1.0) or np.any(np.diff(f) < 0):
            raise ValueError("factors must be nondecreasing and >= 1")

    def sample_factors(
        self, n: int, seed: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw ``n`` conditional slowdown factors (each >= 1.5 by default)."""
        rng = make_rng(seed)
        u = rng.random(n)
        return np.interp(u, self.quantiles, self.factors)

    def sample_multipliers(
        self, n: int, seed: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw ``n`` unconditional service-time multipliers.

        Each entry is 1.0 with probability ``1 - probability`` and a
        slowdown factor otherwise.  Vectorized so the simulator can
        pre-sample an entire experiment's worth of reads in one call.
        """
        rng = make_rng(seed)
        mult = np.ones(n, dtype=np.float64)
        hits = rng.random(n) < self.probability
        n_hits = int(hits.sum())
        if n_hits:
            mult[hits] = self.sample_factors(n_hits, seed=rng)
        return mult

    def mean_multiplier(self) -> float:
        """Expected unconditional multiplier (used by sanity tests)."""
        return self.moments()[0]

    def moments(self, fine: int = 2048) -> tuple[float, float, float]:
        """First three moments of the unconditional multiplier.

        ``E[M^j] = (1 - p) + p * E[f^j]`` with ``E[f^j]`` integrated over the
        piecewise-linear inverse CDF.  Used by the straggler-aware variant of
        the fork-join latency model: an independent multiplicative slowdown
        scales the service moments by exactly these factors.
        """
        q = np.linspace(0.0, 1.0, fine)
        f = np.interp(q, self.quantiles, self.factors)
        p = self.probability
        return tuple(
            float((1.0 - p) + p * np.trapezoid(f**j, q)) for j in (1, 2, 3)
        )  # type: ignore[return-value]

    def disabled(self) -> "BingStragglerProfile":
        """Profile with straggler injection turned off."""
        return BingStragglerProfile(
            probability=0.0, quantiles=self.quantiles, factors=self.factors
        )
