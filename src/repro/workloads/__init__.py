"""Workload synthesis: popularity skew, trace-fitted distributions, arrivals.

The paper evaluates on three proprietary data sets we cannot obtain — the
Yahoo! Webscope file-access trace (Fig. 1), the Google cluster job-submission
trace (Sec. 7.7 arrivals), and the Microsoft Bing/Mantri straggler profile
(Secs. 4.2, 7.5).  Each module here synthesizes an equivalent generator
fitted to the statistics the paper reports; see ``DESIGN.md`` for the
substitution rationale.
"""

from repro.workloads.arrivals import (
    ArrivalTrace,
    merge_traces,
    poisson_arrivals,
    poisson_trace,
    sample_file_choices,
    trace_from_times,
)
from repro.workloads.bing import BingStragglerProfile
from repro.workloads.filesets import paper_fileset, replication_counts_topk
from repro.workloads.google import GoogleArrivalModel
from repro.workloads.io import (
    load_population,
    load_trace,
    save_population,
    save_trace,
)
from repro.workloads.popularity import shuffled_popularity, zipf_popularity
from repro.workloads.streams import (
    DEFAULT_CHUNK_SIZE,
    GoogleStream,
    MaterializedStream,
    PoissonStream,
    WorkloadStream,
    as_trace,
    is_stream,
)
from repro.workloads.yahoo import (
    YahooTraceModel,
    access_count_buckets,
    yahoo_file_population,
)

__all__ = [
    "ArrivalTrace",
    "BingStragglerProfile",
    "DEFAULT_CHUNK_SIZE",
    "GoogleArrivalModel",
    "GoogleStream",
    "MaterializedStream",
    "PoissonStream",
    "WorkloadStream",
    "YahooTraceModel",
    "access_count_buckets",
    "as_trace",
    "is_stream",
    "load_population",
    "load_trace",
    "merge_traces",
    "save_population",
    "save_trace",
    "paper_fileset",
    "poisson_arrivals",
    "poisson_trace",
    "replication_counts_topk",
    "sample_file_choices",
    "shuffled_popularity",
    "trace_from_times",
    "yahoo_file_population",
    "zipf_popularity",
]
