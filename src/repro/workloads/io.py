"""Persistence for workloads and traces.

Experiments become citable when their exact inputs can be archived.  This
module round-trips :class:`~repro.common.FilePopulation` and
:class:`~repro.workloads.arrivals.ArrivalTrace` through NumPy's ``.npz``
container (compact, dependency-free) and exports traces to CSV for
inspection with external tools.
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

from repro.common import FilePopulation
from repro.workloads.arrivals import ArrivalTrace

__all__ = [
    "save_population",
    "load_population",
    "save_trace",
    "load_trace",
    "trace_to_csv",
    "trace_from_csv",
]

_POP_MAGIC = "repro-population-v1"
_TRACE_MAGIC = "repro-trace-v1"


def save_population(path: str | pathlib.Path, population: FilePopulation) -> None:
    """Write a population to ``<path>`` (.npz)."""
    np.savez_compressed(
        path,
        magic=np.array(_POP_MAGIC),
        sizes=population.sizes,
        popularities=population.popularities,
        total_rate=np.array(population.total_rate),
    )


def load_population(path: str | pathlib.Path) -> FilePopulation:
    """Read a population written by :func:`save_population`."""
    with np.load(path, allow_pickle=False) as data:
        if str(data["magic"]) != _POP_MAGIC:
            raise ValueError(f"{path} is not a saved population")
        return FilePopulation(
            sizes=data["sizes"],
            popularities=data["popularities"],
            total_rate=float(data["total_rate"]),
        )


def save_trace(path: str | pathlib.Path, trace: ArrivalTrace) -> None:
    """Write a trace to ``<path>`` (.npz)."""
    np.savez_compressed(
        path,
        magic=np.array(_TRACE_MAGIC),
        times=trace.times,
        file_ids=trace.file_ids,
    )


def load_trace(path: str | pathlib.Path) -> ArrivalTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        if str(data["magic"]) != _TRACE_MAGIC:
            raise ValueError(f"{path} is not a saved trace")
        return ArrivalTrace(times=data["times"], file_ids=data["file_ids"])


def trace_to_csv(path: str | pathlib.Path, trace: ArrivalTrace) -> None:
    """Export ``time,file_id`` rows (header included)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "file_id"])
        for t, fid in zip(trace.times, trace.file_ids):
            writer.writerow([f"{t:.9f}", int(fid)])


def trace_from_csv(path: str | pathlib.Path) -> ArrivalTrace:
    """Import a trace exported by :func:`trace_to_csv` (or any CSV with a
    ``time_s,file_id`` header)."""
    times: list[float] = []
    file_ids: list[int] = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or "time_s" not in reader.fieldnames:
            raise ValueError(f"{path} lacks a time_s column")
        for row in reader:
            times.append(float(row["time_s"]))
            file_ids.append(int(row["file_id"]))
    order = np.argsort(times, kind="stable")
    return ArrivalTrace(
        times=np.asarray(times)[order],
        file_ids=np.asarray(file_ids, dtype=np.int64)[order],
    )
