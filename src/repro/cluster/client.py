"""Client-side read/write operations and the planner protocol.

A caching *policy* (``repro.policies``) decides where partitions live and
how a request reads them; the *simulator* only sees the resulting
:class:`ReadOp`: which servers to hit, how many bytes each serves, how many
reads must complete before the join fires (late binding reads ``k + 1`` but
joins on ``k``), and any post-join compute such as erasure decoding.

Planners are discipline-agnostic: the shared request lifecycle
(:class:`repro.cluster.engine.RequestLifecycle`) calls ``plan_read`` once
per request regardless of which registered server discipline (``fifo``,
``ps``, ``limited(c)``, ...) schedules the resulting flows, so one policy
implementation serves every service model.  ``footprint`` feeds the
cluster-wide LRU when a cache budget is set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.cluster.network import GoodputModel

__all__ = ["ReadOp", "WriteOp", "ReadPlanner", "write_latency"]


@dataclass(frozen=True)
class ReadOp:
    """One file read as a fork-join over cache servers.

    Attributes
    ----------
    server_ids:
        Servers to read from, one partition each (duplicates allowed only if
        a policy intentionally co-locates, which none of the paper's do).
    sizes:
        Bytes served by each read, aligned with ``server_ids``.
    join_count:
        Number of completions required before the file is ready.  Equal to
        ``len(server_ids)`` for plain partitioning; ``k`` with EC-Cache's
        late binding where ``k + 1`` reads are issued.
    post_fraction:
        Extra latency applied after the join as a fraction of the read time
        (EC-Cache's decode overhead, e.g. 0.2 for 20 %).
    post_seconds:
        Extra absolute latency after the join (e.g. a measured decode time).
    """

    server_ids: np.ndarray
    sizes: np.ndarray
    join_count: int = -1  # -1 means "all"
    post_fraction: float = 0.0
    post_seconds: float = 0.0

    def __post_init__(self) -> None:
        server_ids = np.asarray(self.server_ids, dtype=np.int64)
        sizes = np.asarray(self.sizes, dtype=np.float64)
        if server_ids.ndim != 1 or server_ids.size == 0:
            raise ValueError("server_ids must be a non-empty 1-D array")
        if sizes.shape != server_ids.shape:
            raise ValueError("sizes must align with server_ids")
        if np.any(sizes < 0):
            raise ValueError("sizes must be non-negative")
        join = self.join_count if self.join_count != -1 else server_ids.size
        if not 1 <= join <= server_ids.size:
            raise ValueError(
                f"join_count {self.join_count} out of range for "
                f"{server_ids.size} reads"
            )
        if self.post_fraction < 0 or self.post_seconds < 0:
            raise ValueError("post delays must be non-negative")
        object.__setattr__(self, "server_ids", server_ids)
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "join_count", join)

    @property
    def parallelism(self) -> int:
        return int(self.server_ids.size)


@dataclass(frozen=True)
class WriteOp:
    """One file write: bytes pushed to servers plus client-side compute.

    ``pre_seconds`` models encoding (EC-Cache) before any byte moves;
    ``sequential`` writes partitions one after another through the client
    NIC (the paper's SP-Cache write mode, Sec. 7.8), while parallel writes
    still share that single NIC and so take the same wire time — the
    distinction matters only for future multi-NIC extensions.
    """

    sizes: np.ndarray
    pre_seconds: float = 0.0
    sequential: bool = True

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=np.float64)
        if sizes.ndim != 1 or sizes.size == 0:
            raise ValueError("sizes must be a non-empty 1-D array")
        if np.any(sizes < 0):
            raise ValueError("sizes must be non-negative")
        if self.pre_seconds < 0:
            raise ValueError("pre_seconds must be non-negative")
        object.__setattr__(self, "sizes", sizes)

    @property
    def total_bytes(self) -> float:
        return float(self.sizes.sum())

    @property
    def n_connections(self) -> int:
        return int(self.sizes.size)


class ReadPlanner(Protocol):
    """What the simulator requires of a placement policy."""

    def plan_read(
        self, file_id: int, rng: np.random.Generator
    ) -> ReadOp:  # pragma: no cover - protocol
        """Build the fork-join read for one request of ``file_id``."""
        ...

    def footprint(self, file_id: int) -> float:  # pragma: no cover - protocol
        """Cached bytes the file occupies (including parity/replicas)."""
        ...


def write_latency(
    op: WriteOp,
    client_bandwidth: float,
    goodput: GoodputModel | None = None,
) -> float:
    """Latency of a write through a single client NIC (Sec. 7.8 model).

    All written bytes traverse the client's NIC, so wire time is
    ``total_bytes / (bandwidth * goodput(n_connections))``; encoding time is
    added up front.  More connections (replicas, chunks, parity shards) cost
    goodput, which is how fixed-size chunking loses to SP-Cache on writes.
    """
    factor = (
        goodput.factor(op.n_connections, client_bandwidth) if goodput else 1.0
    )
    return op.pre_seconds + op.total_bytes / (client_bandwidth * factor)
