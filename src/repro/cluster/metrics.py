"""Performance metrics used across the evaluation.

The paper reports the mean and tail (95th-percentile) read latency, the
coefficient of variation (CV, Sec. 2.2 — CV > 1 signals hot-spot effects),
and the imbalance factor ``eta = (L_max - L_avg) / L_avg`` over per-server
loads (Eq. 15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LatencySummary",
    "coefficient_of_variation",
    "imbalance_factor",
    "summarize_latencies",
    "latency_improvement",
]


@dataclass(frozen=True)
class LatencySummary:
    """Headline statistics of a latency sample."""

    mean: float
    p50: float
    p95: float
    p99: float
    cv: float
    n: int

    def row(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "cv": self.cv,
            "n": self.n,
        }


def summarize_latencies(latencies: np.ndarray) -> LatencySummary:
    """Mean, percentiles, and CV of a latency sample.

    Rejects empty samples and any non-finite entry (NaN or inf): a NaN
    would otherwise propagate silently through every statistic, and a NaN
    latency always signals an upstream bug, never a slow read.
    """
    lat = np.asarray(latencies, dtype=np.float64)
    if lat.size == 0:
        raise ValueError("empty latency sample")
    if not np.all(np.isfinite(lat)):
        raise ValueError("latencies must be finite (no NaN/inf)")
    if np.any(lat < 0):
        raise ValueError("latencies must be non-negative")
    p50, p95, p99 = np.percentile(lat, [50, 95, 99])
    return LatencySummary(
        mean=float(lat.mean()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        cv=coefficient_of_variation(lat),
        n=int(lat.size),
    )


def coefficient_of_variation(sample: np.ndarray) -> float:
    """Standard deviation over mean (Tables 1-3's CV).

    Edge-case contract (shared with :func:`imbalance_factor`):

    * **empty** sample — ``ValueError``: there is no statistic to report
      and silently returning a number would hide a broken pipeline;
    * **all-zero** sample — ``0.0``: a constant sample has zero dispersion,
      and zero load means perfectly (if trivially) balanced;
    * **non-finite** entries — ``ValueError``: NaN/inf never describe a
      real measurement here.
    """
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        raise ValueError("empty sample")
    if not np.all(np.isfinite(sample)):
        raise ValueError("sample must be finite (no NaN/inf)")
    mean = sample.mean()
    if mean == 0:
        return 0.0
    return float(sample.std() / mean)


def imbalance_factor(server_loads: np.ndarray) -> float:
    """``eta = (L_max - L_avg) / L_avg`` (Eq. 15); lower is better.

    Follows the same edge-case contract as
    :func:`coefficient_of_variation`: empty or non-finite loads raise
    ``ValueError``; an all-zero load vector yields ``0.0``.
    """
    loads = np.asarray(server_loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("empty load vector")
    if not np.all(np.isfinite(loads)):
        raise ValueError("server loads must be finite (no NaN/inf)")
    avg = loads.mean()
    if avg == 0:
        return 0.0
    return float((loads.max() - avg) / avg)


def latency_improvement(baseline: float, sp_cache: float) -> float:
    """Eq. 14: ``(D - D_SP) / D * 100`` percent; positive = SP-Cache wins."""
    if baseline <= 0:
        raise ValueError("baseline latency must be positive")
    return (baseline - sp_cache) / baseline * 100.0
