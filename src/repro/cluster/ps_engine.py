"""Back-compat shim: the processor-sharing engine moved to the core.

The event-heap implementation now lives in
:mod:`repro.cluster.engine.shared_heap`, where it also powers the
``limited(c)`` discipline.  Import :func:`simulate_reads_ps` from here
for the old entry point, or just call
:func:`repro.cluster.simulate_reads` with
``SimulationConfig(discipline="ps")``.
"""

from __future__ import annotations

from repro.cluster.engine.shared_heap import simulate_reads_ps

__all__ = ["simulate_reads_ps"]
