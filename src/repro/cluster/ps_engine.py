"""Processor-sharing read engine with server- and client-side bandwidth.

The analytical model (and the fast engine in :mod:`.simulation`) treats each
cache server as a FIFO single-channel queue — the paper's M/G/1 abstraction.
A real Alluxio worker serves concurrent reads over parallel TCP streams that
*share* its NIC, and the reading client's own NIC caps the aggregate rate of
one request's parallel partition streams.  Both constraints shape the
paper's measurements:

* fair sharing at the server means a 3 MB hot-partition read is never stuck
  behind an entire 100 MB cold transfer (no head-of-line blocking);
* the client-side cap means a lone request finishes in roughly
  ``S / client_bandwidth`` **no matter how many partitions it forks to** —
  which is precisely why ever-finer splitting stops paying and the optimal
  scale factor sits at an elbow.

Rate model: flow ``f`` of request ``r`` on server ``s`` receives
``min(B_s / n_s, B_c / n_r)`` bytes/second, where ``n_s`` counts active
flows on the server and ``n_r`` active flows of the request.  (This is the
bottleneck-cap allocation without residual-share redistribution — slightly
conservative relative to full max-min water-filling, identical when one
side clearly bottlenecks.)  Rates change only at flow arrival/completion,
so an event-driven engine with lazily invalidated per-flow completion
events simulates it exactly.

A flow's *effective* bytes fold in the per-connection goodput loss
(``size / g(fan_out)``) and an optional exponential jitter factor.
Straggler injection follows the paper's "sleep the server thread"
semantics: a straggling read's completion is *reported* late to the
fork-join (by ``(m - 1) x`` its nominal transfer time) but the flow frees
its bandwidth on time — a sleeping thread occupies no NIC.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.common import ClusterSpec, make_rng
from repro.obs import events as ev
from repro.obs.tracing import get_tracer
from repro.store.lru import LRUCache
from repro.workloads.arrivals import ArrivalTrace

__all__ = ["simulate_reads_ps"]


def _notify(
    j: int,
    t: float,
    trace,
    req_remaining,
    req_post_fraction,
    req_post_seconds,
    req_miss,
    latencies,
    config,
    tracer=None,
    scheme="",
) -> None:
    """One partition read reported complete to request ``j``'s join."""
    req_remaining[j] -= 1
    if req_remaining[j] == 0:
        latency = (t - float(trace.times[j])) * (
            1.0 + req_post_fraction[j]
        ) + req_post_seconds[j]
        if req_miss[j]:
            latency *= config.miss_penalty
        latencies[j] = latency
        if tracer is not None and tracer.enabled:
            tracer.event(
                ev.READ_DONE,
                ts=t,
                req=j,
                scheme=scheme,
                file_id=int(trace.file_ids[j]),
                latency=float(latency),
            )


def simulate_reads_ps(trace, planner, cluster, config):
    """Run a trace under two-sided processor sharing.

    Same signature and result type as
    :func:`repro.cluster.simulation.simulate_reads`.
    """
    # Imported here: simulation.py imports this module's entry point.
    from repro.cluster.simulation import (
        SimulationConfig,
        SimulationResult,
        planner_name,
        record_run_metrics,
    )

    assert isinstance(trace, ArrivalTrace)
    assert isinstance(cluster, ClusterSpec)
    config = config or SimulationConfig()
    tracer = config.tracer if config.tracer is not None else get_tracer()
    emit = tracer.enabled
    scheme = planner_name(planner)
    straggler_reads = 0
    rng = make_rng(config.seed)
    bandwidths = cluster.bandwidths
    client_bw = cluster.effective_client_bandwidth
    n_requests = trace.n_requests

    server_bytes = np.zeros(cluster.n_servers)
    latencies = np.full(n_requests, np.nan)

    injector = config.stragglers
    straggler_mask = (
        injector.straggler_servers(cluster.n_servers, seed=rng)
        if injector.enabled and injector.mode == "per_server"
        else None
    )
    goodput = config.goodput
    exponential = config.jitter == "exponential"

    lru: LRUCache | None = None
    hits = misses = 0
    if config.cache_budget is not None:
        lru = LRUCache(config.cache_budget)

    # Request bookkeeping.
    req_remaining = np.empty(n_requests, dtype=np.int64)
    req_post_fraction = np.empty(n_requests)
    req_post_seconds = np.empty(n_requests)
    req_miss = np.zeros(n_requests, dtype=bool)

    # Flow state (parallel lists indexed by flow id).
    f_server: list[int] = []
    f_request: list[int] = []
    f_remaining: list[float] = []
    f_rate: list[float] = []
    f_last: list[float] = []
    f_gen: list[int] = []
    f_extra: list[float] = []  # straggler report delay, seconds

    server_flows: list[set[int]] = [set() for _ in range(cluster.n_servers)]
    request_flows: list[set[int]] = [set() for _ in range(n_requests)]

    # Heap of (time, kind, a, b): kind 0 = arrival of request a; kind 1 =
    # completion candidate for flow a with generation b; kind 2 = delayed
    # join notification for flow a (straggler report).
    heap: list[tuple[float, int, int, int]] = [
        (float(t), 0, j, 0) for j, t in enumerate(trace.times)
    ]
    heapq.heapify(heap)

    def advance(fid: int, t: float) -> None:
        f_remaining[fid] = max(
            f_remaining[fid] - f_rate[fid] * (t - f_last[fid]), 0.0
        )
        f_last[fid] = t

    def rate_of(fid: int) -> float:
        sid = f_server[fid]
        rid = f_request[fid]
        return min(
            float(bandwidths[sid]) / len(server_flows[sid]),
            client_bw / len(request_flows[rid]),
        )

    def reschedule(fid: int) -> None:
        f_rate[fid] = rate_of(fid)
        f_gen[fid] += 1
        eta = f_last[fid] + f_remaining[fid] / f_rate[fid]
        heapq.heappush(heap, (eta, 1, fid, f_gen[fid]))

    while heap:
        t, kind, ident, gen = heapq.heappop(heap)

        if kind == 0:
            j = ident
            fid0 = int(trace.file_ids[j])
            op = planner.plan_read(fid0, rng)
            k = op.parallelism
            sizes = op.sizes.astype(np.float64).copy()
            if goodput is not None:
                for pos in range(k):
                    b = float(bandwidths[op.server_ids[pos]])
                    sizes[pos] /= goodput.factor(k, b)
            if exponential:
                sizes *= rng.exponential(1.0, size=k)
            straggled = False
            if injector.enabled:
                mult = injector.multipliers(
                    op.server_ids, straggler_mask=straggler_mask, seed=rng
                )
                extra = (mult - 1.0) * (
                    op.sizes / bandwidths[op.server_ids]
                )
                straggled = bool(np.any(extra > 0.0))
                straggler_reads += straggled
            else:
                extra = np.zeros(k)
            req_remaining[j] = op.join_count
            req_post_fraction[j] = op.post_fraction
            req_post_seconds[j] = op.post_seconds
            if lru is not None:
                if lru.touch(fid0):
                    hits += 1
                else:
                    misses += 1
                    req_miss[j] = True
                    lru.put(fid0, planner.footprint(fid0))

            affected: set[int] = set()
            new_ids: list[int] = []
            for pos in range(k):
                sid = int(op.server_ids[pos])
                fid = len(f_server)
                new_ids.append(fid)
                f_server.append(sid)
                f_request.append(j)
                f_remaining.append(max(float(sizes[pos]), 1e-12))
                f_rate.append(0.0)
                f_last.append(t)
                f_gen.append(0)
                f_extra.append(float(extra[pos]))
                affected.update(server_flows[sid])
                server_flows[sid].add(fid)
                request_flows[j].add(fid)
                server_bytes[sid] += op.sizes[pos]
            if emit:
                tracer.event(
                    ev.READ,
                    ts=float(t),
                    req=j,
                    scheme=scheme,
                    file_id=fid0,
                    servers=[int(s) for s in op.server_ids],
                    sizes=[float(b) for b in op.sizes],
                    straggler=straggled,
                    miss=bool(req_miss[j]),
                )
            # Existing flows on touched servers lose share; bring them to t
            # first, then recompute every rate under the new memberships.
            for fid in affected:
                advance(fid, t)
            for fid in affected:
                reschedule(fid)
            for fid in new_ids:
                reschedule(fid)

        elif kind == 1:
            fid = ident
            if gen != f_gen[fid]:
                continue  # stale candidate
            advance(fid, t)
            sid = f_server[fid]
            j = f_request[fid]
            server_flows[sid].discard(fid)
            request_flows[j].discard(fid)
            f_gen[fid] += 1  # invalidate any residual candidates

            if f_extra[fid] > 0.0:
                # Straggler: bandwidth freed now, completion reported late.
                heapq.heappush(heap, (t + f_extra[fid], 2, fid, 0))
            else:
                _notify(
                    j,
                    t,
                    trace,
                    req_remaining,
                    req_post_fraction,
                    req_post_seconds,
                    req_miss,
                    latencies,
                    config,
                    tracer,
                    scheme,
                )

            affected = server_flows[sid] | request_flows[j]
            for ofid in affected:
                advance(ofid, t)
            for ofid in affected:
                reschedule(ofid)

        else:  # kind == 2: delayed straggler report reaches the client
            fid = ident
            _notify(
                f_request[fid],
                t,
                trace,
                req_remaining,
                req_post_fraction,
                req_post_seconds,
                req_miss,
                latencies,
                config,
                tracer,
                scheme,
            )

    if np.isnan(latencies).any():  # pragma: no cover - engine invariant
        raise AssertionError("some requests never completed")

    metrics = record_run_metrics(
        scheme=scheme,
        engine="ps",
        server_bytes=server_bytes,
        latencies=latencies,
        hits=hits,
        misses=misses,
        straggler_reads=straggler_reads,
        tracer=tracer,
        end_ts=float(trace.times[-1]) if n_requests else 0.0,
    )
    return SimulationResult(
        latencies=latencies,
        arrival_times=trace.times.copy(),
        file_ids=trace.file_ids.copy(),
        server_bytes=server_bytes,
        hits=hits,
        misses=misses,
        config=config,
        metrics=metrics,
    )
