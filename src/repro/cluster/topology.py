"""First-class elastic cluster membership: epochs, churn, stable ids.

Every layer of the reproduction used to receive a bare ``num_servers:
int`` fixed for the lifetime of a run, which made the autoscaling /
diurnal-load scenario class unreachable.  This module promotes membership
to a value type:

* a :class:`ClusterTopology` is an **epoch-versioned** view of the
  cluster: epoch 0 is the initial membership, and every add/remove event
  in its :class:`ChurnSchedule` opens a new :class:`EpochView` (events
  sharing a timestamp fold into one epoch, like a batched autoscaler
  step);
* servers carry **stable ids** that survive membership changes — a
  server removed in epoch 2 and never re-added keeps its id forever, and
  an added server gets a fresh id rather than recycling one.  Placements
  recorded against stable ids therefore stay meaningful across epochs,
  which is what the epoch-aware repartition planner
  (:func:`repro.core.repartition.plan_epoch_repartition`) and the
  elastic byte store (:meth:`repro.store.StoreClient.apply_epoch`) rely
  on;
* each epoch exposes a plain :class:`~repro.common.ClusterSpec` over its
  *active* servers, so every existing consumer (policies, the engine,
  the latency model) keeps working unchanged — a fixed topology's
  ``spec`` is byte-identical to the ``ClusterSpec`` it replaces, which
  the golden parity tests pin;
* when tracing is enabled, :meth:`ClusterTopology.emit_events` publishes
  one ``membership`` event per add/remove and one ``epoch`` event per
  epoch so replay, ``repro dash``, and the causal tooling can follow the
  membership history alongside the data plane.

Fixed-topology construction (:meth:`ClusterTopology.fixed` /
:meth:`ClusterTopology.from_spec`) is the degenerate single-epoch case
used for byte-identical compatibility with existing runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common import ClusterSpec, Gbps, validate_server_count

__all__ = [
    "ChurnSchedule",
    "ClusterTopology",
    "EpochView",
    "MembershipEvent",
    "as_cluster_spec",
]


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change: a server joins or leaves at time ``t``.

    ``server_id`` is the stable id affected.  For schedule-level events
    built with :meth:`ChurnSchedule.add` the id is ``None`` until the
    topology assigns a fresh one; resolved events always carry it.
    """

    t: float
    kind: str  # "add" | "remove"
    server_id: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("add", "remove"):
            raise ValueError(
                f"event kind must be 'add' or 'remove', got {self.kind!r}"
            )
        if not (self.t >= 0 and np.isfinite(self.t)):
            raise ValueError("event time must be finite and >= 0")


class ChurnSchedule:
    """An ordered add/remove script the topology resolves into epochs.

    ``add(t, count)`` joins ``count`` fresh servers at ``t`` (ids are
    assigned by the topology); ``remove(t, count)`` retires the ``count``
    most recently added servers still active at ``t`` — LIFO, matching
    how an autoscaler drains its newest instances first; ``remove_ids``
    retires specific stable ids.  :meth:`diurnal` builds the
    autoscaling-under-diurnal-load script ROADMAP item 2 calls for: scale
    up in ``steps`` increments, hold, then scale back down.
    """

    def __init__(self) -> None:
        self._ops: list[tuple[float, str, object]] = []

    def add(self, t: float, count: int = 1) -> "ChurnSchedule":
        if count < 1:
            raise ValueError("add count must be >= 1")
        self._ops.append((float(t), "add", int(count)))
        return self

    def remove(self, t: float, count: int = 1) -> "ChurnSchedule":
        if count < 1:
            raise ValueError("remove count must be >= 1")
        self._ops.append((float(t), "remove", int(count)))
        return self

    def remove_ids(self, t: float, server_ids) -> "ChurnSchedule":
        ids = tuple(int(s) for s in server_ids)
        if not ids:
            raise ValueError("remove_ids needs at least one server id")
        self._ops.append((float(t), "remove_ids", ids))
        return self

    @property
    def ops(self) -> list[tuple[float, str, object]]:
        """The raw operations in insertion order (stable-sorted by time)."""
        return sorted(self._ops, key=lambda op: op[0])

    def __len__(self) -> int:
        return len(self._ops)

    @staticmethod
    def diurnal(
        *,
        t_peak: float,
        t_trough: float,
        amplitude: int,
        steps: int = 1,
    ) -> "ChurnSchedule":
        """Scale up by ``amplitude`` servers toward the peak, back down after.

        ``steps`` splits each ramp into that many equal add/remove
        batches, spaced evenly across ``[t_peak, t_trough)`` — the
        classic diurnal autoscaling sawtooth.
        """
        if t_trough <= t_peak:
            raise ValueError("t_trough must come after t_peak")
        if amplitude < 1:
            raise ValueError("amplitude must be >= 1")
        if steps < 1 or amplitude % steps:
            raise ValueError("steps must divide amplitude")
        schedule = ChurnSchedule()
        per_step = amplitude // steps
        up_dt = (t_trough - t_peak) / (2 * steps)
        for i in range(steps):
            schedule.add(t_peak + i * up_dt, per_step)
        down_start = t_peak + (t_trough - t_peak) / 2
        for i in range(steps):
            schedule.remove(down_start + i * up_dt, per_step)
        return schedule


@dataclass(frozen=True)
class EpochView:
    """One epoch's frozen membership.

    ``server_ids`` are the active stable ids, ascending.  ``spec`` is the
    :class:`~repro.common.ClusterSpec` over exactly those servers (dense
    0..N-1 indexing); ``dense_of`` maps a stable id to its dense index in
    that spec and ``stable_of`` maps back.  ``added``/``removed`` name
    the stable ids that changed relative to the previous epoch.
    """

    index: int
    t_start: float
    server_ids: tuple[int, ...]
    spec: ClusterSpec
    added: tuple[int, ...] = ()
    removed: tuple[int, ...] = ()
    dense_of: dict[int, int] = field(default_factory=dict, repr=False)

    @property
    def n_servers(self) -> int:
        return len(self.server_ids)

    @property
    def stable_of(self) -> np.ndarray:
        """Dense index -> stable id, shape ``(n_servers,)``."""
        return np.asarray(self.server_ids, dtype=np.int64)

    def is_active(self, server_id: int) -> bool:
        return int(server_id) in self.dense_of

    def to_dense(self, stable_ids: np.ndarray) -> np.ndarray:
        """Map stable ids to this epoch's dense indices (vectorized)."""
        return np.asarray(
            [self.dense_of[int(s)] for s in np.asarray(stable_ids).ravel()],
            dtype=np.int64,
        )

    def describe(self) -> dict:
        """JSON-ready epoch summary for manifests and trace events."""
        return {
            "epoch": self.index,
            "t_start": self.t_start,
            "n_servers": self.n_servers,
            "added": list(self.added),
            "removed": list(self.removed),
        }


class ClusterTopology:
    """Epoch-versioned cluster membership with stable server ids.

    Built from an initial size plus an optional :class:`ChurnSchedule`;
    the epoch list is resolved eagerly at construction, so a topology is
    immutable afterwards and cheap to share.  ``id_space`` is the total
    number of distinct stable ids across all epochs — the natural array
    width for cross-epoch accounting (per-server bytes moved, the store
    master's worker table).
    """

    def __init__(
        self,
        n_servers: int,
        schedule: ChurnSchedule | None = None,
        *,
        bandwidth: float | np.ndarray = Gbps,
        capacity: float = float("inf"),
        client_bandwidth: float | None = None,
    ) -> None:
        n_servers = validate_server_count(n_servers)
        self._bandwidth_scalar = (
            float(np.asarray(bandwidth).ravel()[0])
            if np.asarray(bandwidth).size == 1
            else None
        )
        init_bw = np.broadcast_to(
            np.asarray(bandwidth, dtype=np.float64), (n_servers,)
        ).copy()
        #: stable id -> NIC bandwidth; grows as servers join.
        self._bandwidth_of: dict[int, float] = {
            s: float(init_bw[s]) for s in range(n_servers)
        }
        self._capacity = float(capacity)
        self._client_bandwidth = client_bandwidth
        self.schedule = schedule
        self.epochs: list[EpochView] = []
        self._build(n_servers, schedule)

    # -- construction -------------------------------------------------

    def _make_epoch(
        self,
        index: int,
        t: float,
        active: list[int],
        added: tuple[int, ...],
        removed: tuple[int, ...],
    ) -> EpochView:
        ids = tuple(sorted(active))
        bw = np.asarray([self._bandwidth_of[s] for s in ids])
        spec = ClusterSpec(
            n_servers=len(ids),
            # Preserve the scalar where the caller gave one so a fixed
            # topology's spec is byte-identical to a hand-built
            # ClusterSpec (dataclass equality included).
            bandwidth=(
                self._bandwidth_scalar
                if self._bandwidth_scalar is not None
                else bw
            ),
            capacity=self._capacity,
            client_bandwidth=self._client_bandwidth,
        )
        return EpochView(
            index=index,
            t_start=float(t),
            server_ids=ids,
            spec=spec,
            added=added,
            removed=removed,
            dense_of={s: i for i, s in enumerate(ids)},
        )

    def _build(self, n_servers: int, schedule: ChurnSchedule | None) -> None:
        active = list(range(n_servers))
        next_id = n_servers
        join_order = list(range(n_servers))  # LIFO removal order
        self.events: list[MembershipEvent] = []
        self.epochs.append(self._make_epoch(0, 0.0, active, (), ()))
        if schedule is None or not len(schedule):
            return
        ops = schedule.ops
        # Group same-timestamp ops into one epoch (a batched scaler step).
        i = 0
        while i < len(ops):
            t = ops[i][0]
            added: list[int] = []
            removed: list[int] = []
            while i < len(ops) and ops[i][0] == t:
                _, kind, arg = ops[i]
                if kind == "add":
                    for _ in range(int(arg)):
                        sid = next_id
                        next_id += 1
                        active.append(sid)
                        join_order.append(sid)
                        if sid not in self._bandwidth_of:
                            self._bandwidth_of[sid] = (
                                self._bandwidth_scalar
                                if self._bandwidth_scalar is not None
                                else float(
                                    np.mean(list(self._bandwidth_of.values()))
                                )
                            )
                        added.append(sid)
                        self.events.append(MembershipEvent(t, "add", sid))
                elif kind == "remove":
                    for _ in range(int(arg)):
                        # Newest-first, matching autoscaler drain order.
                        sid = next(
                            s for s in reversed(join_order) if s in active
                        )
                        active.remove(sid)
                        removed.append(sid)
                        self.events.append(MembershipEvent(t, "remove", sid))
                else:  # remove_ids
                    for sid in arg:
                        if sid not in active:
                            raise ValueError(
                                f"cannot remove server {sid}: not active "
                                f"at t={t}"
                            )
                        active.remove(sid)
                        removed.append(sid)
                        self.events.append(MembershipEvent(t, "remove", sid))
                i += 1
            if not active:
                raise ValueError(
                    f"schedule empties the cluster at t={t}; at least one "
                    "server must stay active"
                )
            self.epochs.append(
                self._make_epoch(
                    len(self.epochs), t, active, tuple(added), tuple(removed)
                )
            )

    # -- fixed-topology constructors ----------------------------------

    @staticmethod
    def fixed(
        n_servers: int,
        *,
        bandwidth: float | np.ndarray = Gbps,
        capacity: float = float("inf"),
        client_bandwidth: float | None = None,
    ) -> "ClusterTopology":
        """A single-epoch topology: the drop-in ``num_servers`` replacement."""
        return ClusterTopology(
            n_servers,
            None,
            bandwidth=bandwidth,
            capacity=capacity,
            client_bandwidth=client_bandwidth,
        )

    @staticmethod
    def from_spec(spec: ClusterSpec) -> "ClusterTopology":
        """Wrap an existing :class:`~repro.common.ClusterSpec` unchanged."""
        scalar = (
            float(spec.bandwidths[0])
            if np.all(spec.bandwidths == spec.bandwidths[0])
            else spec.bandwidths
        )
        return ClusterTopology.fixed(
            spec.n_servers,
            bandwidth=scalar,
            capacity=spec.capacity,
            client_bandwidth=spec.client_bandwidth,
        )

    # -- views ---------------------------------------------------------

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    @property
    def is_fixed(self) -> bool:
        return len(self.epochs) == 1

    @property
    def initial(self) -> EpochView:
        return self.epochs[0]

    @property
    def final(self) -> EpochView:
        return self.epochs[-1]

    @property
    def spec(self) -> ClusterSpec:
        """Epoch 0's spec — what fixed-topology consumers see."""
        return self.epochs[0].spec

    @property
    def n_servers(self) -> int:
        """Epoch 0's server count — lets a topology stand in anywhere a
        spec's ``n_servers`` is consulted (policy constructors etc.)."""
        return self.epochs[0].n_servers

    @property
    def id_space(self) -> int:
        """Total distinct stable ids ever active (array width for
        cross-epoch per-server accounting)."""
        return max(max(e.server_ids) for e in self.epochs) + 1

    def epoch_at(self, t: float) -> EpochView:
        """The epoch in force at simulated time ``t``."""
        current = self.epochs[0]
        for epoch in self.epochs[1:]:
            if epoch.t_start <= t:
                current = epoch
            else:
                break
        return current

    def __len__(self) -> int:
        return len(self.epochs)

    def __repr__(self) -> str:
        sizes = "->".join(str(e.n_servers) for e in self.epochs)
        return f"ClusterTopology(epochs={self.n_epochs}, servers={sizes})"

    # -- observability -------------------------------------------------

    def emit_events(self, tracer=None) -> int:
        """Emit one ``membership`` event per change and one ``epoch``
        event per epoch; returns the number of events emitted.

        ``tracer`` defaults to the process-wide tracer; a disabled tracer
        makes this free.
        """
        from repro.obs import events as ev
        from repro.obs.tracing import get_tracer

        tracer = tracer if tracer is not None else get_tracer()
        if not tracer.enabled:
            return 0
        n = 0
        for event in self.events:
            tracer.event(
                ev.MEMBERSHIP,
                ts=event.t,
                kind=event.kind,
                server_id=event.server_id,
            )
            n += 1
        for epoch in self.epochs:
            tracer.event(ev.EPOCH, ts=epoch.t_start, **epoch.describe())
            n += 1
        return n

    def membership_section(self, **extra) -> dict:
        """JSON-ready membership summary (a schema-v7 manifest section)."""
        section = {
            "schema_version": 1,
            "n_epochs": self.n_epochs,
            "id_space": self.id_space,
            "epochs": [e.describe() for e in self.epochs],
            "events": [
                {"t": e.t, "kind": e.kind, "server_id": e.server_id}
                for e in self.events
            ],
        }
        section.update(extra)
        return section


def as_cluster_spec(cluster: "ClusterSpec | ClusterTopology") -> ClusterSpec:
    """Coerce a spec-or-topology to the :class:`~repro.common.ClusterSpec`
    its fixed-topology consumers should see (epoch 0's membership)."""
    if isinstance(cluster, ClusterTopology):
        return cluster.spec
    return cluster
