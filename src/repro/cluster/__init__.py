"""Discrete-event cluster-cache simulator.

This package replaces the paper's EC2/Alluxio testbed.  Each cache server is
a FIFO single-channel queue (the M/G/1 model of Sec. 5.3); a file read forks
into parallel partition reads and joins on the slowest (or, with late
binding, the ``k``-th fastest).  On top of the queueing core sit the two
effects the paper measures but its model omits: per-connection goodput loss
(Fig. 6) and straggler injection (Bing profile).

The fork-join engine (:mod:`repro.cluster.simulation`) exploits a structural
property for speed: because every partition read of a request arrives at its
server at the request's arrival instant and servers are FIFO, processing
requests in arrival order with a per-server ``free_at`` clock reproduces the
exact event-driven schedule without a heap.  A general heap-based engine
(:mod:`repro.cluster.events`) is provided for components that need arbitrary
event interleavings (repartition, validation tests).
"""

from repro.cluster.client import ReadOp, WriteOp
from repro.cluster.events import EventQueue
from repro.cluster.metrics import (
    LatencySummary,
    coefficient_of_variation,
    imbalance_factor,
    summarize_latencies,
)
from repro.cluster.network import GoodputModel
from repro.cluster.simulation import SimulationConfig, SimulationResult, simulate_reads
from repro.cluster.stragglers import StragglerInjector

__all__ = [
    "EventQueue",
    "GoodputModel",
    "LatencySummary",
    "ReadOp",
    "SimulationConfig",
    "SimulationResult",
    "StragglerInjector",
    "WriteOp",
    "coefficient_of_variation",
    "imbalance_factor",
    "simulate_reads",
    "summarize_latencies",
]
