"""Discrete-event cluster-cache simulator.

This package replaces the paper's EC2/Alluxio testbed.  A file read forks
into parallel partition reads and joins on the slowest (or, with late
binding, the ``k``-th fastest).  On top of the queueing core sit the two
effects the paper measures but its model omits: per-connection goodput
loss (Fig. 6) and straggler injection (Bing profile).

How a cache server schedules concurrent reads is a plug-in
(:mod:`repro.cluster.engine`): the ``fifo`` discipline is the paper's
M/G/1 single-channel abstraction (an exact heap-free fast path), ``ps``
is two-sided processor sharing (how the testbed's parallel TCP streams
behave), and ``limited(c)`` caps each server at ``c`` concurrent flows
with FIFO overflow.  The shared request lifecycle — planning, goodput,
jitter, stragglers, LRU, join accounting, tracing, metrics — lives in
:class:`repro.cluster.engine.RequestLifecycle`; ``docs/engine.md``
explains the split and how to register new disciplines.  A general
heap-based engine (:mod:`repro.cluster.events`) is provided for
components that need arbitrary event interleavings (repartition,
validation tests).
"""

from repro.cluster.client import ReadOp, WriteOp
from repro.cluster.engine import (
    ServerDiscipline,
    available_disciplines,
    register_discipline,
    resolve_discipline,
)
from repro.cluster.events import EventQueue
from repro.cluster.metrics import (
    LatencySummary,
    coefficient_of_variation,
    imbalance_factor,
    summarize_latencies,
)
from repro.cluster.network import GoodputModel
from repro.cluster.simulation import SimulationConfig, SimulationResult, simulate_reads
from repro.cluster.stragglers import StragglerInjector
from repro.cluster.topology import (
    ChurnSchedule,
    ClusterTopology,
    EpochView,
    MembershipEvent,
    as_cluster_spec,
)

__all__ = [
    "ChurnSchedule",
    "ClusterTopology",
    "EpochView",
    "EventQueue",
    "GoodputModel",
    "LatencySummary",
    "MembershipEvent",
    "ReadOp",
    "ServerDiscipline",
    "SimulationConfig",
    "SimulationResult",
    "StragglerInjector",
    "WriteOp",
    "as_cluster_spec",
    "available_disciplines",
    "coefficient_of_variation",
    "imbalance_factor",
    "register_discipline",
    "resolve_discipline",
    "simulate_reads",
    "summarize_latencies",
]
