"""The request lifecycle shared by every server discipline.

Whatever the service discipline, one simulated read goes through the same
stations: the policy plans a fork-join (:meth:`RequestLifecycle.plan`),
per-connection goodput shrinks effective bandwidth (memoized in
:meth:`RequestLifecycle.goodput_factor`), optional exponential jitter
perturbs service, straggler injection delays the *reported* completion
without holding the NIC (:meth:`RequestLifecycle.report_delays` — the
paper injects by sleeping the serving thread), a cluster-wide LRU decides
hit/miss under a cache budget (:meth:`RequestLifecycle.admit`), the join
fires after ``join_count`` completions and the latency folds in post-join
decode plus any miss penalty (:meth:`RequestLifecycle.request_latency`),
and the run ends with one metrics/tracing flush
(:meth:`RequestLifecycle.result`).

Disciplines (:mod:`repro.cluster.engine.registry`) own only the queueing:
*when* each partition read finishes.  Everything else lives here, once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.client import ReadOp
from repro.cluster.metrics import (
    LatencySummary,
    imbalance_factor,
    summarize_latencies,
)
from repro.cluster.network import GoodputModel
from repro.cluster.stragglers import StragglerInjector
from repro.cluster.topology import ClusterTopology, as_cluster_spec
from repro.common import ClusterSpec, make_rng
from repro.obs import events as ev
from repro.obs.causal import (
    CausalCollector,
    CausalConfig,
    get_causal_config,
    publish_causal,
)
from repro.obs.metrics import get_registry
from repro.obs.popularity import (
    PopularityConfig,
    PopularityMonitor,
    get_popularity_config,
    publish_popularity,
)
from repro.obs.slo import (
    SLOConfig,
    SLOMonitor,
    get_slo_config,
    publish_slo,
)
from repro.obs.timeline import (
    TimelineCollector,
    TimelineConfig,
    get_timeline_config,
    publish_timeline,
)
from repro.obs.tracing import Tracer, get_tracer
from repro.store.lru import LRUCache
from repro.workloads.arrivals import ArrivalTrace
from repro.workloads.streams import WorkloadStream, is_stream

__all__ = [
    "METRIC_SNAPSHOT_KEYS",
    "RequestLifecycle",
    "SimulationConfig",
    "SimulationResult",
    "planner_name",
    "record_run_metrics",
]

#: Keys of the end-of-run snapshot stored on
#: :attr:`SimulationResult.metrics` and carried by the ``simulation_end``
#: trace event.  ``scheme`` (policy label) and ``engine`` (discipline
#: name) are strings; everything else is numeric: ``n_servers``,
#: ``requests``, ``hits``, ``misses``, ``bytes_served``,
#: ``imbalance_eta`` (the paper's Eq. 15), ``straggler_reads``.
METRIC_SNAPSHOT_KEYS: tuple[str, ...] = (
    "scheme",
    "engine",
    "n_servers",
    "requests",
    "hits",
    "misses",
    "bytes_served",
    "imbalance_eta",
    "straggler_reads",
)


def planner_name(planner: object) -> str:
    """Scheme label used on trace events and metric labels."""
    return str(getattr(planner, "name", type(planner).__name__))


def record_run_metrics(
    *,
    scheme: str,
    engine: str,
    server_bytes: np.ndarray,
    latencies: np.ndarray,
    hits: int,
    misses: int,
    straggler_reads: int,
    tracer: Tracer,
    end_ts: float,
) -> dict[str, float | int | str]:
    """End-of-run accounting shared by every discipline.

    Pushes run aggregates into the process-wide registry (labelled by
    ``scheme``/``engine``; per-server bytes additionally by
    ``server_id``), emits one ``simulation_end`` event when tracing, and
    returns the snapshot stored on :attr:`SimulationResult.metrics` —
    keys documented at :data:`METRIC_SNAPSHOT_KEYS`.
    """
    metrics: dict[str, float | int | str] = {
        "scheme": scheme,
        "engine": engine,
        "n_servers": int(server_bytes.size),
        "requests": int(latencies.size),
        "hits": int(hits),
        "misses": int(misses),
        "bytes_served": float(server_bytes.sum()),
        "imbalance_eta": imbalance_factor(server_bytes),
        "straggler_reads": int(straggler_reads),
    }
    reg = get_registry()
    lab = {"scheme": scheme, "engine": engine}
    reg.counter("sim.requests", **lab).inc(latencies.size)
    reg.counter("sim.hits", **lab).inc(hits)
    reg.counter("sim.misses", **lab).inc(misses)
    reg.counter("sim.bytes_served", **lab).inc(metrics["bytes_served"])
    reg.counter("sim.straggler_reads", **lab).inc(straggler_reads)
    reg.histogram("sim.latency_seconds", **lab).observe_many(latencies)
    for sid, served in enumerate(server_bytes):
        reg.counter(
            "sim.server_bytes", scheme=scheme, engine=engine, server_id=sid
        ).inc(float(served))
    if tracer.enabled:
        tracer.event(ev.SIMULATION_END, ts=end_ts, **metrics)
    return metrics


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run.

    ``discipline`` selects the server model from the discipline registry
    (:mod:`repro.cluster.engine.registry`) — a registered name, a
    parameterised spec string, or a :class:`ServerDiscipline` instance:

    * ``"fifo"`` — one transfer at a time, the paper's M/G/1 abstraction
      (what the Eq. 9 bound assumes; exact heap-free fast path);
    * ``"ps"`` — processor sharing with server- and client-side NIC caps
      (how the EC2 testbed actually behaves);
    * ``"limited(c)"`` — at most ``c`` concurrent flows share each server
      fairly, later arrivals queue FIFO (a realistic connection-pool
      middle ground; ``limited(1)`` behaves like ``fifo``,
      ``limited(inf)`` is exactly ``ps``).

    ``tracer`` overrides the process-wide tracer for this run (``None``
    means use :func:`repro.obs.get_tracer`, a no-op unless installed).
    ``timeline`` enables sim-time timeline collection
    (:mod:`repro.obs.timeline`) for this run; ``None`` falls back to the
    ambient :func:`repro.obs.timeline.get_timeline_config`, itself a
    no-op unless installed.  ``popularity`` likewise enables streaming
    popularity/skew observation (:mod:`repro.obs.popularity`), falling
    back to :func:`repro.obs.popularity.get_popularity_config`.
    """

    discipline: object = "ps"  # str spec or ServerDiscipline instance
    jitter: str = "exponential"  # or "deterministic"
    goodput: GoodputModel | None = field(default_factory=GoodputModel)
    stragglers: StragglerInjector = field(default_factory=StragglerInjector.none)
    seed: int | None = 0
    cache_budget: float | None = None  # cluster-wide bytes; None = unbounded
    miss_penalty: float = 3.0
    warmup_fraction: float = 0.1
    tracer: Tracer | None = None
    timeline: TimelineConfig | None = None
    popularity: PopularityConfig | None = None
    #: Declarative SLO evaluation (:mod:`repro.obs.slo`) for this run;
    #: ``None`` falls back to the ambient
    #: :func:`repro.obs.slo.get_slo_config`, itself a no-op unless
    #: installed.
    slo: SLOConfig | None = None
    #: Causal critical-path collection (:mod:`repro.obs.causal`) for
    #: this run; ``None`` falls back to the ambient
    #: :func:`repro.obs.causal.get_causal_config`, itself a no-op unless
    #: installed.
    causal: CausalConfig | None = None
    #: Requests per planned batch for the vectorized planning layer
    #: (:mod:`repro.cluster.engine.batch`).  ``None`` falls back to the
    #: ambient :func:`repro.cluster.engine.batch.get_batch_size`, itself
    #: ``None`` (scalar per-request path) unless installed.
    batch_size: int | None = None

    def __post_init__(self) -> None:
        from repro.cluster.engine.registry import resolve_discipline

        resolve_discipline(self.discipline)  # fail fast on unknown specs
        if self.jitter not in ("exponential", "deterministic"):
            raise ValueError(
                f"jitter must be 'exponential' or 'deterministic', "
                f"got {self.jitter!r}"
            )
        if self.cache_budget is not None and self.cache_budget <= 0:
            raise ValueError("cache_budget must be positive")
        if self.miss_penalty < 1:
            raise ValueError("miss_penalty must be >= 1")
        if not 0 <= self.warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.timeline is not None and not isinstance(
            self.timeline, TimelineConfig
        ):
            raise TypeError(
                f"timeline must be a TimelineConfig or None, "
                f"got {type(self.timeline).__name__}"
            )
        if self.popularity is not None and not isinstance(
            self.popularity, PopularityConfig
        ):
            raise TypeError(
                f"popularity must be a PopularityConfig or None, "
                f"got {type(self.popularity).__name__}"
            )
        if self.slo is not None and not isinstance(self.slo, SLOConfig):
            raise TypeError(
                f"slo must be an SLOConfig or None, "
                f"got {type(self.slo).__name__}"
            )
        if self.causal is not None and not isinstance(
            self.causal, CausalConfig
        ):
            raise TypeError(
                f"causal must be a CausalConfig or None, "
                f"got {type(self.causal).__name__}"
            )
        if self.batch_size is not None:
            if not isinstance(self.batch_size, int) or isinstance(
                self.batch_size, bool
            ):
                raise TypeError(
                    f"batch_size must be an int or None, "
                    f"got {type(self.batch_size).__name__}"
                )
            if self.batch_size < 1:
                raise ValueError(
                    f"batch_size must be >= 1, got {self.batch_size}"
                )


@dataclass
class SimulationResult:
    """Per-request outcomes plus per-server accounting."""

    latencies: np.ndarray
    arrival_times: np.ndarray
    file_ids: np.ndarray
    server_bytes: np.ndarray  # bytes served per server (the Fig. 12 "load")
    hits: int
    misses: int
    config: SimulationConfig
    #: End-of-run observability snapshot — what the ``simulation_end``
    #: event carries; keys in
    #: :data:`repro.cluster.engine.lifecycle.METRIC_SNAPSHOT_KEYS`.
    metrics: dict[str, float | int | str] = field(default_factory=dict)
    #: Finalized sim-time timeline section (``None`` unless the run had
    #: timeline collection enabled) — see :mod:`repro.obs.timeline`.
    timeline: dict | None = None
    #: Finalized streaming-popularity section (``None`` unless the run
    #: had popularity observation enabled) — see
    #: :mod:`repro.obs.popularity`.
    popularity: dict | None = None
    #: Finalized SLO section (``None`` unless the run had SLO
    #: evaluation enabled) — see :mod:`repro.obs.slo`.
    slo: dict | None = None
    #: Finalized causal critical-path section (``None`` unless the run
    #: had causal collection enabled) — see :mod:`repro.obs.causal`.
    causal: dict | None = None

    @property
    def n_requests(self) -> int:
        return int(self.latencies.size)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def steady_state_latencies(self) -> np.ndarray:
        """Latencies with the warmup prefix dropped."""
        skip = int(self.n_requests * self.config.warmup_fraction)
        return self.latencies[skip:]

    def summary(self) -> LatencySummary:
        return summarize_latencies(self.steady_state_latencies())


def _validate_inputs(trace: object, planner: object, cluster: object) -> None:
    """Real exceptions, not ``assert``s — these survive ``python -O``."""
    if not isinstance(trace, ArrivalTrace) and not is_stream(trace):
        raise TypeError(
            f"trace must be an ArrivalTrace or WorkloadStream, "
            f"got {type(trace).__name__}"
        )
    if not isinstance(cluster, (ClusterSpec, ClusterTopology)):
        raise TypeError(
            f"cluster must be a ClusterSpec or ClusterTopology, "
            f"got {type(cluster).__name__}"
        )
    if not callable(getattr(planner, "plan_read", None)) or not callable(
        getattr(planner, "footprint", None)
    ):
        raise TypeError(
            "planner must honour the ReadPlanner protocol "
            f"(plan_read/footprint); got {type(planner).__name__}"
        )


class RequestLifecycle:
    """Everything one run shares across disciplines.

    Owns the RNG, the goodput memo, straggler report-delay semantics, the
    LRU hit/miss ledger, join latency arithmetic, READ/READ_DONE tracing,
    and the end-of-run metrics flush.  A discipline's ``run`` drives the
    queueing and calls back here for each station.

    RNG discipline: helpers consume draws in a fixed per-request order
    (plan, jitter, stragglers) so fixed seeds replay byte-identically.
    """

    def __init__(
        self,
        trace: ArrivalTrace | WorkloadStream,
        planner,
        cluster: ClusterSpec | ClusterTopology,
        config: SimulationConfig,
        engine: str,
    ) -> None:
        from repro.cluster.engine.batch import BatchPlanner, get_batch_size

        _validate_inputs(trace, planner, cluster)
        if not isinstance(config, SimulationConfig):
            raise TypeError(
                f"config must be a SimulationConfig, "
                f"got {type(config).__name__}"
            )
        self.planner = planner
        #: The epoch-versioned membership this run was launched against
        #: (``None`` when launched with a plain :class:`ClusterSpec`).
        #: The queueing below always runs against ``self.cluster`` —
        #: the topology's epoch-0 spec, byte-identical to a hand-built
        #: spec for fixed topologies — while churn experiments
        #: re-simulate per epoch and use ``topology`` for accounting.
        self.topology: ClusterTopology | None = (
            cluster if isinstance(cluster, ClusterTopology) else None
        )
        cluster = as_cluster_spec(cluster)
        self.cluster = cluster
        self.config = config
        self.engine = engine
        self.batch_size = (
            config.batch_size
            if config.batch_size is not None
            else get_batch_size()
        )
        self.stream: WorkloadStream | None = None
        self.trace: ArrivalTrace | None
        if isinstance(trace, ArrivalTrace):
            self.trace = trace
            self.n_requests = trace.n_requests
        else:
            self.stream = trace
            self.n_requests = int(trace.n_requests)
            # Only the batched fifo fast path consumes chunks directly
            # (assembling the trace as it goes); the heap disciplines and
            # the scalar loops need random access to the whole trace.
            if engine == "fifo" and self.batch_size:
                self.trace = None
            else:
                self.trace = trace.materialize()
        self.rng = make_rng(config.seed)
        self.bandwidths = cluster.bandwidths
        self.exponential = config.jitter == "exponential"
        self.goodput = config.goodput
        self.injector = config.stragglers
        self.straggler_mask = (
            self.injector.straggler_servers(cluster.n_servers, seed=self.rng)
            if self.injector.enabled and self.injector.mode == "per_server"
            else None
        )
        self.lru: LRUCache | None = (
            LRUCache(config.cache_budget)
            if config.cache_budget is not None
            else None
        )
        self.hits = 0
        self.misses = 0
        self.straggler_reads = 0
        self.tracer = config.tracer if config.tracer is not None else get_tracer()
        #: Hoisted enabled check — disabled tracing must stay free.
        self.emit = self.tracer.enabled
        if self.emit and self.topology is not None:
            self.topology.emit_events(self.tracer)
        self.scheme = planner_name(planner)
        timeline_config = (
            config.timeline
            if config.timeline is not None
            else get_timeline_config()
        )
        self.collector: TimelineCollector | None = (
            TimelineCollector(
                timeline_config,
                n_requests=self.n_requests,
                n_servers=cluster.n_servers,
                scheme=self.scheme,
                engine=engine,
            )
            if timeline_config is not None
            else None
        )
        #: Hoisted timeline check — disabled collection must stay free.
        self.observe = self.collector is not None
        causal_config = (
            config.causal
            if config.causal is not None
            else get_causal_config()
        )
        self.causal: CausalCollector | None = (
            CausalCollector(
                causal_config,
                n_requests=self.n_requests,
                n_servers=cluster.n_servers,
                scheme=self.scheme,
                engine=engine,
            )
            if causal_config is not None
            else None
        )
        #: The active per-partition recorders (timeline and/or causal).
        #: Both expose the same buffer-only hook API, so disciplines fan
        #: one guarded ``for c in lc.recorders:`` out to whichever are
        #: enabled; ``record`` is the hoisted emptiness check.
        self.recorders: tuple = tuple(
            c for c in (self.collector, self.causal) if c is not None
        )
        self.record = bool(self.recorders)
        popularity_config = (
            config.popularity
            if config.popularity is not None
            else get_popularity_config()
        )
        self.popularity: PopularityMonitor | None = (
            PopularityMonitor(
                popularity_config,
                n_servers=cluster.n_servers,
                scheme=self.scheme,
                engine=engine,
                tracer=self.tracer,
            )
            if popularity_config is not None
            else None
        )
        #: Hoisted popularity check — disabled observation must stay free.
        self.track = self.popularity is not None
        slo_config = config.slo if config.slo is not None else get_slo_config()
        self.slo_monitor: SLOMonitor | None = (
            SLOMonitor(
                slo_config,
                scheme=self.scheme,
                engine=engine,
                tracer=self.tracer,
            )
            if slo_config is not None
            else None
        )
        #: Hot-path miss log (one bool per request, arrival order) the
        #: SLO evaluator buckets at finalize time; ``None`` keeps
        #: :meth:`admit` free when evaluation is disabled.
        self._slo_miss: list[bool] | None = (
            self.slo_monitor.miss_log if self.slo_monitor is not None else None
        )
        # Memoize goodput factors: parallelism is a small integer and
        # bandwidth comes from a short array, so this avoids one
        # interpolation per (fan-out, server-speed) pair.
        self._factor_memo: dict[tuple[int, float], float] = {}
        #: Vectorized planning layer; ``None`` keeps the scalar path
        #: (and its goldens) untouched.
        self.batch_planner: BatchPlanner | None = (
            BatchPlanner(self) if self.batch_size else None
        )

    # -- planning -----------------------------------------------------

    def plan(self, file_id: int) -> ReadOp:
        """Ask the policy for this request's fork-join."""
        return self.planner.plan_read(file_id, self.rng)

    def observe_popularity(self, t: float, file_id: int, op: ReadOp) -> None:
        """Feed one planned request to the popularity monitor.

        Guard call sites with ``if lifecycle.track:`` so disabled
        observation stays free.  This appends straight into the
        monitor's window buffers (the engine hot loop runs it per
        request; :meth:`PopularityMonitor.observe` is the same fold for
        external callers) — only the rare window boundary does real work.
        """
        mon = self.popularity
        if mon._time_mode:
            mon.observe(file_id, t=t, servers=op.server_ids, sizes=op.sizes)
            return
        if mon._t_first is None:
            mon._t_first = t
        mon._t_last = t
        pend = mon._pend
        pend.append(file_id)
        if len(pend) >= mon._win_requests:
            mon._roll()

    def goodput_factor(self, parallelism: int, bandwidth: float) -> float:
        """Memoized per-connection goodput multiplier (1.0 when disabled)."""
        if self.goodput is None:
            return 1.0
        key = (parallelism, bandwidth)
        cached = self._factor_memo.get(key)
        if cached is None:
            cached = self.goodput.factor(parallelism, bandwidth)
            self._factor_memo[key] = cached
        return cached

    # -- stragglers ---------------------------------------------------

    def report_delays(self, op: ReadOp) -> tuple[np.ndarray, np.ndarray]:
        """Straggler report delays for one fork-join.

        Returns ``(extra_seconds, multipliers)`` aligned with
        ``op.server_ids``.  The paper injects stragglers by sleeping the
        serving thread, so a straggling read *reports* late by
        ``(m - 1)`` times its nominal transfer time while the NIC frees
        on schedule — disciplines add ``extra`` to the reported
        completion only, never to queue occupancy.  Call only when
        ``self.injector.enabled``; consumes RNG draws.
        """
        mult = self.injector.multipliers(
            op.server_ids, straggler_mask=self.straggler_mask, seed=self.rng
        )
        extra = (mult - 1.0) * (op.sizes / self.bandwidths[op.server_ids])
        return extra, mult

    def count_straggled(self, straggled: bool) -> None:
        self.straggler_reads += bool(straggled)

    # -- cache admission ----------------------------------------------

    def admit(self, file_id: int) -> bool:
        """LRU touch/put under the cache budget; ``True`` means a miss.

        Called once per request in arrival order by every discipline, so
        it doubles as the SLO miss-flag hook: the only enabled-path cost
        is one list append (the evaluator buckets at finalize time).
        """
        missed = False
        if self.lru is not None:
            if self.lru.touch(file_id):
                self.hits += 1
            else:
                self.misses += 1
                self.lru.put(file_id, self.planner.footprint(file_id))
                missed = True
        if self._slo_miss is not None:
            self._slo_miss.append(missed)
        return missed

    # -- join accounting ----------------------------------------------

    def request_latency(
        self,
        arrival_ts: float,
        join_at: float,
        post_fraction: float,
        post_seconds: float,
        missed: bool,
    ) -> float:
        """Fold post-join compute and the miss penalty into one latency."""
        latency = (join_at - arrival_ts) * (1.0 + post_fraction) + post_seconds
        if missed:
            latency *= self.config.miss_penalty
        return latency

    # -- tracing ------------------------------------------------------

    def emit_read(
        self,
        *,
        ts: float,
        req: int,
        file_id: int,
        op: ReadOp,
        straggled: bool,
        missed: bool,
        **extra: float,
    ) -> None:
        """One READ event at the request's arrival.

        Guard call sites with ``if lifecycle.emit:`` so disabled tracing
        does not pay for argument marshalling.
        """
        self.tracer.event(
            ev.READ,
            ts=ts,
            req=req,
            scheme=self.scheme,
            file_id=file_id,
            servers=[int(s) for s in op.server_ids],
            sizes=[float(b) for b in op.sizes],
            **extra,
            straggler=straggled,
            miss=missed,
        )

    def emit_read_done(
        self, *, ts: float, req: int, file_id: int, latency: float
    ) -> None:
        """One READ_DONE event at the request's reported completion."""
        self.tracer.event(
            ev.READ_DONE,
            ts=ts,
            req=req,
            scheme=self.scheme,
            file_id=file_id,
            latency=float(latency),
        )

    # -- end of run ---------------------------------------------------

    def result(
        self, latencies: np.ndarray, server_bytes: np.ndarray
    ) -> SimulationResult:
        """Flush run metrics and build the :class:`SimulationResult`."""
        metrics = record_run_metrics(
            scheme=self.scheme,
            engine=self.engine,
            server_bytes=server_bytes,
            latencies=latencies,
            hits=self.hits,
            misses=self.misses,
            straggler_reads=self.straggler_reads,
            tracer=self.tracer,
            end_ts=float(self.trace.times[-1]) if self.n_requests else 0.0,
        )
        timeline = None
        if self.collector is not None:
            timeline = self.collector.finalize(
                times=self.trace.times,
                file_ids=self.trace.file_ids,
                latencies=latencies,
                warmup_fraction=self.config.warmup_fraction,
            )
            publish_timeline(timeline)
            if self.emit:
                self._emit_timeline_windows(timeline)
        causal = None
        if self.causal is not None:
            causal = self.causal.finalize(
                times=self.trace.times,
                file_ids=self.trace.file_ids,
                latencies=latencies,
                warmup_fraction=self.config.warmup_fraction,
            )
            publish_causal(causal)
            if self.emit:
                self.causal.emit_spans(self.tracer)
        popularity = None
        if self.popularity is not None:
            popularity = self.popularity.finalize()
            publish_popularity(popularity)
        slo = None
        if self.slo_monitor is not None:
            slo = self.slo_monitor.evaluate(
                self.trace.times,
                latencies,
                missed=self._slo_miss if self.lru is not None else None,
                server_bytes=server_bytes,
                popularity=popularity,
            )
            publish_slo(slo)
        return SimulationResult(
            latencies=latencies,
            arrival_times=self.trace.times.copy(),
            file_ids=self.trace.file_ids.copy(),
            server_bytes=server_bytes,
            hits=self.hits,
            misses=self.misses,
            config=self.config,
            metrics=metrics,
            timeline=timeline,
            popularity=popularity,
            slo=slo,
            causal=causal,
        )

    def _emit_timeline_windows(self, timeline: dict) -> None:
        """One ``timeline_window`` trace event per retained window."""
        window_s = timeline["window_s"]
        for w in range(timeline["n_windows"]):
            served = timeline["bytes"][w]
            busy = timeline["busy_s"][w]
            depth = timeline["queue_depth"][w]
            self.tracer.event(
                ev.TIMELINE_WINDOW,
                ts=w * window_s,
                scheme=self.scheme,
                window=w,
                window_s=window_s,
                bytes=float(sum(served)),
                busy_max_s=float(max(busy)) if busy else 0.0,
                queue_depth_mean=(
                    float(sum(depth) / len(depth)) if depth else 0.0
                ),
            )
