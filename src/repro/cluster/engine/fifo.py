"""FIFO single-channel servers — the paper's M/G/1 abstraction.

Exactness without an event heap: every fork of a request arrives at the
request's arrival instant, and requests are processed in nondecreasing
arrival time, so per-server FIFO order equals processing order — a
per-server ``free_at`` clock yields the same schedule an event-driven
simulator would.  ``tests/test_cluster/test_simulation_exactness.py``
checks this against an independent heap-based M/M/1 implementation, and
``tests/test_cluster/test_forkjoin_exactness.py`` property-tests it
against a brute-force multi-server fork-join reference.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.engine.batch import (
    PlanBatch,
    _SegView,
    fifo_schedule_grouped,
)
from repro.cluster.engine.lifecycle import RequestLifecycle, SimulationResult
from repro.cluster.engine.registry import register_discipline
from repro.workloads.arrivals import ArrivalTrace

__all__ = ["FifoDiscipline"]


class FifoDiscipline:
    """One transfer at a time per server, queued in arrival order."""

    name = "fifo"

    def run(self, lc: RequestLifecycle) -> SimulationResult:
        if lc.batch_planner is not None:
            return _run_batched(lc)
        rng = lc.rng
        bandwidths = lc.bandwidths
        n_requests = lc.n_requests

        free_at = np.zeros(lc.cluster.n_servers)
        server_bytes = np.zeros(lc.cluster.n_servers)
        latencies = np.empty(n_requests)

        exponential = lc.exponential
        injector = lc.injector
        emit = lc.emit
        record = lc.record
        recorders = lc.recorders
        track = lc.track
        if track:
            # Window loads come from snapshot-diffing this vector, so
            # observe_popularity costs nothing per request for loads.
            lc.popularity.attach_cumulative_loads(server_bytes)
        times = lc.trace.times
        file_ids = lc.trace.file_ids

        for j in range(n_requests):
            t = times[j]
            fid = int(file_ids[j])
            op = lc.plan(fid)
            if track:
                lc.observe_popularity(t, fid, op)
            servers = op.server_ids
            bw = bandwidths[servers]

            # Base service times, with goodput loss from this request's
            # fan-out.
            if bw.size > 1 and np.ptp(bw) > 0:
                factors = np.array(
                    [lc.goodput_factor(op.parallelism, b) for b in bw]
                )
            else:
                factors = lc.goodput_factor(op.parallelism, float(bw[0]))
            service = op.sizes / (bw * factors)
            if exponential:
                service = rng.exponential(service)

            start = np.maximum(t, free_at[servers])
            completion = start + service
            free_at[servers] = completion
            server_bytes[servers] += op.sizes

            # Straggler reads report late without occupying the NIC — the
            # fork-join sees the late time, the queue does not.
            reported = completion
            straggled = False
            extra = None
            if injector.enabled:
                extra, mult = lc.report_delays(op)
                reported = completion + extra
                straggled = bool(np.any(mult > 1.0))
                lc.count_straggled(straggled)

            if op.join_count < reported.size:
                join_at = np.partition(reported, op.join_count - 1)[
                    op.join_count - 1
                ]
            else:
                join_at = reported.max()

            missed = lc.admit(fid)
            latency = lc.request_latency(
                t, join_at, op.post_fraction, op.post_seconds, missed
            )
            latencies[j] = latency

            if record:
                crit = int(np.flatnonzero(reported == join_at)[0])
                extras = (
                    extra if extra is not None else np.zeros(reported.size)
                )
                gfs = np.broadcast_to(
                    np.asarray(factors, dtype=np.float64), (reported.size,)
                )
                for c in recorders:
                    c.record_partitions(
                        j, servers, op.sizes, start, completion, extras, gfs
                    )
                    c.record_request(j, missed=missed, straggled=straggled)
                    c.record_join(j, crit)

            if emit:
                lc.emit_read(
                    ts=float(t),
                    req=j,
                    file_id=fid,
                    op=op,
                    straggled=straggled,
                    missed=missed,
                    queue_wait=float(np.max(start - t)),
                    service=float(np.max(service)),
                )
                lc.emit_read_done(
                    ts=float(t + latency), req=j, file_id=fid, latency=latency
                )

        return lc.result(latencies, server_bytes)


def _request_batches(lc: RequestLifecycle):
    """Yield ``(times, file_ids)`` batches from the trace or the stream."""
    size = lc.batch_size
    if lc.stream is not None and lc.trace is None:
        yield from lc.stream.chunks(size)
        return
    times = lc.trace.times
    file_ids = lc.trace.file_ids
    for lo in range(0, times.size, size):
        hi = lo + size
        yield times[lo:hi], file_ids[lo:hi]


def _run_batched(lc: RequestLifecycle) -> SimulationResult:
    """Vectorized fifo: schedule whole plan batches with array arithmetic.

    Bitwise-equal to the scalar loop above (the parity tests compare
    ``float.hex``): the batch planner replays the scalar RNG stream, the
    per-server schedule comes from :func:`fifo_schedule_grouped` (same
    float additions in the same order), and per-server byte accounting uses
    ``np.add.at`` (element-order accumulation, matching the per-request
    fancy adds).  Requests with duplicate servers inside one fork-join
    fall back to a per-request replay of the scalar array semantics
    (duplicate fancy indexing reads-before-writes and collapses adds).
    """
    n_requests = lc.n_requests
    n_servers = lc.cluster.n_servers
    free_at = np.zeros(n_servers)
    server_bytes = np.zeros(n_servers)
    latencies = np.empty(n_requests)
    if lc.track:
        lc.popularity.attach_cumulative_loads(server_bytes)
    assemble = lc.trace is None
    if assemble:
        all_times = np.empty(n_requests)
        all_fids = np.empty(n_requests, dtype=np.int64)

    j0 = 0
    for times, file_ids in _request_batches(lc):
        batch = lc.batch_planner.plan_batch(times, file_ids)
        if assemble:
            all_times[j0 : j0 + batch.n] = batch.times
            all_fids[j0 : j0 + batch.n] = batch.file_ids
        _consume_fifo_batch(
            lc, batch, j0, free_at, server_bytes, latencies
        )
        j0 += batch.n

    if assemble:
        lc.trace = ArrivalTrace(all_times, all_fids)
    return lc.result(latencies, server_bytes)


def _consume_fifo_batch(
    lc: RequestLifecycle,
    batch: PlanBatch,
    j0: int,
    free_at: np.ndarray,
    server_bytes: np.ndarray,
    latencies: np.ndarray,
) -> None:
    n = batch.n
    servers = batch.servers
    sizes = batch.sizes
    k = batch.k
    off = batch.req_off
    total = servers.size

    base = batch.service0
    if base is None:
        base = sizes / (batch.bw * batch.gfactors)
    service = base if batch.jitter is None else base * batch.jitter

    if batch.has_dup:
        _consume_fifo_scalar(
            lc, batch, j0, service, free_at, server_bytes, latencies
        )
        return

    times = batch.times
    file_ids = batch.file_ids
    off_list = off.tolist()

    if lc.track:
        # The popularity monitor snapshot-diffs the cumulative byte
        # vector at window rolls, so observation and byte accrual must
        # interleave per request exactly as the scalar loop does.
        t_list = times.tolist()
        f_list = file_ids.tolist()
        for b in range(n):
            lo, hi = off_list[b], off_list[b + 1]
            seg_srv = servers[lo:hi]
            seg_sz = sizes[lo:hi]
            lc.observe_popularity(
                t_list[b], f_list[b], _SegView(seg_srv, seg_sz)
            )
            server_bytes[seg_srv] += seg_sz
    else:
        # No duplicates: element-order accumulation equals the scalar
        # per-request fancy adds bitwise.
        np.add.at(server_bytes, servers, sizes)

    # Per-server FIFO schedule: flows grouped by server, request order
    # preserved (stable sort over request-major flow order), all
    # servers scheduled in one grouped scan.
    t_flow = np.repeat(times, k)
    comp = np.empty(total)
    # Radix passes scale with key width: server ids fit a narrow uint,
    # which makes the stable sort ~6x cheaper than sorting the int64s.
    narrow = np.min_scalar_type(max(lc.cluster.n_servers - 1, 1))
    order = np.argsort(servers.astype(narrow), kind="stable")
    ss = servers[order]
    group_starts = np.flatnonzero(
        np.concatenate(([True], ss[1:] != ss[:-1]))
    )
    group_off = np.append(group_starts, ss.size)
    present = ss[group_starts]
    # Start times only feed the record/emit paths — skip them otherwise.
    need_start = lc.record or lc.emit
    st, cp, free = fifo_schedule_grouped(
        t_flow[order],
        service[order],
        group_off,
        free_at[present],
        need_start=need_start,
    )
    start: np.ndarray | None = None
    if need_start:
        start = np.empty(total)
        start[order] = st
    comp[order] = cp
    free_at[present] = free

    reported = comp if batch.extra is None else comp + batch.extra
    if lc.injector.enabled:
        lc.straggler_reads += int(np.count_nonzero(batch.straggled_mult))

    join_at = np.maximum.reduceat(reported, off[:-1])
    partial = np.flatnonzero(batch.join_count < k)
    for b in partial:
        jc = int(batch.join_count[b])
        seg = reported[off_list[b] : off_list[b + 1]]
        join_at[b] = np.partition(seg, jc - 1)[jc - 1]

    missed = np.zeros(n, dtype=bool)
    if lc.lru is not None:
        admit = lc.admit
        for b, fid in enumerate(batch.file_ids.tolist()):
            missed[b] = admit(fid)

    lat = (join_at - times) * (1.0 + batch.post_fraction) + batch.post_seconds
    if missed.any():
        lat[missed] *= lc.config.miss_penalty
    latencies[j0 : j0 + n] = lat

    if lc.record:
        _record_frames(
            lc, batch, j0, start, comp, reported, join_at, missed
        )

    if lc.emit:
        straggled = batch.straggled_mult
        t_list = times.tolist()
        f_list = file_ids.tolist()
        for b in range(n):
            lo, hi = off_list[b], off_list[b + 1]
            t = t_list[b]
            lc.emit_read(
                ts=t,
                req=j0 + b,
                file_id=f_list[b],
                op=_SegView(servers[lo:hi], sizes[lo:hi]),
                straggled=bool(straggled[b]),
                missed=bool(missed[b]),
                queue_wait=float(np.max(start[lo:hi] - t)),
                service=float(np.max(service[lo:hi])),
            )
            lc.emit_read_done(
                ts=float(t + lat[b]),
                req=j0 + b,
                file_id=f_list[b],
                latency=float(lat[b]),
            )


def _record_frames(
    lc: RequestLifecycle,
    batch: PlanBatch,
    j0: int,
    start: np.ndarray,
    comp: np.ndarray,
    reported: np.ndarray,
    join_at: np.ndarray,
    missed: np.ndarray,
) -> None:
    """One recorder frame per batch — no per-request Python objects."""
    n = batch.n
    k = batch.k
    total = batch.servers.size
    req_local = np.repeat(np.arange(n, dtype=np.int64), k)
    extras = (
        batch.extra if batch.extra is not None else np.zeros(total)
    )
    reqs = j0 + np.arange(n, dtype=np.int64)
    # Critical partition: the scalar path takes the *first* flow whose
    # reported completion equals the join time; a reversed fancy
    # assignment keeps the first match per request.
    match = reported == np.repeat(join_at, k)
    crit = np.full(n, -1, dtype=np.int64)
    mreq = req_local[match][::-1]
    crit[mreq] = batch.pos[match][::-1]
    for c in lc.recorders:
        c.record_partition_frame(
            j0 + req_local,
            batch.pos,
            batch.servers,
            batch.sizes,
            start,
            comp,
            extras,
            batch.gfactors,
        )
        c.record_request_frame(reqs, missed, batch.straggled_mult)
        c.record_join_frame(reqs, crit)


def _consume_fifo_scalar(
    lc: RequestLifecycle,
    batch: PlanBatch,
    j0: int,
    service: np.ndarray,
    free_at: np.ndarray,
    server_bytes: np.ndarray,
    latencies: np.ndarray,
) -> None:
    """Per-request replay for batches containing duplicate-server plans.

    Reuses the batch's precomputed draws (no RNG is consumed here) but
    applies them with the scalar loop's exact fancy-indexing semantics:
    with duplicate indices, ``free_at[servers] = completion`` keeps the
    last write and ``server_bytes[servers] += sizes`` collapses the adds.
    """
    recorders = lc.recorders
    injector_enabled = lc.injector.enabled
    off = batch.req_off.tolist()
    times = batch.times.tolist()
    fids = batch.file_ids.tolist()
    for b in range(batch.n):
        lo, hi = off[b], off[b + 1]
        j = j0 + b
        t = times[b]
        fid = fids[b]
        srv = batch.servers[lo:hi]
        sz = batch.sizes[lo:hi]
        svc = service[lo:hi]
        if lc.track:
            lc.observe_popularity(t, fid, _SegView(srv, sz))
        start = np.maximum(t, free_at[srv])
        completion = start + svc
        free_at[srv] = completion
        server_bytes[srv] += sz
        reported = completion
        straggled = False
        extra = None
        if injector_enabled:
            extra = batch.extra[lo:hi]
            reported = completion + extra
            straggled = bool(batch.straggled_mult[b])
            lc.count_straggled(straggled)
        jc = int(batch.join_count[b])
        if jc < reported.size:
            join_at = np.partition(reported, jc - 1)[jc - 1]
        else:
            join_at = reported.max()
        missed = lc.admit(fid)
        latency = lc.request_latency(
            t,
            join_at,
            float(batch.post_fraction[b]),
            float(batch.post_seconds[b]),
            missed,
        )
        latencies[j] = latency
        if lc.record:
            crit = int(np.flatnonzero(reported == join_at)[0])
            extras = (
                extra if extra is not None else np.zeros(reported.size)
            )
            for c in recorders:
                c.record_partitions(
                    j, srv, sz, start, completion, extras,
                    batch.gfactors[lo:hi],
                )
                c.record_request(j, missed=missed, straggled=straggled)
                c.record_join(j, crit)
        if lc.emit:
            lc.emit_read(
                ts=t,
                req=j,
                file_id=fid,
                op=_SegView(srv, sz),
                straggled=straggled,
                missed=missed,
                queue_wait=float(np.max(start - t)),
                service=float(np.max(svc)),
            )
            lc.emit_read_done(
                ts=float(t + latency), req=j, file_id=fid, latency=latency
            )


register_discipline(FifoDiscipline.name, FifoDiscipline)
