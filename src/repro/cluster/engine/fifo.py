"""FIFO single-channel servers — the paper's M/G/1 abstraction.

Exactness without an event heap: every fork of a request arrives at the
request's arrival instant, and requests are processed in nondecreasing
arrival time, so per-server FIFO order equals processing order — a
per-server ``free_at`` clock yields the same schedule an event-driven
simulator would.  ``tests/test_cluster/test_simulation_exactness.py``
checks this against an independent heap-based M/M/1 implementation, and
``tests/test_cluster/test_forkjoin_exactness.py`` property-tests it
against a brute-force multi-server fork-join reference.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.engine.lifecycle import RequestLifecycle, SimulationResult
from repro.cluster.engine.registry import register_discipline

__all__ = ["FifoDiscipline"]


class FifoDiscipline:
    """One transfer at a time per server, queued in arrival order."""

    name = "fifo"

    def run(self, lc: RequestLifecycle) -> SimulationResult:
        rng = lc.rng
        bandwidths = lc.bandwidths
        n_requests = lc.n_requests

        free_at = np.zeros(lc.cluster.n_servers)
        server_bytes = np.zeros(lc.cluster.n_servers)
        latencies = np.empty(n_requests)

        exponential = lc.exponential
        injector = lc.injector
        emit = lc.emit
        observe = lc.observe
        collector = lc.collector
        track = lc.track
        if track:
            # Window loads come from snapshot-diffing this vector, so
            # observe_popularity costs nothing per request for loads.
            lc.popularity.attach_cumulative_loads(server_bytes)
        times = lc.trace.times
        file_ids = lc.trace.file_ids

        for j in range(n_requests):
            t = times[j]
            fid = int(file_ids[j])
            op = lc.plan(fid)
            if track:
                lc.observe_popularity(t, fid, op)
            servers = op.server_ids
            bw = bandwidths[servers]

            # Base service times, with goodput loss from this request's
            # fan-out.
            if bw.size > 1 and np.ptp(bw) > 0:
                factors = np.array(
                    [lc.goodput_factor(op.parallelism, b) for b in bw]
                )
            else:
                factors = lc.goodput_factor(op.parallelism, float(bw[0]))
            service = op.sizes / (bw * factors)
            if exponential:
                service = rng.exponential(service)

            start = np.maximum(t, free_at[servers])
            completion = start + service
            free_at[servers] = completion
            server_bytes[servers] += op.sizes

            # Straggler reads report late without occupying the NIC — the
            # fork-join sees the late time, the queue does not.
            reported = completion
            straggled = False
            extra = None
            if injector.enabled:
                extra, mult = lc.report_delays(op)
                reported = completion + extra
                straggled = bool(np.any(mult > 1.0))
                lc.count_straggled(straggled)

            if op.join_count < reported.size:
                join_at = np.partition(reported, op.join_count - 1)[
                    op.join_count - 1
                ]
            else:
                join_at = reported.max()

            missed = lc.admit(fid)
            latency = lc.request_latency(
                t, join_at, op.post_fraction, op.post_seconds, missed
            )
            latencies[j] = latency

            if observe:
                collector.record_partitions(
                    j,
                    servers,
                    op.sizes,
                    start,
                    completion,
                    extra if extra is not None else np.zeros(reported.size),
                    np.broadcast_to(
                        np.asarray(factors, dtype=np.float64), (reported.size,)
                    ),
                )
                collector.record_request(j, missed=missed, straggled=straggled)
                collector.record_join(
                    j, int(np.flatnonzero(reported == join_at)[0])
                )

            if emit:
                lc.emit_read(
                    ts=float(t),
                    req=j,
                    file_id=fid,
                    op=op,
                    straggled=straggled,
                    missed=missed,
                    queue_wait=float(np.max(start - t)),
                    service=float(np.max(service)),
                )
                lc.emit_read_done(
                    ts=float(t + latency), req=j, file_id=fid, latency=latency
                )

        return lc.result(latencies, server_bytes)


register_discipline(FifoDiscipline.name, FifoDiscipline)
