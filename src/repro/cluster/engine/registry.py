"""The server-discipline plug-in seam.

A *discipline* is how a cache server multiplexes concurrent partition
reads over its NIC: FIFO (the paper's M/G/1 abstraction), processor
sharing (how the EC2 testbed's parallel TCP streams behave), or anything
in between.  The request lifecycle — read planning, goodput, jitter,
stragglers, LRU admission, the fork-join, tracing, metrics — is identical
across disciplines and lives in :mod:`repro.cluster.engine.lifecycle`;
a discipline only decides *when each partition read finishes*.

Disciplines register here under a short name and are selected by
``SimulationConfig(discipline=...)`` with either a registered instance or
a spec string: a bare name (``"fifo"``, ``"ps"``) or a parameterised call
(``"limited(4)"``, ``"limited(inf)"``).  See ``docs/engine.md`` for how
to add one.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cluster.engine.lifecycle import (
        RequestLifecycle,
        SimulationResult,
    )

__all__ = [
    "ServerDiscipline",
    "available_disciplines",
    "register_discipline",
    "resolve_discipline",
]


@runtime_checkable
class ServerDiscipline(Protocol):
    """What the dispatcher requires of a server service discipline."""

    #: Registry name; stamped on metrics/events as the ``engine`` label.
    name: str

    def run(
        self, lifecycle: RequestLifecycle
    ) -> SimulationResult:  # pragma: no cover - protocol
        """Schedule every read of the lifecycle's trace to completion."""
        ...


_REGISTRY: dict[str, Callable[..., ServerDiscipline]] = {}

#: ``name`` or ``name(arg, ...)`` with numeric arguments.
_SPEC_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(?:\((.*)\))?\s*$")


def register_discipline(
    name: str, factory: Callable[..., ServerDiscipline]
) -> None:
    """Register ``factory`` (class or callable) under ``name``.

    Re-registering a name replaces the factory, so downstream code can
    override a built-in discipline with an instrumented variant.
    """
    if not _SPEC_RE.match(name) or "(" in name:
        raise ValueError(f"invalid discipline name {name!r}")
    _REGISTRY[name] = factory


def available_disciplines() -> tuple[str, ...]:
    """Registered discipline names, sorted."""
    return tuple(sorted(_REGISTRY))


def _parse_arg(token: str) -> float | int:
    token = token.strip()
    if token in ("inf", "Inf", "INF"):
        return math.inf
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise ValueError(
            f"discipline argument {token!r} is not a number"
        ) from None


def resolve_discipline(spec: str | ServerDiscipline) -> ServerDiscipline:
    """Turn a config's ``discipline`` into a runnable instance.

    ``spec`` is either an object already honouring
    :class:`ServerDiscipline` (returned unchanged) or a spec string such
    as ``"fifo"``, ``"ps"``, ``"limited(4)"``.  Raises ``ValueError`` for
    unknown names or malformed specs.
    """
    if not isinstance(spec, str):
        if isinstance(spec, ServerDiscipline):
            return spec
        raise TypeError(
            "discipline must be a spec string or a ServerDiscipline "
            f"instance, got {type(spec).__name__}"
        )
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ValueError(f"malformed discipline spec {spec!r}")
    name, argstr = match.group(1), match.group(2)
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown discipline {name!r}; registered: "
            f"{', '.join(available_disciplines())}"
        )
    args = (
        tuple(_parse_arg(tok) for tok in argstr.split(","))
        if argstr and argstr.strip()
        else ()
    )
    try:
        return factory(*args)
    except TypeError as exc:
        raise ValueError(f"bad arguments in {spec!r}: {exc}") from exc
