"""Bandwidth-sharing disciplines on a lazily-invalidated event heap.

Two registered disciplines run on the same engine:

* ``ps`` — full processor sharing with server- and client-side NIC caps.
  A real Alluxio worker serves concurrent reads over parallel TCP streams
  that *share* its NIC, and the reading client's own NIC caps the
  aggregate rate of one request's parallel partition streams.  Fair
  sharing at the server means a 3 MB hot-partition read is never stuck
  behind an entire 100 MB cold transfer; the client-side cap is precisely
  why ever-finer splitting stops paying and the optimal scale factor sits
  at an elbow.
* ``limited(c)`` — at most ``c`` flows are served concurrently per
  server (fair-sharing among themselves), later arrivals wait in a FIFO
  queue.  This is the connection-pool middle ground between the two pure
  models: ``limited(1)`` degenerates to the FIFO discipline and
  ``limited(inf)`` is exactly ``ps``.

Rate model: an *active* flow ``f`` of request ``r`` on server ``s``
receives ``min(B_s / n_s, B_c / n_r)`` bytes/second, where ``n_s`` counts
active flows on the server and ``n_r`` active flows of the request.
(Bottleneck-cap allocation without residual-share redistribution —
slightly conservative relative to full max-min water-filling, identical
when one side clearly bottlenecks.)  Rates change only at flow
activation/completion, so an event-driven engine with lazily invalidated
per-flow completion events simulates it exactly.

A flow's *effective* bytes fold in the per-connection goodput loss
(``size / g(fan_out)``) and an optional exponential jitter factor.
Straggler injection follows the paper's "sleep the server thread"
semantics: a straggling read's completion is *reported* late to the
fork-join (by ``(m - 1) x`` its nominal transfer time) but the flow frees
its bandwidth on time — a sleeping thread occupies no NIC.
"""

from __future__ import annotations

import heapq
import math
from collections import deque

import numpy as np

from repro.cluster.engine.batch import _SegView
from repro.cluster.engine.lifecycle import RequestLifecycle, SimulationResult
from repro.cluster.engine.registry import register_discipline

__all__ = ["LimitedDiscipline", "PSDiscipline", "simulate_reads_ps"]


def _run_heap(
    lc: RequestLifecycle, capacity: int | None
) -> SimulationResult:
    """Drive the event heap; ``capacity=None`` means unbounded (pure PS)."""
    config = lc.config
    rng = lc.rng
    bandwidths = lc.bandwidths
    client_bw = lc.cluster.effective_client_bandwidth
    n_requests = lc.n_requests
    trace = lc.trace
    injector = lc.injector
    goodput = lc.goodput
    exponential = lc.exponential
    emit = lc.emit
    record = lc.record
    recorders = lc.recorders
    track = lc.track

    server_bytes = np.zeros(lc.cluster.n_servers)
    if track:
        # Window loads come from snapshot-diffing this vector (accrued
        # at flow completion in this engine).
        lc.popularity.attach_cumulative_loads(server_bytes)
    latencies = np.full(n_requests, np.nan)

    # Request bookkeeping.
    req_remaining = np.empty(n_requests, dtype=np.int64)
    req_post_fraction = np.empty(n_requests)
    req_post_seconds = np.empty(n_requests)
    req_miss = np.zeros(n_requests, dtype=bool)

    # Flow state (parallel lists indexed by flow id).
    f_server: list[int] = []
    f_request: list[int] = []
    f_remaining: list[float] = []
    f_rate: list[float] = []
    f_last: list[float] = []
    f_gen: list[int] = []
    f_extra: list[float] = []  # straggler report delay, seconds
    # Recorder bookkeeping, appended only when recording (indices stay
    # aligned with the lists above because ``record`` is run-constant).
    f_pos: list[int] = []  # partition position within the fork-join
    f_start: list[float] = []  # activation time (first holds bandwidth)
    f_bytes: list[float] = []  # nominal partition bytes
    f_gfactor: list[float] = []  # per-connection goodput factor

    # Only *active* flows hold bandwidth and appear in these sets; under
    # a finite capacity the overflow waits, rate-0, in per-server FIFOs.
    server_active: list[set[int]] = [
        set() for _ in range(lc.cluster.n_servers)
    ]
    request_active: list[set[int]] = [set() for _ in range(n_requests)]
    server_waiting: list[deque[int]] = [
        deque() for _ in range(lc.cluster.n_servers)
    ]

    # Heap of (time, kind, a, b): kind 0 = arrival of request a; kind 1 =
    # completion candidate for flow a with generation b; kind 2 = delayed
    # join notification for flow a (straggler report).
    heap: list[tuple[float, int, int, int]] = [
        (float(t), 0, j, 0) for j, t in enumerate(trace.times)
    ]
    heapq.heapify(heap)

    # Batched planning: arrivals pop in request order (kind 0 sorts
    # before completions at equal times, ties break on the request id,
    # and the trace is time-sorted), and this engine consumes RNG only
    # while processing arrivals — so planning the next ``batch_size``
    # requests when the first of them arrives replays the scalar RNG
    # stream byte for byte.
    planner_b = lc.batch_planner
    batch = None
    batch_j0 = 0
    batch_end = 0
    batch_eff: np.ndarray | None = None

    def advance(fid: int, t: float) -> None:
        f_remaining[fid] = max(
            f_remaining[fid] - f_rate[fid] * (t - f_last[fid]), 0.0
        )
        f_last[fid] = t

    def rate_of(fid: int) -> float:
        sid = f_server[fid]
        rid = f_request[fid]
        return min(
            float(bandwidths[sid]) / len(server_active[sid]),
            client_bw / len(request_active[rid]),
        )

    def reschedule(fid: int) -> None:
        f_rate[fid] = rate_of(fid)
        f_gen[fid] += 1
        eta = f_last[fid] + f_remaining[fid] / f_rate[fid]
        heapq.heappush(heap, (eta, 1, fid, f_gen[fid]))

    def notify(j: int, t: float, pos: int) -> None:
        """One partition read reported complete to request ``j``'s join.

        ``pos`` is the reporting flow's partition position — when it
        fires the join it is the critical partition for attribution.
        """
        req_remaining[j] -= 1
        if req_remaining[j] == 0:
            if record:
                for c in recorders:
                    c.record_join(j, pos)
            latency = lc.request_latency(
                float(trace.times[j]),
                t,
                req_post_fraction[j],
                req_post_seconds[j],
                bool(req_miss[j]),
            )
            latencies[j] = latency
            if emit:
                lc.emit_read_done(
                    ts=t,
                    req=j,
                    file_id=int(trace.file_ids[j]),
                    latency=latency,
                )

    while heap:
        t, kind, ident, gen = heapq.heappop(heap)

        if kind == 0:
            j = ident
            fid0 = int(trace.file_ids[j])
            if planner_b is not None:
                if j >= batch_end:
                    hi = min(j + lc.batch_size, n_requests)
                    batch = planner_b.plan_batch(
                        trace.times[j:hi], trace.file_ids[j:hi]
                    )
                    batch_j0 = j
                    batch_end = hi
                    # Effective bytes for the whole batch at once:
                    # divide-by-goodput then multiply-by-jitter are the
                    # scalar loop's elementwise ops (goodput off means
                    # dividing by exactly 1.0 — a bitwise identity).
                    batch_eff = batch.sizes / batch.gfactors
                    if batch.jitter is not None:
                        batch_eff = batch_eff * batch.jitter
                b_ix = j - batch_j0
                lo = int(batch.req_off[b_ix])
                hi_f = int(batch.req_off[b_ix + 1])
                op_servers = batch.servers[lo:hi_f]
                op_sizes = batch.sizes[lo:hi_f]
                op = _SegView(op_servers, op_sizes)
                k = hi_f - lo
                sizes = batch_eff[lo:hi_f]
                gfactors = batch.gfactors[lo:hi_f] if record else None
                if track:
                    lc.observe_popularity(t, fid0, op)
                straggled = False
                if injector.enabled:
                    extra = batch.extra[lo:hi_f]
                    straggled = bool(batch.straggled_extra[b_ix])
                    lc.count_straggled(straggled)
                else:
                    extra = np.zeros(k)
                req_remaining[j] = batch.join_count[b_ix]
                req_post_fraction[j] = batch.post_fraction[b_ix]
                req_post_seconds[j] = batch.post_seconds[b_ix]
            else:
                op = lc.plan(fid0)
                if track:
                    # Arrivals pop in nondecreasing time, so sim-time
                    # window rollover inside the monitor stays monotone.
                    lc.observe_popularity(t, fid0, op)
                op_servers = op.server_ids
                op_sizes = op.sizes
                k = op.parallelism
                sizes = op.sizes.astype(np.float64).copy()
                gfactors = [] if record else None
                if goodput is not None:
                    for pos in range(k):
                        b = float(bandwidths[op_servers[pos]])
                        g = lc.goodput_factor(k, b)
                        sizes[pos] /= g
                        if gfactors is not None:
                            gfactors.append(g)
                elif gfactors is not None:
                    gfactors = [1.0] * k
                if exponential:
                    sizes *= rng.exponential(1.0, size=k)
                straggled = False
                if injector.enabled:
                    extra, _mult = lc.report_delays(op)
                    straggled = bool(np.any(extra > 0.0))
                    lc.count_straggled(straggled)
                else:
                    extra = np.zeros(k)
                req_remaining[j] = op.join_count
                req_post_fraction[j] = op.post_fraction
                req_post_seconds[j] = op.post_seconds
            req_miss[j] = lc.admit(fid0)

            affected: set[int] = set()
            new_active: list[int] = []
            for pos in range(k):
                sid = int(op_servers[pos])
                fid = len(f_server)
                f_server.append(sid)
                f_request.append(j)
                f_remaining.append(max(float(sizes[pos]), 1e-12))
                f_rate.append(0.0)
                f_last.append(t)
                f_gen.append(0)
                f_extra.append(float(extra[pos]))
                if record:
                    f_pos.append(pos)
                    f_start.append(t)  # overwritten if the flow waits
                    f_bytes.append(float(op_sizes[pos]))
                    f_gfactor.append(float(gfactors[pos]))
                server_bytes[sid] += op_sizes[pos]
                if capacity is None or len(server_active[sid]) < capacity:
                    affected.update(server_active[sid])
                    server_active[sid].add(fid)
                    request_active[j].add(fid)
                    new_active.append(fid)
                else:
                    server_waiting[sid].append(fid)
            if emit:
                lc.emit_read(
                    ts=float(t),
                    req=j,
                    file_id=fid0,
                    op=op,
                    straggled=straggled,
                    missed=bool(req_miss[j]),
                )
            if record:
                for c in recorders:
                    c.record_request(
                        j, missed=bool(req_miss[j]), straggled=straggled
                    )
            # Flows already active on touched servers lose share; bring
            # them to t first, then recompute every rate under the new
            # memberships.
            for fid in affected:
                advance(fid, t)
            for fid in affected:
                reschedule(fid)
            for fid in new_active:
                reschedule(fid)

        elif kind == 1:
            fid = ident
            if gen != f_gen[fid]:
                continue  # stale candidate
            advance(fid, t)
            sid = f_server[fid]
            j = f_request[fid]
            server_active[sid].discard(fid)
            request_active[j].discard(fid)
            f_gen[fid] += 1  # invalidate any residual candidates
            if record:
                for c in recorders:
                    c.record_partition(
                        j,
                        f_pos[fid],
                        sid,
                        f_bytes[fid],
                        f_start[fid],
                        t,
                        f_extra[fid],
                        f_gfactor[fid],
                    )

            if f_extra[fid] > 0.0:
                # Straggler: bandwidth freed now, completion reported late.
                heapq.heappush(heap, (t + f_extra[fid], 2, fid, 0))
            else:
                notify(j, t, f_pos[fid] if record else -1)

            affected = server_active[sid] | request_active[j]
            if capacity is not None and server_waiting[sid]:
                # A slot freed: promote the longest-waiting flow.  Its
                # activation also squeezes its request's flows elsewhere.
                woken = server_waiting[sid].popleft()
                f_last[woken] = t
                if record:
                    f_start[woken] = t
                server_active[sid].add(woken)
                request_active[f_request[woken]].add(woken)
                affected |= server_active[sid]
                affected |= request_active[f_request[woken]]
            for ofid in affected:
                advance(ofid, t)
            for ofid in affected:
                reschedule(ofid)

        else:  # kind == 2: delayed straggler report reaches the client
            notify(f_request[ident], t, f_pos[ident] if record else -1)

    if np.isnan(latencies).any():  # pragma: no cover - engine invariant
        raise AssertionError("some requests never completed")

    return lc.result(latencies, server_bytes)


class PSDiscipline:
    """Unbounded two-sided processor sharing (the testbed's behaviour)."""

    name = "ps"

    def run(self, lc: RequestLifecycle) -> SimulationResult:
        return _run_heap(lc, capacity=None)


class LimitedDiscipline:
    """At most ``c`` concurrent flows per server, FIFO beyond that."""

    def __init__(self, concurrency: float):
        if concurrency != math.inf:
            if concurrency != int(concurrency) or concurrency < 1:
                raise ValueError(
                    "limited(c) needs an integer concurrency >= 1 or inf, "
                    f"got {concurrency!r}"
                )
        self.concurrency = concurrency
        self.name = f"limited({concurrency:g})"

    def run(self, lc: RequestLifecycle) -> SimulationResult:
        capacity = (
            None if self.concurrency == math.inf else int(self.concurrency)
        )
        return _run_heap(lc, capacity=capacity)


def simulate_reads_ps(trace, planner, cluster, config) -> SimulationResult:
    """Back-compat entry point: run ``trace`` under pure processor sharing.

    Same signature and result type as
    :func:`repro.cluster.simulation.simulate_reads`.
    """
    from repro.cluster.engine.lifecycle import SimulationConfig

    config = config or SimulationConfig()
    discipline = PSDiscipline()
    return discipline.run(
        RequestLifecycle(trace, planner, cluster, config, discipline.name)
    )


register_discipline(PSDiscipline.name, PSDiscipline)
register_discipline("limited", LimitedDiscipline)
