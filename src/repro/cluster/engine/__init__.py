"""The pluggable fork-join engine core.

One :class:`RequestLifecycle` owns everything every engine shares — read
planning, goodput memoization, jitter, straggler report-delay semantics,
LRU admission and miss penalty, join accounting, READ/READ_DONE tracing,
end-of-run metrics — while a :class:`ServerDiscipline` plug-in decides
how each cache server multiplexes concurrent partition reads:

========== =========================================================
``fifo``   one transfer at a time (the paper's M/G/1 abstraction);
           exact heap-free fast path
``ps``     two-sided processor sharing (server + client NIC caps);
           how the EC2 testbed behaves
``limited`` ``limited(c)``: at most ``c`` concurrent flows per server,
           FIFO beyond — ``limited(1)`` ≈ ``fifo``, ``limited(inf)``
           = ``ps``
========== =========================================================

Add a discipline by implementing ``run(lifecycle)`` and calling
:func:`register_discipline`; ``docs/engine.md`` walks through it.
"""

from repro.cluster.engine.batch import (
    DEFAULT_BATCH_SIZE,
    BatchPlanner,
    PlanBatch,
    get_batch_size,
    use_batching,
)
from repro.cluster.engine.lifecycle import (
    METRIC_SNAPSHOT_KEYS,
    RequestLifecycle,
    SimulationConfig,
    SimulationResult,
    planner_name,
    record_run_metrics,
)
from repro.cluster.engine.registry import (
    ServerDiscipline,
    available_disciplines,
    register_discipline,
    resolve_discipline,
)

# Importing the implementation modules registers the built-ins.
from repro.cluster.engine.fifo import FifoDiscipline
from repro.cluster.engine.shared_heap import (
    LimitedDiscipline,
    PSDiscipline,
    simulate_reads_ps,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "METRIC_SNAPSHOT_KEYS",
    "BatchPlanner",
    "FifoDiscipline",
    "LimitedDiscipline",
    "PSDiscipline",
    "PlanBatch",
    "RequestLifecycle",
    "ServerDiscipline",
    "SimulationConfig",
    "SimulationResult",
    "available_disciplines",
    "get_batch_size",
    "planner_name",
    "record_run_metrics",
    "register_discipline",
    "resolve_discipline",
    "simulate_reads_ps",
    "use_batching",
]
