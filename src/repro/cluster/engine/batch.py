"""Vectorized batch planning for the request lifecycle.

One scalar simulated request costs a ``plan_read`` call, a goodput memo
lookup per flow, one or two RNG draws, and a handful of tiny-array numpy
ops — tens of microseconds of Python overhead that caps runs near 10⁴–10⁵
requests.  :class:`BatchPlanner` lifts the *planning* stations (layout
gather, goodput factors, jitter, straggler draws) out of the per-request
loop into per-batch array operations, producing a :class:`PlanBatch` the
disciplines consume: the ``fifo`` discipline schedules whole batches with
array arithmetic, while the heap disciplines (``ps``/``limited``) pop one
request's slice per arrival event.

The contract is **bitwise parity with the scalar path**, not merely
statistical equivalence — the golden suites compare ``float.hex``.  Two
facts about numpy's PCG64 generator carry the whole design (pinned by
``tests/test_cluster/test_batch_engine.py``):

* chunked ``Generator.random``/``exponential``/``choice(..., p=...)``
  draws concatenate bitwise to the single-call draw, and zero-size draws
  consume no state, so per-batch draws replay the per-request stream; and
* ``rng.exponential(scale_array)`` equals
  ``rng.exponential(1.0, n) * scale_array`` bitwise, so jitter can be
  stored as standard draws and applied by multiplication.

RNG stream keying: the scalar engines consume draws strictly in request
order — plan, then jitter, then straggler multipliers — with no consumer
between requests.  The planner therefore picks, per configuration, the
widest batching that preserves that exact order:

* deterministic plans + jitter only → one standard-exponential draw per
  batch (chunk concatenation);
* deterministic plans + per-read stragglers only → the uniform draws are
  the run's *only* RNG consumer, so they are drawn into a persistent
  buffer in large chunks and scanned with per-request offsets (a handful
  of unused draws may remain at end of run — nothing observes them);
* deterministic plans + per-server stragglers only → straggler hits are
  a deterministic mask lookup, so exactly ``total_hits`` uniforms are
  drawn per batch;
* jitter *and* stragglers together, or a policy that overrides
  ``plan_read`` (EC-Cache late binding, selective replication) → a
  per-request loop that replays the scalar call sequence verbatim.  The
  batch arrays are still built, so scheduling downstream stays
  vectorized.

A policy whose reads never randomize (``plan_read`` not overridden) is
planned from template pools gathered once from its ``servers_of``/
``piece_sizes`` layout, with goodput factors memoized per flow.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.engine.lifecycle import RequestLifecycle

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "BatchPlanner",
    "PlanBatch",
    "get_batch_size",
    "use_batching",
]

#: Requests per planned batch when batching is on without an explicit size.
DEFAULT_BATCH_SIZE = 8192

_local = threading.local()


def get_batch_size() -> int | None:
    """The ambiently installed batch size, or ``None`` (scalar path).

    :class:`~repro.cluster.engine.lifecycle.RequestLifecycle` consults
    this when its config carries no explicit ``batch_size``, so a harness
    (``run_all --batch-size``) can switch whole experiments over without
    threading a knob through every ``SimulationConfig``.
    """
    stack = getattr(_local, "sizes", None)
    return stack[-1] if stack else None


@contextmanager
def use_batching(batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[int]:
    """Ambiently enable batched planning for the block."""
    if not isinstance(batch_size, int) or isinstance(batch_size, bool):
        raise TypeError(
            f"batch_size must be an int, got {type(batch_size).__name__}"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    stack = getattr(_local, "sizes", None)
    if stack is None:
        stack = _local.sizes = []
    stack.append(batch_size)
    try:
        yield batch_size
    finally:
        stack.pop()


class _SegView:
    """One request's flow slice, quacking like a ``ReadOp`` for the
    tracing/popularity hooks (which read only these two attributes)."""

    __slots__ = ("server_ids", "sizes")

    def __init__(self, server_ids: np.ndarray, sizes: np.ndarray) -> None:
        self.server_ids = server_ids
        self.sizes = sizes


class PlanBatch:
    """Planned fork-joins for a contiguous run of requests, CSR layout.

    Request ``b`` of the batch owns flows
    ``req_off[b]:req_off[b + 1]`` of the flow-major arrays.  ``sizes``
    are the *nominal* partition bytes (what the server serves and the
    byte ledger counts); disciplines fold ``gfactors``/``jitter`` into
    effective service themselves, because fifo divides by bandwidth
    first and the heap does not.
    """

    __slots__ = (
        "n", "times", "file_ids", "k", "req_off", "servers", "sizes",
        "bw", "gfactors", "service0", "pos", "jitter", "mult", "extra",
        "straggled_mult", "straggled_extra", "join_count",
        "post_fraction", "post_seconds", "has_dup",
    )

    def __init__(
        self,
        *,
        n: int,
        times: np.ndarray,
        file_ids: np.ndarray,
        k: np.ndarray,
        req_off: np.ndarray,
        servers: np.ndarray,
        sizes: np.ndarray,
        bw: np.ndarray | None,
        gfactors: np.ndarray,
        pos: np.ndarray,
        service0: np.ndarray | None = None,
        jitter: np.ndarray | None,
        mult: np.ndarray | None,
        extra: np.ndarray | None,
        straggled_mult: np.ndarray,
        straggled_extra: np.ndarray,
        join_count: np.ndarray,
        post_fraction: np.ndarray,
        post_seconds: np.ndarray,
        has_dup: bool,
    ) -> None:
        self.n = n
        self.times = times
        self.file_ids = file_ids
        self.k = k
        self.req_off = req_off
        self.servers = servers
        self.sizes = sizes
        self.bw = bw
        self.gfactors = gfactors
        self.service0 = service0
        self.pos = pos
        self.jitter = jitter
        self.mult = mult
        self.extra = extra
        self.straggled_mult = straggled_mult
        self.straggled_extra = straggled_extra
        self.join_count = join_count
        self.post_fraction = post_fraction
        self.post_seconds = post_seconds
        self.has_dup = has_dup


class _UniformStream:
    """Chunk-buffered view of one generator's uniform stream.

    Chunked ``Generator.random`` draws concatenate bitwise, so reading
    this buffer left to right observes exactly the uniforms a scalar
    per-request consumer would draw.  ``reserve`` may overdraw past what
    the run consumes — callers use it only when these uniforms are the
    run's sole RNG consumer, so the surplus is never observable.
    """

    def __init__(self, rng: np.random.Generator, chunk: int = 1 << 17) -> None:
        self.rng = rng
        self.chunk = chunk
        self.buf = np.empty(0, dtype=np.float64)
        self.pos = 0

    def reserve(self, need: int) -> np.ndarray:
        """Return a view of at least ``need`` upcoming uniforms."""
        avail = self.buf.size - self.pos
        if avail < need:
            parts = [self.buf[self.pos:]]
            while avail < need:
                draw = self.rng.random(max(self.chunk, need - avail))
                parts.append(draw)
                avail += draw.size
            self.buf = np.concatenate(parts)
            self.pos = 0
        return self.buf[self.pos : self.pos + need]

    def advance(self, consumed: int) -> None:
        self.pos += consumed


class BatchPlanner:
    """Plans request batches with the same RNG stream as the scalar path."""

    def __init__(self, lc: "RequestLifecycle") -> None:
        from repro.cluster.stragglers import StragglerInjector
        from repro.policies.base import CachePolicy
        from repro.workloads.bing import BingStragglerProfile

        self.lc = lc
        planner = lc.planner
        injector = lc.injector
        #: Deterministic plans: the stock layout-gather ``plan_read`` —
        #: any override may draw RNG or reshape the fork-join.
        self.deterministic = (
            isinstance(planner, CachePolicy)
            and type(planner).plan_read is CachePolicy.plan_read
        )
        stock_injector = (
            type(injector).multipliers is StragglerInjector.multipliers
            and isinstance(injector.profile, BingStragglerProfile)
            and type(injector.profile).sample_multipliers
            is BingStragglerProfile.sample_multipliers
            and type(injector.profile).sample_factors
            is BingStragglerProfile.sample_factors
        )
        # Which RNG strategy keeps the stream byte-identical (see module
        # docstring).  ``loop`` replays the scalar call sequence.
        if not self.deterministic:
            self.rng_mode = "loop"
        elif lc.exponential and injector.enabled:
            self.rng_mode = "loop"
        elif lc.exponential:
            self.rng_mode = "jitter"
        elif injector.enabled and stock_injector and injector.mode == "per_read":
            self.rng_mode = "scan"
        elif injector.enabled and stock_injector and injector.mode == "per_server":
            self.rng_mode = "mask"
        elif injector.enabled:
            self.rng_mode = "loop"
        else:
            self.rng_mode = "none"
        self._ustream = (
            _UniformStream(lc.rng) if self.rng_mode == "scan" else None
        )
        self._pools_built = False

    # -- template pools (deterministic planners) ----------------------

    def _build_pools(self) -> None:
        planner = self.lc.planner
        bandwidths = self.lc.bandwidths
        servers_of = [
            np.asarray(s, dtype=np.int64) for s in planner.servers_of
        ]
        piece_sizes = [
            np.asarray(p, dtype=np.float64) for p in planner.piece_sizes
        ]
        n_files = len(servers_of)
        self._k_file = np.array([s.size for s in servers_of], dtype=np.int64)
        self._off_file = np.zeros(n_files + 1, dtype=np.int64)
        np.cumsum(self._k_file, out=self._off_file[1:])
        self._pool_servers = (
            np.concatenate(servers_of)
            if n_files
            else np.empty(0, dtype=np.int64)
        )
        self._pool_sizes = (
            np.concatenate(piece_sizes) if n_files else np.empty(0)
        )
        pool_g = np.empty(self._pool_servers.size, dtype=np.float64)
        for f in range(n_files):
            kf = int(self._k_file[f])
            for flow in range(int(self._off_file[f]), int(self._off_file[f + 1])):
                pool_g[flow] = self.lc.goodput_factor(
                    kf, float(bandwidths[self._pool_servers[flow]])
                )
        self._pool_g = pool_g
        # Per-flow effective service and straggler scale are pure
        # functions of the layout — hoist the float ops out of the
        # per-batch path (the divisions are elementwise, so gathering
        # the precomputed values is bitwise-equal to recomputing them).
        pool_bw = bandwidths[self._pool_servers]
        self._pool_service = self._pool_sizes / (pool_bw * pool_g)
        self._pool_sob = self._pool_sizes / pool_bw
        self._dup_file = np.array(
            [np.unique(s).size < s.size for s in servers_of], dtype=bool
        )
        self._pools_built = True

    # -- batch construction -------------------------------------------

    def plan_batch(self, times: np.ndarray, file_ids: np.ndarray) -> PlanBatch:
        """Plan one contiguous batch, consuming RNG exactly as the scalar
        engines would at these requests' arrivals."""
        times = np.ascontiguousarray(times, dtype=np.float64)
        file_ids = np.ascontiguousarray(file_ids, dtype=np.int64)
        if self.deterministic:
            return self._plan_template(times, file_ids)
        return self._plan_generic(times, file_ids)

    def _plan_template(
        self, times: np.ndarray, file_ids: np.ndarray
    ) -> PlanBatch:
        if not self._pools_built:
            self._build_pools()
        lc = self.lc
        n = int(times.size)
        k = self._k_file[file_ids]
        req_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(k, out=req_off[1:])
        total = int(req_off[-1])
        pos = np.arange(total, dtype=np.int64) - np.repeat(req_off[:-1], k)
        src = np.repeat(self._off_file[file_ids], k) + pos
        servers = self._pool_servers[src]
        sizes = self._pool_sizes[src]
        gfactors = self._pool_g[src]
        service0 = self._pool_service[src]
        has_dup = bool(self._dup_file[file_ids].any())

        jitter: np.ndarray | None = None
        mult: np.ndarray | None = None
        rng = lc.rng
        injector = lc.injector
        if self.rng_mode == "loop":
            # Jitter and straggler draws interleave per request — replay
            # the scalar order verbatim.
            jitter = np.empty(total) if lc.exponential else None
            mult = np.empty(total) if injector.enabled else None
            mask = lc.straggler_mask
            off_list = req_off.tolist()
            for b in range(n):
                lo, hi = off_list[b], off_list[b + 1]
                if jitter is not None:
                    jitter[lo:hi] = rng.exponential(1.0, size=hi - lo)
                if mult is not None:
                    mult[lo:hi] = injector.multipliers(
                        servers[lo:hi], straggler_mask=mask, seed=rng
                    )
        elif self.rng_mode == "jitter":
            jitter = rng.exponential(1.0, size=total)
        elif self.rng_mode == "scan":
            mult = self._scan_per_read(n, k, req_off, total, pos)
        elif self.rng_mode == "mask":
            mult = self._mask_per_server(servers, total)

        extra: np.ndarray | None = None
        if mult is not None:
            extra = (mult - 1.0) * self._pool_sob[src]
            straggled_mult = np.logical_or.reduceat(mult > 1.0, req_off[:-1])
            straggled_extra = np.logical_or.reduceat(extra > 0.0, req_off[:-1])
        else:
            straggled_mult = np.zeros(n, dtype=bool)
            straggled_extra = np.zeros(n, dtype=bool)

        return PlanBatch(
            n=n,
            times=times,
            file_ids=file_ids,
            k=k,
            req_off=req_off,
            servers=servers,
            sizes=sizes,
            bw=None,
            gfactors=gfactors,
            pos=pos,
            service0=service0,
            jitter=jitter,
            mult=mult,
            extra=extra,
            straggled_mult=straggled_mult,
            straggled_extra=straggled_extra,
            join_count=k,
            post_fraction=np.zeros(n),
            post_seconds=np.zeros(n),
            has_dup=has_dup,
        )

    def _scan_per_read(
        self,
        n: int,
        k: np.ndarray,
        req_off: np.ndarray,
        total: int,
        pos: np.ndarray,
    ) -> np.ndarray:
        """Per-read straggler multipliers from the buffered uniform stream.

        Scalar ``sample_multipliers`` draws, per request, ``k`` test
        uniforms then ``hits`` factor uniforms (skipping the factor draw
        when nothing hit).  The per-request offsets into the shared
        stream depend on earlier hit counts; :meth:`_scan_offsets`
        recovers them exactly with a vectorized fixpoint iteration, so
        every op — integer and float alike — stays vectorized.

        The reserve starts at expectation plus generous slack rather
        than the ``2 * total`` worst case — overdrawn uniforms are never
        observable (the buffer persists), but the cumulative-hit table
        costs a pass per element, so sizing it to ~``(1 + 2p) * total``
        halves the scan's fixed cost.  If a batch's hits genuinely
        outrun the slack the scan retries with a doubled reserve; the
        offsets are a pure function of the stream so the replay is
        exact.
        """
        us = self._ustream
        p = self.lc.injector.profile.probability
        slack = max(256, int(2.0 * p * total) + 8 * int(total**0.5))
        reserve = min(total + slack, 2 * total)
        while True:
            local = us.reserve(reserve)
            hcum = np.empty(reserve + 1, dtype=np.int64)
            hcum[0] = 0
            np.cumsum(local < p, out=hcum[1:])
            offs = self._scan_offsets(k, hcum, reserve)
            if offs is not None:
                o = int(offs[-1]) + int(k[-1])
                o += int(hcum[o]) - int(hcum[offs[-1]])
                if o <= reserve:
                    break
            # Hits outran the slack (vanishingly rare): double up.
            reserve = min(reserve * 2, 2 * total)
        us.advance(o)

        test_idx = np.repeat(offs, k) + pos
        u_test = local[test_idx]
        hit = u_test < p
        mult = np.ones(total)
        if hit.any():
            csum = np.cumsum(hit)
            csum0 = np.concatenate(([0], csum))
            hits_before = csum0[np.repeat(req_off[:-1], k)]
            rank = csum - 1 - hits_before
            fac_idx = np.repeat(offs + k, k) + rank
            profile = self.lc.injector.profile
            mult[hit] = np.interp(
                local[fac_idx[hit]], profile.quantiles, profile.factors
            )
        return mult

    def _scan_offsets(
        self, k: np.ndarray, hcum: np.ndarray, reserve: int
    ) -> np.ndarray | None:
        """Exact per-request stream offsets as a vectorized fixpoint.

        The scalar recurrence ``o_{b+1} = o_b + k_b + hits[o_b, o_b+k_b)``
        tiles the uniform tape contiguously, so with ``K`` the exclusive
        cumsum of ``k`` the offsets are ``K + D`` where ``D`` is the
        unique fixpoint of ``D = exclusive-cumsum(window hits at K + D)``
        — any self-consistent ``D`` replays the forward recurrence from
        ``o_0 = 0``, which has exactly one trajectory.  The system is
        lower-triangular, so the Jacobi rounds are guaranteed exact
        after at most the block length (in practice each round settles
        tens of requests), confirmed by an unchanged pass.  Rounds
        scale with block length, making the cost quadratic per block —
        so the batch is cut into modest blocks with the exact offset
        carried between them, keeping total work a small multiple of
        one request-sized pass.  Returns ``None`` when a proposal
        indexes past the reserved tape (the caller re-reserves and
        retries; offsets are bounded by ``2 * total``, so a full
        reserve always fits).
        """
        n = k.size
        offs = np.empty(n, dtype=np.int64)
        o = 0
        tests_done = 0
        p = float(self.lc.injector.profile.probability)
        block = 256
        for lo in range(0, n, block):
            kb = k[lo : lo + block]
            nb = kb.size
            K = np.empty(nb, dtype=np.int64)
            K[0] = o
            np.cumsum(kb[:-1], out=K[1:])
            K[1:] += o
            # Warm start from the observed hit rate so far: the exact
            # fixpoint is unaffected by the guess, but starting near it
            # (error ~ a random-walk deviation instead of the full
            # expected drift) cuts the rounds to a handful.
            rho = (o - tests_done) / tests_done if tests_done else p
            D = np.rint((K - o) * rho).astype(np.int64)
            D[0] = 0
            while True:
                x = K + D
                win_end = x + kb
                try:
                    h = hcum[win_end] - hcum[x]
                except IndexError:
                    # Proposal left the reserved tape: re-reserve.
                    return None
                D_new = np.empty(nb, dtype=np.int64)
                D_new[0] = 0
                np.cumsum(h[:-1], out=D_new[1:])
                if bool((D_new == D).all()):
                    break
                D = D_new
            offs[lo : lo + block] = x
            o = int(x[-1]) + int(kb[-1]) + int(h[-1])
            tests_done += int(K[-1]) - int(K[0]) + int(kb[-1])
        return offs

    def _mask_per_server(self, servers: np.ndarray, total: int) -> np.ndarray:
        """Per-server straggler multipliers: hits are a deterministic mask
        lookup, so exactly ``total_hits`` uniforms are drawn (zero-size
        scalar draws consume no state, so batching them is exact)."""
        lc = self.lc
        hit = lc.straggler_mask[servers]
        mult = np.ones(total)
        n_hit = int(hit.sum())
        if n_hit:
            profile = lc.injector.profile
            mult[hit] = np.interp(
                lc.rng.random(n_hit), profile.quantiles, profile.factors
            )
        return mult

    def _plan_generic(
        self, times: np.ndarray, file_ids: np.ndarray
    ) -> PlanBatch:
        """Per-request planning for policies that override ``plan_read``.

        Replays the scalar RNG call sequence (plan, jitter, multipliers)
        verbatim and packs the results into batch arrays so scheduling
        downstream stays vectorized.
        """
        lc = self.lc
        rng = lc.rng
        injector = lc.injector
        exponential = lc.exponential
        mask = lc.straggler_mask
        n = int(times.size)
        servers_parts: list[np.ndarray] = []
        sizes_parts: list[np.ndarray] = []
        jitter_parts: list[np.ndarray] = []
        mult_parts: list[np.ndarray] = []
        k = np.empty(n, dtype=np.int64)
        join_count = np.empty(n, dtype=np.int64)
        post_fraction = np.empty(n)
        post_seconds = np.empty(n)
        has_dup = False
        for b in range(n):
            op = lc.plan(int(file_ids[b]))
            srv = op.server_ids
            kb = srv.size
            servers_parts.append(srv)
            sizes_parts.append(op.sizes)
            k[b] = kb
            join_count[b] = op.join_count
            post_fraction[b] = op.post_fraction
            post_seconds[b] = op.post_seconds
            if not has_dup and np.unique(srv).size < kb:
                has_dup = True
            if exponential:
                jitter_parts.append(rng.exponential(1.0, size=kb))
            if injector.enabled:
                mult_parts.append(
                    injector.multipliers(srv, straggler_mask=mask, seed=rng)
                )
        req_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(k, out=req_off[1:])
        total = int(req_off[-1])
        servers = (
            np.concatenate(servers_parts)
            if n
            else np.empty(0, dtype=np.int64)
        )
        sizes = np.concatenate(sizes_parts) if n else np.empty(0)
        pos = np.arange(total, dtype=np.int64) - np.repeat(req_off[:-1], k)
        bw = lc.bandwidths[servers]
        gfactors = np.empty(total)
        goodput = lc.goodput
        if goodput is None:
            gfactors.fill(1.0)
        else:
            bw_list = bw.tolist()
            k_flow = np.repeat(k, k).tolist()
            factor = lc.goodput_factor
            for i in range(total):
                gfactors[i] = factor(k_flow[i], bw_list[i])
        jitter = np.concatenate(jitter_parts) if jitter_parts else None
        mult = np.concatenate(mult_parts) if mult_parts else None
        extra: np.ndarray | None = None
        if mult is not None:
            extra = (mult - 1.0) * (sizes / bw)
            straggled_mult = np.logical_or.reduceat(mult > 1.0, req_off[:-1])
            straggled_extra = np.logical_or.reduceat(extra > 0.0, req_off[:-1])
        else:
            straggled_mult = np.zeros(n, dtype=bool)
            straggled_extra = np.zeros(n, dtype=bool)
        return PlanBatch(
            n=n,
            times=times,
            file_ids=file_ids,
            k=k,
            req_off=req_off,
            servers=servers,
            sizes=sizes,
            bw=bw,
            gfactors=gfactors,
            pos=pos,
            jitter=jitter,
            mult=mult,
            extra=extra,
            straggled_mult=straggled_mult,
            straggled_extra=straggled_extra,
            join_count=join_count,
            post_fraction=post_fraction,
            post_seconds=post_seconds,
            has_dup=has_dup,
        )


def fifo_schedule(
    t: np.ndarray, svc: np.ndarray, free: float
) -> tuple[np.ndarray, np.ndarray, float]:
    """Exact FIFO schedule of one server's flow sequence.

    ``t``/``svc`` are one server's arrival and service times in request
    order; ``free`` is the server's clock entering the batch.  Returns
    ``(start, completion, free_out)`` bitwise-equal to the scalar
    recurrence ``start = max(t, free); free = start + svc``.

    The recurrence is a max-plus scan — the idle/busy alternation is
    data-dependent, so any blocked numpy formulation degenerates to one
    ufunc dispatch per (typically short) run, ~40µs each.  A tight loop
    over plain Python floats performs the *identical* IEEE-754 ops
    (CPython floats are doubles) at ~100ns per flow, which is faster
    than ufunc dispatch until runs average thousands of flows, and stays
    bitwise exact by construction.
    """
    start = []
    comp = []
    append_s = start.append
    append_c = comp.append
    for tv, sv in zip(t.tolist(), svc.tolist()):
        s = tv if tv >= free else free
        free = s + sv
        append_s(s)
        append_c(free)
    return np.asarray(start), np.asarray(comp), free


def fifo_schedule_grouped(
    t: np.ndarray,
    svc: np.ndarray,
    group_off: np.ndarray,
    free_in: np.ndarray,
    need_start: bool = True,
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Exact FIFO schedules for many servers' flow sequences at once.

    ``t``/``svc`` hold the concatenation of per-server flow segments in
    request order (``group_off``, length ``G + 1``, delimits them);
    ``free_in[g]`` is segment ``g``'s server clock entering the batch.
    Returns ``(start, completion, free_out)`` bitwise-equal to running
    :func:`fifo_schedule` over each segment separately; with
    ``need_start=False`` the start array is skipped (``None``) — the
    fast path only consumes completions.

    The scalar recurrence ``s = max(t, free); free = s + svc`` is a
    max-plus scan, so it has no direct ufunc — but its *structure* (the
    partition into idle-started busy runs) can be proposed cheaply with
    an approximate algebraic scan, after which the completions inside a
    run are plain left-to-right additions:

    1. propose run boundaries from ``free_j ≈ S_j + max_i (t_i - P_i)``
       (prefix sums ``S``/``P`` of ``svc``), a rounded rearrangement of
       the exact clock good enough to classify idle vs busy except
       within a few ulps of a tie;
    2. compute completions *exactly*: each run's chain
       ``comp_j = comp_{j-1} + svc_j`` is a row of a length-bucketed
       padded matrix under ``np.add.accumulate`` — per row strictly
       sequential, the identical IEEE-754 adds the scalar loop performs;
    3. verify every proposed boundary against the exact completions
       (``t_j >= comp_{j-1}``) and recompute any mismatching group
       suffix with the scalar loop.  Mismatches require the approximate
       and exact clocks to straddle an arrival, which continuous
       arrival processes essentially never produce — the repair path is
       a correctness backstop, not a steady-state cost.
    """
    n = t.size
    free_out = np.asarray(free_in, dtype=np.float64).copy()
    if n == 0:
        empty = np.empty(0)
        return (empty if need_start else None), np.empty(0), free_out
    gstart = group_off[:-1]
    gend = group_off[1:]
    nonempty = gend > gstart
    gs_pos = gstart[nonempty]
    fi = free_out[nonempty]

    # -- 1. approximate clock -> proposed idle-run boundaries ----------
    S = np.cumsum(svc)
    A = t - S
    A += svc  # A = t - P with P the exclusive service prefix
    # Seed each segment with its entering clock, then run the max scan
    # segment-by-segment: the group count is tiny, so in-place
    # accumulates over views beat any single-pass segmentation trick.
    A[gs_pos] = np.maximum(A[gs_pos], fi - (S[gs_pos] - svc[gs_pos]))
    for lo, hi in zip(group_off[:-1].tolist(), group_off[1:].tolist()):
        if hi > lo:
            np.maximum.accumulate(A[lo:hi], out=A[lo:hi])
    A += S  # approximate free clock after each flow
    idle = np.empty(n, dtype=bool)
    idle[0] = True
    np.greater_equal(t[1:], A[:-1], out=idle[1:])
    idle[gs_pos] = True  # segment starts are forced run boundaries

    # -- 2. exact completions per proposed run -------------------------
    starts_idx = np.flatnonzero(idle)
    run_len = np.diff(starts_idx, append=n)
    s0 = t[starts_idx].copy()
    # Segment-start runs seed from max(t, free_in): a selection between
    # two exact values, no arithmetic.
    gs_run = np.searchsorted(starts_idx, gs_pos)
    tg = t[gs_pos]
    s0[gs_run] = np.where(tg >= fi, tg, fi)
    comp0 = s0 + svc[starts_idx]

    comp = np.empty(n)
    comp[starts_idx] = comp0
    n_runs = starts_idx.size
    max_len = int(run_len.max())
    if max_len > 1:
        # Column stepping: sort runs by length (descending), then march
        # column c across all still-active runs at once — each round is
        # one vectorized ``comp[p] = comp[p-1] + svc[p]``, the identical
        # chained adds the scalar loop performs.  Once only a handful of
        # long tails remain, finish them in a single padded
        # ``add.accumulate`` (rows seeded from the last done column).
        order_r = np.argsort(
            run_len.astype(np.min_scalar_type(max_len)), kind="stable"
        )[::-1]
        starts_desc = starts_idx[order_r]
        cum = np.cumsum(np.bincount(run_len, minlength=max_len + 1))
        c = 1
        tail = 256
        while c < max_len:
            cnt = n_runs - int(cum[c])
            if cnt <= tail:
                break
            p = starts_desc[:cnt] + c
            comp[p] = comp[p - 1] + svc[p]
            c += 1
        if c < max_len:
            cnt = n_runs - int(cum[c])
            if cnt:
                a = starts_desc[:cnt]
                rem = run_len[order_r[:cnt]] - (c - 1)
                base = a + (c - 1)
                cols = np.arange(max_len - (c - 1))
                pos = base[:, None] + cols[None, :]
                valid = cols[None, :] < rem[:, None]
                vals = np.where(valid, svc[np.minimum(pos, n - 1)], 0.0)
                vals[:, 0] = comp[base]
                acc = np.add.accumulate(vals, axis=1)
                comp[pos[valid]] = acc[valid]
    start: np.ndarray | None = None
    if need_start:
        start = np.empty(n)
        start[1:] = comp[:-1]
        start[starts_idx] = s0
    free_out[nonempty] = comp[gend[nonempty] - 1]

    # -- 3. exact verification + scalar repair of any wrong suffix -----
    mism = np.empty(n - 1, dtype=bool) if n > 1 else np.empty(0, dtype=bool)
    if n > 1:
        np.not_equal(t[1:] >= comp[:-1], idle[1:], out=mism)
        mism[gs_pos[gs_pos > 0] - 1] = False
    if mism.any():
        bad = np.flatnonzero(mism) + 1
        bad_groups = np.unique(
            np.searchsorted(group_off, bad, side="right") - 1
        )
        for g in bad_groups.tolist():
            lo, hi = int(group_off[g]), int(group_off[g + 1])
            in_g = bad[(bad >= lo) & (bad < hi)]
            if in_g.size == 0:
                continue
            m = int(in_g[0])
            st, cp, free = fifo_schedule(t[m:hi], svc[m:hi], float(comp[m - 1]))
            if start is not None:
                start[m:hi] = st
            comp[m:hi] = cp
            free_out[g] = free
    return start, comp, free_out
