"""A small, exact discrete-event simulation core.

The fork-join read engine has a specialized fast path
(:mod:`repro.cluster.simulation`), but several components want a general
event loop: the repartition timing model interleaves transfer completions
across repartitioners, and the validation tests check the fast path against
an independently scheduled M/M/1 queue built on this engine.

Events are ``(time, seq, callback)`` triples on a binary heap; ``seq`` is a
monotone tiebreaker so simultaneous events fire in schedule order and the
heap never compares callbacks.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventQueue"]


class EventQueue:
    """Classic calendar queue driving callbacks in timestamp order."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0
        self._processed = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self.now + delay, callback)

    def step(self) -> bool:
        """Run the earliest event; return False if the queue is empty."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self.now = time
        self._processed += 1
        callback()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping at ``until`` or after
        ``max_events`` (a runaway-loop guard for tests)."""
        count = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            if max_events is not None and count >= max_events:
                return
            self.step()
            count += 1
