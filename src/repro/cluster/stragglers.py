"""Straggler injection for the simulator.

The paper injects stragglers in two ways:

* **per read** (Sec. 4.2): each partition read independently straggles with
  probability 0.05, its completion delayed by a Bing-profiled factor;
* **per server** (Sec. 7.5): each cluster node *is* a straggler with
  probability 0.05; every read it serves draws a delay factor.

:class:`StragglerInjector` implements both behind one ``multipliers`` call
the simulator applies to pre-sampled service times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.common import make_rng
from repro.workloads.bing import BingStragglerProfile

__all__ = ["StragglerInjector"]


@dataclass(frozen=True)
class StragglerInjector:
    """Applies Bing-profile slowdowns to partition-read service times."""

    profile: BingStragglerProfile
    mode: Literal["per_read", "per_server"] = "per_read"

    @staticmethod
    def none() -> "StragglerInjector":
        """Injector that never slows anything down."""
        return StragglerInjector(BingStragglerProfile(probability=0.0))

    @staticmethod
    def natural() -> "StragglerInjector":
        """Mild per-read stragglers standing in for the EC2 testbed's
        naturally occurring ones (Sec. 7.3 runs 'with naturally occurred
        stragglers')."""
        return StragglerInjector(BingStragglerProfile(probability=0.02))

    @staticmethod
    def injected() -> "StragglerInjector":
        """The Sec. 4.2 injection: every partition read straggles with
        probability 0.05 (Fig. 5's 'with stragglers' curves)."""
        return StragglerInjector(BingStragglerProfile(probability=0.05))

    @staticmethod
    def intensive() -> "StragglerInjector":
        """The Sec. 7.5 injection: each cluster *node* is a straggler with
        probability 0.05 (Fig. 19)."""
        return StragglerInjector(
            BingStragglerProfile(probability=0.05), mode="per_server"
        )

    @property
    def enabled(self) -> bool:
        return self.profile.probability > 0

    def straggler_servers(
        self, n_servers: int, seed: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Boolean mask of servers that are stragglers (per_server mode)."""
        rng = make_rng(seed)
        return rng.random(n_servers) < self.profile.probability

    def multipliers(
        self,
        server_ids: np.ndarray,
        straggler_mask: np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Completion-delay multipliers for a batch of reads.

        The paper's injection "sleeps the server thread" (Secs. 4.2, 7.5):
        the read's *completion* is delayed by the drawn factor, but the
        sleeping thread consumes no NIC bandwidth, so other reads proceed
        unharmed.  The engines therefore turn a multiplier ``m`` into an
        extra delay ``(m - 1) * nominal_transfer_time`` added to the flow's
        completion *as seen by the fork-join*, without occupying capacity.

        ``server_ids`` gives the serving server of each read.  In
        ``per_read`` mode every read rolls the straggler dice independently;
        in ``per_server`` mode only reads landing on a straggler server
        (per ``straggler_mask``) are slowed, but those always are.
        """
        server_ids = np.asarray(server_ids)
        n = server_ids.size
        if not self.enabled or n == 0:
            return np.ones(n, dtype=np.float64)
        rng = make_rng(seed)
        if self.mode == "per_read":
            return self.profile.sample_multipliers(n, seed=rng)
        if straggler_mask is None:
            raise ValueError("per_server mode requires a straggler_mask")
        mult = np.ones(n, dtype=np.float64)
        hit = np.asarray(straggler_mask)[server_ids]
        n_hit = int(hit.sum())
        if n_hit:
            mult[hit] = self.profile.sample_factors(n_hit, seed=rng)
        return mult
