"""Network transfer model: bandwidth, jitter, and goodput loss.

The paper's analytical model treats a partition transfer as exponentially
distributed with mean ``S_i / (k_i * B_s)`` (Sec. 5.3); its measurements add
a real-world effect the model drops: reading a file through many parallel
TCP connections wastes bandwidth on protocol overhead and incast collapse
(Fig. 6 — goodput falls to ~0.8 of nominal at 20 partitions and ~0.6 at 100
on a 1 Gbps NIC, worse at 500 Mbps).

:class:`GoodputModel` encodes Fig. 6's measured curves as a log-domain
interpolation table keyed by bandwidth; the simulator divides each
partition's transfer time by the goodput factor of its request's
parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common import Gbps, Mbps

__all__ = ["GoodputModel", "transfer_time"]

# Fig. 6 calibration: normalized goodput at selected partition counts.
# Interpolated linearly in log(k); clamped beyond the last knot.
_KNOTS_K = np.array([1.0, 5.0, 20.0, 50.0, 100.0])
_GOODPUT_1GBPS = np.array([1.00, 0.93, 0.80, 0.70, 0.62])
_GOODPUT_500MBPS = np.array([1.00, 0.90, 0.75, 0.66, 0.60])


@dataclass(frozen=True)
class GoodputModel:
    """Normalized goodput as a function of a request's read parallelism.

    ``factor(k)`` in (0, 1]: the fraction of nominal bandwidth that carries
    useful bytes when ``k`` partitions are fetched in parallel.  Two
    calibrated curves are bundled (1 Gbps and 500 Mbps, from Fig. 6); a
    query bandwidth selects the nearest curve.  ``identity()`` disables the
    effect (used when validating against the pure queueing model).
    """

    knots_k: np.ndarray = field(default_factory=lambda: _KNOTS_K.copy())
    goodput_by_bandwidth: dict[float, np.ndarray] = field(
        default_factory=lambda: {
            Gbps: _GOODPUT_1GBPS.copy(),
            500 * Mbps: _GOODPUT_500MBPS.copy(),
        }
    )

    def __post_init__(self) -> None:
        k = np.asarray(self.knots_k, dtype=np.float64)
        if np.any(np.diff(k) <= 0) or k[0] < 1:
            raise ValueError("knots_k must be increasing and start at >= 1")
        for bw, g in self.goodput_by_bandwidth.items():
            g = np.asarray(g, dtype=np.float64)
            if g.shape != k.shape:
                raise ValueError("each goodput curve must match knots_k")
            if np.any(g <= 0) or np.any(g > 1) or np.any(np.diff(g) > 0):
                raise ValueError("goodput must be nonincreasing in (0, 1]")

    @staticmethod
    def identity() -> "GoodputModel":
        """A model with no goodput loss (factor is 1 everywhere)."""
        return GoodputModel(
            knots_k=np.array([1.0, 2.0]),
            goodput_by_bandwidth={Gbps: np.array([1.0, 1.0])},
        )

    def _curve(self, bandwidth: float) -> np.ndarray:
        bws = np.array(sorted(self.goodput_by_bandwidth))
        nearest = bws[np.argmin(np.abs(bws - bandwidth))]
        return self.goodput_by_bandwidth[float(nearest)]

    def factor(self, parallelism: int | np.ndarray, bandwidth: float = Gbps):
        """Normalized goodput for ``parallelism`` concurrent partition reads."""
        k = np.maximum(np.asarray(parallelism, dtype=np.float64), 1.0)
        curve = self._curve(bandwidth)
        out = np.interp(np.log(k), np.log(self.knots_k), curve)
        if np.isscalar(parallelism) or np.ndim(parallelism) == 0:
            return float(out)
        return out


def transfer_time(
    size_bytes: float | np.ndarray,
    bandwidth: float | np.ndarray,
    goodput_factor: float | np.ndarray = 1.0,
) -> np.ndarray:
    """Base transfer time ``size / (bandwidth * goodput)`` in seconds."""
    return np.asarray(size_bytes, dtype=np.float64) / (
        np.asarray(bandwidth, dtype=np.float64) * np.asarray(goodput_factor)
    )
