"""The fork-join read simulator.

Model (matching Sec. 5.3 plus the two measured effects its analysis omits):

* each cache server is a FIFO single-channel queue; serving a partition of
  ``b`` bytes at bandwidth ``B_s`` takes ``b / (B_s * goodput)`` seconds,
  optionally exponentially jittered (the paper's service-time assumption);
  an injected straggler delays the read's *reported* completion without
  holding the server (the injection sleeps a thread, not the NIC);
* a request for file ``i`` arriving at ``t`` forks one read per partition;
  all forks enqueue at ``t`` and the file completes when ``join_count`` of
  them finish (all of them for plain partitioning, ``k`` of ``k + 1`` for
  EC-Cache's late binding), plus any post-join decode delay;
* with a throttled cache budget, residency is tracked by a cluster-wide
  file-granularity LRU; a miss costs ``miss_penalty`` times the hit latency
  (the Sec. 7.7 assumption) and re-admits the file.

Exactness without an event heap: every fork of a request arrives at the
request's arrival instant, and requests are processed in nondecreasing
arrival time, so per-server FIFO order equals processing order — a
per-server ``free_at`` clock yields the same schedule an event-driven
simulator would.  ``tests/test_cluster/test_simulation_exactness.py`` checks
this against an independent heap-based M/M/1 implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.cluster.client import ReadOp, ReadPlanner
from repro.cluster.metrics import (
    LatencySummary,
    imbalance_factor,
    summarize_latencies,
)
from repro.cluster.network import GoodputModel
from repro.cluster.stragglers import StragglerInjector
from repro.common import ClusterSpec, make_rng
from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.tracing import Tracer, get_tracer
from repro.store.lru import LRUCache
from repro.workloads.arrivals import ArrivalTrace

__all__ = ["SimulationConfig", "SimulationResult", "simulate_reads"]


def planner_name(planner: object) -> str:
    """Scheme label used on trace events and metric labels."""
    return str(getattr(planner, "name", type(planner).__name__))


def record_run_metrics(
    *,
    scheme: str,
    engine: str,
    server_bytes: np.ndarray,
    latencies: np.ndarray,
    hits: int,
    misses: int,
    straggler_reads: int,
    tracer: Tracer,
    end_ts: float,
) -> dict[str, float | int | str]:
    """End-of-run accounting shared by both engines.

    Pushes run aggregates into the process-wide registry (labelled by
    ``scheme``/``engine``; per-server bytes labelled by ``server_id``),
    emits one ``simulation_end`` event when tracing, and returns the
    snapshot stored on :attr:`SimulationResult.metrics`.
    """
    metrics: dict[str, float | int | str] = {
        "scheme": scheme,
        "engine": engine,
        "n_servers": int(server_bytes.size),
        "requests": int(latencies.size),
        "hits": int(hits),
        "misses": int(misses),
        "bytes_served": float(server_bytes.sum()),
        "imbalance_eta": imbalance_factor(server_bytes),
        "straggler_reads": int(straggler_reads),
    }
    reg = get_registry()
    lab = {"scheme": scheme, "engine": engine}
    reg.counter("sim.requests", **lab).inc(latencies.size)
    reg.counter("sim.hits", **lab).inc(hits)
    reg.counter("sim.misses", **lab).inc(misses)
    reg.counter("sim.bytes_served", **lab).inc(metrics["bytes_served"])
    reg.counter("sim.straggler_reads", **lab).inc(straggler_reads)
    reg.histogram("sim.latency_seconds", **lab).observe_many(latencies)
    for sid, served in enumerate(server_bytes):
        reg.counter(
            "sim.server_bytes", scheme=scheme, server_id=sid
        ).inc(float(served))
    if tracer.enabled:
        tracer.event(ev.SIMULATION_END, ts=end_ts, **metrics)
    return metrics


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run.

    ``discipline`` selects the server model: ``"fifo"`` is the paper's
    M/G/1 abstraction (one transfer at a time — what the Eq. 9 bound
    assumes, validated exactly by the fast engine here); ``"ps"`` is
    processor sharing (parallel TCP streams splitting the NIC — how the
    EC2 testbed actually behaves; see :mod:`repro.cluster.ps_engine`).

    ``tracer`` overrides the process-wide tracer for this run (``None``
    means use :func:`repro.obs.get_tracer`, a no-op unless installed).
    """

    discipline: Literal["fifo", "ps"] = "ps"
    jitter: Literal["exponential", "deterministic"] = "exponential"
    goodput: GoodputModel | None = field(default_factory=GoodputModel)
    stragglers: StragglerInjector = field(default_factory=StragglerInjector.none)
    seed: int | None = 0
    cache_budget: float | None = None  # cluster-wide bytes; None = unbounded
    miss_penalty: float = 3.0
    warmup_fraction: float = 0.1
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        if self.cache_budget is not None and self.cache_budget <= 0:
            raise ValueError("cache_budget must be positive")
        if self.miss_penalty < 1:
            raise ValueError("miss_penalty must be >= 1")
        if not 0 <= self.warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")


@dataclass
class SimulationResult:
    """Per-request outcomes plus per-server accounting."""

    latencies: np.ndarray
    arrival_times: np.ndarray
    file_ids: np.ndarray
    server_bytes: np.ndarray  # bytes served per server (the Fig. 12 "load")
    hits: int
    misses: int
    config: SimulationConfig
    #: End-of-run observability snapshot (requests, hits/misses, bytes,
    #: imbalance eta, straggler reads) — what ``simulation_end`` carries.
    metrics: dict = field(default_factory=dict)

    @property
    def n_requests(self) -> int:
        return int(self.latencies.size)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def steady_state_latencies(self) -> np.ndarray:
        """Latencies with the warmup prefix dropped."""
        skip = int(self.n_requests * self.config.warmup_fraction)
        return self.latencies[skip:]

    def summary(self) -> LatencySummary:
        return summarize_latencies(self.steady_state_latencies())


def simulate_reads(
    trace: ArrivalTrace,
    planner: ReadPlanner,
    cluster: ClusterSpec,
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """Run a request trace against a placement policy on a cluster.

    ``planner`` is any policy from :mod:`repro.policies` (or anything
    honouring the :class:`~repro.cluster.client.ReadPlanner` protocol).
    """
    config = config or SimulationConfig()
    if config.discipline == "ps":
        from repro.cluster.ps_engine import simulate_reads_ps

        return simulate_reads_ps(trace, planner, cluster, config)
    rng = make_rng(config.seed)
    bandwidths = cluster.bandwidths
    n_requests = trace.n_requests

    free_at = np.zeros(cluster.n_servers)
    server_bytes = np.zeros(cluster.n_servers)
    latencies = np.empty(n_requests)

    exponential = config.jitter == "exponential"
    goodput = config.goodput
    injector = config.stragglers
    straggler_mask = (
        injector.straggler_servers(cluster.n_servers, seed=rng)
        if injector.enabled and injector.mode == "per_server"
        else None
    )

    lru: LRUCache | None = None
    hits = misses = 0
    if config.cache_budget is not None:
        lru = LRUCache(config.cache_budget)

    tracer = config.tracer if config.tracer is not None else get_tracer()
    emit = tracer.enabled  # hoisted: disabled tracing costs one bool check
    scheme = planner_name(planner)
    straggler_reads = 0

    # Memoize goodput factors: parallelism is a small integer and bandwidth
    # comes from a short array, so this avoids one interpolation per request.
    factor_memo: dict[tuple[int, float], float] = {}

    def goodput_factor(parallelism: int, bandwidth: float) -> float:
        if goodput is None:
            return 1.0
        key = (parallelism, bandwidth)
        cached = factor_memo.get(key)
        if cached is None:
            cached = goodput.factor(parallelism, bandwidth)
            factor_memo[key] = cached
        return cached

    times = trace.times
    file_ids = trace.file_ids
    for j in range(n_requests):
        t = times[j]
        fid = int(file_ids[j])
        op: ReadOp = planner.plan_read(fid, rng)
        servers = op.server_ids
        bw = bandwidths[servers]

        # Base service times, with goodput loss from this request's fan-out.
        if bw.size > 1 and np.ptp(bw) > 0:
            factors = np.array(
                [goodput_factor(op.parallelism, b) for b in bw]
            )
        else:
            factors = goodput_factor(op.parallelism, float(bw[0]))
        service = op.sizes / (bw * factors)
        if exponential:
            service = rng.exponential(service)

        start = np.maximum(t, free_at[servers])
        completion = start + service
        free_at[servers] = completion
        server_bytes[servers] += op.sizes

        # Straggler injection: the paper sleeps the serving thread, so the
        # read's completion is delayed without occupying the NIC — the
        # fork-join sees the late time, the queue does not.
        reported = completion
        straggled = False
        if injector.enabled:
            mult = injector.multipliers(
                servers, straggler_mask=straggler_mask, seed=rng
            )
            reported = completion + (mult - 1.0) * (op.sizes / bw)
            straggled = bool(np.any(mult > 1.0))
            straggler_reads += straggled

        if op.join_count < reported.size:
            join_at = np.partition(reported, op.join_count - 1)[
                op.join_count - 1
            ]
        else:
            join_at = reported.max()
        latency = (join_at - t) * (1.0 + op.post_fraction) + op.post_seconds

        missed = False
        if lru is not None:
            if lru.touch(fid):
                hits += 1
            else:
                misses += 1
                missed = True
                latency *= config.miss_penalty
                lru.put(fid, planner.footprint(fid))
        latencies[j] = latency

        if emit:
            tracer.event(
                ev.READ,
                ts=float(t),
                req=j,
                scheme=scheme,
                file_id=fid,
                servers=[int(s) for s in servers],
                sizes=[float(b) for b in op.sizes],
                queue_wait=float(np.max(start - t)),
                service=float(np.max(service)),
                straggler=straggled,
                miss=missed,
            )
            tracer.event(
                ev.READ_DONE,
                ts=float(t + latency),
                req=j,
                scheme=scheme,
                file_id=fid,
                latency=float(latency),
            )

    metrics = record_run_metrics(
        scheme=scheme,
        engine="fifo",
        server_bytes=server_bytes,
        latencies=latencies,
        hits=hits,
        misses=misses,
        straggler_reads=straggler_reads,
        tracer=tracer,
        end_ts=float(times[-1]) if n_requests else 0.0,
    )
    return SimulationResult(
        latencies=latencies,
        arrival_times=times.copy(),
        file_ids=file_ids.copy(),
        server_bytes=server_bytes,
        hits=hits,
        misses=misses,
        config=config,
        metrics=metrics,
    )
