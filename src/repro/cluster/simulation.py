"""The fork-join read simulator: a thin dispatcher over the engine core.

Model (matching Sec. 5.3 plus the two measured effects its analysis
omits): a request for file ``i`` arriving at ``t`` forks one read per
partition; all forks enqueue at ``t`` and the file completes when
``join_count`` of them finish (all of them for plain partitioning, ``k``
of ``k + 1`` for EC-Cache's late binding), plus any post-join decode
delay.  Per-connection goodput loss shrinks effective bandwidth, an
injected straggler delays the read's *reported* completion without
holding the server, and with a throttled cache budget a cluster-wide
file-granularity LRU charges misses ``miss_penalty`` times the hit
latency (the Sec. 7.7 assumption).

*How a server schedules concurrent reads* is pluggable: the shared
request lifecycle lives in :mod:`repro.cluster.engine.lifecycle` and the
service discipline (``"fifo"``, ``"ps"``, ``"limited(c)"``, or any
registered :class:`~repro.cluster.engine.ServerDiscipline`) is selected
by :attr:`SimulationConfig.discipline` through the registry in
:mod:`repro.cluster.engine.registry`.
"""

from __future__ import annotations

from repro.cluster.engine import (
    RequestLifecycle,
    SimulationConfig,
    SimulationResult,
    planner_name,
    record_run_metrics,
    resolve_discipline,
)
from repro.cluster.topology import ClusterTopology
from repro.common import ClusterSpec
from repro.workloads.arrivals import ArrivalTrace
from repro.workloads.streams import WorkloadStream

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "planner_name",
    "record_run_metrics",
    "simulate_reads",
]


def simulate_reads(
    trace: ArrivalTrace | WorkloadStream,
    planner,
    cluster: ClusterSpec | ClusterTopology,
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """Run a request trace against a placement policy on a cluster.

    ``planner`` is any policy from :mod:`repro.policies` (or anything
    honouring the :class:`~repro.cluster.client.ReadPlanner` protocol).
    The server model comes from ``config.discipline`` — see
    :class:`SimulationConfig`.  ``trace`` may be an eager
    :class:`ArrivalTrace` or a lazy
    :class:`~repro.workloads.streams.WorkloadStream`; streams feed the
    batched fifo fast path chunk by chunk (when ``config.batch_size`` or
    the ambient batch size is set) and are materialized for the heap
    disciplines.

    ``cluster`` may be a static :class:`ClusterSpec` or an
    epoch-versioned :class:`~repro.cluster.topology.ClusterTopology`; a
    topology runs against its epoch-0 spec (byte-identical results for
    fixed topologies) and additionally emits ``membership``/``epoch``
    trace events when tracing is enabled.  Churn experiments
    (``fig_churn``) re-simulate per epoch instead.
    """
    config = config or SimulationConfig()
    discipline = resolve_discipline(config.discipline)
    lifecycle = RequestLifecycle(
        trace, planner, cluster, config, engine=discipline.name
    )
    return discipline.run(lifecycle)
