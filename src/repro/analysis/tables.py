"""ASCII table rendering for benchmark output.

Every bench prints the paper's reported numbers next to ours; a uniform
renderer keeps that output greppable in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "print_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[dict[str, Any]], title: str | None = None
) -> str:
    """Render dict rows as an aligned ASCII table (column order from the
    first row)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def print_table(rows: Sequence[dict[str, Any]], title: str | None = None) -> None:
    print()
    print(format_table(rows, title=title))
