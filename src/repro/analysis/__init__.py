"""Statistics and table-rendering helpers shared by benches and examples."""

from repro.analysis.stats import bootstrap_ci, percentile_summary
from repro.analysis.tables import format_table, print_table

__all__ = ["bootstrap_ci", "format_table", "percentile_summary", "print_table"]
