"""Small statistical utilities for experiment reporting."""

from __future__ import annotations

import numpy as np

from repro.common import make_rng

__all__ = ["bootstrap_ci", "percentile_summary", "cdf_points"]


def percentile_summary(
    sample: np.ndarray, percentiles: tuple[float, ...] = (5, 25, 50, 75, 95)
) -> dict[str, float]:
    """Named percentiles of a sample (the box-plot stats of Fig. 4)."""
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        raise ValueError("empty sample")
    values = np.percentile(sample, percentiles)
    return {f"p{int(p)}": float(v) for p, v in zip(percentiles, values)}


def bootstrap_ci(
    sample: np.ndarray,
    statistic=np.mean,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int | np.random.Generator | None = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``."""
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        raise ValueError("empty sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = make_rng(seed)
    idx = rng.integers(0, sample.size, size=(n_resamples, sample.size))
    stats = np.apply_along_axis(statistic, 1, sample[idx])
    lo = (1 - confidence) / 2 * 100
    return (
        float(np.percentile(stats, lo)),
        float(np.percentile(stats, 100 - lo)),
    )


def cdf_points(sample: np.ndarray, n_points: int = 100) -> tuple[np.ndarray, np.ndarray]:
    """(x, F(x)) pairs of the empirical CDF (Fig. 21's curves)."""
    sample = np.sort(np.asarray(sample, dtype=np.float64))
    if sample.size == 0:
        raise ValueError("empty sample")
    qs = np.linspace(0, 100, n_points)
    return np.percentile(sample, qs), qs / 100.0
