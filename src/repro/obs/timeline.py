"""Sim-time timelines and tail-latency attribution.

The metrics registry and the span machinery sample the *wall* clock; this
module samples the *simulated* clock.  A :class:`TimelineCollector` rides
inside :class:`~repro.cluster.engine.lifecycle.RequestLifecycle`, so every
server discipline (``fifo``/``ps``/``limited``) feeds it for free:

* a **windowed timeline** keyed to simulated seconds — per-server busy
  seconds, average queue depth, and bytes served per window, plus
  windowed latency percentiles through the existing streaming
  :class:`~repro.obs.metrics.Histogram`;
* **tail exemplars** — the slowest-K steady-state requests, each with its
  full per-partition breakdown (queue wait, transfer time, straggler
  report delay, goodput factor, last-to-finish server);
* a **tail-attribution report** splitting each exemplar's latency into
  ``queueing + straggling + transfer + join`` components that sum to the
  latency *exactly*: the critical partition is the one whose reported
  completion fired the join, so ``(start - arrival) + (end - start) +
  report_delay = join_at - arrival`` by construction, and ``join`` picks
  up the post-join decode plus any miss penalty.

Default state is a no-op: a run collects nothing unless its
:class:`~repro.cluster.engine.lifecycle.SimulationConfig` carries a
:class:`TimelineConfig` or one is installed ambiently with
:func:`use_timeline`.  Hot-path hooks only buffer raw records; all
aggregation happens once in :meth:`TimelineCollector.finalize`, where
records are re-sorted by ``(request, partition)`` so the produced section
is independent of event ordering — ``limited(inf)`` and ``ps`` yield
byte-identical sections, and two identical seeded runs always do.

Sections are plain JSON-able dicts; they serialize into run manifests
(:mod:`repro.obs.runinfo`, schema version 2), export as Chrome-trace
counter events (:func:`chrome_counter_events`), and render through the
``repro timeline`` / ``repro tail`` CLI subcommands.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.obs.metrics import Histogram

__all__ = [
    "TIMELINE_SCHEMA_VERSION",
    "TimelineConfig",
    "TimelineCollector",
    "chrome_counter_events",
    "collect_timelines",
    "get_timeline_config",
    "publish_timeline",
    "sparkline",
    "tail_attribution_rows",
    "timeline_series_rows",
    "use_timeline",
]

#: Version of the timeline *section* layout (independent of the manifest
#: schema version, which gates the envelope).
TIMELINE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TimelineConfig:
    """Knobs of one run's sim-time timeline collection.

    ``window_s=None`` picks the width automatically so the run spans
    ``target_windows`` windows; an explicit width wins.  ``max_windows``
    hard-caps retention — samples past the cap fold into the last window
    (counted in the section's ``clipped_*`` fields) so a mis-sized window
    can never make memory unbounded.  ``tail_k`` bounds the exemplar
    reservoir; ``reservoir_size`` is the per-window latency reservoir
    handed to :class:`~repro.obs.metrics.Histogram`.
    """

    window_s: float | None = None
    target_windows: int = 24
    max_windows: int = 240
    tail_k: int = 64
    reservoir_size: int = 512

    def __post_init__(self) -> None:
        if self.window_s is not None and not self.window_s > 0:
            raise ValueError("window_s must be positive (or None for auto)")
        if self.target_windows < 1:
            raise ValueError("target_windows must be >= 1")
        if self.max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        if self.tail_k < 1:
            raise ValueError("tail_k must be >= 1")
        if self.reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")


# -- ambient config + section sinks (mirrors spans.collect_spans) ---------

_local = threading.local()


def get_timeline_config() -> TimelineConfig | None:
    """The ambiently installed :class:`TimelineConfig`, or ``None``.

    :class:`~repro.cluster.engine.lifecycle.RequestLifecycle` consults
    this when its config carries no explicit timeline, so a harness can
    switch collection on for a whole block without threading a knob
    through every call site.
    """
    stack = getattr(_local, "configs", None)
    return stack[-1] if stack else None


@contextmanager
def use_timeline(config: TimelineConfig) -> Iterator[TimelineConfig]:
    """Ambiently enable timeline collection for the block."""
    if not isinstance(config, TimelineConfig):
        raise TypeError(
            f"config must be a TimelineConfig, got {type(config).__name__}"
        )
    stack = getattr(_local, "configs", None)
    if stack is None:
        stack = _local.configs = []
    stack.append(config)
    try:
        yield config
    finally:
        stack.pop()


@contextmanager
def collect_timelines(
    into: list[dict[str, Any]] | None = None,
) -> Iterator[list[dict[str, Any]]]:
    """Collect every timeline section published inside the block.

    Collectors nest: an inner ``collect_timelines`` does not hide
    sections from an outer one (both receive every publish), so a
    session-level sink can accumulate what per-experiment sinks see.
    """
    sink: list[dict[str, Any]] = into if into is not None else []
    sinks = getattr(_local, "sinks", None)
    if sinks is None:
        sinks = _local.sinks = []
    sinks.append(sink)
    try:
        yield sink
    finally:
        # Remove by identity: two empty list sinks compare equal, so
        # ``list.remove`` could detach the wrong one.
        for i in range(len(sinks) - 1, -1, -1):
            if sinks[i] is sink:
                del sinks[i]
                break


def publish_timeline(section: dict[str, Any]) -> None:
    """Hand one finalized section to every active collector."""
    for sink in getattr(_local, "sinks", ()):
        sink.append(section)


# -- the collector --------------------------------------------------------


class TimelineCollector:
    """Buffers raw per-partition/per-request records during one run.

    Disciplines call the ``record_*`` hooks (guarded by the lifecycle's
    hoisted ``observe`` flag); :meth:`finalize` does all aggregation.  A
    discipline that never calls the partition hooks still finalizes to a
    valid (empty-series) section — attribution then charges everything to
    the ``join`` component.
    """

    def __init__(
        self,
        config: TimelineConfig,
        *,
        n_requests: int,
        n_servers: int,
        scheme: str,
        engine: str,
    ) -> None:
        self.config = config
        self.n_requests = int(n_requests)
        self.n_servers = int(n_servers)
        self.scheme = scheme
        self.engine = engine
        # Raw partition records, append-only (aggregated at finalize).
        # Scalar appends from event-driven engines land in the lists;
        # whole fork-joins from vectorized engines land as array blocks.
        self._req: list[int] = []
        self._pos: list[int] = []
        self._server: list[int] = []
        self._size: list[float] = []
        self._start: list[float] = []
        self._end: list[float] = []
        self._extra: list[float] = []
        self._gfactor: list[float] = []
        self._blocks: list[tuple[int, np.ndarray, ...]] = []
        # Whole-batch frames from the vectorized engines: each holds
        # many requests' partition rows as flat arrays, so a
        # million-request run buffers thousands of frames instead of
        # millions of Python scalars.
        self._frames: list[tuple[np.ndarray, ...]] = []
        # Per-request facts, filled as the run learns them.
        self.crit_pos = np.full(self.n_requests, -1, dtype=np.int64)
        self.missed = np.zeros(self.n_requests, dtype=bool)
        self.straggled = np.zeros(self.n_requests, dtype=bool)

    # -- hot-path hooks (buffer only, no arithmetic) ------------------

    def record_partition(
        self,
        req: int,
        pos: int,
        server: int,
        size: float,
        start: float,
        end: float,
        extra: float = 0.0,
        gfactor: float = 1.0,
    ) -> None:
        """One partition read: served by ``server``, active ``[start, end)``,
        reported complete at ``end + extra``."""
        self._req.append(req)
        self._pos.append(pos)
        self._server.append(server)
        self._size.append(size)
        self._start.append(start)
        self._end.append(end)
        self._extra.append(extra)
        self._gfactor.append(gfactor)

    def record_partitions(
        self, req, servers, sizes, starts, ends, extras, gfactors
    ) -> None:
        """Vector form of :meth:`record_partition` (one fork-join at once).

        Buffers the arrays as one block (copied, so callers may reuse
        their buffers); partition positions are ``0..k-1`` in argument
        order.  Finalize merges blocks with scalar records and re-sorts,
        so the two paths produce identical sections.
        """
        self._blocks.append(
            (
                int(req),
                np.array(servers, dtype=np.int64),
                np.array(sizes, dtype=np.float64),
                np.array(starts, dtype=np.float64),
                np.array(ends, dtype=np.float64),
                np.array(extras, dtype=np.float64),
                np.array(gfactors, dtype=np.float64),
            )
        )

    def record_request(self, req: int, *, missed: bool, straggled: bool) -> None:
        self.missed[req] = missed
        self.straggled[req] = straggled

    def record_join(self, req: int, pos: int) -> None:
        """The partition whose reported completion fired request ``req``'s
        join — the critical path for attribution."""
        self.crit_pos[req] = pos

    # -- batched hooks (many requests per call, array-valued) ----------

    def record_partition_frame(
        self, reqs, poss, servers, sizes, starts, ends, extras, gfactors
    ) -> None:
        """Flat-array form of :meth:`record_partition` covering many
        requests at once (``reqs``/``poss`` give each row's request id
        and partition position).  Arrays are copied; finalize merges
        frames with scalar records and blocks, so all three paths
        produce identical sections."""
        self._frames.append(
            (
                np.array(reqs, dtype=np.int64),
                np.array(poss, dtype=np.int64),
                np.array(servers, dtype=np.int64),
                np.array(sizes, dtype=np.float64),
                np.array(starts, dtype=np.float64),
                np.array(ends, dtype=np.float64),
                np.array(extras, dtype=np.float64),
                np.array(gfactors, dtype=np.float64),
            )
        )

    def record_request_frame(self, reqs, missed, straggled) -> None:
        """Array form of :meth:`record_request`."""
        reqs = np.asarray(reqs, dtype=np.int64)
        self.missed[reqs] = np.asarray(missed, dtype=bool)
        self.straggled[reqs] = np.asarray(straggled, dtype=bool)

    def record_join_frame(self, reqs, poss) -> None:
        """Array form of :meth:`record_join`."""
        self.crit_pos[np.asarray(reqs, dtype=np.int64)] = np.asarray(
            poss, dtype=np.int64
        )

    # -- finalize -----------------------------------------------------

    def _merged_records(self) -> tuple[np.ndarray, ...]:
        """Scalar appends and array blocks merged into flat arrays.

        Unsorted — finalize lexsorts by ``(request, partition)``, and
        each ``(request, partition)`` pair is recorded at most once, so
        the merged order never leaks into the section.
        """
        reqs = [np.asarray(self._req, dtype=np.int64)]
        poss = [np.asarray(self._pos, dtype=np.int64)]
        servers = [np.asarray(self._server, dtype=np.int64)]
        sizes = [np.asarray(self._size, dtype=np.float64)]
        starts = [np.asarray(self._start, dtype=np.float64)]
        ends = [np.asarray(self._end, dtype=np.float64)]
        extras = [np.asarray(self._extra, dtype=np.float64)]
        gfactors = [np.asarray(self._gfactor, dtype=np.float64)]
        for r, srv, sz, st, en, ex, gf in self._blocks:
            k = srv.size
            reqs.append(np.full(k, r, dtype=np.int64))
            poss.append(np.arange(k, dtype=np.int64))
            servers.append(srv)
            sizes.append(sz)
            starts.append(st)
            ends.append(en)
            extras.append(np.broadcast_to(ex, (k,)))
            gfactors.append(np.broadcast_to(gf, (k,)))
        for rq, ps, srv, sz, st, en, ex, gf in self._frames:
            reqs.append(rq)
            poss.append(ps)
            servers.append(srv)
            sizes.append(sz)
            starts.append(st)
            ends.append(en)
            extras.append(ex)
            gfactors.append(gf)
        return tuple(
            np.concatenate(parts)
            for parts in (
                reqs, poss, servers, sizes, starts, ends, extras, gfactors
            )
        )

    def finalize(
        self,
        *,
        times: np.ndarray,
        file_ids: np.ndarray,
        latencies: np.ndarray,
        warmup_fraction: float = 0.0,
    ) -> dict[str, Any]:
        """Aggregate the buffered records into one JSON-able section.

        Deterministic by construction: records are sorted by
        ``(request, partition)`` before any float accumulation, so the
        output depends only on the simulated quantities — never on event
        ordering or the wall clock.
        """
        cfg = self.config
        n_req = int(np.asarray(latencies).size)
        times = np.asarray(times, dtype=np.float64)
        latencies = np.asarray(latencies, dtype=np.float64)

        req, pos, server, size, start, end, extra, gfactor = (
            self._merged_records()
        )
        order = np.lexsort((pos, req))
        req = req[order]
        pos = pos[order]
        server = server[order]
        size = size[order]
        start = start[order]
        end = end[order]
        extra = extra[order]
        gfactor = gfactor[order]

        span_end = 0.0
        if req.size:
            span_end = float((end + extra).max())
        if n_req:
            span_end = max(span_end, float(times.max()))
        if cfg.window_s is not None:
            window_s = float(cfg.window_s)
        elif span_end > 0.0:
            window_s = span_end / cfg.target_windows
        else:
            window_s = 1.0
        n_windows = (
            min(int(np.floor(span_end / window_s)) + 1, cfg.max_windows)
            if n_req
            else 0
        )

        bytes_w = np.zeros((n_windows, self.n_servers))
        busy_w = np.zeros((n_windows, self.n_servers))
        queue_w = np.zeros((n_windows, self.n_servers))
        clipped_partitions = 0
        if req.size and n_windows:
            wi = np.floor(start / window_s).astype(np.int64)
            clipped_partitions = int(np.count_nonzero(wi >= n_windows))
            wi = np.clip(wi, 0, n_windows - 1)
            np.add.at(bytes_w.ravel(), wi * self.n_servers + server, size)
            _accumulate_overlap(busy_w, start, end, server, window_s)
            arrival = times[req]
            _accumulate_overlap(queue_w, arrival, start, server, window_s)
        queue_depth = queue_w / window_s if n_windows else queue_w

        latency_rows: list[dict[str, Any]] = []
        clipped_requests = 0
        if n_req and n_windows:
            wi_req = np.floor(times / window_s).astype(np.int64)
            clipped_requests = int(np.count_nonzero(wi_req >= n_windows))
            wi_req = np.clip(wi_req, 0, n_windows - 1)
            for w in range(n_windows):
                sample = latencies[wi_req == w]
                row: dict[str, Any] = {
                    "window": w,
                    "t_start": w * window_s,
                    "t_end": (w + 1) * window_s,
                    "count": int(sample.size),
                }
                if sample.size:
                    hist = Histogram(
                        "timeline.window_latency",
                        {},
                        reservoir_size=cfg.reservoir_size,
                    )
                    hist.observe_many(sample)
                    snap = hist.snapshot()
                    for key in ("mean", "p50", "p95", "p99"):
                        row[key] = snap[key]
                latency_rows.append(row)

        tail = self._finalize_tail(
            times, file_ids, latencies, warmup_fraction,
            req, pos, server, size, start, end, extra, gfactor,
        )

        return {
            "schema_version": TIMELINE_SCHEMA_VERSION,
            "scheme": self.scheme,
            "engine": self.engine,
            "n_servers": self.n_servers,
            "n_requests": n_req,
            "window_s": float(window_s),
            "n_windows": int(n_windows),
            "clipped_partitions": clipped_partitions,
            "clipped_requests": clipped_requests,
            "bytes": bytes_w.tolist(),
            "busy_s": busy_w.tolist(),
            "queue_depth": queue_depth.tolist(),
            "latency": latency_rows,
            "tail": tail,
        }

    def _finalize_tail(
        self,
        times,
        file_ids,
        latencies,
        warmup_fraction,
        req,
        pos,
        server,
        size,
        start,
        end,
        extra,
        gfactor,
    ) -> dict[str, Any]:
        cfg = self.config
        n_req = int(latencies.size)
        skip = int(n_req * warmup_fraction)
        steady = latencies[skip:]
        tail: dict[str, Any] = {
            "k": 0,
            "warmup_skipped": skip,
            "exemplars": [],
            "attribution": {
                "requests": int(steady.size),
                "mean_tail_latency_s": 0.0,
                "queueing_s": 0.0,
                "straggling_s": 0.0,
                "transfer_s": 0.0,
                "join_s": 0.0,
                "p99_s": float(np.percentile(steady, 99)) if steady.size else 0.0,
            },
        }
        if not steady.size:
            return tail

        k = min(cfg.tail_k, int(steady.size))
        slowest = np.argsort(-steady, kind="stable")[:k] + skip
        # Partition rows are sorted by request id, so each request's block
        # is one contiguous slice.
        blk_lo = np.searchsorted(req, slowest, side="left")
        blk_hi = np.searchsorted(req, slowest, side="right")

        comps = np.zeros((k, 4))  # queueing, straggling, transfer, join
        exemplars: list[dict[str, Any]] = []
        for i in range(k):
            r = int(slowest[i])
            lat = float(latencies[r])
            arrival = float(times[r])
            lo, hi = int(blk_lo[i]), int(blk_hi[i])
            parts: list[dict[str, Any]] = []
            crit_row = -1
            crit = int(self.crit_pos[r])
            for row in range(lo, hi):
                parts.append(
                    {
                        "server": int(server[row]),
                        "bytes": float(size[row]),
                        "queue_s": float(start[row] - arrival),
                        "transfer_s": float(end[row] - start[row]),
                        "straggle_s": float(extra[row]),
                        "goodput": float(gfactor[row]),
                        "critical": bool(pos[row] == crit),
                    }
                )
                if pos[row] == crit:
                    crit_row = row
            if crit_row >= 0:
                queueing = float(start[crit_row] - arrival)
                transfer = float(end[crit_row] - start[crit_row])
                straggling = float(extra[crit_row])
                last_server = int(server[crit_row])
            else:
                # Discipline recorded no partitions (or no join): charge
                # the whole latency to the join component.
                queueing = transfer = straggling = 0.0
                last_server = -1
            join = lat - queueing - transfer - straggling
            comps[i] = (queueing, straggling, transfer, join)
            exemplars.append(
                {
                    "req": r,
                    "file_id": int(file_ids[r]),
                    "arrival_s": arrival,
                    "latency_s": lat,
                    "parallelism": hi - lo,
                    "missed": bool(self.missed[r]),
                    "straggled": bool(self.straggled[r]),
                    "last_server": last_server,
                    "components": {
                        "queueing_s": queueing,
                        "straggling_s": straggling,
                        "transfer_s": transfer,
                        "join_s": join,
                    },
                    "partitions": parts,
                }
            )
        tail["k"] = k
        tail["exemplars"] = exemplars
        means = comps.mean(axis=0)
        tail["attribution"].update(
            mean_tail_latency_s=float(
                np.mean([e["latency_s"] for e in exemplars])
            ),
            queueing_s=float(means[0]),
            straggling_s=float(means[1]),
            transfer_s=float(means[2]),
            join_s=float(means[3]),
        )
        return tail


def _accumulate_overlap(target, lo, hi, server, window_s) -> None:
    """Add each ``[lo, hi)`` interval's overlap with every window to
    ``target[window, server]``; intervals past the last window fold into
    it.  Same-window intervals (the vast majority) take a vectorized fast
    path; spanning ones clip window by window."""
    n_windows, n_servers = target.shape
    hi = np.maximum(hi, lo)
    wlo = np.clip(np.floor(lo / window_s).astype(np.int64), 0, n_windows - 1)
    whi = np.clip(np.floor(hi / window_s).astype(np.int64), 0, n_windows - 1)
    same = wlo == whi
    np.add.at(
        target.ravel(),
        wlo[same] * n_servers + server[same],
        (hi - lo)[same],
    )
    for i in np.flatnonzero(~same):
        a, b, s = float(lo[i]), float(hi[i]), int(server[i])
        for w in range(int(wlo[i]), int(whi[i]) + 1):
            w_lo = w * window_s
            w_hi = (w + 1) * window_s if w < n_windows - 1 else max(
                b, (w + 1) * window_s
            )
            target[w, s] += max(0.0, min(b, w_hi) - max(a, w_lo))


# -- rendering helpers ----------------------------------------------------

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values) -> str:
    """Unicode block-character sparkline of a numeric series."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _BLOCKS[0] * len(vals)
    scale = (len(_BLOCKS) - 1) / (hi - lo)
    return "".join(_BLOCKS[int(round((v - lo) * scale))] for v in vals)


def timeline_series_rows(section: dict[str, Any]) -> list[dict[str, Any]]:
    """Per-series sparkline/min/max rows for one timeline section."""
    window_s = section["window_s"]
    bytes_w = np.asarray(section["bytes"], dtype=np.float64)
    busy_w = np.asarray(section["busy_s"], dtype=np.float64)
    depth_w = np.asarray(section["queue_depth"], dtype=np.float64)
    series: list[tuple[str, np.ndarray]] = []
    if bytes_w.size:
        series.append(("bytes/window", bytes_w.sum(axis=1)))
        series.append(("busy frac (max server)", busy_w.max(axis=1) / window_s))
        series.append(("queue depth (mean)", depth_w.mean(axis=1)))
    p99 = [row.get("p99") for row in section["latency"]]
    if any(v is not None for v in p99):
        series.append(
            ("p99 latency (s)", np.asarray(
                [v if v is not None else 0.0 for v in p99]
            ))
        )
    rows = []
    for name, values in series:
        rows.append(
            {
                "series": name,
                "spark": sparkline(values),
                "min": float(values.min()),
                "max": float(values.max()),
            }
        )
    return rows


def tail_attribution_rows(section: dict[str, Any]) -> list[dict[str, Any]]:
    """Component/seconds/share rows of one section's tail attribution."""
    attribution = section["tail"]["attribution"]
    total = attribution["mean_tail_latency_s"]
    rows = []
    for component in ("queueing", "straggling", "transfer", "join"):
        seconds = attribution[f"{component}_s"]
        rows.append(
            {
                "component": component,
                "seconds": seconds,
                "share_pct": 100.0 * seconds / total if total else 0.0,
            }
        )
    return rows


def chrome_counter_events(
    sections: list[dict[str, Any]], pid: int = 2
) -> list[dict[str, Any]]:
    """Chrome trace-event counters ("C" phase) from timeline sections.

    One counter track per section (``<scheme>#<i>``) on its own process
    id so the sim-second axis does not interleave with the wall-clock
    span axis; loads alongside the span timeline in ``chrome://tracing``
    or Perfetto.
    """
    events: list[dict[str, Any]] = []
    if not sections:
        return events
    events.append(
        {
            "ph": "M",
            "pid": pid,
            "tid": 1,
            "name": "process_name",
            "args": {"name": "repro.simtime"},
        }
    )
    for i, section in enumerate(sections):
        label = f"{section['scheme']}#{i}"
        window_s = section["window_s"]
        bytes_w = np.asarray(section["bytes"], dtype=np.float64)
        busy_w = np.asarray(section["busy_s"], dtype=np.float64)
        depth_w = np.asarray(section["queue_depth"], dtype=np.float64)
        for w in range(section["n_windows"]):
            ts = w * window_s * 1e6  # simulated seconds -> "microseconds"
            events.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": 1,
                    "name": f"{label} bytes",
                    "ts": ts,
                    "args": {"bytes": float(bytes_w[w].sum())},
                }
            )
            events.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": 1,
                    "name": f"{label} busy",
                    "ts": ts,
                    "args": {"max_busy_frac": float(busy_w[w].max()) / window_s},
                }
            )
            events.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": 1,
                    "name": f"{label} queue",
                    "ts": ts,
                    "args": {"mean_depth": float(depth_w[w].mean())},
                }
            )
    return events
