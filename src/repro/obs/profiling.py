"""Wall-clock profiling hooks feeding the metrics registry and tracer.

Control-plane code (the scale-factor search, repartition planning) wraps
its expensive sections in :func:`profiled` so every run records a wall-time
histogram (``profile.<name>.seconds``) and, when tracing is enabled, a
``profile`` event.  Use the decorator form for whole functions::

    @profile("scale_search")
    def optimal_scale_factor(...): ...

Simulated-time measurements do NOT belong here — those are events with
explicit ``ts`` stamps; this module is for real CPU seconds only.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, TypeVar

from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer

__all__ = ["profiled", "profile"]

F = TypeVar("F", bound=Callable[..., Any])

#: Wall-time buckets: 10 us .. ~10 s, finer than the latency default since
#: control-plane sections are usually sub-second.
_WALL_BUCKETS = tuple(1e-5 * (10.0 ** (i / 3.0)) for i in range(19))


@contextmanager
def profiled(name: str, **labels: Any) -> Iterator[None]:
    """Record the wall time of a block under ``profile.<name>.seconds``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        get_registry().histogram(
            f"profile.{name}.seconds", buckets=_WALL_BUCKETS, **labels
        ).observe(elapsed)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                ev.PROFILE, ts=start, name=name, wall_s=elapsed, **labels
            )


def profile(name: str, **labels: Any) -> Callable[[F], F]:
    """Decorator form of :func:`profiled`."""

    def deco(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with profiled(name, **labels):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco
