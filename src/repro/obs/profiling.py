"""Deprecated shim: flat profiling hooks, superseded by :mod:`repro.obs.spans`.

``profiled``/``profile`` used to time a block and emit one flat
``profile`` event; they are now thin aliases over the hierarchical span
API, so existing call sites transparently gain parent/child ids, span
collection, and the Chrome exporter.  Two visible changes:

* the wall-time histogram is named ``span.<name>.seconds`` (was
  ``profile.<name>.seconds``), and caller labels no longer become metric
  labels (high-cardinality labels used to mint one histogram per value);
* the trace event is ``span`` (:data:`repro.obs.events.SPAN`) instead of
  ``profile`` — replay (:func:`repro.obs.replay.span_tree`) and the
  Chrome exporter understand both.

Labels named after reserved record fields (``name``, ``ts``, ``wall_s``,
...) are namespaced to ``label_<key>`` instead of raising ``TypeError``
(the bug the old implementation had: it forwarded ``**labels`` straight
into ``tracer.event(..., name=..., wall_s=...)``).

New code should import from :mod:`repro.obs.spans` directly; importing
this module raises a :class:`DeprecationWarning` (visible under
``python -W error::DeprecationWarning`` and in pytest runs).
"""

from __future__ import annotations

import warnings

from repro.obs.spans import span, span_wrap

__all__ = ["profiled", "profile"]

warnings.warn(
    "repro.obs.profiling is deprecated; import span/span_wrap from "
    "repro.obs.spans instead",
    DeprecationWarning,
    stacklevel=2,
)

#: Context-manager form — alias of :func:`repro.obs.spans.span`.
profiled = span

#: Decorator form — alias of :func:`repro.obs.spans.span_wrap`.
profile = span_wrap
