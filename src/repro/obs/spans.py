"""Hierarchical wall-clock spans: parent/child timing over tracer + registry.

A *span* times a block on the wall clock and knows its place in the call
tree: each span gets a process-unique ``span_id`` and records the id of
the span that was open when it started (``parent``).  The experiment
harness opens one root span per experiment, the control-plane sections it
reaches (the Algorithm 1 scale-factor search, Algorithm 2 repartition
planning, byte-store reads/writes) open child spans, and the resulting
forest is what run manifests (:mod:`repro.obs.runinfo`) and the
Chrome/Perfetto exporter (:func:`chrome_trace`) consume.

This module supersedes the removed flat profiling hooks (the old
``repro.obs.profiling``).  A finished span is reported three ways:

* a ``span.<name>.seconds`` histogram observation in the process-wide
  metrics registry (always on — labels deliberately do **not** become
  metric labels, so high-cardinality span labels cannot explode the
  registry);
* a :class:`SpanRecord` appended to every installed
  :class:`SpanCollector` (see :func:`collect_spans`) — how ``run_all``
  gathers per-span wall times without requiring a tracer;
* when tracing is enabled, one ``span`` event
  (:data:`repro.obs.events.SPAN`) carrying ``name``, ``span_id``,
  ``parent``, ``ts`` (start, ``time.perf_counter`` seconds) and
  ``wall_s`` — replayable into a tree with
  :func:`repro.obs.replay.span_tree`.

Caller-supplied labels that would collide with the reserved record fields
(``event``, ``ts``, ``name``, ``wall_s``, ``span_id``, ``parent``) are
namespaced to ``label_<key>`` instead of raising — the bug the old
``profiled`` hooks had.

Usage::

    with span("scale_search", mode="sweep"):
        ...

    @span_wrap("repartition.plan")
    def plan(...): ...

Simulated-time measurements do NOT belong here — those are events with
explicit ``ts`` stamps; spans measure real CPU seconds only.  The
simulator's per-request hot path is intentionally *not* spanned (the
disabled-tracing overhead budget of ``benchmarks/bench_obs_overhead.py``
covers that loop); spans wrap control-plane sections and whole runs.
"""

from __future__ import annotations

import functools
import itertools
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, TypeVar

from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.tracing import Tracer, get_tracer

__all__ = [
    "RESERVED_SPAN_FIELDS",
    "SpanCollector",
    "SpanRecord",
    "chrome_trace",
    "collect_spans",
    "current_span_id",
    "sanitize_labels",
    "span",
    "span_wrap",
    "write_chrome_trace",
]

F = TypeVar("F", bound=Callable[..., Any])

#: Record fields owned by the span machinery; caller labels with these
#: names are renamed to ``label_<key>`` rather than raising ``TypeError``.
RESERVED_SPAN_FIELDS = frozenset(
    {"event", "ts", "name", "wall_s", "span_id", "parent"}
)

#: Wall-time buckets: 10 us .. ~10 s, finer than the latency default since
#: control-plane sections are usually sub-second.
WALL_BUCKETS = tuple(1e-5 * (10.0 ** (i / 3.0)) for i in range(19))

_next_span_id = itertools.count(1)
_local = threading.local()


def sanitize_labels(labels: dict[str, Any]) -> dict[str, Any]:
    """Namespace reserved keys so labels can never collide with span fields.

    ``{"name": "x", "k": 3}`` becomes ``{"label_name": "x", "k": 3}``.
    """
    return {
        (f"label_{k}" if k in RESERVED_SPAN_FIELDS else k): v
        for k, v in labels.items()
    }


def _span_stack() -> list[int]:
    stack = getattr(_local, "span_stack", None)
    if stack is None:
        stack = _local.span_stack = []
    return stack


def _collector_stack() -> list["SpanCollector"]:
    stack = getattr(_local, "collectors", None)
    if stack is None:
        stack = _local.collectors = []
    return stack


def current_span_id() -> int | None:
    """Id of the innermost open span on this thread (``None`` outside)."""
    stack = _span_stack()
    return stack[-1] if stack else None


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: identity, tree position, and wall time."""

    name: str
    span_id: int
    parent: int | None
    start: float  # time.perf_counter() seconds at entry
    wall_s: float
    labels: dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.wall_s

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-friendly form (what run manifests store)."""
        out: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent": self.parent,
            "start": self.start,
            "wall_s": self.wall_s,
        }
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class SpanCollector:
    """Accumulate finished :class:`SpanRecord` objects in memory.

    Install with :func:`collect_spans`; collectors nest (every active
    collector sees every span), so ``run_all`` keeps one per experiment
    for the manifest plus one session-wide for the Chrome export.
    """

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()

    def roots(self) -> list[SpanRecord]:
        """Records whose parent is not itself a collected span."""
        ids = {r.span_id for r in self.records}
        return [
            r for r in self.records if r.parent is None or r.parent not in ids
        ]

    def wall_by_name(self) -> dict[str, float]:
        """Total wall seconds per span name (sorted by name)."""
        totals: dict[str, float] = {}
        for r in self.records:
            totals[r.name] = totals.get(r.name, 0.0) + r.wall_s
        return dict(sorted(totals.items()))


@contextmanager
def collect_spans(collector: SpanCollector | None = None) -> Iterator[SpanCollector]:
    """Install ``collector`` (or a fresh one) for the block, on this thread."""
    collector = collector if collector is not None else SpanCollector()
    stack = _collector_stack()
    stack.append(collector)
    try:
        yield collector
    finally:
        stack.remove(collector)


@contextmanager
def span(
    name: str, /, *, tracer: Tracer | None = None, **labels: Any
) -> Iterator[int]:
    """Time a block as one span in the current tree; yields the span id.

    Reports to the registry (``span.<name>.seconds`` histogram), to every
    collector installed via :func:`collect_spans`, and — when tracing is
    enabled — to the tracer as one :data:`~repro.obs.events.SPAN` event.
    ``tracer`` overrides the process-wide tracer for this span only.
    """
    if not isinstance(name, str) or not name:
        raise TypeError("span name must be a non-empty string")
    sid = next(_next_span_id)
    stack = _span_stack()
    parent = stack[-1] if stack else None
    stack.append(sid)
    start = time.perf_counter()
    try:
        yield sid
    finally:
        wall = time.perf_counter() - start
        stack.pop()
        get_registry().histogram(
            f"span.{name}.seconds", buckets=WALL_BUCKETS
        ).observe(wall)
        collectors = _collector_stack()
        clean = sanitize_labels(labels)
        if collectors:
            record = SpanRecord(
                name=name,
                span_id=sid,
                parent=parent,
                start=start,
                wall_s=wall,
                labels=clean,
            )
            for collector in collectors:
                collector.records.append(record)
        t = tracer if tracer is not None else get_tracer()
        if t.enabled:
            t.event(
                ev.SPAN,
                ts=start,
                name=name,
                span_id=sid,
                parent=parent,
                wall_s=wall,
                **clean,
            )


def span_wrap(name: str | None = None, /, **labels: Any) -> Callable[[F], F]:
    """Decorator form of :func:`span`; defaults to the function's name."""

    def deco(fn: F) -> F:
        span_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(span_name, **labels):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco


# -- Chrome/Perfetto trace-event export ---------------------------------------

def _as_span_dicts(source: Any) -> list[dict[str, Any]]:
    """Normalize collectors, records, or trace events to span dicts."""
    if isinstance(source, SpanCollector):
        source = source.records
    out: list[dict[str, Any]] = []
    for item in source:
        if isinstance(item, SpanRecord):
            d = item.to_dict()
            d["labels"] = dict(item.labels)
            out.append(d)
            continue
        kind = item.get("event")
        if kind == ev.SPAN:
            labels = {
                k: v
                for k, v in item.items()
                if k not in ("event", "ts", "name", "span_id", "parent", "wall_s")
            }
            out.append(
                {
                    "name": item.get("name", "?"),
                    "span_id": item.get("span_id"),
                    "parent": item.get("parent"),
                    "start": float(item.get("ts", 0.0)),
                    "wall_s": float(item.get("wall_s", 0.0)),
                    "labels": labels,
                }
            )
        elif kind == ev.PROFILE:  # legacy flat profiling hook
            labels = {
                k: v
                for k, v in item.items()
                if k not in ("event", "ts", "name", "wall_s")
            }
            out.append(
                {
                    "name": item.get("name", "?"),
                    "span_id": None,
                    "parent": None,
                    "start": float(item.get("ts", 0.0)),
                    "wall_s": float(item.get("wall_s", 0.0)),
                    "labels": labels,
                }
            )
        elif "name" in item and "wall_s" in item:  # manifest span dicts
            out.append(
                {
                    "name": item["name"],
                    "span_id": item.get("span_id"),
                    "parent": item.get("parent"),
                    "start": float(item.get("start", 0.0)),
                    "wall_s": float(item["wall_s"]),
                    "labels": dict(item.get("labels", {})),
                }
            )
    return out


def chrome_trace(
    source: Any,
    process_name: str = "repro",
    extra_events: list[dict[str, Any]] | None = None,
) -> dict[str, Any]:
    """Convert spans to the Chrome trace-event JSON format.

    ``source`` may be a :class:`SpanCollector`, an iterable of
    :class:`SpanRecord` / span dicts, or replayed trace events (``span``
    and legacy ``profile`` records).  Each span becomes one complete
    ("X"-phase) event with microsecond timestamps, so the output loads
    directly in ``chrome://tracing`` and https://ui.perfetto.dev.

    ``extra_events`` appends preformatted trace events verbatim — e.g.
    the counter ("C"-phase) series from
    :func:`repro.obs.timeline.chrome_counter_events`, which live on
    their own pid so sim-time counters never shear the wall-clock spans.
    """
    spans = _as_span_dicts(source)
    trace_events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for s in spans:
        args: dict[str, Any] = dict(s.get("labels") or {})
        if s.get("span_id") is not None:
            args["span_id"] = s["span_id"]
        if s.get("parent") is not None:
            args["parent"] = s["parent"]
        trace_events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "name": s["name"],
                "cat": "span",
                "ts": s["start"] * 1e6,  # perf_counter seconds -> microseconds
                "dur": max(s["wall_s"], 0.0) * 1e6,
                "args": args,
            }
        )
    if extra_events:
        trace_events.extend(extra_events)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    source: Any,
    path: str | Path,
    process_name: str = "repro",
    extra_events: list[dict[str, Any]] | None = None,
) -> int:
    """Write :func:`chrome_trace` output to ``path``; returns the span count."""
    doc = chrome_trace(
        source, process_name=process_name, extra_events=extra_events
    )
    Path(path).write_text(json.dumps(doc), encoding="utf-8")
    return sum(1 for e in doc["traceEvents"] if e["ph"] == "X")
