"""Cluster health board: fold trace events into renderable dash frames.

The view layer of the live-telemetry pipeline (`repro dash`): a
:class:`DashBoard` folds JSONL trace events — from a finished file, a
live ``--follow`` tail, or streaming stdin — into bounded per-scheme
state, and :func:`render_frame` draws the board as text:

* per-server utilization bars (bytes-served share of the busiest
  server), reconstructed from ``read`` events exactly like
  :func:`repro.obs.replay.per_server_loads`;
* queue depth and byte throughput from ``timeline_window`` events;
* the hot-key top-K via the same Space-Saving summary
  :mod:`repro.obs.popularity` uses online;
* active SLO alerts (opened by ``slo_breach``, cleared by
  ``slo_recovered``) and per-objective budget remaining;
* rolling latency percentiles over a bounded window of recent
  ``read_done`` completions;
* the causal critical-path edge split (queue/service/transfer/join
  seconds summed over each request's critical chain), folded from
  ``cspan`` span-tree events.

Folding is incremental and bounded-memory, so following a live
million-request trace is safe.  :func:`dash_from_manifest` builds the
same board from a finished run manifest instead (schema v2+ sections:
``timelines``, ``popularity``, ``slo``, ``causal``, plus the metrics
snapshot), so
``repro dash results/fig13.json`` works without a trace.

Rendering has two modes: a TTY mode that clears the screen between
frames (``repro watch`` style) and a plain frame mode for CI and logs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, Mapping

import numpy as np

from repro.obs import events as ev
from repro.obs.metrics import parse_snapshot_key
from repro.obs.popularity import SpaceSavingTopK

__all__ = [
    "DashBoard",
    "dash_from_manifest",
    "follow_lines",
    "parse_json_lines",
    "render_frame",
]

#: Rolling completion-latency window per scheme (enough for a stable p99).
_LATENCY_WINDOW = 4096
#: Hot-key summary capacity per scheme.
_TOPK_CAPACITY = 64


class _SchemeState:
    """Bounded fold of one scheme's events."""

    __slots__ = (
        "scheme",
        "server_bytes",
        "requests",
        "misses",
        "stragglers",
        "latencies",
        "hot",
        "active_alerts",
        "total_breaches",
        "budget_remaining",
        "queue_depth",
        "window_bytes",
        "last_ts",
        "crit_edges",
        "crit_requests",
    )

    def __init__(self, scheme: str) -> None:
        self.scheme = scheme
        self.server_bytes = np.zeros(0)
        self.requests = 0
        self.misses = 0
        self.stragglers = 0
        self.latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self.hot = SpaceSavingTopK(_TOPK_CAPACITY)
        #: (objective, severity) -> the opening ``slo_breach`` record.
        self.active_alerts: dict[tuple[str, str], dict[str, Any]] = {}
        self.total_breaches = 0
        #: objective -> last reported budget fraction remaining.
        self.budget_remaining: dict[str, float] = {}
        self.queue_depth: float | None = None
        self.window_bytes: float | None = None
        self.last_ts = 0.0
        #: edge name -> critical-path seconds summed over requests.
        self.crit_edges: dict[str, float] = {
            "queue": 0.0, "service": 0.0, "transfer": 0.0, "join": 0.0
        }
        self.crit_requests = 0


class DashBoard:
    """Incremental event fold across every scheme in a trace."""

    def __init__(self) -> None:
        self._schemes: dict[str, _SchemeState] = {}
        self.n_events = 0
        self.n_unknown = 0
        # Cluster-wide membership fold: ``membership``/``epoch`` events
        # carry no scheme label (one topology serves every scheme), so
        # this state lives on the board, not per scheme.  ``membership``
        # maps epoch index -> {n_servers, added, removed, t, moved}
        # where ``moved`` maps a label (scheme, or "plan" when folded
        # from ``repartition_time`` trace events) to bytes moved.
        self.membership: dict[int, dict[str, Any]] = {}
        self.last_membership_event: dict[str, Any] | None = None
        self.current_epoch: int | None = None
        self.n_servers: int | None = None

    @property
    def schemes(self) -> list[str]:
        return sorted(self._schemes)

    def state(self, scheme: str) -> _SchemeState:
        st = self._schemes.get(scheme)
        if st is None:
            st = self._schemes[scheme] = _SchemeState(scheme)
        return st

    def feed(self, record: Mapping[str, Any]) -> None:
        """Fold one trace record; unknown kinds count but never raise."""
        kind = record.get("event")
        self.n_events += 1
        ts = record.get("ts")
        if kind == ev.READ:
            st = self.state(str(record.get("scheme", "?")))
            st.requests += 1
            st.misses += bool(record.get("miss"))
            st.stragglers += bool(record.get("straggler"))
            servers = record.get("servers")
            sizes = record.get("sizes")
            if servers:
                sv = np.asarray(servers, dtype=np.int64)
                sz = np.asarray(
                    sizes if sizes is not None else np.ones(sv.size),
                    dtype=np.float64,
                )
                width = int(sv.max()) + 1
                if width > st.server_bytes.size:
                    grown = np.zeros(max(width, 2 * st.server_bytes.size))
                    grown[: st.server_bytes.size] = st.server_bytes
                    st.server_bytes = grown
                np.add.at(st.server_bytes, sv, sz)
            if "file_id" in record:
                st.hot.update(int(record["file_id"]))
            if ts is not None:
                st.last_ts = float(ts)
        elif kind == ev.READ_DONE:
            st = self.state(str(record.get("scheme", "?")))
            if "latency" in record:
                st.latencies.append(float(record["latency"]))
            if ts is not None:
                st.last_ts = float(ts)
        elif kind == ev.SLO_BREACH:
            st = self.state(str(record.get("scheme", "?")))
            key = (
                str(record.get("objective", "?")),
                str(record.get("severity", "?")),
            )
            st.active_alerts[key] = dict(record)
            st.total_breaches += 1
        elif kind == ev.SLO_RECOVERED:
            st = self.state(str(record.get("scheme", "?")))
            st.active_alerts.pop(
                (
                    str(record.get("objective", "?")),
                    str(record.get("severity", "?")),
                ),
                None,
            )
        elif kind == ev.TIMELINE_WINDOW:
            st = self.state(str(record.get("scheme", "?")))
            if "queue_depth_mean" in record:
                st.queue_depth = float(record["queue_depth_mean"])
            if "bytes" in record:
                st.window_bytes = float(record["bytes"])
        elif kind == ev.CSPAN:
            # Causal span trees: the root counts the request, the
            # critical fetch contributes queue/service/transfer seconds,
            # the join span the residual join edge.  O(1) state per
            # scheme, so following a million-request trace stays cheap.
            st = self.state(str(record.get("scheme", "?")))
            name = record.get("name")
            if name == "request":
                st.crit_requests += 1
            elif name == "fetch" and record.get("critical"):
                st.crit_edges["queue"] += float(record.get("queue_s", 0.0))
                st.crit_edges["service"] += float(
                    record.get("service_s", 0.0)
                )
                st.crit_edges["transfer"] += float(
                    record.get("transfer_s", 0.0)
                )
            elif name == "join":
                st.crit_edges["join"] += float(record.get("join_s", 0.0))
        elif kind == ev.MEMBERSHIP:
            self.last_membership_event = dict(record)
        elif kind == ev.EPOCH:
            idx = int(record.get("epoch", 0))
            row = self.membership.setdefault(idx, {"moved": {}})
            row["n_servers"] = int(record.get("n_servers", 0))
            row["added"] = len(record.get("added") or ())
            row["removed"] = len(record.get("removed") or ())
            row["t"] = float(record.get("ts", 0.0))
            if self.current_epoch is None or idx >= self.current_epoch:
                self.current_epoch = idx
                self.n_servers = row["n_servers"]
        elif kind == ev.REPARTITION_TIME and record.get("mode") == "epoch":
            row = self.membership.setdefault(
                int(record.get("epoch", 0)), {"moved": {}}
            )
            row["moved"]["plan"] = row["moved"].get("plan", 0.0) + float(
                record.get("moved_bytes", 0.0)
            )
        elif kind == ev.SIMULATION_END:
            st = self.state(str(record.get("scheme", "?")))
            n = record.get("n_servers")
            if n and int(n) > st.server_bytes.size:
                grown = np.zeros(int(n))
                grown[: st.server_bytes.size] = st.server_bytes
                st.server_bytes = grown
        elif kind not in ev.EVENT_LAYER:
            self.n_unknown += 1

    def feed_many(self, records) -> None:
        for record in records:
            if isinstance(record, Mapping):
                self.feed(record)


def dash_from_manifest(manifest: Mapping[str, Any]) -> DashBoard:
    """Build a board from a finished run manifest's sections.

    Per-server loads come out of the ``sim.server_bytes`` metric series
    (labels parsed back from the snapshot keys); the hot list and the
    imbalance come from the last popularity section per scheme; alerts
    and budgets from the ``slo`` sections.  Works on any supported
    schema version — sections a version lacks just leave parts of the
    board blank.
    """
    board = DashBoard()
    for key, value in (manifest.get("metrics") or {}).items():
        try:
            name, labels = parse_snapshot_key(key)
        except ValueError:
            continue
        scheme = labels.get("scheme", "?")
        if name == "sim.server_bytes" and "server_id" in labels:
            st = board.state(scheme)
            sid = int(labels["server_id"])
            if sid >= st.server_bytes.size:
                grown = np.zeros(sid + 1)
                grown[: st.server_bytes.size] = st.server_bytes
                st.server_bytes = grown
            st.server_bytes[sid] += float(value)
        elif name == "sim.requests":
            board.state(scheme).requests += int(value)
        elif name == "sim.misses":
            board.state(scheme).misses += int(value)
        elif name == "sim.straggler_reads":
            board.state(scheme).stragglers += int(value)
        elif name == "sim.latency_seconds" and isinstance(value, Mapping):
            st = board.state(scheme)
            for pct in ("p50", "p95", "p99"):
                if pct in value:
                    st.latencies.append(float(value[pct]))
    for section in manifest.get("popularity") or []:
        st = board.state(str(section.get("scheme", "?")))
        for entry in section.get("top") or []:
            st.hot.update(int(entry["file_id"]), float(entry["count"]))
    for section in manifest.get("causal") or []:
        st = board.state(str(section.get("scheme", "?")))
        edges = section.get("edges") or {}
        st.crit_edges["queue"] += float(edges.get("queue_s", 0.0))
        st.crit_edges["service"] += float(edges.get("service_s", 0.0))
        st.crit_edges["transfer"] += float(edges.get("transfer_s", 0.0))
        st.crit_edges["join"] += float(edges.get("join_s", 0.0))
        st.crit_requests += int(edges.get("requests", 0))
    for section in manifest.get("slo") or []:
        st = board.state(str(section.get("scheme", "?")))
        for objective in section.get("objectives", ()):
            st.budget_remaining[str(objective.get("name", "?"))] = float(
                objective.get("budget_remaining", 1.0)
            )
        for alert in section.get("alerts", ()):
            st.total_breaches += 1
            if alert.get("active"):
                st.active_alerts[
                    (
                        str(alert.get("objective", "?")),
                        str(alert.get("severity", "?")),
                    )
                ] = dict(alert)
    for section in manifest.get("membership") or []:
        scheme = str(section.get("scheme", "?"))
        for entry in section.get("epochs") or []:
            idx = int(entry.get("epoch", 0))
            row = board.membership.setdefault(idx, {"moved": {}})
            row.setdefault("n_servers", int(entry.get("n_servers", 0)))
            row.setdefault("added", len(entry.get("added") or ()))
            row.setdefault("removed", len(entry.get("removed") or ()))
            row.setdefault("t", float(entry.get("t_start", 0.0)))
            moved = entry.get("moved_bytes")
            if moved is not None:
                row["moved"][scheme] = float(moved)
            if board.current_epoch is None or idx >= board.current_epoch:
                board.current_epoch = idx
                board.n_servers = row["n_servers"]
        events = section.get("events") or []
        if events and board.last_membership_event is None:
            board.last_membership_event = dict(events[-1])
    return board


# -- rendering -------------------------------------------------------------


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{n:.0f}B"
        n /= 1024
    return f"{n:.1f}TiB"  # pragma: no cover - loop always returns


def render_frame(
    board: DashBoard,
    *,
    k: int = 5,
    bar_width: int = 24,
    max_servers: int = 32,
) -> str:
    """One plain-text frame of the cluster health board."""
    lines: list[str] = []
    if not board.schemes and not board.membership:
        return "(no simulator events yet)\n"
    for scheme in board.schemes:
        st = board.state(scheme)
        lats = np.asarray(st.latencies, dtype=np.float64)
        head = f"== {scheme} ==  requests={st.requests}"
        if st.requests:
            head += f"  miss={st.misses / st.requests:.1%}"
        if st.stragglers:
            head += f"  stragglers={st.stragglers}"
        if st.last_ts:
            head += f"  t={st.last_ts:.1f}s"
        lines.append(head)
        if lats.size:
            p50, p95, p99 = np.percentile(lats, [50, 95, 99])
            lines.append(
                f"latency (last {lats.size}): "
                f"p50={p50:.4f}s p95={p95:.4f}s p99={p99:.4f}s"
            )
        if st.queue_depth is not None or st.window_bytes is not None:
            parts = []
            if st.queue_depth is not None:
                parts.append(f"queue_depth={st.queue_depth:.2f}")
            if st.window_bytes is not None:
                parts.append(f"window_bytes={_fmt_bytes(st.window_bytes)}")
            lines.append("  ".join(parts))
        crit_total = sum(st.crit_edges.values())
        if st.crit_requests and crit_total > 0:
            split = "  ".join(
                f"{edge}={seconds / crit_total:.1%}"
                for edge, seconds in st.crit_edges.items()
            )
            lines.append(
                f"critical path ({st.crit_requests} requests, "
                f"{crit_total:.1f}s): {split}"
            )
        loads = st.server_bytes
        busy = loads[loads > 0]
        if busy.size:
            peak = float(loads.max())
            mean = float(busy.mean())
            lines.append(
                f"servers ({int((loads > 0).sum())} busy, "
                f"max/mean={peak / mean:.2f}):"
            )
            shown = min(int(loads.size), max_servers)
            for sid in range(shown):
                share = loads[sid] / peak if peak else 0.0
                lines.append(
                    f"  s{sid:<3d} |{_bar(share, bar_width)}| "
                    f"{_fmt_bytes(float(loads[sid]))}"
                )
            if loads.size > shown:
                lines.append(f"  ... {int(loads.size) - shown} more servers")
        top = st.hot.top(k)
        if top:
            hot = "  ".join(
                f"f{fid}:{int(count)}" for fid, count, _err in top
            )
            lines.append(f"hot keys: {hot}")
        if st.budget_remaining:
            budgets = "  ".join(
                f"{name}={left:.0%}"
                for name, left in sorted(st.budget_remaining.items())
            )
            lines.append(f"slo budget left: {budgets}")
        if st.active_alerts:
            for (objective, severity), alert in sorted(
                st.active_alerts.items()
            ):
                burn = alert.get("burn") or alert.get("peak_burn")
                burn_s = f" burn={float(burn):.1f}x" if burn else ""
                lines.append(
                    f"ALERT [{severity}] {objective}{burn_s} "
                    f"(since t={float(alert.get('t_start', 0.0)):.1f}s)"
                )
        elif st.total_breaches:
            lines.append(
                f"alerts: none active ({st.total_breaches} total breaches)"
            )
        else:
            lines.append("alerts: none")
        lines.append("")
    if board.membership:
        head = "== cluster membership =="
        if board.n_servers is not None:
            head += f"  servers={board.n_servers}"
        if board.current_epoch is not None:
            head += f"  epoch={board.current_epoch}"
        lines.append(head)
        last = board.last_membership_event
        if last:
            t_last = float(last.get("ts", last.get("t", 0.0)) or 0.0)
            lines.append(
                f"last event: {last.get('kind', '?')} "
                f"s{last.get('server_id', '?')} at t={t_last:.1f}s"
            )
        lines.append("epoch | servers | change | bytes moved")
        for idx in sorted(board.membership):
            row = board.membership[idx]
            delta = "".join(
                part
                for part, n in (
                    (f"+{row.get('added', 0)}", row.get("added", 0)),
                    (f"-{row.get('removed', 0)}", row.get("removed", 0)),
                )
                if n
            ) or "-"
            moved = row.get("moved") or {}
            moved_s = (
                "  ".join(
                    f"{label}={_fmt_bytes(b)}"
                    for label, b in sorted(moved.items())
                )
                if moved
                else "-"
            )
            lines.append(
                f"  {idx:<3d} | {row.get('n_servers', '?'):>7} "
                f"| {delta:<6} | {moved_s}"
            )
        lines.append("")
    if board.n_unknown:
        lines.append(f"({board.n_unknown} unknown event records skipped)")
        lines.append("")
    return "\n".join(lines)


# -- live following --------------------------------------------------------


def follow_lines(path, *, poll_s: float = 0.5, idle_limit: float | None = None):
    """Yield complete JSONL lines from a growing trace file.

    Only lines terminated by a newline are yielded — a partially written
    final line (the writer mid-record) stays buffered until its newline
    arrives, so a live follow never feeds the board a truncated record.
    Stops after ``idle_limit`` seconds without growth (``None`` follows
    forever).
    """
    import time

    buffer = ""
    idle = 0.0
    with open(path, "r", encoding="utf-8") as fh:
        while True:
            chunk = fh.read(65536)
            if chunk:
                idle = 0.0
                buffer += chunk
                while True:
                    line, sep, rest = buffer.partition("\n")
                    if not sep:
                        break
                    buffer = rest
                    if line.strip():
                        yield line
            else:
                if idle_limit is not None and idle >= idle_limit:
                    return
                time.sleep(poll_s)
                idle += poll_s


def parse_json_lines(lines) -> Iterator[dict[str, Any]]:
    """JSON-object records out of an iterable of lines; junk is skipped."""
    import json

    for line in lines:
        try:
            record = json.loads(line)
        except (ValueError, TypeError):
            continue
        if isinstance(record, dict):
            yield record
