"""Aggregate run manifests into markdown and flag regressions between runs.

The read side of :mod:`repro.obs.runinfo`: :func:`render_report` turns a
set of ``results/<exp>.json`` manifests into an EXPERIMENTS.md-style
markdown summary, and :func:`diff_manifests` compares two manifest sets —
a fresh run against a baseline — and reports wall-time and metric
regressions beyond configurable thresholds.  ``repro report`` is the CLI
front end; with ``--diff`` it exits non-zero when regressions are found,
which is what the CI smoke job gates on.

Regression rules
----------------
* **wall time** (experiment total, per-span-name totals, and any leaf
  that is itself a wall-clock measurement): regressed when
  ``new > base * (1 + wall_tolerance)`` *and* the absolute growth
  exceeds ``min_wall_s`` — the floor keeps sub-second timing noise from
  tripping the gate on fast experiments.  A leaf counts as wall-clock
  when its key looks like a timer (``*.seconds*``, ``*wall*``,
  ``*time_s``, ``*duration*`` — e.g. the ``span.<name>.seconds``
  histograms in the metrics snapshot), or when the manifest declares
  ``config.timing_rows`` (fig10's rows are measured search times).
* **metrics** (the remaining numeric values in table rows and the
  metrics snapshot): regressed when the relative change exceeds
  ``metric_tolerance`` in either direction — experiment rows are seeded
  and deterministic, so identical configs must produce identical
  numbers.  Non-finite values compare by "both non-finite or regressed".
* **scheduling bookkeeping** (``workload_cache.*`` hit/miss counters) is
  excluded from the diff: cache warmth depends on execution order, so a
  ``run_all --jobs N`` pass stays diff-clean against a serial pass.
* a baseline experiment missing from the new set is always a regression.
* manifests written by **different schema versions** do not diff:
  later schemas add keys (``timelines`` in v2, ``popularity`` in v3)
  whose absence in the older set would read as spurious regressions, so
  :func:`diff_manifests` raises :class:`SchemaMismatchError` instead —
  regenerate both sets with the same build.
"""

from __future__ import annotations

import math
import re
from typing import Any

__all__ = [
    "SchemaMismatchError",
    "diff_manifests",
    "render_diff",
    "render_report",
]


class SchemaMismatchError(ValueError):
    """Two manifest sets cannot be diffed across schema versions."""

#: Diff thresholds (overridable per call / via CLI flags).
WALL_TOLERANCE = 0.5  # +50 % wall time
METRIC_TOLERANCE = 1e-6  # seeded runs reproduce exactly; allow float dust
MIN_WALL_S = 0.25  # ignore absolute wall growth below this


def _fmt(value: Any) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.4g}"
    return f"{value:.4f}".rstrip("0").rstrip(".")


def _markdown_table(rows: list[dict[str, Any]]) -> str:
    if not rows:
        return "_(no rows)_"
    columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(c, "")) for c in columns) + " |"
        )
    return "\n".join(lines)


def _span_totals(manifest: dict[str, Any]) -> dict[str, float]:
    totals: dict[str, float] = {}
    for s in manifest.get("spans", []):
        name = s.get("name", "?")
        totals[name] = totals.get(name, 0.0) + float(s.get("wall_s", 0.0))
    return dict(sorted(totals.items()))


def _peak_rss_mb(manifest: dict[str, Any]) -> Any:
    """Schema-v4 ``peak_rss_bytes`` as MiB, or ``-`` where unrecorded."""
    rss = manifest.get("peak_rss_bytes")
    if rss is None:
        return "-"
    return f"{float(rss) / (1024 * 1024):.0f}"


def _req_per_s(manifest: dict[str, Any]) -> Any:
    """Simulated-request throughput: v4 ``total_requests`` over wall_s."""
    total = manifest.get("total_requests")
    wall = float(manifest.get("wall_s") or 0.0)
    if total is None or not total or wall <= 0:
        return "-"
    return f"{float(total) / wall:.0f}"


def render_report(manifests: dict[str, dict[str, Any]]) -> str:
    """Render a manifest set as one markdown document."""
    lines = ["# Experiment report", ""]
    if not manifests:
        lines.append("_(no manifests)_")
        return "\n".join(lines) + "\n"
    shas = {m.get("git_sha") for m in manifests.values()}
    sha = shas.pop() if len(shas) == 1 else "mixed"
    lines.append(
        f"{len(manifests)} experiment(s), git `{(sha or 'unknown')[:12]}`."
    )
    lines.append("")
    summary = [
        {
            "experiment": name,
            "rows": len(m["rows"]),
            "wall_s": m["wall_s"],
            "req_per_s": _req_per_s(m),
            "peak_rss_mb": _peak_rss_mb(m),
            "spans": len(m["spans"]),
            "scale": m["scale"] if m["scale"] is not None else "-",
            "config": m["config_hash"][:10],
        }
        for name, m in sorted(manifests.items())
    ]
    lines.append(_markdown_table(summary))
    for name, m in sorted(manifests.items()):
        lines += ["", f"## {name}", "", _markdown_table(m["rows"])]
        totals = _span_totals(m)
        if totals:
            wall = max(m["wall_s"], 1e-12)
            span_rows = [
                {
                    "span": span_name,
                    "wall_s": seconds,
                    "share": f"{min(seconds / wall, 1.0):.0%}",
                }
                for span_name, seconds in sorted(
                    totals.items(), key=lambda kv: -kv[1]
                )[:12]
            ]
            lines += ["", "Spans (total wall seconds by name):", ""]
            lines.append(_markdown_table(span_rows))
        pop_rows = [
            {
                "scheme": s.get("scheme", "?"),
                "requests": s.get("requests", 0),
                "alpha_est": (
                    s["alpha_est"] if s.get("alpha_est") is not None else "-"
                ),
                "top_file": (
                    s["top"][0]["file_id"] if s.get("top") else "-"
                ),
                "drift": sum(
                    1 for a in s.get("alerts", ()) if a.get("kind") == "drift"
                ),
                "hotspot": sum(
                    1
                    for a in s.get("alerts", ())
                    if a.get("kind") == "hotspot"
                ),
            }
            for s in m.get("popularity") or []
        ]
        if pop_rows:
            lines += ["", "Popularity (streaming sketch):", ""]
            lines.append(_markdown_table(pop_rows))
        slo_rows = [
            {
                "scheme": s.get("scheme", "?"),
                "objective": o.get("name", "?"),
                "met": "yes" if o.get("met") else "NO",
                "bad_fraction": o.get("bad_fraction", 0.0),
                "budget": o.get("budget", "-"),
                "budget_left": o.get("budget_remaining", "-"),
                "breaches": o.get("breaches", 0),
            }
            for s in m.get("slo") or []
            for o in s.get("objectives", ())
        ]
        if slo_rows:
            lines += ["", "SLOs (burn-rate evaluation):", ""]
            lines.append(_markdown_table(slo_rows))
        causal_rows = [
            {
                "scheme": s.get("scheme", "?"),
                "requests": s.get("n_requests", 0),
                "conservation": (
                    "ok" if (s.get("conservation") or {}).get("ok") else "NO"
                ),
                "queue_s": (s.get("edges") or {}).get("queue_s", 0.0),
                "service_s": (s.get("edges") or {}).get("service_s", 0.0),
                "transfer_s": (s.get("edges") or {}).get("transfer_s", 0.0),
                "join_s": (s.get("edges") or {}).get("join_s", 0.0),
            }
            for s in m.get("causal") or []
        ]
        if causal_rows:
            lines += ["", "Critical path (causal edge totals):", ""]
            lines.append(_markdown_table(causal_rows))
    return "\n".join(lines) + "\n"


def _numeric_leaves(obj: Any, prefix: str = "") -> dict[str, float]:
    """Flatten nested rows/metrics into ``{path: float}`` for comparison."""
    out: dict[str, float] = {}
    if isinstance(obj, bool):
        return out
    if isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    elif isinstance(obj, dict):
        for key, value in obj.items():
            out.update(_numeric_leaves(value, f"{prefix}.{key}" if prefix else str(key)))
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            out.update(_numeric_leaves(value, f"{prefix}[{i}]"))
    return out


#: Leaf keys matching this are wall-clock timers, not exact metrics.
_TIMING_KEY = re.compile(r"\.seconds|wall|time_s\b|duration", re.IGNORECASE)

#: Leaf keys excluded from the diff entirely: scheduling-dependent
#: bookkeeping, not results.  Workload-cache hit/miss splits depend on
#: execution order (a serial pass warms the cache for later experiments;
#: each ``--jobs N`` worker starts cold), so comparing them would make
#: parallel and serial passes spuriously "regress" against each other.
_SCHEDULING_KEY = re.compile(r"\bworkload_cache\.")


def _rel_change(base: float, new: float) -> float:
    if not (math.isfinite(base) and math.isfinite(new)):
        # Both non-finite in the same way is a match; anything else is not.
        same = (
            (math.isnan(base) and math.isnan(new))
            or (math.isinf(base) and math.isinf(new) and base == new)
        )
        return 0.0 if same else math.inf
    return abs(new - base) / max(abs(base), 1e-12)


def diff_manifests(
    base: dict[str, dict[str, Any]],
    new: dict[str, dict[str, Any]],
    *,
    wall_tolerance: float = WALL_TOLERANCE,
    metric_tolerance: float = METRIC_TOLERANCE,
    min_wall_s: float = MIN_WALL_S,
) -> list[dict[str, Any]]:
    """Compare two manifest sets; returns one record per regression.

    Each record has ``experiment``, ``kind`` (``missing`` / ``wall`` /
    ``span_wall`` / ``metric``), ``key``, ``base``, ``new``, ``change``.
    An empty list means the new run is clean.  Raises
    :class:`SchemaMismatchError` when any compared pair was written by
    different manifest schema versions.
    """
    if wall_tolerance < 0 or metric_tolerance < 0 or min_wall_s < 0:
        raise ValueError("diff tolerances must be non-negative")
    for name in sorted(set(base) & set(new)):
        b_ver = base[name].get("schema_version")
        n_ver = new[name].get("schema_version")
        if b_ver != n_ver:
            raise SchemaMismatchError(
                f"cannot diff {name!r}: baseline manifest has schema "
                f"version {b_ver}, new has {n_ver} — regenerate both "
                "manifest sets with the same build before diffing"
            )
    regressions: list[dict[str, Any]] = []

    def _wall_regressed(old_s: float, new_s: float) -> bool:
        return (
            new_s > old_s * (1.0 + wall_tolerance)
            and new_s - old_s > min_wall_s
        )

    for name in sorted(base):
        if name not in new:
            regressions.append(
                {
                    "experiment": name,
                    "kind": "missing",
                    "key": "-",
                    "base": "present",
                    "new": "absent",
                    "change": "-",
                }
            )
            continue
        b, n = base[name], new[name]

        if _wall_regressed(float(b["wall_s"]), float(n["wall_s"])):
            regressions.append(
                {
                    "experiment": name,
                    "kind": "wall",
                    "key": "wall_s",
                    "base": float(b["wall_s"]),
                    "new": float(n["wall_s"]),
                    "change": f"+{_rel_change(b['wall_s'], n['wall_s']):.0%}",
                }
            )
        base_spans, new_spans = _span_totals(b), _span_totals(n)
        for span_name, base_s in base_spans.items():
            new_s = new_spans.get(span_name)
            if new_s is not None and _wall_regressed(base_s, new_s):
                regressions.append(
                    {
                        "experiment": name,
                        "kind": "span_wall",
                        "key": span_name,
                        "base": base_s,
                        "new": new_s,
                        "change": f"+{_rel_change(base_s, new_s):.0%}",
                    }
                )
        timing_rows = bool(
            (b.get("config") or {}).get("timing_rows")
            or (n.get("config") or {}).get("timing_rows")
        )
        for section in ("rows", "metrics"):
            base_vals = _numeric_leaves(b[section], section)
            new_vals = _numeric_leaves(n[section], section)
            for key, base_v in base_vals.items():
                if _SCHEDULING_KEY.search(key):
                    continue
                if key not in new_vals:
                    regressions.append(
                        {
                            "experiment": name,
                            "kind": "metric",
                            "key": key,
                            "base": base_v,
                            "new": "absent",
                            "change": "absent",
                        }
                    )
                    continue
                new_v = new_vals[key]
                is_timer = bool(_TIMING_KEY.search(key)) or (
                    timing_rows and section == "rows"
                )
                if is_timer:
                    if _wall_regressed(base_v, new_v):
                        regressions.append(
                            {
                                "experiment": name,
                                "kind": "wall",
                                "key": key,
                                "base": base_v,
                                "new": new_v,
                                "change": f"+{_rel_change(base_v, new_v):.0%}",
                            }
                        )
                    continue
                change = _rel_change(base_v, new_v)
                if change > metric_tolerance:
                    regressions.append(
                        {
                            "experiment": name,
                            "kind": "metric",
                            "key": key,
                            "base": base_v,
                            "new": new_v,
                            "change": f"{change:.2%}",
                        }
                    )
    return regressions


def render_diff(
    regressions: list[dict[str, Any]],
    n_base: int,
    n_new: int,
) -> str:
    """Markdown summary of a :func:`diff_manifests` result."""
    lines = ["# Manifest diff", ""]
    lines.append(
        f"Compared {n_new} manifest(s) against a {n_base}-manifest baseline: "
        + (
            f"**{len(regressions)} regression(s)**."
            if regressions
            else "no regressions."
        )
    )
    if regressions:
        lines += ["", _markdown_table(regressions)]
    return "\n".join(lines) + "\n"
