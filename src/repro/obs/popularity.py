"""Streaming popularity & skew observability (sketches, drift, hot spots).

SP-Cache's mechanism — partition factors ``k_i ∝ P_i`` (Eq. 4) and the
Algorithm-2 repartition — presupposes that popularity is *known*.  The
experiments feed it oracle vectors; this module observes popularity from
the live request stream instead, with bounded memory:

* :class:`CountMinSketch` — per-file access counts in ``depth x width``
  counters.  Point queries never under-estimate, and over-estimate by at
  most ``epsilon * N`` (``N`` = stream length) with probability at least
  ``1 - delta``, where ``epsilon = e / width`` and ``delta = e^-depth``
  (Cormode & Muthukrishnan's bounds for the multiply-shift hash family
  used here).
* :class:`SpaceSavingTopK` — the Space-Saving stream summary.  Each
  retained key carries ``(count, error)``: the true count lies in
  ``[count - error, count]``, and any key whose true count exceeds the
  smallest retained counter is guaranteed present.
* :class:`PopularityMonitor` — rides inside
  :class:`~repro.cluster.engine.lifecycle.RequestLifecycle` (every
  discipline) or the :class:`~repro.store.master.Master` read path.  The
  hot-path hook only buffers; all sketch folding happens once per
  *window* (count- or sim-time-based), where the monitor also

  - fits an online Zipf exponent over the top-K counts (the sorted
    log-log rank/count slope — scale-free, so fitting the head of a pure
    power law recovers the full exponent);
  - tracks per-window server-load imbalance (CV and max/mean of bytes
    served, smoothed by an EWMA);
  - compares consecutive windows' popularity vectors (weighted L1 in
    ``[0, 2]`` plus top-K rank churn) and raises ``drift`` / ``hotspot``
    trace events when configured thresholds trip.

Like timelines, collection is off by default: a run observes nothing
unless its :class:`~repro.cluster.engine.lifecycle.SimulationConfig`
carries a :class:`PopularityConfig` or one is installed ambiently with
:func:`use_popularity`.  Finalized sections are plain JSON-able dicts;
they serialize into run manifests (schema version 3) and render through
``repro top`` / ``repro watch``.
"""

from __future__ import annotations

import heapq
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from math import exp, log
from typing import Any, Iterator

import numpy as np

from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.tracing import Tracer, get_tracer

__all__ = [
    "POPULARITY_SCHEMA_VERSION",
    "CountMinSketch",
    "PopularityConfig",
    "PopularityMonitor",
    "SpaceSavingTopK",
    "collect_popularity",
    "get_popularity_config",
    "popularity_from_trace",
    "publish_popularity",
    "use_popularity",
    "zipf_alpha_from_counts",
]

#: Version of the popularity *section* layout (independent of the manifest
#: schema version, which gates the envelope).
POPULARITY_SCHEMA_VERSION = 1


def _next_pow2(n: int) -> int:
    return 1 << (int(n) - 1).bit_length()


class CountMinSketch:
    """Count-Min sketch over integer keys with multiply-shift hashing.

    ``width`` is rounded up to a power of two so the hash can be the top
    bits of ``(a * key) mod 2**64`` with odd ``a`` — a universal family
    whose overflow wrap-around is the modulus, not a bug.  Error
    contract (for the *rounded* width ``w``): ``estimate(k) >= true(k)``
    always, and ``estimate(k) <= true(k) + (e / w) * total`` with
    probability at least ``1 - e**-depth``.
    """

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0) -> None:
        if width < 2:
            raise ValueError("width must be >= 2")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.width = _next_pow2(width)
        self.depth = int(depth)
        self._shift = np.uint64(64 - int(log(self.width, 2)))
        rng = np.random.default_rng(int(seed))
        # Odd multipliers over the full 64-bit range.
        self._a = (
            rng.integers(1, 2**63, size=self.depth, dtype=np.uint64) * 2 + 1
        )
        self.table = np.zeros((self.depth, self.width), dtype=np.float64)
        self.total = 0.0

    @property
    def epsilon(self) -> float:
        """Over-estimation bound as a fraction of the stream length."""
        return float(np.e) / self.width

    @property
    def delta(self) -> float:
        """Probability the ``epsilon`` bound fails for one query."""
        return exp(-self.depth)

    @property
    def memory_bytes(self) -> int:
        return int(self.table.nbytes)

    def _indices(self, keys: np.ndarray) -> np.ndarray:
        k = np.asarray(keys).astype(np.uint64)
        with np.errstate(over="ignore"):
            mixed = self._a[:, None] * k[None, :]
        return (mixed >> self._shift).astype(np.int64)

    def update(self, keys, counts=None) -> None:
        """Add ``counts`` (default 1 each) to every key, vectorized."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        if keys.size == 0:
            return
        if counts is None:
            counts = np.ones(keys.size)
        counts = np.broadcast_to(
            np.asarray(counts, dtype=np.float64), keys.shape
        )
        idx = self._indices(keys)
        for d in range(self.depth):
            np.add.at(self.table[d], idx[d], counts)
        self.total += float(counts.sum())

    def estimate(self, key: int) -> float:
        return float(self.estimate_many([key])[0])

    def estimate_many(self, keys) -> np.ndarray:
        """Point estimates (never below the true counts)."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        if keys.size == 0:
            return np.zeros(0)
        idx = self._indices(keys)
        rows = np.arange(self.depth)[:, None]
        return self.table[rows, idx].min(axis=0)


class SpaceSavingTopK:
    """Space-Saving stream summary: the heavy hitters in ``capacity`` slots.

    Each retained key carries ``(count, error)`` where the true count lies
    in ``[count - error, count]``.  Eviction replaces the smallest counter
    (ties broken by key for determinism), so any key whose true count
    exceeds ``min(counts)`` is guaranteed retained.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._counts: dict[int, float] = {}
        self._errors: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._counts)

    def update(self, key: int, count: float = 1.0) -> None:
        key = int(key)
        counts = self._counts
        if key in counts:
            counts[key] += count
        elif len(counts) < self.capacity:
            counts[key] = count
            self._errors[key] = 0.0
        else:
            victim = min(counts, key=lambda k: (counts[k], k))
            floor = counts.pop(victim)
            self._errors.pop(victim)
            counts[key] = floor + count
            self._errors[key] = floor

    def update_many(self, keys, counts) -> None:
        """Batch update; heaviest first so evictions stay deterministic.

        Semantically identical to calling :meth:`update` per key in
        descending-count order, but evictions find the minimum through a
        lazily-invalidated heap instead of an O(capacity) scan — the
        per-window fold this monitor relies on.
        """
        keys = np.asarray(keys, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.float64)
        scounts, serrors = self._counts, self._errors
        heap: list[tuple[float, int]] | None = None
        for i in np.lexsort((keys, -counts)):
            key = int(keys[i])
            count = float(counts[i])
            if key in scounts:
                scounts[key] += count
                if heap is not None:
                    heapq.heappush(heap, (scounts[key], key))
            elif len(scounts) < self.capacity:
                scounts[key] = count
                serrors[key] = 0.0
                if heap is not None:
                    heapq.heappush(heap, (count, key))
            else:
                if heap is None:
                    heap = [(v, k) for k, v in scounts.items()]
                    heapq.heapify(heap)
                # Stale entries (count has since grown) pop first but
                # fail the freshness check; every count change pushes a
                # fresh entry, so the true minimum is always present.
                while True:
                    floor, victim = heapq.heappop(heap)
                    if scounts.get(victim) == floor:
                        break
                del scounts[victim]
                del serrors[victim]
                scounts[key] = floor + count
                serrors[key] = floor
                heapq.heappush(heap, (floor + count, key))

    def top(self, k: int | None = None) -> list[tuple[int, float, float]]:
        """``(key, count, error)`` triples, heaviest first."""
        items = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if k is not None:
            items = items[:k]
        return [(key, count, self._errors[key]) for key, count in items]


def zipf_alpha_from_counts(counts) -> float | None:
    """Zipf exponent from observed access counts (head of the stream).

    Least-squares slope of ``log count`` vs ``log rank`` over the sorted
    (descending) counts — the count-domain twin of
    :func:`repro.workloads.popularity.zipf_exponent_fit`.  A power law is
    scale-free, so fitting only the retained head still recovers the full
    exponent.  Returns ``None`` when fewer than three positive counts
    exist (no meaningful slope).
    """
    c = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    c = c[c > 0]
    if c.size < 3:
        return None
    ranks = np.arange(1, c.size + 1, dtype=np.float64)
    slope, _ = np.polyfit(np.log(ranks), np.log(c), 1)
    return float(-slope)


@dataclass(frozen=True)
class PopularityConfig:
    """Knobs of one run's streaming popularity observation.

    Windows roll every ``window_requests`` observations, or every
    ``window_s`` simulated seconds when set (time wins).  ``top_k`` sizes
    the reported hot list and the rank-churn comparison; ``capacity``
    sizes the Space-Saving summary (also the per-window exact-count
    bound fed to the drift comparison).  Alerts only fire when both
    compared windows carry at least ``min_window_count`` observations, so
    a sparse warmup window cannot trip a drift alarm.  ``estimate_ids``
    embeds a normalized estimate vector for file ids ``[0, n)`` into the
    finalized section — what sketch-driven repartitioning consumes.
    """

    width: int = 1024
    depth: int = 4
    top_k: int = 16
    capacity: int = 128
    window_requests: int = 2048
    window_s: float | None = None
    max_windows: int = 4096
    ewma_alpha: float = 0.3
    drift_threshold: float = 0.6
    churn_threshold: float = 0.5
    hotspot_share: float = 0.25
    min_window_count: int = 64
    estimate_ids: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width < 2:
            raise ValueError("width must be >= 2")
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.capacity < self.top_k:
            raise ValueError("capacity must be >= top_k")
        if self.window_requests < 1:
            raise ValueError("window_requests must be >= 1")
        if self.window_s is not None and not self.window_s > 0:
            raise ValueError("window_s must be positive (or None)")
        if self.max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.drift_threshold < 0:
            raise ValueError("drift_threshold must be non-negative")
        if not 0 <= self.churn_threshold <= 1:
            raise ValueError("churn_threshold must be in [0, 1]")
        if not 0 < self.hotspot_share <= 1:
            raise ValueError("hotspot_share must be in (0, 1]")
        if self.min_window_count < 1:
            raise ValueError("min_window_count must be >= 1")
        if self.estimate_ids is not None and self.estimate_ids < 1:
            raise ValueError("estimate_ids must be positive (or None)")


# -- ambient config + section sinks (mirrors obs.timeline) -----------------

_local = threading.local()


def get_popularity_config() -> PopularityConfig | None:
    """The ambiently installed :class:`PopularityConfig`, or ``None``."""
    stack = getattr(_local, "configs", None)
    return stack[-1] if stack else None


@contextmanager
def use_popularity(config: PopularityConfig) -> Iterator[PopularityConfig]:
    """Ambiently enable popularity observation for the block."""
    if not isinstance(config, PopularityConfig):
        raise TypeError(
            f"config must be a PopularityConfig, got {type(config).__name__}"
        )
    stack = getattr(_local, "configs", None)
    if stack is None:
        stack = _local.configs = []
    stack.append(config)
    try:
        yield config
    finally:
        stack.pop()


@contextmanager
def collect_popularity(
    into: list[dict[str, Any]] | None = None,
) -> Iterator[list[dict[str, Any]]]:
    """Collect every popularity section published inside the block."""
    sink: list[dict[str, Any]] = into if into is not None else []
    sinks = getattr(_local, "sinks", None)
    if sinks is None:
        sinks = _local.sinks = []
    sinks.append(sink)
    try:
        yield sink
    finally:
        for i in range(len(sinks) - 1, -1, -1):
            if sinks[i] is sink:
                del sinks[i]
                break


def publish_popularity(section: dict[str, Any]) -> None:
    """Hand one finalized section to every active collector."""
    for sink in getattr(_local, "sinks", ()):
        sink.append(section)


# -- the monitor -----------------------------------------------------------


class PopularityMonitor:
    """Streaming popularity/skew monitor fed from a request path.

    The :meth:`observe` hot path only appends to buffers (the file id,
    and a reference to the fork-join's server/size arrays); sketch
    folding, the per-server byte fold, drift comparison, and alerting
    all happen once per window in :meth:`_roll`.  Memory is
    bounded by the sketch table, the Space-Saving capacity, one pending
    window of file ids, and ``max_windows`` retained window rows (rolls
    past the cap are folded into the counters but their rows dropped,
    counted in the section's ``clipped_windows``).
    """

    def __init__(
        self,
        config: PopularityConfig,
        *,
        n_servers: int = 0,
        scheme: str = "",
        engine: str = "",
        tracer: Tracer | None = None,
    ) -> None:
        if not isinstance(config, PopularityConfig):
            raise TypeError(
                f"config must be a PopularityConfig, "
                f"got {type(config).__name__}"
            )
        self.config = config
        self.scheme = scheme
        self.engine = engine
        self.tracer = tracer if tracer is not None else get_tracer()
        self.sketch = CountMinSketch(config.width, config.depth, config.seed)
        self.summary = SpaceSavingTopK(config.capacity)
        self.n_servers = int(n_servers)
        self._win_loads = np.zeros(self.n_servers)
        self.n_observed = 0
        self.windows: list[dict[str, Any]] = []
        self.alerts: list[dict[str, Any]] = []
        self.clipped_windows = 0
        self.ewma_cv: float | None = None
        self.ewma_max_mean: float | None = None
        # Pending (unfolded) observations of the current window.
        self._pend: list[int] = []
        self._pend_loads: list[tuple[Any, Any]] = []
        self._win_requests = config.window_requests
        self._cum_loads: np.ndarray | None = None
        self._snap: np.ndarray | None = None
        self._time_mode = config.window_s is not None
        self._win_index = 0
        self._win_end: float | None = None  # time mode only
        self._t_first: float | None = None
        self._t_last: float | None = None
        self._prev_vec: dict[int, float] | None = None
        self._prev_top: list[int] | None = None
        self._prev_count = 0

    # -- hot path ------------------------------------------------------

    def observe(self, file_id, t=None, servers=None, sizes=None) -> None:
        """One request: buffer the file id and the fork-join load arrays.

        Guard call sites with a hoisted flag (like ``lifecycle.observe``)
        so disabled observation stays free.  ``servers``/``sizes`` must
        be ndarrays and must not be mutated afterwards — only references
        are kept until the window folds.  ``t`` is simulated seconds;
        time-based windows roll *before* buffering so the observation
        lands in its own window.
        """
        if t is not None:
            if self._time_mode:
                w = self.config.window_s
                if self._win_end is None:
                    self._win_end = (t // w + 1.0) * w
                while t >= self._win_end:
                    self._roll()
                    self._win_end += w
            if self._t_first is None:
                self._t_first = t
            self._t_last = t
        self._pend.append(file_id)
        if servers is not None and self._cum_loads is None:
            # Only a reference append here; the per-server byte fold is
            # one np.add.at over the concatenated window in _roll().
            # Callers never mutate the arrays they hand in, so the
            # references stay valid until the window closes.
            self._pend_loads.append((servers, sizes))
        if not self._time_mode and len(self._pend) >= self._win_requests:
            self._roll()

    def attach_cumulative_loads(self, server_bytes: np.ndarray) -> None:
        """Watch an engine's cumulative per-server byte vector instead.

        The engines already accrue ``server_bytes`` on their hot path;
        snapshot-diffing it at window boundaries makes per-request load
        tracking free.  Window loads then mean "bytes accrued by the
        engine during the window" (the FIFO engine accrues at plan time,
        the event-heap engine at flow completion).
        """
        self._cum_loads = server_bytes
        self._snap = server_bytes.copy()
        self.n_servers = int(server_bytes.size)
        self._pend_loads = []

    def _grow_loads(self, n: int) -> None:
        grown = np.zeros(max(n, self.n_servers))
        grown[: self._win_loads.size] = self._win_loads
        self._win_loads = grown
        self.n_servers = int(grown.size)

    # -- window folding ------------------------------------------------

    def _roll(self) -> None:
        cfg = self.config
        fids = np.asarray(self._pend, dtype=np.int64)
        self._pend = []
        keys, counts = (
            np.unique(fids, return_counts=True)
            if fids.size
            else (np.zeros(0, dtype=np.int64), np.zeros(0))
        )
        counts = counts.astype(np.float64)
        total = float(counts.sum())
        self.n_observed += int(fids.size)
        self.sketch.update(keys, counts)
        self.summary.update_many(keys, counts)

        order = np.lexsort((keys, -counts))
        vec = (
            {int(keys[i]): counts[i] / total for i in order} if total else {}
        )
        top_keys = [int(keys[i]) for i in order[: cfg.top_k]]

        l1 = churn = None
        if self._prev_vec is not None:
            prev = self._prev_vec
            union = set(vec) | set(prev)
            l1 = float(
                sum(abs(vec.get(k, 0.0) - prev.get(k, 0.0)) for k in union)
            )
            if self._prev_top:
                kept = len(set(top_keys) & set(self._prev_top))
                churn = 1.0 - kept / len(self._prev_top)

        if self._cum_loads is not None:
            loads = self._cum_loads - self._snap
            np.copyto(self._snap, self._cum_loads)
        else:
            if self._pend_loads:
                servers = np.concatenate([s for s, _z in self._pend_loads])
                sizes = np.concatenate([z for _s, z in self._pend_loads])
                self._pend_loads = []
                # Unknown server ids (trace replay without a declared
                # cluster size) grow the load vector.
                try:
                    np.add.at(self._win_loads, servers, sizes)
                except IndexError:
                    self._grow_loads(int(servers.max()) + 1)
                    np.add.at(self._win_loads, servers, sizes)
            loads = self._win_loads

        cv = max_mean = None
        if loads.size and loads.any():
            mean = float(loads.mean())
            cv = float(loads.std() / mean)
            max_mean = float(loads.max() / mean)
            a = cfg.ewma_alpha
            self.ewma_cv = (
                cv if self.ewma_cv is None else a * cv + (1 - a) * self.ewma_cv
            )
            self.ewma_max_mean = (
                max_mean
                if self.ewma_max_mean is None
                else a * max_mean + (1 - a) * self.ewma_max_mean
            )
        if loads is self._win_loads and loads.size:
            loads[:] = 0.0

        if self._time_mode and self._win_end is not None:
            t_start = self._win_end - cfg.window_s
            t_end = self._win_end
        else:
            t_start = self._t_first if self._t_first is not None else 0.0
            t_end = self._t_last if self._t_last is not None else t_start
        top_file = top_keys[0] if top_keys else None
        top_share = vec.get(top_file, 0.0) if top_file is not None else 0.0
        row = {
            "window": self._win_index,
            "t_start": float(t_start),
            "t_end": float(t_end),
            "count": int(total),
            "distinct": int(keys.size),
            "l1_drift": l1,
            "rank_churn": churn,
            "cv": cv,
            "max_mean": max_mean,
            "top_file": top_file,
            "top_share": float(top_share),
        }
        if len(self.windows) < cfg.max_windows:
            self.windows.append(row)
        else:
            self.clipped_windows += 1

        reg = get_registry()
        lab = {"scheme": self.scheme or "?"}
        reg.counter("popularity.windows", **lab).inc()
        emit = self.tracer.enabled
        if emit:
            self.tracer.event(
                ev.POPULARITY_WINDOW,
                ts=float(t_start),
                scheme=self.scheme,
                **{k: v for k, v in row.items() if k != "t_start"},
            )

        # Alerts gate on both windows carrying enough evidence.
        eligible = (
            total >= cfg.min_window_count
            and self._prev_count >= cfg.min_window_count
        )
        if eligible and l1 is not None and (
            l1 >= cfg.drift_threshold
            or (churn is not None and churn >= cfg.churn_threshold)
        ):
            trigger = "l1" if l1 >= cfg.drift_threshold else "churn"
            alert = {
                "kind": "drift",
                "window": self._win_index,
                "t_start": float(t_start),
                "l1": l1,
                "rank_churn": churn,
                "trigger": trigger,
                "threshold": (
                    cfg.drift_threshold
                    if trigger == "l1"
                    else cfg.churn_threshold
                ),
            }
            self.alerts.append(alert)
            reg.counter("popularity.drift_alerts", **lab).inc()
            if emit:
                self.tracer.event(ev.DRIFT, ts=float(t_start), **alert)
        if (
            total >= cfg.min_window_count
            and top_file is not None
            and top_share >= cfg.hotspot_share
        ):
            alert = {
                "kind": "hotspot",
                "window": self._win_index,
                "t_start": float(t_start),
                "file_id": top_file,
                "share": float(top_share),
                "threshold": cfg.hotspot_share,
            }
            self.alerts.append(alert)
            reg.counter("popularity.hotspot_alerts", **lab).inc()
            if emit:
                self.tracer.event(ev.HOTSPOT, ts=float(t_start), **alert)

        self._prev_vec = vec
        self._prev_top = top_keys
        self._prev_count = int(total)
        self._t_first = None
        self._win_index += 1

    # -- estimates -----------------------------------------------------

    def estimated_popularities(self, n_files: int) -> np.ndarray:
        """Normalized popularity estimate for file ids ``[0, n_files)``.

        Count-Min point estimates, tightened by the Space-Saving counts
        where available (both over-estimate, so their min is closer to
        the truth).  Uniform until any data arrives.
        """
        if n_files < 1:
            raise ValueError("n_files must be positive")
        est = self.sketch.estimate_many(np.arange(n_files))
        for key, count, _err in self.summary.top():
            if 0 <= key < n_files:
                est[key] = min(est[key], count)
        total = est.sum()
        if total <= 0:
            return np.full(n_files, 1.0 / n_files)
        return est / total

    def alpha_estimate(self) -> float | None:
        """Online Zipf-exponent estimate from the top-K counts."""
        top = self.summary.top(self.config.top_k)
        return zipf_alpha_from_counts([count for _k, count, _e in top])

    # -- finalize ------------------------------------------------------

    def finalize(self) -> dict[str, Any]:
        """Fold any pending observations and build one JSON-able section."""
        if self._pend or not self.windows:
            self._roll()
        total = max(self.sketch.total, 1.0)
        top = [
            {
                "file_id": key,
                "count": float(count),
                "error": float(error),
                "share": float(count / total),
            }
            for key, count, error in self.summary.top(self.config.top_k)
        ]
        section: dict[str, Any] = {
            "schema_version": POPULARITY_SCHEMA_VERSION,
            "scheme": self.scheme,
            "engine": self.engine,
            "requests": int(self.n_observed),
            "n_servers": int(self.n_servers),
            "sketch": {
                "width": self.sketch.width,
                "depth": self.sketch.depth,
                "epsilon": self.sketch.epsilon,
                "delta": self.sketch.delta,
                "memory_bytes": self.sketch.memory_bytes,
                "capacity": self.summary.capacity,
            },
            "alpha_est": self.alpha_estimate(),
            "top": top,
            "n_windows": self._win_index,
            "clipped_windows": self.clipped_windows,
            "windows": list(self.windows),
            "alerts": list(self.alerts),
            "imbalance": {
                "ewma_cv": self.ewma_cv,
                "ewma_max_mean": self.ewma_max_mean,
            },
        }
        if self.config.estimate_ids is not None:
            est = self.estimated_popularities(self.config.estimate_ids)
            section["estimated_popularity"] = [float(p) for p in est]
        return section


def popularity_from_trace(
    source, config: PopularityConfig | None = None
) -> list[dict[str, Any]]:
    """Rebuild popularity sections from a JSONL trace's ``read`` events.

    One section per scheme found in the trace (sorted by scheme name) —
    what ``repro top <trace.jsonl>`` renders.  Replay monitors never
    re-emit trace events.
    """
    from repro.obs.replay import load_events

    config = config if config is not None else PopularityConfig()
    monitors: dict[str, PopularityMonitor] = {}
    for event in load_events(source):
        if event.get("event") != ev.READ:
            continue
        scheme = str(event.get("scheme", "?"))
        monitor = monitors.get(scheme)
        if monitor is None:
            monitor = monitors[scheme] = PopularityMonitor(
                config, scheme=scheme, engine="trace", tracer=Tracer()
            )
        servers = event.get("servers")
        sizes = event.get("sizes")
        monitor.observe(
            int(event["file_id"]),
            t=float(event.get("ts", 0.0)),
            servers=np.asarray(servers, dtype=np.int64)
            if servers is not None
            else None,
            sizes=np.asarray(sizes, dtype=np.float64)
            if sizes is not None
            else None,
        )
    return [monitors[s].finalize() for s in sorted(monitors)]
