"""Process-wide metrics registry: counters, gauges, streaming histograms.

The registry is the always-on half of the observability layer (the tracer
in :mod:`repro.obs.tracing` is the opt-in half): instrumented code sites
increment counters and feed histograms unconditionally, and tests or the
CLI read a :meth:`MetricsRegistry.snapshot` afterwards.  Metrics are
labelled (``registry.counter("store.block_miss", worker_id=3)``) so one
metric name fans out across schemes, servers, or files without string
mangling at the call site.

Histograms are streaming: a fixed exponential bucket ladder for coarse
distribution shape plus a bounded reservoir sample (Vitter's Algorithm R
with a seeded PRNG, so snapshots are deterministic) for p50/p95/p99.  For
samples no larger than the reservoir the percentiles are *exact* — they
reduce to ``np.percentile`` over every observation.

Hot loops that produce a whole latency vector at once should use
:meth:`Histogram.observe_many`, which updates the bucket counts and the
reservoir with vectorized NumPy work instead of a Python-level loop.

Test isolation: :func:`reset_registry` drops every metric; suites that
assert on counts call it in a fixture so modules instrumented with the
process-wide registry (store workers, the simulator) start from zero.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Iterable

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "get_registry",
    "parse_snapshot_key",
    "render_snapshot_key",
    "reset_registry",
    "set_registry",
]

#: Exponential bucket ladder covering 100 us .. ~100 s, a sensible default
#: for the second-scale latencies the simulator produces.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = tuple(
    1e-4 * (10.0 ** (i / 3.0)) for i in range(19)
)

LabelKey = tuple[str, tuple[tuple[str, Any], ...]]


def _label_key(name: str, labels: dict[str, Any]) -> LabelKey:
    return name, tuple(sorted(labels.items()))


#: Characters in a label value that force the quoted rendering in
#: :func:`render_snapshot_key` — anything that would collide with the
#: ``name{k=v,...}`` syntax itself.
_NEEDS_QUOTING = set(',={}"\n\\')


def _render_label_value(value: Any) -> str:
    """One label value as it appears inside a snapshot key.

    Plain values render bare (``scheme=sp-cache``) so existing keys stay
    byte-identical; values containing a delimiter (``,``, ``=``, braces,
    quotes, newlines, backslashes) render as a double-quoted string with
    backslash escapes, so :func:`parse_snapshot_key` can round-trip them.
    """
    s = str(value)
    if not _NEEDS_QUOTING.intersection(s):
        return s
    escaped = (
        s.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )
    return f'"{escaped}"'


def render_snapshot_key(name: str, labels: dict[str, Any]) -> str:
    """The flat ``name{k=v,...}`` key used by :meth:`MetricsRegistry.snapshot`.

    Labels render in sorted order; values that contain key-syntax
    delimiters are quoted/escaped (see :func:`_render_label_value`).
    """
    if not labels:
        return name
    rendered = ",".join(
        f"{k}={_render_label_value(v)}" for k, v in sorted(labels.items())
    )
    return f"{name}{{{rendered}}}"


def parse_snapshot_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`render_snapshot_key`: ``name{k=v,...}`` -> name + labels.

    Label values come back as strings (the snapshot key does not preserve
    the original type); quoted values are unescaped.  Raises
    :class:`ValueError` on malformed keys.
    """
    if "{" not in key:
        if "}" in key:
            raise ValueError(f"malformed snapshot key {key!r}")
        return key, {}
    if not key.endswith("}"):
        raise ValueError(f"malformed snapshot key {key!r}")
    name, _, body = key[:-1].partition("{")
    labels: dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        eq = body.index("=", i)
        label = body[i:eq]
        if not label:
            raise ValueError(f"empty label name in snapshot key {key!r}")
        i = eq + 1
        if i < n and body[i] == '"':
            i += 1
            out: list[str] = []
            while True:
                if i >= n:
                    raise ValueError(
                        f"unterminated quoted value in snapshot key {key!r}"
                    )
                c = body[i]
                if c == "\\":
                    if i + 1 >= n:
                        raise ValueError(
                            f"dangling escape in snapshot key {key!r}"
                        )
                    nxt = body[i + 1]
                    out.append({"n": "\n"}.get(nxt, nxt))
                    i += 2
                elif c == '"':
                    i += 1
                    break
                else:
                    out.append(c)
                    i += 1
            value = "".join(out)
            if i < n:
                if body[i] != ",":
                    raise ValueError(
                        f"expected ',' after quoted value in {key!r}"
                    )
                i += 1
        else:
            end = body.find(",", i)
            if end == -1:
                end = n
            value = body[i:end]
            i = end + 1
        labels[label] = value
    return name, labels


class Counter:
    """Monotonically increasing count (events, bytes, operations)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-write-wins value (queue depth, imbalance factor, alpha)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Streaming distribution: fixed buckets + reservoir percentiles.

    ``buckets`` are upper bounds of half-open intervals; observations above
    the last bound land in an implicit overflow bucket.  The reservoir keeps
    a uniform sample of at most ``reservoir_size`` observations (Algorithm
    R), so :meth:`percentile` is exact until the sample outgrows the
    reservoir and an unbiased estimate after.
    """

    __slots__ = (
        "name",
        "labels",
        "buckets",
        "bucket_counts",
        "count",
        "sum",
        "_reservoir",
        "_rng",
    )

    def __init__(
        self,
        name: str,
        labels: dict[str, Any],
        buckets: Iterable[float] | None = None,
        reservoir_size: int = 4096,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(
            sorted(buckets if buckets is not None else DEFAULT_SECONDS_BUCKETS)
        )
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self._reservoir: list[float] = [0.0] * reservoir_size
        self._rng = np.random.default_rng(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_right(self.buckets, value)] += 1
        cap = len(self._reservoir)
        if self.count < cap:
            self._reservoir[self.count] = value
        else:
            j = int(self._rng.integers(0, self.count + 1))
            if j < cap:
                self._reservoir[j] = value
        self.count += 1
        self.sum += value

    def observe_many(self, values: np.ndarray) -> None:
        """Bulk observe; vectorized counterpart of :meth:`observe`."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        idx = np.searchsorted(self.buckets, arr, side="right")
        for i, c in zip(*np.unique(idx, return_counts=True)):
            self.bucket_counts[int(i)] += int(c)
        cap = len(self._reservoir)
        free = cap - self.count
        if free > 0:
            take = arr[: free]
            self._reservoir[self.count : self.count + take.size] = [
                float(v) for v in take
            ]
            rest = arr[free:]
        else:
            rest = arr
        if rest.size:
            # Algorithm R, vectorized: item at global position n replaces a
            # reservoir slot iff randint(0, n) < cap.  Replacements are
            # applied in stream order so later items overwrite earlier.
            start = max(self.count, cap)
            slots = self._rng.integers(
                0, np.arange(start, start + rest.size) + 1
            )
            for i in np.nonzero(slots < cap)[0]:
                self._reservoir[int(slots[i])] = float(rest[i])
        self.count += arr.size
        self.sum += float(arr.sum())

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def sample(self) -> np.ndarray:
        """The current reservoir contents (<= reservoir_size values)."""
        n = min(self.count, len(self._reservoir))
        return np.asarray(self._reservoir[:n], dtype=np.float64)

    def percentile(self, q: float | Iterable[float]) -> float | np.ndarray:
        sample = self.sample()
        if sample.size == 0:
            raise ValueError(f"histogram {self.name!r} has no observations")
        result = np.percentile(sample, q)
        return float(result) if np.isscalar(q) else result

    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
        }
        if self.count:
            p50, p95, p99 = self.percentile([50, 95, 99])
            out.update(p50=float(p50), p95=float(p95), p99=float(p99))
        return out


class MetricsRegistry:
    """Get-or-create home for every metric in the process.

    Thread-safe at the get-or-create level (metric mutation itself is
    GIL-atomic float arithmetic, adequate for the simulator's single-thread
    hot paths and coarse enough for multi-threaded callers).
    """

    def __init__(self) -> None:
        self._metrics: dict[LabelKey, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, labels: dict[str, Any], **kw):
        key = _label_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, labels, **kw)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def reset(self) -> None:
        """Drop every metric (test isolation between cases)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self, prefix: str = "") -> dict[str, Any]:
        """Flat ``{"name{k=v,...}": value}`` view of the registry.

        Counters and gauges map to floats; histograms map to their summary
        dict (count/sum/mean/p50/p95/p99).  Keys render via
        :func:`render_snapshot_key`, so label values carrying delimiter
        characters stay parseable with :func:`parse_snapshot_key`.
        """
        out: dict[str, Any] = {}
        for (name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
        ):
            if not name.startswith(prefix):
                continue
            out[render_snapshot_key(name, dict(labels))] = metric.snapshot()
        return out


_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented module writes to."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


def reset_registry() -> None:
    """Clear the process-wide registry (call between tests)."""
    _global_registry.reset()
