"""Structured event tracing: spans and events over pluggable sinks.

One :class:`Tracer` wraps one sink.  Instrumented code emits *events* —
flat dicts with a name and a timestamp — and, for wall-clock profiling,
*spans* that time a block and emit one event with its duration.  The
timestamp is whatever clock the call site owns: the simulator passes its
simulated-seconds clock explicitly (``tracer.event("read", ts=t, ...)``),
while spans and bare events default to ``time.perf_counter``.

Sinks
-----
:class:`NullSink`
    The default.  ``enabled`` is ``False``, so instrumented hot paths skip
    event construction entirely — the cost of disabled tracing is one
    attribute check (benchmarked in ``benchmarks/bench_obs_overhead.py``).
:class:`RingBufferSink`
    Keeps the most recent ``capacity`` records in memory; what tests and
    interactive sessions use.
:class:`FileSink`
    Appends one JSON object per line (JSONL).  NumPy scalars and arrays are
    coerced to plain Python so every line is valid JSON; replay lives in
    :mod:`repro.obs.replay`.

The process-wide tracer defaults to a no-op; enable it globally with
:func:`set_tracer` or temporarily with :func:`use_tracer`::

    with use_tracer(Tracer(FileSink("run.jsonl"))):
        simulate_reads(trace, policy, cluster)
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from repro.obs import events as ev

__all__ = [
    "FileSink",
    "HeadSamplingSink",
    "NullSink",
    "RingBufferSink",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


def _coerce(value: Any) -> Any:
    """JSON fallback for the NumPy types instrumentation naturally emits."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


class NullSink:
    """Discard everything; signals call sites to skip event construction."""

    enabled = False

    def emit(self, record: dict[str, Any]) -> None:  # pragma: no cover
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keep the most recent ``capacity`` trace records in memory."""

    enabled = True

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._buffer: deque[dict[str, Any]] = deque(maxlen=capacity)

    def emit(self, record: dict[str, Any]) -> None:
        self._buffer.append(record)

    @property
    def records(self) -> list[dict[str, Any]]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def close(self) -> None:
        pass


class FileSink:
    """Write one JSON object per line to ``path`` (the JSONL trace file)."""

    enabled = True

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.n_records = 0

    def emit(self, record: dict[str, Any]) -> None:
        self._fh.write(
            json.dumps(record, default=_coerce, separators=(",", ":"))
        )
        self._fh.write("\n")
        self.n_records += 1

    def flush(self) -> None:
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "FileSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


#: per-request event pairs thinned together by :class:`HeadSamplingSink`.
_SAMPLED_EVENTS = frozenset({ev.READ, ev.READ_DONE})


class HeadSamplingSink:
    """Record 1-in-``every`` requests' ``read``/``read_done`` pairs.

    Wraps another sink and forwards everything except the high-volume
    per-request simulator events, which pass only when ``req % every ==
    0`` — so both halves of a sampled pair always survive together (they
    share the ``req`` field) and downstream pairing logic in
    :mod:`repro.obs.replay` keeps working on the thinned trace.  Records
    without a ``req`` field (spans, store/core events, windows) are never
    dropped.  ``every=1`` forwards everything.
    """

    enabled = True

    def __init__(self, sink: Any, every: int) -> None:
        if every < 1:
            raise ValueError("every must be a positive integer")
        self._sink = sink
        self.every = int(every)
        self.n_sampled_out = 0

    def emit(self, record: dict[str, Any]) -> None:
        if record.get("event") in _SAMPLED_EVENTS:
            req = record.get("req")
            if req is not None and int(req) % self.every != 0:
                self.n_sampled_out += 1
                return
        self._sink.emit(record)

    @property
    def path(self) -> str:
        return self._sink.path

    @property
    def n_records(self) -> int:
        return self._sink.n_records

    def flush(self) -> None:
        if hasattr(self._sink, "flush"):
            self._sink.flush()

    def close(self) -> None:
        self._sink.close()

    def __enter__(self) -> "HeadSamplingSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class Tracer:
    """Event/span front end over one sink.

    Check :attr:`enabled` before building expensive event payloads in hot
    loops; :meth:`event` also early-outs on its own, so cold paths can just
    call it unconditionally.
    """

    __slots__ = ("sink",)

    def __init__(self, sink: Any | None = None) -> None:
        self.sink = sink if sink is not None else NullSink()

    @property
    def enabled(self) -> bool:
        return self.sink.enabled

    def event(
        self, name: str, /, ts: float | None = None, **fields: Any
    ) -> None:
        """Emit one record.  ``ts`` is the caller's clock (simulated seconds
        in the simulator); defaults to ``time.perf_counter()``.

        ``name`` is positional-only, so a *field* named ``name`` (e.g. a
        span's own name) never collides with the event name."""
        sink = self.sink
        if not sink.enabled:
            return
        record: dict[str, Any] = {
            "event": name,
            "ts": time.perf_counter() if ts is None else float(ts),
        }
        record.update(fields)
        sink.emit(record)

    @contextmanager
    def span(self, name: str, /, **fields: Any) -> Iterator[None]:
        """Time a block on the wall clock; emits ``name`` with ``wall_s``."""
        if not self.sink.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.event(
                name, ts=start, wall_s=time.perf_counter() - start, **fields
            )

    def close(self) -> None:
        self.sink.close()


_global_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (a no-op unless someone installed a sink)."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` process-wide; returns the previous tracer."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer``; restores the previous one on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
