"""Membership section sinks: topology epochs into run manifests.

:class:`~repro.cluster.topology.ClusterTopology` renders its epoch and
event history as one JSON-able *membership section*
(:meth:`~repro.cluster.topology.ClusterTopology.membership_section`);
this module is the thread-local plumbing that carries those sections from
wherever a churn experiment runs into the manifest builder — the same
nested-sink pattern as :func:`repro.obs.timeline.collect_timelines`, so a
session-level collector sees everything a per-experiment collector does.

Manifests store the collected sections under the ``membership`` key
(schema version 7, :mod:`repro.obs.runinfo`); fixed-topology experiments
publish nothing and the key stays an empty list.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "collect_membership",
    "publish_membership",
]

_local = threading.local()


@contextmanager
def collect_membership(
    into: list[dict[str, Any]] | None = None,
) -> Iterator[list[dict[str, Any]]]:
    """Collect every membership section published inside the block.

    Collectors nest: an inner ``collect_membership`` does not hide
    sections from an outer one (both receive every publish).
    """
    sink: list[dict[str, Any]] = into if into is not None else []
    sinks = getattr(_local, "sinks", None)
    if sinks is None:
        sinks = _local.sinks = []
    sinks.append(sink)
    try:
        yield sink
    finally:
        # Remove by identity: two empty list sinks compare equal, so
        # ``list.remove`` could detach the wrong one.
        for i in range(len(sinks) - 1, -1, -1):
            if sinks[i] is sink:
                del sinks[i]
                break


def publish_membership(section: dict[str, Any]) -> None:
    """Hand one membership section to every active collector.

    ``section`` must carry at least the ``epochs`` list (the manifest
    validator enforces this); a ``scheme`` label is conventional when an
    experiment publishes one section per placement strategy.
    """
    if not isinstance(section, dict) or "epochs" not in section:
        raise ValueError(
            "a membership section must be a dict with an 'epochs' list"
        )
    for sink in getattr(_local, "sinks", ()):
        sink.append(section)
