"""Observability layer: metrics registry, event tracing, trace replay.

Three cooperating pieces (each documented in its module, schema tables in
``docs/observability.md``):

:mod:`repro.obs.metrics`
    Always-on process-wide registry of labelled counters, gauges, and
    streaming histograms.  ``reset_registry()`` between tests.
:mod:`repro.obs.tracing`
    Opt-in structured events and wall-clock spans over a sink — no-op
    (default), in-memory ring buffer, or JSONL file.  Instrumented hot
    paths check ``tracer.enabled`` once, so disabled tracing is free.
:mod:`repro.obs.replay`
    Turn a JSONL trace back into per-server load vectors, load timelines,
    and latency samples — what ``python -m repro stats`` prints.

:mod:`repro.obs.profiling` adds ``profiled("name")`` wall-time hooks and
:mod:`repro.obs.events` pins the event-name vocabulary.
"""

from repro.obs import events
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
    set_registry,
)
from repro.obs.profiling import profile, profiled
from repro.obs.replay import (
    event_counts,
    iter_trace,
    latency_samples,
    load_events,
    load_timeline,
    per_server_loads,
    trace_summary,
)
from repro.obs.tracing import (
    FileSink,
    NullSink,
    RingBufferSink,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "FileSink",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSink",
    "RingBufferSink",
    "Tracer",
    "event_counts",
    "events",
    "get_registry",
    "get_tracer",
    "iter_trace",
    "latency_samples",
    "load_events",
    "load_timeline",
    "per_server_loads",
    "profile",
    "profiled",
    "reset_registry",
    "set_registry",
    "set_tracer",
    "trace_summary",
    "use_tracer",
]
