"""Observability layer: metrics, tracing, spans, replay, and run manifests.

Cooperating pieces (each documented in its module, schema tables in
``docs/observability.md``):

:mod:`repro.obs.metrics`
    Always-on process-wide registry of labelled counters, gauges, and
    streaming histograms.  ``reset_registry()`` between tests.
:mod:`repro.obs.tracing`
    Opt-in structured events and wall-clock spans over a sink — no-op
    (default), in-memory ring buffer, or JSONL file.  Instrumented hot
    paths check ``tracer.enabled`` once, so disabled tracing is free.
:mod:`repro.obs.spans`
    Hierarchical wall-clock spans (parent/child ids, context manager +
    decorator, in-memory collection) with a Chrome/Perfetto trace-event
    exporter.  Supersedes the removed flat profiling hooks.
:mod:`repro.obs.replay`
    Turn a JSONL trace back into per-server load vectors, load timelines,
    latency samples, metric snapshots, and span trees — what
    ``python -m repro stats`` prints.
:mod:`repro.obs.timeline`
    Sim-time windowed timelines and tail-latency attribution: per-server
    busy/queue/bytes series keyed to simulated seconds, plus a bounded
    reservoir of slowest-request exemplars with per-partition breakdowns.
    Disabled by default; every discipline records through the shared
    :class:`~repro.cluster.engine.lifecycle.RequestLifecycle`.
:mod:`repro.obs.popularity`
    Streaming popularity/skew observation: Count-Min + Space-Saving
    sketches fed from the request path, online Zipf-exponent and
    imbalance estimates, and windowed drift/hot-spot alerts.  Disabled
    by default; renders through ``repro top`` / ``repro watch``.
:mod:`repro.obs.runinfo`
    Schema-versioned run manifests (``results/<exp>.json``): provenance,
    structured rows, per-span wall times, final metrics snapshot, and
    any timeline, popularity, or SLO sections the run published.
:mod:`repro.obs.report`
    Aggregate manifests into markdown and diff two manifest sets for
    wall-time/metric regressions (``python -m repro report``).
:mod:`repro.obs.export`
    OpenMetrics/Prometheus text exposition of registries, manifest
    snapshots, and trace snapshots, plus per-window rate derivation
    (``SnapshotDeltaSource``) — the scrape surface.
:mod:`repro.obs.slo`
    Declarative service-level objectives with multi-window
    multi-burn-rate alerting; sections land in schema-v5 manifests and
    breach/recovery events in the trace stream.
:mod:`repro.obs.dash`
    Fold trace events or manifests into a renderable cluster health
    board (``python -m repro dash``).
:mod:`repro.obs.causal`
    Causal request tracing: contextvar-propagated trace contexts with
    W3C-traceparent serialization, per-request fork-join span trees,
    and critical-path analysis with a conservation invariant
    (``python -m repro critical``); sections land in schema-v6
    manifests.
:mod:`repro.obs.membership`
    Thread-local sinks for cluster-membership sections: churn
    experiments publish each topology's epoch/event history and the
    sections land in schema-v7 manifests (and the dash membership
    panel).

:mod:`repro.obs.events` pins the event-name vocabulary.
"""

from repro.obs import events
from repro.obs.causal import (
    CAUSAL_SCHEMA_VERSION,
    CausalCollector,
    CausalConfig,
    TraceContext,
    causal_chrome_events,
    causal_from_trace,
    causal_span,
    collect_causal,
    critical_chain_rows,
    critical_edge_rows,
    current_context,
    get_causal_config,
    publish_causal,
    span_forest,
    use_causal,
    use_context,
    write_causal_chrome_trace,
)
from repro.obs.dash import (
    DashBoard,
    dash_from_manifest,
    follow_lines,
    parse_json_lines,
    render_frame,
)
from repro.obs.export import (
    SnapshotDeltaSource,
    parse_openmetrics,
    render_openmetrics,
    render_snapshot_openmetrics,
    snapshots_to_openmetrics,
    timeline_rates,
)
from repro.obs.membership import (
    collect_membership,
    publish_membership,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_snapshot_key,
    render_snapshot_key,
    reset_registry,
    set_registry,
)
from repro.obs.popularity import (
    POPULARITY_SCHEMA_VERSION,
    CountMinSketch,
    PopularityConfig,
    PopularityMonitor,
    SpaceSavingTopK,
    collect_popularity,
    get_popularity_config,
    popularity_from_trace,
    publish_popularity,
    use_popularity,
    zipf_alpha_from_counts,
)
from repro.obs.replay import (
    KNOWN_EVENTS,
    event_counts,
    iter_trace,
    latency_samples,
    load_events,
    load_timeline,
    metrics_snapshots,
    per_server_loads,
    span_tree,
    trace_summary,
    unknown_events,
)
from repro.obs.runinfo import (
    MANIFEST_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    build_manifest,
    config_hash,
    git_sha,
    load_manifest,
    load_manifest_dir,
    peak_rss_bytes,
    total_requests_from_metrics,
    validate_manifest,
    write_manifest,
)
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLO_SCHEMA_VERSION,
    SLOConfig,
    SLObjective,
    SLOMonitor,
    collect_slo,
    default_slo_config,
    get_slo_config,
    parse_objective,
    parse_slo,
    publish_slo,
    slo_from_trace,
    use_slo,
)
from repro.obs.spans import (
    SpanCollector,
    SpanRecord,
    chrome_trace,
    collect_spans,
    current_span_id,
    span,
    span_wrap,
    write_chrome_trace,
)

# Legacy aliases for the removed repro.obs.profiling module's names.
profiled = span
profile = span_wrap
from repro.obs.timeline import (
    TIMELINE_SCHEMA_VERSION,
    TimelineCollector,
    TimelineConfig,
    chrome_counter_events,
    collect_timelines,
    get_timeline_config,
    publish_timeline,
    sparkline,
    tail_attribution_rows,
    timeline_series_rows,
    use_timeline,
)
from repro.obs.tracing import (
    FileSink,
    HeadSamplingSink,
    NullSink,
    RingBufferSink,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CAUSAL_SCHEMA_VERSION",
    "CausalCollector",
    "CausalConfig",
    "CountMinSketch",
    "Counter",
    "DEFAULT_OBJECTIVES",
    "DashBoard",
    "TraceContext",
    "FileSink",
    "Gauge",
    "HeadSamplingSink",
    "Histogram",
    "KNOWN_EVENTS",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "NullSink",
    "POPULARITY_SCHEMA_VERSION",
    "PopularityConfig",
    "PopularityMonitor",
    "RingBufferSink",
    "SLO_SCHEMA_VERSION",
    "SLOConfig",
    "SLObjective",
    "SLOMonitor",
    "SUPPORTED_SCHEMA_VERSIONS",
    "SnapshotDeltaSource",
    "SpaceSavingTopK",
    "SpanCollector",
    "SpanRecord",
    "TIMELINE_SCHEMA_VERSION",
    "TimelineCollector",
    "TimelineConfig",
    "Tracer",
    "build_manifest",
    "causal_chrome_events",
    "causal_from_trace",
    "causal_span",
    "chrome_counter_events",
    "chrome_trace",
    "collect_causal",
    "collect_membership",
    "collect_popularity",
    "collect_slo",
    "collect_spans",
    "collect_timelines",
    "config_hash",
    "critical_chain_rows",
    "critical_edge_rows",
    "current_context",
    "current_span_id",
    "dash_from_manifest",
    "default_slo_config",
    "event_counts",
    "events",
    "follow_lines",
    "get_causal_config",
    "get_popularity_config",
    "get_registry",
    "get_slo_config",
    "get_timeline_config",
    "get_tracer",
    "git_sha",
    "iter_trace",
    "latency_samples",
    "load_events",
    "load_manifest",
    "load_manifest_dir",
    "load_timeline",
    "metrics_snapshots",
    "parse_json_lines",
    "parse_objective",
    "parse_openmetrics",
    "parse_slo",
    "parse_snapshot_key",
    "peak_rss_bytes",
    "per_server_loads",
    "popularity_from_trace",
    "profile",
    "profiled",
    "publish_causal",
    "publish_membership",
    "publish_popularity",
    "publish_slo",
    "publish_timeline",
    "render_frame",
    "render_openmetrics",
    "render_snapshot_key",
    "render_snapshot_openmetrics",
    "reset_registry",
    "set_registry",
    "set_tracer",
    "slo_from_trace",
    "snapshots_to_openmetrics",
    "span",
    "span_forest",
    "span_tree",
    "span_wrap",
    "sparkline",
    "tail_attribution_rows",
    "timeline_rates",
    "timeline_series_rows",
    "total_requests_from_metrics",
    "trace_summary",
    "unknown_events",
    "use_causal",
    "use_context",
    "use_popularity",
    "use_slo",
    "use_timeline",
    "use_tracer",
    "zipf_alpha_from_counts",
    "validate_manifest",
    "write_manifest",
    "write_causal_chrome_trace",
    "write_chrome_trace",
]
