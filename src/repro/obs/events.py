"""Canonical trace event names and their field schemas.

Every instrumented module emits events whose names are collected here so
replay code, tests, and docs agree on one vocabulary.  The full field
tables live in ``docs/observability.md``; this module is the in-code
source of truth for the *names*.

Conventions
-----------
* ``ts`` is simulated seconds for simulator events (``read``,
  ``read_done``) and ``time.perf_counter()`` seconds for control-plane and
  profiling events.
* Identifiers are snake_case and grouped by layer with a short prefix-free
  name — the layer is recoverable from :data:`EVENT_LAYER`.
"""

from __future__ import annotations

__all__ = [
    "EVENT_LAYER",
    "SIMULATOR_EVENTS",
    "STORE_EVENTS",
    "CORE_EVENTS",
    "TOPOLOGY_EVENTS",
    "POPULARITY_EVENTS",
    "SLO_EVENTS",
    "CAUSAL_EVENTS",
]

# -- simulator (repro.cluster) ------------------------------------------------
READ = "read"  # one fork-join request: servers, sizes, queue wait
READ_DONE = "read_done"  # request completion: latency
SIMULATION_END = "simulation_end"  # per-run aggregates
TIMELINE_WINDOW = "timeline_window"  # one sim-time window: bytes, busy, queue

# -- byte store (repro.store) -------------------------------------------------
BLOCK_PUT = "block_put"
BLOCK_GET = "block_get"
BLOCK_MISS = "block_miss"  # get/delete of an absent block (BlockNotFound)
BLOCK_EVICT = "block_evict"
BLOCK_DELETE = "block_delete"
WORKER_CRASH = "worker_crash"
FILE_REGISTER = "file_register"
FILE_UNREGISTER = "file_unregister"
FILE_RELOCATE = "file_relocate"
RECOVERY = "recovery"  # lineage recompute of a lost file: file_id, wall_s

# -- control plane (repro.core) -----------------------------------------------
SCALE_ITER = "scale_iter"  # one Algorithm 1 ladder step: alpha, bound
SCALE_SEARCH = "scale_search"  # whole search: iterations, wall time
ADJUST_PLAN = "adjust_plan"  # one OnlineAdjuster round planned
ADJUST_APPLY = "adjust_apply"  # ops committed: count, moved bytes
REPARTITION_PLAN = "repartition_plan"  # Algorithm 2 planning outcome
REPARTITION_TIME = "repartition_time"  # timing-model evaluation

# -- cluster topology (repro.cluster.topology) --------------------------------
MEMBERSHIP = "membership"  # one server add/remove: ts, kind, server_id
EPOCH = "epoch"  # one epoch opening: epoch, n_servers, added, removed

# -- popularity / skew (repro.obs.popularity) ---------------------------------
POPULARITY_WINDOW = "popularity_window"  # one window: count, drift, imbalance
DRIFT = "drift"  # popularity drift alert: weighted L1 / rank churn tripped
HOTSPOT = "hotspot"  # single-file hot-spot alert: file_id, share

# -- SLO engine (repro.obs.slo) -----------------------------------------------
SLO_BREACH = "slo_breach"  # burn-rate alert opened: objective, severity, burn
SLO_RECOVERED = "slo_recovered"  # burn-rate alert closed: objective, severity

# -- spans / profiling (repro.obs.spans) --------------------------------------
SPAN = "span"  # hierarchical wall-clock span: name, span_id, parent, wall_s
PROFILE = "profile"  # legacy flat wall-clock span: name, wall_s

# -- causal tracing (repro.obs.causal) ----------------------------------------
CSPAN = "cspan"  # causal span: name, trace_id, span_id, parent_id, edges

SIMULATOR_EVENTS = (READ, READ_DONE, SIMULATION_END, TIMELINE_WINDOW)
STORE_EVENTS = (
    BLOCK_PUT,
    BLOCK_GET,
    BLOCK_MISS,
    BLOCK_EVICT,
    BLOCK_DELETE,
    WORKER_CRASH,
    FILE_REGISTER,
    FILE_UNREGISTER,
    FILE_RELOCATE,
    RECOVERY,
)
CORE_EVENTS = (
    SCALE_ITER,
    SCALE_SEARCH,
    ADJUST_PLAN,
    ADJUST_APPLY,
    REPARTITION_PLAN,
    REPARTITION_TIME,
)
TOPOLOGY_EVENTS = (MEMBERSHIP, EPOCH)
POPULARITY_EVENTS = (POPULARITY_WINDOW, DRIFT, HOTSPOT)
SLO_EVENTS = (SLO_BREACH, SLO_RECOVERED)
CAUSAL_EVENTS = (CSPAN,)

EVENT_LAYER: dict[str, str] = {
    **{name: "simulator" for name in SIMULATOR_EVENTS},
    **{name: "store" for name in STORE_EVENTS},
    **{name: "core" for name in CORE_EVENTS},
    **{name: "topology" for name in TOPOLOGY_EVENTS},
    **{name: "popularity" for name in POPULARITY_EVENTS},
    **{name: "slo" for name in SLO_EVENTS},
    **{name: "causal" for name in CAUSAL_EVENTS},
    SPAN: "profiling",
    PROFILE: "profiling",
}
