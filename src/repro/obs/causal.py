"""Causal request tracing: trace-context propagation + critical-path analysis.

The timelines of :mod:`repro.obs.timeline` answer *that* stragglers or
queueing dominated a run; this module answers "why was *this* request
slow, and which partition/server/operation was on its critical path?".
Three cooperating pieces:

**Trace context** — :class:`TraceContext` carries Dapper-style
``(trace_id, span_id, parent_id)`` identity through a
:class:`contextvars.ContextVar`, with W3C-traceparent serialization
(``00-<32 hex>-<16 hex>-01``) so the propagation rules survive the
planned move of :mod:`repro.store` to asyncio/thread-pool serving.
:func:`causal_span` opens one child span for the block and emits one
``cspan`` trace event (:data:`repro.obs.events.CSPAN`) on exit; the
whole store data plane (``store_client`` get/put → ``master``
lookup/placement → ``worker`` read/write/evict → ``lineage`` recovery)
is instrumented with it.  The disabled path is one ``tracer.enabled``
check — free, like every other hook in :mod:`repro.obs`.

**Engine span trees** — a :class:`CausalCollector` rides inside
:class:`~repro.cluster.engine.lifecycle.RequestLifecycle` with the same
buffer-only hook API as :class:`~repro.obs.timeline.TimelineCollector`,
so every discipline (``fifo``/``ps``/``limited``) and both planning
paths (scalar and :class:`~repro.cluster.engine.batch.BatchPlanner`)
feed it for free.  Span identity is *deterministic*: the trace id is a
hash of ``(scheme, engine, request)`` and span ids hash the role within
the tree, so a scalar and a batched run of the same workload produce
byte-identical causal DAGs (the parity property
``tests/test_cluster/test_causal_parity.py`` pins down).  When tracing
is enabled, :meth:`CausalCollector.emit_spans` emits the full span tree
of every request — one ``request`` root, ``k`` ``fetch`` children, one
``join`` child — as ``cspan`` events alongside READ/READ_DONE.

**Critical path** — for a fork-join request the critical path is the
max-latency chain across its ``k`` partition fetches: the fetch whose
*reported* completion fired the join.  Its edges:

* ``queue``    — waiting for the serving NIC (``start - arrival``);
* ``service``  — bytes on the wire (``end - start``);
* ``transfer`` — the straggler report delay reaching the join
  (``reported - end``);
* ``join``     — the residual: post-join decode plus any miss penalty
  (``latency - queue - service - transfer``).

Because ``join`` is defined as the residual, the **conservation
invariant** — critical-path segment sum equals the end-to-end latency —
holds by construction; :meth:`CausalCollector.finalize` re-adds the
segments and records the worst relative error (float re-addition noise,
orders of magnitude under the 1e-9 tolerance), and
:func:`causal_from_trace` re-verifies the invariant from the JSON floats
of a replayed trace.  Sections land in schema-v6 run manifests, render
through ``repro critical``, feed the ``repro dash`` edge-type panel,
and export as Chrome/Perfetto span trees with parent/child flow events
(:func:`causal_chrome_events`).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar, Token
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any, Iterator

import numpy as np

from repro.obs import events as ev
from repro.obs.replay import load_events
from repro.obs.tracing import Tracer, get_tracer

__all__ = [
    "CAUSAL_SCHEMA_VERSION",
    "CausalCollector",
    "CausalConfig",
    "TraceContext",
    "causal_chrome_events",
    "causal_from_trace",
    "causal_span",
    "collect_causal",
    "critical_chain_rows",
    "critical_edge_rows",
    "current_context",
    "get_causal_config",
    "new_span_id",
    "new_trace_id",
    "publish_causal",
    "request_span_id",
    "request_trace_id",
    "span_forest",
    "use_causal",
    "use_context",
    "write_causal_chrome_trace",
]

#: Version of the causal *section* layout (independent of the manifest
#: schema version, which gates the envelope).
CAUSAL_SCHEMA_VERSION = 1

#: The four critical-path edge types, in chain order.
EDGE_TYPES = ("queue", "service", "transfer", "join")

#: ``cspan`` record fields owned by the span machinery; caller attrs with
#: these names are namespaced to ``attr_<key>`` rather than raising.
RESERVED_CSPAN_FIELDS = frozenset(
    {"event", "ts", "name", "trace_id", "span_id", "parent_id", "wall_s"}
)


# -- trace context ---------------------------------------------------------

_TRACEPARENT_VERSION = "00"


@dataclass(frozen=True)
class TraceContext:
    """One position in a causal tree: trace + span + parent identity.

    ``trace_id`` is 32 lowercase hex chars, ``span_id`` 16, matching the
    W3C trace-context field widths so :meth:`to_traceparent` round-trips
    through any standard propagation header.  ``parent_id`` is ``None``
    at a tree root (it is *not* carried by the traceparent wire format —
    a deserialized context is always a remote parent).
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def __post_init__(self) -> None:
        _check_hex("trace_id", self.trace_id, 32)
        _check_hex("span_id", self.span_id, 16)
        if self.parent_id is not None:
            _check_hex("parent_id", self.parent_id, 16)

    def child(self, span_id: str | None = None) -> "TraceContext":
        """A child context: same trace, new span, this span as parent."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_id if span_id is not None else new_span_id(),
            parent_id=self.span_id,
        )

    def to_traceparent(self) -> str:
        """W3C ``traceparent`` form: ``00-<trace_id>-<span_id>-01``."""
        return (
            f"{_TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-01"
        )

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext":
        """Parse a ``traceparent`` header back into a context.

        The resulting context has ``parent_id=None`` — the wire format
        carries only the caller's span identity, which becomes the
        *parent* of whatever span the receiver opens via :meth:`child`.
        """
        if not isinstance(header, str):
            raise TypeError(
                f"traceparent must be a string, got {type(header).__name__}"
            )
        parts = header.strip().split("-")
        if len(parts) != 4:
            raise ValueError(
                f"traceparent needs 4 '-'-separated fields, got {header!r}"
            )
        version, trace_id, span_id, flags = parts
        if len(version) != 2 or _not_hex(version) or version == "ff":
            raise ValueError(f"bad traceparent version {version!r}")
        if len(flags) != 2 or _not_hex(flags):
            raise ValueError(f"bad traceparent flags {flags!r}")
        return cls(trace_id=trace_id, span_id=span_id, parent_id=None)


def _not_hex(s: str) -> bool:
    return any(c not in "0123456789abcdef" for c in s)


def _check_hex(field: str, value: str, width: int) -> None:
    if (
        not isinstance(value, str)
        or len(value) != width
        or _not_hex(value)
        or value == "0" * width
    ):
        raise ValueError(
            f"{field} must be {width} lowercase hex chars (not all-zero), "
            f"got {value!r}"
        )


_ids = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique 32-hex trace id (store-plane roots)."""
    return f"{next(_ids):032x}"


def new_span_id() -> str:
    """A process-unique 16-hex span id."""
    return f"{next(_ids):016x}"


def request_trace_id(
    scheme: str, engine: str, req: int, run_key: str = ""
) -> str:
    """The *deterministic* trace id of one simulated request.

    A hash of ``(scheme, engine, run key, request index)``, so identical
    seeded runs — and in particular a scalar vs a batched pass of the
    same workload — produce identical causal DAG identities.  The
    ``run_key`` is the collector's workload fingerprint (arrivals, file
    ids, latencies): it keeps ids distinct when one process simulates
    the same scheme several times (e.g. a load sweep), which would
    otherwise collide trees in the trace.
    """
    return blake2b(
        f"{scheme}|{engine}|{run_key}|{req}".encode(), digest_size=16
    ).hexdigest()


def request_span_id(trace_id: str, role: str) -> str:
    """Deterministic span id for ``role`` within a request's span tree.

    Roles: ``"request"`` (root), ``"fetch<pos>"`` (one per partition),
    ``"join"``.
    """
    return blake2b(
        f"{trace_id}:{role}".encode(), digest_size=8
    ).hexdigest()


_ctx: ContextVar[TraceContext | None] = ContextVar(
    "repro_causal_context", default=None
)


def current_context() -> TraceContext | None:
    """The ambient :class:`TraceContext`, or ``None`` outside any span."""
    return _ctx.get()


@contextmanager
def use_context(ctx: TraceContext) -> Iterator[TraceContext]:
    """Install ``ctx`` as the ambient context for the block.

    The entry point for *remote* parents: deserialize a traceparent
    header, install it, and every :func:`causal_span` inside the block
    parents under the caller's span.
    """
    if not isinstance(ctx, TraceContext):
        raise TypeError(
            f"ctx must be a TraceContext, got {type(ctx).__name__}"
        )
    token: Token = _ctx.set(ctx)
    try:
        yield ctx
    finally:
        _ctx.reset(token)


@contextmanager
def causal_span(
    name: str, /, *, tracer: Tracer | None = None, **attrs: Any
) -> Iterator[TraceContext | None]:
    """One causal span: opens a child context, emits a ``cspan`` on exit.

    With no ambient context a fresh trace is rooted; nested spans chain
    ``parent_id`` automatically through the :class:`~contextvars.ContextVar`
    (which asyncio tasks and thread-pool executors copy, so the
    propagation keeps working when the store goes concurrent).  The
    emitted record carries ``trace_id``/``span_id``/``parent_id``,
    ``wall_s``, and the caller's ``attrs`` (reserved names are renamed
    to ``attr_<key>``).  Disabled tracing skips everything — one
    ``enabled`` check, no context mutation.
    """
    t = tracer if tracer is not None else get_tracer()
    if not t.enabled:
        yield None
        return
    parent = _ctx.get()
    if parent is None:
        ctx = TraceContext(new_trace_id(), new_span_id(), None)
    else:
        ctx = parent.child()
    token = _ctx.set(ctx)
    start = time.perf_counter()
    try:
        yield ctx
    finally:
        _ctx.reset(token)
        clean = {
            (f"attr_{k}" if k in RESERVED_CSPAN_FIELDS else k): v
            for k, v in attrs.items()
        }
        t.event(
            ev.CSPAN,
            ts=start,
            name=name,
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=ctx.parent_id,
            wall_s=time.perf_counter() - start,
            **clean,
        )


# -- run configuration + ambient plumbing (mirrors obs.timeline) ----------


@dataclass(frozen=True)
class CausalConfig:
    """Knobs of one run's causal collection.

    ``top_k`` bounds the slowest-request chains embedded in the
    finalized section; ``tolerance`` is the relative error the
    conservation check accepts (the acceptance gate re-asserts the
    default 1e-9).
    """

    top_k: int = 64
    tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if not self.tolerance > 0:
            raise ValueError("tolerance must be positive")


_local = threading.local()


def get_causal_config() -> CausalConfig | None:
    """The ambiently installed :class:`CausalConfig`, or ``None``.

    :class:`~repro.cluster.engine.lifecycle.RequestLifecycle` consults
    this when its config carries no explicit ``causal`` knob, matching
    the timeline/popularity/SLO pattern.
    """
    stack = getattr(_local, "configs", None)
    return stack[-1] if stack else None


@contextmanager
def use_causal(config: CausalConfig) -> Iterator[CausalConfig]:
    """Ambiently enable causal collection for the block."""
    if not isinstance(config, CausalConfig):
        raise TypeError(
            f"config must be a CausalConfig, got {type(config).__name__}"
        )
    stack = getattr(_local, "configs", None)
    if stack is None:
        stack = _local.configs = []
    stack.append(config)
    try:
        yield config
    finally:
        stack.pop()


@contextmanager
def collect_causal(
    into: list[dict[str, Any]] | None = None,
) -> Iterator[list[dict[str, Any]]]:
    """Collect every causal section published inside the block (nestable)."""
    sink: list[dict[str, Any]] = into if into is not None else []
    sinks = getattr(_local, "sinks", None)
    if sinks is None:
        sinks = _local.sinks = []
    sinks.append(sink)
    try:
        yield sink
    finally:
        # Remove by identity: two empty list sinks compare equal.
        for i in range(len(sinks) - 1, -1, -1):
            if sinks[i] is sink:
                del sinks[i]
                break


def publish_causal(section: dict[str, Any]) -> None:
    """Hand one finalized section to every active collector."""
    for sink in getattr(_local, "sinks", ()):
        sink.append(section)


# -- the collector ---------------------------------------------------------


class CausalCollector:
    """Buffers raw per-partition records; all analysis in :meth:`finalize`.

    Deliberately the same hook API as
    :class:`~repro.obs.timeline.TimelineCollector`, so the lifecycle can
    fan one guarded call out to both collectors and no discipline needs
    causal-specific code.  :meth:`finalize` computes every request's
    critical chain, verifies the conservation invariant, and returns a
    JSON-able section; :meth:`emit_spans` (call after finalize, only
    when tracing) emits the full per-request span trees as ``cspan``
    events with deterministic ids.
    """

    def __init__(
        self,
        config: CausalConfig,
        *,
        n_requests: int,
        n_servers: int,
        scheme: str,
        engine: str,
    ) -> None:
        self.config = config
        self.n_requests = int(n_requests)
        self.n_servers = int(n_servers)
        self.scheme = scheme
        self.engine = engine
        self._req: list[int] = []
        self._pos: list[int] = []
        self._server: list[int] = []
        self._size: list[float] = []
        self._start: list[float] = []
        self._end: list[float] = []
        self._extra: list[float] = []
        self._gfactor: list[float] = []
        self._blocks: list[tuple] = []
        self._frames: list[tuple] = []
        self.crit_pos = np.full(self.n_requests, -1, dtype=np.int64)
        self.missed = np.zeros(self.n_requests, dtype=bool)
        self.straggled = np.zeros(self.n_requests, dtype=bool)
        #: Workload fingerprint, set by finalize; discriminates repeated
        #: same-scheme runs in one process so trace ids never collide.
        self.run_key = ""
        #: Sorted arrays stashed by finalize for :meth:`emit_spans`.
        self._fin: dict[str, Any] | None = None

    # -- hot-path hooks (buffer only, no arithmetic) ------------------

    def record_partition(
        self,
        req: int,
        pos: int,
        server: int,
        size: float,
        start: float,
        end: float,
        extra: float = 0.0,
        gfactor: float = 1.0,
    ) -> None:
        self._req.append(req)
        self._pos.append(pos)
        self._server.append(server)
        self._size.append(size)
        self._start.append(start)
        self._end.append(end)
        self._extra.append(extra)
        self._gfactor.append(gfactor)

    def record_partitions(
        self, req, servers, sizes, starts, ends, extras, gfactors
    ) -> None:
        self._blocks.append(
            (
                int(req),
                np.array(servers, dtype=np.int64),
                np.array(sizes, dtype=np.float64),
                np.array(starts, dtype=np.float64),
                np.array(ends, dtype=np.float64),
                np.array(extras, dtype=np.float64),
                np.array(gfactors, dtype=np.float64),
            )
        )

    def record_request(self, req: int, *, missed: bool, straggled: bool) -> None:
        self.missed[req] = missed
        self.straggled[req] = straggled

    def record_join(self, req: int, pos: int) -> None:
        self.crit_pos[req] = pos

    def record_partition_frame(
        self, reqs, poss, servers, sizes, starts, ends, extras, gfactors
    ) -> None:
        self._frames.append(
            (
                np.array(reqs, dtype=np.int64),
                np.array(poss, dtype=np.int64),
                np.array(servers, dtype=np.int64),
                np.array(sizes, dtype=np.float64),
                np.array(starts, dtype=np.float64),
                np.array(ends, dtype=np.float64),
                np.array(extras, dtype=np.float64),
                np.array(gfactors, dtype=np.float64),
            )
        )

    def record_request_frame(self, reqs, missed, straggled) -> None:
        reqs = np.asarray(reqs, dtype=np.int64)
        self.missed[reqs] = np.asarray(missed, dtype=bool)
        self.straggled[reqs] = np.asarray(straggled, dtype=bool)

    def record_join_frame(self, reqs, poss) -> None:
        self.crit_pos[np.asarray(reqs, dtype=np.int64)] = np.asarray(
            poss, dtype=np.int64
        )

    # -- finalize -----------------------------------------------------

    def _merged_records(self) -> tuple[np.ndarray, ...]:
        reqs = [np.asarray(self._req, dtype=np.int64)]
        poss = [np.asarray(self._pos, dtype=np.int64)]
        servers = [np.asarray(self._server, dtype=np.int64)]
        sizes = [np.asarray(self._size, dtype=np.float64)]
        starts = [np.asarray(self._start, dtype=np.float64)]
        ends = [np.asarray(self._end, dtype=np.float64)]
        extras = [np.asarray(self._extra, dtype=np.float64)]
        gfactors = [np.asarray(self._gfactor, dtype=np.float64)]
        for r, srv, sz, st, en, ex, gf in self._blocks:
            k = srv.size
            reqs.append(np.full(k, r, dtype=np.int64))
            poss.append(np.arange(k, dtype=np.int64))
            servers.append(srv)
            sizes.append(sz)
            starts.append(st)
            ends.append(en)
            extras.append(np.broadcast_to(ex, (k,)))
            gfactors.append(np.broadcast_to(gf, (k,)))
        for rq, ps, srv, sz, st, en, ex, gf in self._frames:
            reqs.append(rq)
            poss.append(ps)
            servers.append(srv)
            sizes.append(sz)
            starts.append(st)
            ends.append(en)
            extras.append(ex)
            gfactors.append(gf)
        return tuple(
            np.concatenate(parts)
            for parts in (
                reqs, poss, servers, sizes, starts, ends, extras, gfactors
            )
        )

    def finalize(
        self,
        *,
        times: np.ndarray,
        file_ids: np.ndarray,
        latencies: np.ndarray,
        warmup_fraction: float = 0.0,
    ) -> dict[str, Any]:
        """Critical chains + conservation check, as one JSON-able section.

        Deterministic by construction: records are lexsorted by
        ``(request, partition)`` before any arithmetic, so scalar
        appends, array blocks, and batched frames all produce identical
        sections.
        """
        cfg = self.config
        times = np.asarray(times, dtype=np.float64)
        latencies = np.asarray(latencies, dtype=np.float64)
        file_ids = np.asarray(file_ids, dtype=np.int64)
        n_req = int(latencies.size)

        # Workload fingerprint for the deterministic trace ids: scalar
        # and batched passes of one workload see byte-identical arrays
        # here, while a load sweep's repeated same-scheme runs do not —
        # without it their span ids would collide in a shared trace.
        fp = blake2b(digest_size=8)
        fp.update(times.tobytes())
        fp.update(file_ids.tobytes())
        fp.update(latencies.tobytes())
        self.run_key = fp.hexdigest()

        req, pos, server, size, start, end, extra, _gf = (
            self._merged_records()
        )
        order = np.lexsort((pos, req))
        req = req[order]
        pos = pos[order]
        server = server[order]
        size = size[order]
        start = start[order]
        end = end[order]
        extra = extra[order]

        ids = np.arange(n_req, dtype=np.int64)
        blk_lo = np.searchsorted(req, ids, side="left")
        blk_hi = np.searchsorted(req, ids, side="right")
        kk = blk_hi - blk_lo
        crit = self.crit_pos[:n_req]
        valid = (kk > 0) & (crit >= 0) & (crit < kk)
        crow = np.where(valid, blk_lo + np.clip(crit, 0, None), 0)
        if req.size:
            # A discipline records each partition position exactly once,
            # so within one request's block ``pos`` is 0..k-1 in order
            # and the critical row sits at ``blk_lo + crit``; verify
            # rather than assume, demoting mismatches to join-only.
            valid &= np.where(valid, pos[crow] == crit, False)

        queue = np.zeros(n_req)
        service = np.zeros(n_req)
        transfer = np.zeros(n_req)
        crit_server = np.full(n_req, -1, dtype=np.int64)
        crit_bytes = np.zeros(n_req)
        if req.size and n_req:
            rows = crow[valid]
            queue[valid] = start[rows] - times[valid]
            service[valid] = end[rows] - start[rows]
            transfer[valid] = extra[rows]
            crit_server[valid] = server[rows]
            crit_bytes[valid] = size[rows]
        join = latencies - queue - service - transfer

        # Conservation: re-add the segments and compare against the
        # end-to-end latency.  ``join`` is the residual, so the only
        # error is float re-addition noise (a few ulp).
        total = queue + service + transfer + join
        denom = np.maximum(np.abs(latencies), 1e-300)
        rel = np.abs(total - latencies) / denom
        max_rel = float(rel.max()) if n_req else 0.0
        conservation = {
            "checked": n_req,
            "max_rel_err": max_rel,
            "tolerance": float(cfg.tolerance),
            "ok": bool(max_rel <= cfg.tolerance),
        }

        skip = int(n_req * warmup_fraction)
        edges = {
            "queue_s": float(queue[skip:].sum()),
            "service_s": float(service[skip:].sum()),
            "transfer_s": float(transfer[skip:].sum()),
            "join_s": float(join[skip:].sum()),
            "requests": int(n_req - skip),
        }

        chains: list[dict[str, Any]] = []
        steady = latencies[skip:]
        if steady.size:
            k_top = min(cfg.top_k, int(steady.size))
            slowest = np.argsort(-steady, kind="stable")[:k_top] + skip
            for r in slowest.tolist():
                chains.append(
                    {
                        "req": int(r),
                        "trace_id": request_trace_id(
                            self.scheme, self.engine, int(r), self.run_key
                        ),
                        "file_id": int(file_ids[r]),
                        "arrival_s": float(times[r]),
                        "latency_s": float(latencies[r]),
                        "k": int(kk[r]),
                        "crit": int(crit[r]),
                        "server": int(crit_server[r]),
                        "bytes": float(crit_bytes[r]),
                        "queue_s": float(queue[r]),
                        "service_s": float(service[r]),
                        "transfer_s": float(transfer[r]),
                        "join_s": float(join[r]),
                        "missed": bool(self.missed[r]),
                        "straggled": bool(self.straggled[r]),
                    }
                )

        self._fin = {
            "req": req,
            "pos": pos,
            "server": server,
            "size": size,
            "start": start,
            "end": end,
            "extra": extra,
            "times": times,
            "file_ids": np.asarray(file_ids, dtype=np.int64),
            "latencies": latencies,
            "blk_lo": blk_lo,
            "blk_hi": blk_hi,
            "crit": crit,
            "valid": valid,
            "queue": queue,
            "service": service,
            "transfer": transfer,
            "join": join,
        }
        return {
            "schema_version": CAUSAL_SCHEMA_VERSION,
            "scheme": self.scheme,
            "engine": self.engine,
            "run_key": self.run_key,
            "n_requests": n_req,
            "n_servers": self.n_servers,
            "warmup_skipped": skip,
            "conservation": conservation,
            "edges": edges,
            "chains": chains,
        }

    def emit_spans(self, tracer: Tracer) -> int:
        """Emit every request's span tree as ``cspan`` events.

        Call after :meth:`finalize` with an enabled tracer.  Timestamps
        are simulated seconds; ids are the deterministic
        :func:`request_trace_id` / :func:`request_span_id` family, so a
        scalar and a batched trace of one workload carry identical DAGs.
        Returns the number of events emitted.
        """
        if self._fin is None:
            raise RuntimeError("emit_spans requires finalize() first")
        if not tracer.enabled:
            return 0
        f = self._fin
        event = tracer.event
        n = 0
        lat = f["latencies"]
        for r in range(int(lat.size)):
            tid = request_trace_id(self.scheme, self.engine, r, self.run_key)
            root = request_span_id(tid, "request")
            arrival = float(f["times"][r])
            latency = float(lat[r])
            crit = int(f["crit"][r])
            event(
                ev.CSPAN,
                ts=arrival,
                name="request",
                trace_id=tid,
                span_id=root,
                parent_id=None,
                scheme=self.scheme,
                engine=self.engine,
                req=r,
                file_id=int(f["file_ids"][r]),
                latency_s=latency,
                k=int(f["blk_hi"][r] - f["blk_lo"][r]),
                crit=crit,
                missed=bool(self.missed[r]),
                straggled=bool(self.straggled[r]),
            )
            n += 1
            for row in range(int(f["blk_lo"][r]), int(f["blk_hi"][r])):
                p = int(f["pos"][row])
                event(
                    ev.CSPAN,
                    ts=float(f["start"][row]),
                    name="fetch",
                    trace_id=tid,
                    span_id=request_span_id(tid, f"fetch{p}"),
                    parent_id=root,
                    scheme=self.scheme,
                    req=r,
                    pos=p,
                    server=int(f["server"][row]),
                    bytes=float(f["size"][row]),
                    queue_s=float(f["start"][row] - arrival),
                    service_s=float(f["end"][row] - f["start"][row]),
                    transfer_s=float(f["extra"][row]),
                    critical=bool(p == crit),
                )
                n += 1
            join_s = float(f["join"][r])
            event(
                ev.CSPAN,
                ts=arrival + latency - join_s,
                name="join",
                trace_id=tid,
                span_id=request_span_id(tid, "join"),
                parent_id=root,
                scheme=self.scheme,
                req=r,
                join_s=join_s,
            )
            n += 1
        return n


# -- DAG reconstruction from traces ---------------------------------------


def span_forest(source) -> list[dict[str, Any]]:
    """Rebuild causal span trees from ``cspan`` events.

    Returns the root nodes; every node is the original record plus a
    ``children`` list.  A node whose ``parent_id`` never appears is
    promoted to a root (a trace started mid-run), matching the tolerant
    behaviour of :func:`repro.obs.replay.span_tree`.
    """
    nodes: dict[str, dict[str, Any]] = {}
    order: list[dict[str, Any]] = []
    for record in load_events(source):
        if record.get("event") != ev.CSPAN or "span_id" not in record:
            continue
        node = {**record, "children": []}
        nodes[str(record["span_id"])] = node
        order.append(node)
    roots: list[dict[str, Any]] = []
    for node in order:
        parent = node.get("parent_id")
        if parent is not None and str(parent) in nodes:
            nodes[str(parent)]["children"].append(node)
        else:
            roots.append(node)
    return roots


def causal_from_trace(
    source, tolerance: float = 1e-9
) -> list[dict[str, Any]]:
    """Reconstruct per-request causal DAGs from a JSONL trace.

    Groups engine ``cspan`` trees (``request`` roots with ``fetch`` /
    ``join`` children) per scheme, recomputes each request's critical
    chain from the *replayed JSON floats*, and re-verifies the
    conservation invariant.  Returns one section per scheme, shaped
    like :meth:`CausalCollector.finalize` output plus reconstruction
    accounting: ``reconstructed`` counts requests whose full span tree
    (root, all ``k`` fetches, join, and a critical fetch) came back.

    Replay is tolerant: unknown event kinds are ignored (they are not
    ``cspan``), and malformed ``cspan`` records (missing ids or fields)
    count under ``dropped`` instead of raising.
    """
    roots = span_forest(source)
    per_scheme: dict[str, list[dict[str, Any]]] = {}
    dropped = 0
    for root in roots:
        if root.get("name") != "request":
            continue  # store-plane / foreign trees have their own roots
        if "latency_s" not in root or "k" not in root:
            dropped += 1
            continue
        per_scheme.setdefault(str(root.get("scheme", "?")), []).append(root)

    sections: list[dict[str, Any]] = []
    for scheme in sorted(per_scheme):
        reqs = per_scheme[scheme]
        n_req = len(reqs)
        reconstructed = 0
        max_rel = 0.0
        edges = {
            "queue_s": 0.0,
            "service_s": 0.0,
            "transfer_s": 0.0,
            "join_s": 0.0,
            "requests": n_req,
        }
        chains: list[dict[str, Any]] = []
        for root in reqs:
            k = int(root["k"])
            latency = float(root["latency_s"])
            fetches = [
                c for c in root["children"] if c.get("name") == "fetch"
            ]
            joins = [c for c in root["children"] if c.get("name") == "join"]
            crit_fetch = next(
                (c for c in fetches if c.get("critical")), None
            )
            complete = (
                len(fetches) == k and len(joins) == 1
                and (crit_fetch is not None or k == 0)
            )
            if complete:
                reconstructed += 1
            queue = service = transfer = 0.0
            server = -1
            if crit_fetch is not None:
                queue = float(crit_fetch.get("queue_s", 0.0))
                service = float(crit_fetch.get("service_s", 0.0))
                transfer = float(crit_fetch.get("transfer_s", 0.0))
                server = int(crit_fetch.get("server", -1))
            join_s = float(joins[0]["join_s"]) if joins else 0.0
            total = queue + service + transfer + join_s
            rel = abs(total - latency) / max(abs(latency), 1e-300)
            max_rel = max(max_rel, rel)
            edges["queue_s"] += queue
            edges["service_s"] += service
            edges["transfer_s"] += transfer
            edges["join_s"] += join_s
            chains.append(
                {
                    "req": int(root.get("req", -1)),
                    "trace_id": str(root.get("trace_id", "?")),
                    "file_id": int(root.get("file_id", -1)),
                    "arrival_s": float(root.get("ts", 0.0)),
                    "latency_s": latency,
                    "k": k,
                    "crit": int(root.get("crit", -1)),
                    "server": server,
                    "bytes": float(
                        crit_fetch.get("bytes", 0.0) if crit_fetch else 0.0
                    ),
                    "queue_s": queue,
                    "service_s": service,
                    "transfer_s": transfer,
                    "join_s": join_s,
                    "missed": bool(root.get("missed", False)),
                    "straggled": bool(root.get("straggled", False)),
                }
            )
        chains.sort(key=lambda c: -c["latency_s"])
        sections.append(
            {
                "schema_version": CAUSAL_SCHEMA_VERSION,
                "scheme": scheme,
                "engine": str(reqs[0].get("engine", "?")),
                "n_requests": n_req,
                "warmup_skipped": 0,
                "reconstructed": reconstructed,
                "dropped": dropped,
                "conservation": {
                    "checked": n_req,
                    "max_rel_err": max_rel,
                    "tolerance": float(tolerance),
                    "ok": bool(max_rel <= tolerance),
                },
                "edges": edges,
                "chains": chains,
            }
        )
    return sections


# -- rendering helpers -----------------------------------------------------


def critical_edge_rows(section: dict[str, Any]) -> list[dict[str, Any]]:
    """Edge-type/seconds/share rows of one section's aggregation."""
    edges = section.get("edges") or {}
    total = sum(float(edges.get(f"{e}_s", 0.0)) for e in EDGE_TYPES)
    rows = []
    for edge in EDGE_TYPES:
        seconds = float(edges.get(f"{edge}_s", 0.0))
        rows.append(
            {
                "edge": edge,
                "seconds": seconds,
                "share_pct": 100.0 * seconds / total if total else 0.0,
            }
        )
    return rows


def critical_chain_rows(
    section: dict[str, Any], top: int = 10
) -> list[dict[str, Any]]:
    """Slowest-request chain rows for one section (CLI table form)."""
    rows = []
    for chain in (section.get("chains") or [])[:top]:
        rows.append(
            {
                "req": chain["req"],
                "file": chain["file_id"],
                "latency_s": chain["latency_s"],
                "queue_s": chain["queue_s"],
                "service_s": chain["service_s"],
                "transfer_s": chain["transfer_s"],
                "join_s": chain["join_s"],
                "k": chain["k"],
                "server": chain["server"],
                "flags": "".join(
                    flag
                    for flag, on in (
                        ("S", chain.get("straggled")),
                        ("M", chain.get("missed")),
                    )
                    if on
                )
                or "-",
                "trace": str(chain.get("trace_id", "?"))[:12],
            }
        )
    return rows


# -- Chrome trace export with flow events ----------------------------------


def _flow_id(span_id: str) -> int:
    try:
        return int(str(span_id), 16) & 0x7FFFFFFF
    except ValueError:
        return abs(hash(span_id)) & 0x7FFFFFFF


def _span_duration(node: dict[str, Any]) -> float:
    if "latency_s" in node:
        return float(node["latency_s"])
    if "service_s" in node:
        return float(node["service_s"]) + float(node.get("transfer_s", 0.0))
    if "join_s" in node:
        return float(node["join_s"])
    return float(node.get("wall_s", 0.0))


def causal_chrome_events(
    source, pid: int = 3, max_tracks: int = 32
) -> list[dict[str, Any]]:
    """Chrome trace events of causal span trees, with flow binding.

    Every span becomes an "X" event (timestamps in the span's own clock
    — simulated seconds for engine trees, ``perf_counter`` for store
    spans — scaled to microseconds), and every parent→child edge
    becomes an "s"/"f" flow pair so Perfetto draws the causal arrows.
    Trees round-robin over ``max_tracks`` thread lanes to stay legible.
    """
    roots = span_forest(source)
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 1,
            "name": "process_name",
            "args": {"name": "repro.causal"},
        }
    ]
    for i, root in enumerate(roots):
        tid = (i % max_tracks) + 1
        stack = [root]
        while stack:
            node = stack.pop()
            ts_us = float(node.get("ts", 0.0)) * 1e6
            dur_us = max(_span_duration(node), 0.0) * 1e6
            args = {
                k: v
                for k, v in node.items()
                if k not in ("children", "event", "ts") and v is not None
            }
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "name": str(node.get("name", "?")),
                    "cat": "causal",
                    "ts": ts_us,
                    "dur": dur_us,
                    "args": args,
                }
            )
            for child in node["children"]:
                fid = _flow_id(str(child.get("span_id", "0")))
                child_ts = float(child.get("ts", 0.0)) * 1e6
                events.append(
                    {
                        "ph": "s",
                        "pid": pid,
                        "tid": tid,
                        "name": "causes",
                        "cat": "causal",
                        "id": fid,
                        "ts": ts_us,
                    }
                )
                events.append(
                    {
                        "ph": "f",
                        "pid": pid,
                        "tid": tid,
                        "name": "causes",
                        "cat": "causal",
                        "id": fid,
                        "bp": "e",
                        "ts": child_ts,
                    }
                )
                stack.append(child)
    return events


def write_causal_chrome_trace(source, path) -> int:
    """Write causal span trees as a Chrome trace file; returns span count."""
    import json
    from pathlib import Path

    events = causal_chrome_events(source)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(doc), encoding="utf-8")
    return sum(1 for e in events if e["ph"] == "X")
