"""Declarative SLOs with multi-window multi-burn-rate alerting.

The paper's headline claims are statements about *sustained* behaviour —
fig12/13/19 argue that SP-Cache holds tail latency and load balance
continuously, not just in end-of-run aggregates.  This module judges a
run against declarative objectives the way an SRE would judge a serving
system: each objective defines a *bad event* (a request slower than the
latency threshold, a cache miss, a window whose load imbalance exceeds a
bound) and an *error budget* (the fraction of bad events the objective
tolerates), and the evaluator applies the classic multi-window
multi-burn-rate recipe (Beyer et al., *The Site Reliability Workbook*,
ch. 5):

* a **fast** window (few windows wide) paging when the run burns through
  ``page_budget`` (default 5%) of the whole-run budget at a rate that
  would exhaust it well before the run ends — catches sharp regressions;
* a **slow** window (many windows wide) warning on sustained low-grade
  burn — catches the "slightly over budget forever" failure mode.

Burn rate is budget-normalized: ``burn = bad_fraction / budget``, so
``burn > 1`` means the objective is being missed outright and the page
threshold scales as ``page_budget * n_windows / fast_windows``.

Evaluation is **order-insensitive and vectorized**: the event-heap
discipline completes requests out of arrival order, so rather than
streaming (which would force a per-completion sort), the monitor buffers
only per-request miss flags on the hot path (one list append inside
:meth:`~repro.cluster.engine.lifecycle.RequestLifecycle.admit`) and does
all window bucketing at finalize time with one ``bincount`` over
``times // window_s`` — the same shape of work the timeline module
already does, keeping enabled-path overhead far under the 5% budget
(enforced by ``benchmarks/bench_slo_overhead.py``).

Alert state transitions emit :data:`~repro.obs.events.SLO_BREACH` /
:data:`~repro.obs.events.SLO_RECOVERED` trace events (sim-time ``ts``)
through the run's :class:`~repro.obs.tracing.Tracer`, bump
``slo.breaches`` / ``slo.recoveries`` counters, and set a
``slo.budget_remaining`` gauge per objective, so ``repro stats``, the
OpenMetrics export, and ``repro dash`` all see them.  Finalized sections
are plain JSON-able dicts landing in run manifests (schema version 5).

Like timelines and popularity, evaluation is off by default per
``SimulationConfig`` but ``run_experiment`` installs
:func:`default_slo_config` ambiently, so every ``@experiment`` inherits
SLO evaluation for free (the default objectives are loose enough that a
healthy run stays quiet).
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.tracing import Tracer, get_tracer

__all__ = [
    "DEFAULT_OBJECTIVES",
    "SLO_SCHEMA_VERSION",
    "SLOConfig",
    "SLObjective",
    "SLOMonitor",
    "collect_slo",
    "default_slo_config",
    "get_slo_config",
    "parse_objective",
    "parse_slo",
    "publish_slo",
    "slo_from_trace",
    "use_slo",
]

#: Version of the ``slo`` *section* layout (independent of the manifest
#: schema version, which gates the envelope).
SLO_SCHEMA_VERSION = 1

_OBJECTIVE_KINDS = ("latency", "miss", "imbalance")


@dataclass(frozen=True)
class SLObjective:
    """One service-level objective over a run.

    ``kind`` picks the SLI:

    ``latency``
        Bad event: a request whose latency is >= ``threshold`` seconds.
    ``miss``
        Bad event: a cache miss (``threshold`` is unused; the budget IS
        the target miss ratio).
    ``imbalance``
        Bad event: a window whose load-imbalance factor (max/mean bytes
        served) is >= ``threshold``.

    ``budget`` is the tolerated bad-event fraction over the whole run —
    the error budget the burn-rate machinery meters out.
    """

    name: str
    kind: str
    threshold: float = 0.0
    budget: float = 0.01

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("objective name must be a non-empty string")
        if self.kind not in _OBJECTIVE_KINDS:
            raise ValueError(
                f"kind must be one of {_OBJECTIVE_KINDS}, got {self.kind!r}"
            )
        if self.kind != "miss" and not self.threshold > 0:
            raise ValueError(
                f"{self.kind} objective needs a positive threshold"
            )
        if not 0 < self.budget < 1:
            raise ValueError("budget must be in (0, 1)")


#: Loose objectives every ``@experiment`` inherits: quiet on a healthy
#: run, loud on a pathological one.
DEFAULT_OBJECTIVES: tuple[SLObjective, ...] = (
    SLObjective("p99_latency", "latency", threshold=10.0, budget=0.01),
    SLObjective("miss_ratio", "miss", budget=0.5),
    SLObjective("imbalance", "imbalance", threshold=20.0, budget=0.25),
)


_SPEC_RE = re.compile(
    r"^(?P<kind>p99|latency|miss|imbalance)"
    r"(?:<(?P<threshold>[0-9.eE+-]+))?"
    r"(?:@(?P<budget>[0-9.eE+-]+))?$"
)

_SPEC_DEFAULT_BUDGET = {"latency": 0.01, "miss": 0.5, "imbalance": 0.25}


def parse_objective(spec: str) -> SLObjective:
    """One objective from its compact CLI spelling.

    ``p99<0.02`` (alias ``latency<0.02``) -> latency objective at 20 ms;
    ``miss<0.1`` -> miss-ratio objective with budget 0.1 (for misses the
    threshold IS the budget); ``imbalance<3`` -> imbalance objective.
    An optional ``@budget`` suffix overrides the error budget:
    ``p99<0.02@0.001``.
    """
    m = _SPEC_RE.match(spec.strip())
    if m is None:
        raise ValueError(
            f"malformed SLO objective {spec!r} "
            "(expected e.g. 'p99<0.02', 'miss<0.1', 'imbalance<3@0.1')"
        )
    kind = m.group("kind")
    threshold = m.group("threshold")
    budget = m.group("budget")
    if kind in ("p99", "latency"):
        if threshold is None:
            raise ValueError(f"latency objective {spec!r} needs a threshold")
        return SLObjective(
            "p99_latency",
            "latency",
            threshold=float(threshold),
            budget=float(budget) if budget else _SPEC_DEFAULT_BUDGET["latency"],
        )
    if kind == "miss":
        if budget is None and threshold is None:
            raise ValueError(f"miss objective {spec!r} needs a target ratio")
        return SLObjective(
            "miss_ratio",
            "miss",
            budget=float(budget if budget is not None else threshold),
        )
    if threshold is None:
        raise ValueError(f"imbalance objective {spec!r} needs a threshold")
    return SLObjective(
        "imbalance",
        "imbalance",
        threshold=float(threshold),
        budget=float(budget) if budget else _SPEC_DEFAULT_BUDGET["imbalance"],
    )


def parse_slo(spec: str) -> "SLOConfig":
    """A whole :class:`SLOConfig` from a comma-separated objective list.

    ``"p99<0.02,miss<0.5,imbalance<3@0.1"`` — what the ``--slo`` CLI
    flag accepts.  An empty spec raises.
    """
    parts = [p for p in (s.strip() for s in spec.split(",")) if p]
    if not parts:
        raise ValueError("empty SLO spec")
    objectives = tuple(parse_objective(p) for p in parts)
    names = [o.name for o in objectives]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate objectives in SLO spec {spec!r}")
    return SLOConfig(objectives=objectives)


@dataclass(frozen=True)
class SLOConfig:
    """Knobs of one run's SLO evaluation.

    ``window_s`` sizes the SLI windows in simulated seconds; ``None``
    auto-sizes to ``span / target_windows`` like the timeline module, so
    short and long runs both get a useful number of windows (capped at
    ``max_windows``).  ``fast_windows`` / ``slow_windows`` are the two
    burn-rate horizons in windows; ``page_budget`` / ``warn_budget`` the
    budget fractions whose consumption within those horizons trips a
    ``page`` / ``warn`` alert.
    """

    objectives: tuple[SLObjective, ...] = field(
        default_factory=lambda: DEFAULT_OBJECTIVES
    )
    window_s: float | None = None
    target_windows: int = 24
    max_windows: int = 240
    fast_windows: int = 2
    slow_windows: int = 12
    page_budget: float = 0.05
    warn_budget: float = 0.10

    def __post_init__(self) -> None:
        if not isinstance(self.objectives, tuple):
            object.__setattr__(self, "objectives", tuple(self.objectives))
        if not self.objectives:
            raise ValueError("SLOConfig needs at least one objective")
        for obj in self.objectives:
            if not isinstance(obj, SLObjective):
                raise TypeError(
                    f"objectives must be SLObjective, "
                    f"got {type(obj).__name__}"
                )
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError("objective names must be unique")
        if self.window_s is not None and not self.window_s > 0:
            raise ValueError("window_s must be positive (or None)")
        if self.target_windows < 1:
            raise ValueError("target_windows must be >= 1")
        if self.max_windows < self.target_windows:
            raise ValueError("max_windows must be >= target_windows")
        if self.fast_windows < 1:
            raise ValueError("fast_windows must be >= 1")
        if self.slow_windows < self.fast_windows:
            raise ValueError("slow_windows must be >= fast_windows")
        if not 0 < self.page_budget < 1:
            raise ValueError("page_budget must be in (0, 1)")
        if not self.page_budget <= self.warn_budget < 1:
            raise ValueError("warn_budget must be in [page_budget, 1)")


def default_slo_config() -> SLOConfig:
    """The loose config ``run_experiment`` installs for every experiment."""
    return SLOConfig()


# -- ambient config + section sinks (mirrors obs.popularity) ---------------

_local = threading.local()


def get_slo_config() -> SLOConfig | None:
    """The ambiently installed :class:`SLOConfig`, or ``None``."""
    stack = getattr(_local, "configs", None)
    return stack[-1] if stack else None


@contextmanager
def use_slo(config: SLOConfig) -> Iterator[SLOConfig]:
    """Ambiently enable SLO evaluation for the block."""
    if not isinstance(config, SLOConfig):
        raise TypeError(
            f"config must be an SLOConfig, got {type(config).__name__}"
        )
    stack = getattr(_local, "configs", None)
    if stack is None:
        stack = _local.configs = []
    stack.append(config)
    try:
        yield config
    finally:
        stack.pop()


@contextmanager
def collect_slo(
    into: list[dict[str, Any]] | None = None,
) -> Iterator[list[dict[str, Any]]]:
    """Collect every SLO section published inside the block."""
    sink: list[dict[str, Any]] = into if into is not None else []
    sinks = getattr(_local, "sinks", None)
    if sinks is None:
        sinks = _local.sinks = []
    sinks.append(sink)
    try:
        yield sink
    finally:
        for i in range(len(sinks) - 1, -1, -1):
            if sinks[i] is sink:
                del sinks[i]
                break


def publish_slo(section: dict[str, Any]) -> None:
    """Hand one finalized section to every active collector."""
    for sink in getattr(_local, "sinks", ()):
        sink.append(section)


# -- the evaluator ---------------------------------------------------------


def _rolling_sum(values: np.ndarray, span: int) -> np.ndarray:
    """Trailing ``span``-wide rolling sum at every index (shorter head)."""
    c = np.concatenate(([0.0], np.cumsum(values)))
    lo = np.maximum(np.arange(1, values.size + 1) - span, 0)
    return c[1:] - c[lo]


class SLOMonitor:
    """Order-insensitive SLO evaluator for one simulated run.

    The hot path is :attr:`miss_log` — ``RequestLifecycle.admit`` appends
    one bool per request in arrival order.  Everything else happens once
    in :meth:`evaluate`, which the lifecycle calls at ``result()`` time
    with the arrays it already owns.
    """

    def __init__(
        self,
        config: SLOConfig,
        *,
        scheme: str = "",
        engine: str = "",
        tracer: Tracer | None = None,
    ) -> None:
        if not isinstance(config, SLOConfig):
            raise TypeError(
                f"config must be an SLOConfig, got {type(config).__name__}"
            )
        self.config = config
        self.scheme = scheme
        self.engine = engine
        self.tracer = tracer if tracer is not None else get_tracer()
        self.miss_log: list[bool] = []

    # -- per-objective SLI series ---------------------------------------

    def _window_series(
        self,
        objective: SLObjective,
        win: np.ndarray,
        n_windows: int,
        latencies: np.ndarray,
        missed: np.ndarray | None,
        imbalance_windows: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Per-window (bad, total) counts for one objective, or ``None``
        when the run carries no signal for it (e.g. a miss objective with
        no cache configured)."""
        if objective.kind == "latency":
            total = np.bincount(win, minlength=n_windows).astype(np.float64)
            bad = np.bincount(
                win,
                weights=(latencies >= objective.threshold).astype(np.float64),
                minlength=n_windows,
            )
            return bad, total
        if objective.kind == "miss":
            if missed is None:
                return None
            total = np.bincount(win, minlength=n_windows).astype(np.float64)
            bad = np.bincount(
                win,
                weights=missed.astype(np.float64),
                minlength=n_windows,
            )
            return bad, total
        if imbalance_windows is None:
            return None
        bad = (imbalance_windows >= objective.threshold).astype(np.float64)
        total = np.ones_like(bad)
        return bad, total

    # -- burn-rate machinery --------------------------------------------

    def _burn_alerts(
        self,
        objective: SLObjective,
        bad: np.ndarray,
        total: np.ndarray,
        t_starts: np.ndarray,
        window_s: float,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Multi-window multi-burn-rate pass over one objective's series.

        For each severity the threshold is the burn rate that would
        consume ``severity_budget`` of the whole-run error budget within
        its horizon: ``budget_fraction * n_windows / horizon_windows``.
        An alert opens when the trailing-horizon burn crosses the
        threshold and closes (``SLO_RECOVERED``) when it falls back
        under; open alerts at end of run close implicitly but stay
        listed as ``active``.
        """
        cfg = self.config
        n = bad.size
        budget = objective.budget
        severities = (
            ("page", cfg.fast_windows, cfg.page_budget),
            ("warn", cfg.slow_windows, cfg.warn_budget),
        )
        emit = self.tracer.enabled
        reg = get_registry()
        lab = {"scheme": self.scheme or "?", "objective": objective.name}
        alerts: list[dict[str, Any]] = []
        breaches = recoveries = 0
        for severity, span, frac in severities:
            span = min(span, n) if n else span
            roll_bad = _rolling_sum(bad, span)
            roll_total = _rolling_sum(total, span)
            with np.errstate(invalid="ignore", divide="ignore"):
                frac_bad = np.where(roll_total > 0, roll_bad / roll_total, 0.0)
            burn = frac_bad / budget
            threshold_burn = frac * n / span if n else np.inf
            threshold_burn = max(threshold_burn, 1.0)
            open_alert: dict[str, Any] | None = None
            for w in range(n):
                ts = float(t_starts[w])
                if burn[w] >= threshold_burn and open_alert is None:
                    open_alert = {
                        "objective": objective.name,
                        "severity": severity,
                        "window": w,
                        "t_start": ts,
                        "t_end": None,
                        "burn": float(burn[w]),
                        "peak_burn": float(burn[w]),
                        "threshold_burn": float(threshold_burn),
                        "active": True,
                    }
                    alerts.append(open_alert)
                    breaches += 1
                    reg.counter("slo.breaches", **lab).inc()
                    if emit:
                        self.tracer.event(
                            ev.SLO_BREACH,
                            ts=ts,
                            scheme=self.scheme,
                            objective=objective.name,
                            severity=severity,
                            burn=float(burn[w]),
                            threshold_burn=float(threshold_burn),
                            window=w,
                        )
                elif open_alert is not None:
                    if burn[w] >= threshold_burn:
                        open_alert["peak_burn"] = max(
                            open_alert["peak_burn"], float(burn[w])
                        )
                    else:
                        open_alert["t_end"] = ts
                        open_alert["active"] = False
                        recoveries += 1
                        reg.counter("slo.recoveries", **lab).inc()
                        if emit:
                            self.tracer.event(
                                ev.SLO_RECOVERED,
                                ts=ts,
                                scheme=self.scheme,
                                objective=objective.name,
                                severity=severity,
                                burn=float(burn[w]),
                                window=w,
                            )
                        open_alert = None
        total_bad = float(bad.sum())
        total_n = float(total.sum())
        bad_fraction = total_bad / total_n if total_n else 0.0
        budget_remaining = (
            1.0 - bad_fraction / budget if total_n else 1.0
        )
        reg.gauge("slo.budget_remaining", **lab).set(budget_remaining)
        summary = {
            "name": objective.name,
            "kind": objective.kind,
            "threshold": objective.threshold,
            "budget": budget,
            "bad": total_bad,
            "total": total_n,
            "bad_fraction": bad_fraction,
            "budget_remaining": budget_remaining,
            "met": bad_fraction <= budget,
            "breaches": breaches,
            "recoveries": recoveries,
        }
        return alerts, summary

    # -- entry point ----------------------------------------------------

    def evaluate(
        self,
        times: np.ndarray,
        latencies: np.ndarray,
        missed: Sequence[bool] | np.ndarray | None = None,
        server_bytes: np.ndarray | None = None,
        popularity: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Judge one finished run; returns the JSON-able ``slo`` section.

        ``times`` are arrival times (any order), ``latencies`` aligned
        per request.  ``missed`` defaults to the monitor's own
        :attr:`miss_log` when the lifecycle fed it.  Imbalance windows
        come from a finalized popularity section's per-window
        ``max_mean`` series when available, else one whole-run window
        from ``server_bytes`` via
        :func:`repro.cluster.metrics.imbalance_factor`.
        """
        from repro.cluster.metrics import imbalance_factor

        cfg = self.config
        times = np.asarray(times, dtype=np.float64)
        latencies = np.asarray(latencies, dtype=np.float64)
        if missed is None and self.miss_log:
            missed = self.miss_log
        missed_arr = (
            np.asarray(missed, dtype=bool) if missed is not None else None
        )
        if missed_arr is not None and missed_arr.size != times.size:
            raise ValueError(
                f"missed has {missed_arr.size} entries for "
                f"{times.size} requests"
            )

        n_req = int(times.size)
        span = float(times.max()) if n_req else 0.0
        if cfg.window_s is not None:
            window_s = float(cfg.window_s)
        elif span > 0:
            window_s = span / cfg.target_windows
        else:
            window_s = 1.0
        if n_req:
            win = np.minimum(
                (times // window_s).astype(np.int64), cfg.max_windows - 1
            )
            n_windows = int(win.max()) + 1
        else:
            win = np.zeros(0, dtype=np.int64)
            n_windows = 0
        t_starts = np.arange(n_windows, dtype=np.float64) * window_s

        # Imbalance SLI: per-window max/mean from the popularity section
        # when it observed windows, else one whole-run pseudo-window.
        imbalance_windows = imb_t_starts = None
        if popularity is not None:
            rows = popularity.get("windows") or ()
            vals = [
                (r["t_start"], r["max_mean"])
                for r in rows
                if r.get("max_mean") is not None
            ]
            if vals:
                imb_t_starts = np.asarray([v[0] for v in vals])
                imbalance_windows = np.asarray([v[1] for v in vals])
        if imbalance_windows is None and server_bytes is not None:
            sb = np.asarray(server_bytes, dtype=np.float64)
            if sb.size and sb.any():
                imbalance_windows = np.asarray([imbalance_factor(sb)])
                imb_t_starts = np.zeros(1)

        alerts: list[dict[str, Any]] = []
        summaries: list[dict[str, Any]] = []
        for objective in cfg.objectives:
            series = self._window_series(
                objective, win, n_windows, latencies, missed_arr,
                imbalance_windows,
            )
            if series is None:
                summaries.append(
                    {
                        "name": objective.name,
                        "kind": objective.kind,
                        "threshold": objective.threshold,
                        "budget": objective.budget,
                        "bad": 0.0,
                        "total": 0.0,
                        "bad_fraction": 0.0,
                        "budget_remaining": 1.0,
                        "met": True,
                        "breaches": 0,
                        "recoveries": 0,
                    }
                )
                continue
            bad, total = series
            starts = (
                imb_t_starts
                if objective.kind == "imbalance" and imb_t_starts is not None
                else t_starts[: bad.size]
            )
            obj_alerts, summary = self._burn_alerts(
                objective, bad, total, starts,
                window_s,
            )
            alerts.extend(obj_alerts)
            summaries.append(summary)

        alerts.sort(key=lambda a: (a["t_start"], a["objective"]))
        return {
            "schema_version": SLO_SCHEMA_VERSION,
            "scheme": self.scheme,
            "engine": self.engine,
            "window_s": window_s,
            "n_windows": n_windows,
            "requests": n_req,
            "objectives": summaries,
            "alerts": alerts,
            "breaches": sum(s["breaches"] for s in summaries),
            "recoveries": sum(s["recoveries"] for s in summaries),
        }


def slo_from_trace(
    source, config: SLOConfig | None = None
) -> list[dict[str, Any]]:
    """Re-evaluate SLOs from a JSONL trace's ``read``/``read_done`` events.

    One section per scheme found in the trace (sorted by scheme name).
    Miss flags are not recoverable from the trace (``read`` events carry
    no per-request hit bit), so only latency and imbalance objectives
    produce signal; replay monitors never re-emit trace events.
    """
    from repro.obs.popularity import PopularityConfig, popularity_from_trace
    from repro.obs.replay import load_events

    config = config if config is not None else default_slo_config()
    events = list(load_events(source))
    per_scheme: dict[str, tuple[list[float], list[float]]] = {}
    for event in events:
        if event.get("event") != ev.READ_DONE:
            continue
        scheme = str(event.get("scheme", "?"))
        times, lats = per_scheme.setdefault(scheme, ([], []))
        times.append(float(event.get("ts", 0.0)))
        lats.append(float(event.get("latency", 0.0)))
    pop_by_scheme = {
        s.get("scheme", "?"): s
        for s in popularity_from_trace(events, PopularityConfig())
    }
    sections = []
    for scheme in sorted(per_scheme):
        times, lats = per_scheme[scheme]
        monitor = SLOMonitor(
            config, scheme=scheme, engine="trace", tracer=Tracer()
        )
        sections.append(
            monitor.evaluate(
                np.asarray(times),
                np.asarray(lats),
                popularity=pop_by_scheme.get(scheme),
            )
        )
    return sections
