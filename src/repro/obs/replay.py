"""Replay JSONL traces into per-server load vectors and summaries.

The simulator's ``read`` events carry the chosen servers and per-partition
byte counts of every fork-join request, so a trace file is sufficient to
reconstruct the exact per-server load vector a run produced in-process
(``SimulationResult.server_bytes``) — the property the round-trip test in
``tests/test_obs/test_replay_roundtrip.py`` pins down and the
``python -m repro stats`` subcommand exposes.

Traces may interleave several schemes (a traced ``compare`` run); every
function here groups by the ``scheme`` field.

Replay is *tolerant*: records with unknown event names — a trace written
by a newer build, or hand-annotated — are skipped rather than raised on,
and :func:`unknown_events` counts them so ``repro stats`` can surface
the skips.  Lines that are not JSON objects and simulator records
missing their required fields are likewise dropped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.obs import events as ev

__all__ = [
    "KNOWN_EVENTS",
    "iter_trace",
    "load_events",
    "event_counts",
    "metrics_snapshots",
    "per_server_loads",
    "load_timeline",
    "latency_samples",
    "span_tree",
    "trace_summary",
    "unknown_events",
]

#: every event name this build's replay code understands.
KNOWN_EVENTS = frozenset(ev.EVENT_LAYER)


def iter_trace(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield one record per parseable non-empty line of a JSONL trace.

    Lines that are not valid JSON objects are skipped — a truncated
    final line from a killed run must not poison the whole replay.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def load_events(source) -> list[dict[str, Any]]:
    """Normalize a path, a sink, or an iterable of records to a list."""
    if isinstance(source, (str, Path)):
        return list(iter_trace(source))
    records = getattr(source, "records", None)  # RingBufferSink
    if records is not None:
        source = records
    return [r for r in source if isinstance(r, dict)]


def unknown_events(source) -> dict[str, int]:
    """Counts of records whose event name is outside :data:`KNOWN_EVENTS`.

    Replay functions skip these silently (forward compatibility with
    traces from newer builds); this is the counter that makes the skips
    visible.  Records with no ``event`` field count under ``"?"``.
    """
    counts: dict[str, int] = {}
    for record in load_events(source):
        name = record.get("event")
        if name not in KNOWN_EVENTS:
            key = "?" if name is None else str(name)
            counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def event_counts(source) -> dict[str, int]:
    """How many records of each event name the trace holds."""
    counts: dict[str, int] = {}
    for record in load_events(source):
        name = record.get("event", "?")
        counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


def _reads_by_scheme(events) -> dict[str, list[dict[str, Any]]]:
    groups: dict[str, list[dict[str, Any]]] = {}
    for record in events:
        if (
            record.get("event") == ev.READ
            and "ts" in record
            and "servers" in record
            and "sizes" in record
        ):
            groups.setdefault(record.get("scheme", "?"), []).append(record)
    return groups


def _declared_widths(events) -> dict[str, int]:
    """Cluster sizes announced by ``simulation_end`` events, per scheme.

    Keeps idle trailing servers in reconstructed load vectors, so the
    imbalance factor matches the in-process one exactly.
    """
    widths: dict[str, int] = {}
    for record in events:
        if record.get("event") == ev.SIMULATION_END and "n_servers" in record:
            scheme = record.get("scheme", "?")
            widths[scheme] = max(
                widths.get(scheme, 0), int(record["n_servers"])
            )
    return widths


def _width_for(
    scheme: str,
    reads: list[dict[str, Any]],
    declared: dict[str, int],
    n_servers: int | None,
) -> int:
    if n_servers:
        return n_servers
    if scheme in declared:
        return declared[scheme]
    return 1 + max((max(r["servers"]) for r in reads if r["servers"]), default=0)


def per_server_loads(source, n_servers: int | None = None) -> dict[str, np.ndarray]:
    """Per-scheme per-server bytes served, rebuilt from ``read`` events.

    Identical (up to float addition order) to the ``server_bytes`` array the
    run reported in-process.  ``n_servers`` widens the vectors when trailing
    servers received no bytes; by default each vector spans the largest
    server id seen for that scheme.
    """
    events = load_events(source)
    declared = _declared_widths(events)
    out: dict[str, np.ndarray] = {}
    for scheme, reads in _reads_by_scheme(events).items():
        width = _width_for(scheme, reads, declared, n_servers)
        loads = np.zeros(width)
        for record in reads:
            np.add.at(
                loads,
                np.asarray(record["servers"], dtype=np.int64),
                np.asarray(record["sizes"], dtype=np.float64),
            )
        out[scheme] = loads
    return out


def load_timeline(
    source,
    n_buckets: int = 20,
    n_servers: int | None = None,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Per-scheme ``(bucket_edges, loads)`` time series of server load.

    ``loads`` has shape ``(n_buckets, n_servers)``: bytes served per server
    within each arrival-time bucket.  Cumulative-summing along axis 0 gives
    the running load vector the online adjuster balances against.
    """
    if n_buckets < 1:
        raise ValueError("n_buckets must be positive")
    events = load_events(source)
    declared = _declared_widths(events)
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for scheme, reads in _reads_by_scheme(events).items():
        ts = np.array([r["ts"] for r in reads])
        width = _width_for(scheme, reads, declared, n_servers)
        lo, hi = float(ts.min()), float(ts.max())
        edges = np.linspace(lo, hi, n_buckets + 1)
        # Every arrival must land in a bucket; nextafter keeps the last one.
        bucket = np.clip(
            np.searchsorted(edges, ts, side="right") - 1, 0, n_buckets - 1
        )
        loads = np.zeros((n_buckets, width))
        for b, record in zip(bucket, reads):
            np.add.at(
                loads[b],
                np.asarray(record["servers"], dtype=np.int64),
                np.asarray(record["sizes"], dtype=np.float64),
            )
        out[scheme] = (edges, loads)
    return out


def latency_samples(source) -> dict[str, np.ndarray]:
    """Per-scheme read latencies collected from ``read_done`` events."""
    events = load_events(source)
    groups: dict[str, list[float]] = {}
    for record in events:
        if record.get("event") == ev.READ_DONE and "latency" in record:
            groups.setdefault(record.get("scheme", "?"), []).append(
                float(record["latency"])
            )
    return {s: np.asarray(v) for s, v in groups.items()}


def metrics_snapshots(source) -> dict[str, dict[str, Any]]:
    """Per-scheme end-of-run metric snapshots from ``simulation_end`` events.

    Keys of each snapshot follow the documented
    :data:`repro.cluster.engine.lifecycle.METRIC_SNAPSHOT_KEYS` ordering;
    any extra fields a future schema adds trail behind in event order.
    When a trace holds several runs of one scheme, the last run wins.
    """
    from repro.cluster.engine.lifecycle import METRIC_SNAPSHOT_KEYS

    out: dict[str, dict[str, Any]] = {}
    for record in load_events(source):
        if record.get("event") != ev.SIMULATION_END:
            continue
        scheme = record.get("scheme", "?")
        snapshot: dict[str, Any] = {}
        for key in METRIC_SNAPSHOT_KEYS:
            if key in record:
                snapshot[key] = record[key]
        for key, value in record.items():
            if key not in snapshot and key not in ("event", "ts"):
                snapshot[key] = value
        out[scheme] = snapshot
    return dict(sorted(out.items()))


def span_tree(source) -> list[dict[str, Any]]:
    """Rebuild the span forest from ``span`` (and legacy ``profile``) events.

    Returns the root nodes; every node is the original record plus a
    ``children`` list.  A node whose ``parent`` id never appears in the
    trace (e.g. the trace started mid-run) is promoted to a root.  Legacy
    ``profile`` events carry no ids and always become leaf roots.
    """
    nodes: dict[int, dict[str, Any]] = {}
    order: list[dict[str, Any]] = []
    for record in load_events(source):
        kind = record.get("event")
        if kind == ev.SPAN and "span_id" in record:
            node = {**record, "children": []}
            nodes[record["span_id"]] = node
            order.append(node)
        elif kind == ev.PROFILE:
            order.append({**record, "span_id": None, "children": []})
    roots: list[dict[str, Any]] = []
    for node in order:
        parent = node.get("parent")
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    return roots


def trace_summary(source, n_servers: int | None = None) -> list[dict[str, Any]]:
    """One table row per scheme: requests, bytes, imbalance, latency tails."""
    from repro.cluster.metrics import imbalance_factor

    events = load_events(source)
    loads = per_server_loads(events, n_servers=n_servers)
    lats = latency_samples(events)
    reads = _reads_by_scheme(events)
    rows: list[dict[str, Any]] = []
    for scheme in sorted(loads):
        load = loads[scheme]
        row: dict[str, Any] = {
            "scheme": scheme,
            "requests": len(reads[scheme]),
            "bytes_served": float(load.sum()),
            "eta": imbalance_factor(load) if load.size else float("nan"),
            "stragglers": sum(
                1 for r in reads[scheme] if r.get("straggler")
            ),
            "misses": sum(1 for r in reads[scheme] if r.get("miss")),
        }
        sample = lats.get(scheme)
        if sample is not None and sample.size:
            row["mean_s"] = float(sample.mean())
            row["p95_s"] = float(np.percentile(sample, 95))
        rows.append(row)
    return rows
