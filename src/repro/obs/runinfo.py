"""Run manifests: schema-versioned, machine-readable experiment records.

Every ``run_all`` experiment emits, next to its human-readable
``results/<exp>.txt`` table, one ``results/<exp>.json`` *manifest*: the
structured table rows, the span forest with per-span wall times, the
final metrics-registry snapshot, and enough provenance (git sha, seed,
``--scale``, config hash, schema version) to compare two runs
mechanically.  ``repro report`` (:mod:`repro.obs.report`) aggregates and
diffs these files; CI uploads them as artifacts so the perf trajectory
accumulates.

Schema (version 7) — one flat JSON object:

===================  ==========================================================
``schema_version``   ``7``
``experiment``       experiment name (``fig10``, ``theorem1``, ...)
``created_unix``     ``time.time()`` at manifest build
``git_sha``          ``git rev-parse HEAD`` or ``None`` outside a checkout
``scale``            the ``--scale`` the run used (``None`` if not applicable)
``seed``             the run's base seed (``None`` if not applicable)
``config``           free-form dict of run configuration.  ``run_all``
                     populates it from the declarative experiment
                     registry: ``config.spec`` carries the registered
                     :class:`~repro.experiments.registry.ExperimentSpec`
                     metadata (description, paper-expectation table,
                     timing/timeline flags, sweep parameters), and
                     ``config.timing_rows`` / ``config.timelines``
                     mirror the spec's flags for the diff rules
``config_hash``      sha256 of the canonical-JSON ``config``
``wall_s``           wall seconds of the whole experiment (its root span)
``rows``             the structured table rows (list of dicts)
``spans``            finished spans: ``name``/``span_id``/``parent``/
                     ``start``/``wall_s`` (+ optional ``labels``)
``metrics``          metrics-registry snapshot at end of run
``timelines``        sim-time timeline sections published during the run
                     (:mod:`repro.obs.timeline`); empty list when the
                     experiment records none.  New in version 2.
``popularity``       streaming popularity sections published during the
                     run (:mod:`repro.obs.popularity`): sketched top-K,
                     Zipf-exponent estimate, drift/hot-spot alerts.
                     Empty list when the run observed none.  New in
                     version 3.
``peak_rss_bytes``   process peak resident set size at manifest build
                     (``resource.getrusage``), or ``None`` where the
                     platform doesn't report it.  New in version 4.
``total_requests``   total simulated requests across the experiment's
                     runs (summed from the ``sim.requests`` counters in
                     the metrics snapshot).  New in version 4.
``slo``              SLO evaluation sections published during the run
                     (:mod:`repro.obs.slo`): per-objective budget
                     accounting plus burn-rate breach/recovery alerts.
                     Empty list when the run evaluated none.  New in
                     version 5.
``causal``           causal critical-path sections published during the
                     run (:mod:`repro.obs.causal`): per-scheme edge-type
                     aggregation, conservation-invariant check, and the
                     slowest-K requests with their critical chains.
                     Empty list when the run collected none.  New in
                     version 6.
``membership``       cluster-membership sections published during the run
                     (:mod:`repro.obs.membership`): the epoch/event
                     history of each :class:`~repro.cluster.topology.ClusterTopology`
                     a churn experiment ran against, with per-epoch
                     server sets and (when the experiment recorded them)
                     per-epoch bytes moved.  Empty list for
                     fixed-topology runs.  New in version 7.
===================  ==========================================================

Older manifests still load: readers treat a missing ``timelines`` (v1),
``popularity`` (v1/v2), ``slo`` (v1-v4), ``causal`` (v1-v5), or
``membership`` (v1-v6) as an empty list, and missing
``peak_rss_bytes``/``total_requests`` (v1-v3) as unknown.

:func:`validate_manifest` enforces this shape; :func:`load_manifest`
validates on read so a corrupt or foreign JSON file fails loudly rather
than polluting a report.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "build_manifest",
    "config_hash",
    "git_sha",
    "load_manifest",
    "load_manifest_dir",
    "peak_rss_bytes",
    "total_requests_from_metrics",
    "validate_manifest",
    "write_manifest",
]

MANIFEST_SCHEMA_VERSION = 7

#: schema versions this build can read.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3, 4, 5, 6, 7)

#: required key -> accepted types (``None`` entries listed explicitly).
_MANIFEST_FIELDS: dict[str, tuple[type, ...]] = {
    "schema_version": (int,),
    "experiment": (str,),
    "created_unix": (int, float),
    "git_sha": (str, type(None)),
    "scale": (int, float, type(None)),
    "seed": (int, type(None)),
    "config": (dict,),
    "config_hash": (str,),
    "wall_s": (int, float),
    "rows": (list,),
    "spans": (list,),
    "metrics": (dict,),
}

#: keys required only from a given schema version onward.
_VERSIONED_FIELDS: dict[str, tuple[int, tuple[type, ...]]] = {
    "timelines": (2, (list,)),
    "popularity": (3, (list,)),
    "peak_rss_bytes": (4, (int, float, type(None))),
    "total_requests": (4, (int,)),
    "slo": (5, (list,)),
    "causal": (6, (list,)),
    "membership": (7, (list,)),
}


def peak_rss_bytes() -> int | None:
    """This process's peak resident set size in bytes, if knowable.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; platforms
    without :mod:`resource` (or reporting zero) yield ``None``.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:  # pragma: no cover - platform quirk
        return None
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def total_requests_from_metrics(metrics: dict[str, Any]) -> int:
    """Sum the ``sim.requests`` counters out of a metrics snapshot.

    Snapshot keys render labels inline (``"sim.requests{scheme=...}"``),
    so every series of the counter — one per scheme/engine combination —
    contributes its count.
    """
    total = 0.0
    for key, value in metrics.items():
        if key == "sim.requests" or key.startswith("sim.requests{"):
            total += float(value)
    return int(total)


def git_sha() -> str | None:
    """The current checkout's HEAD sha, or ``None`` when unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def config_hash(config: dict[str, Any]) -> str:
    """sha256 over the canonical JSON rendering of ``config``.

    Keys are sorted and non-JSON values fall back to ``str``, so the hash
    is stable across dict ordering and runs.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _span_dicts(spans: Iterable[Any]) -> list[dict[str, Any]]:
    out = []
    for s in spans:
        out.append(s.to_dict() if hasattr(s, "to_dict") else dict(s))
    return out


def build_manifest(
    experiment: str,
    rows: list[dict[str, Any]],
    *,
    wall_s: float,
    scale: float | None = None,
    seed: int | None = None,
    config: dict[str, Any] | None = None,
    spans: Iterable[Any] = (),
    metrics: dict[str, Any] | None = None,
    timelines: Iterable[dict[str, Any]] = (),
    popularity: Iterable[dict[str, Any]] = (),
    slo: Iterable[dict[str, Any]] = (),
    causal: Iterable[dict[str, Any]] = (),
    membership: Iterable[dict[str, Any]] = (),
    peak_rss: int | None = None,
    total_requests: int | None = None,
) -> dict[str, Any]:
    """Assemble and validate one current-schema manifest.

    ``spans`` accepts :class:`~repro.obs.spans.SpanRecord` objects or
    plain dicts; ``config`` is hashed with :func:`config_hash`;
    ``timelines`` takes sections from :mod:`repro.obs.timeline`,
    ``popularity`` sections from :mod:`repro.obs.popularity`,
    ``slo`` sections from :mod:`repro.obs.slo`, ``causal``
    critical-path sections from :mod:`repro.obs.causal`, and
    ``membership`` topology sections from :mod:`repro.obs.membership`.
    ``peak_rss`` defaults to :func:`peak_rss_bytes` measured at build
    time; ``total_requests`` defaults to summing the ``sim.requests``
    counters in ``metrics``.
    """
    config = dict(config or {})
    metrics = dict(metrics or {})
    if peak_rss is None:
        peak_rss = peak_rss_bytes()
    if total_requests is None:
        total_requests = total_requests_from_metrics(metrics)
    manifest: dict[str, Any] = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "experiment": str(experiment),
        "created_unix": time.time(),
        "git_sha": git_sha(),
        "scale": scale,
        "seed": seed,
        "config": config,
        "config_hash": config_hash(config),
        "wall_s": float(wall_s),
        "rows": [dict(r) for r in rows],
        "spans": _span_dicts(spans),
        "metrics": metrics,
        "timelines": [dict(t) for t in timelines],
        "popularity": [dict(p) for p in popularity],
        "slo": [dict(s) for s in slo],
        "causal": [dict(c) for c in causal],
        "membership": [dict(m) for m in membership],
        "peak_rss_bytes": peak_rss,
        "total_requests": int(total_requests),
    }
    return validate_manifest(manifest)


def validate_manifest(manifest: Any) -> dict[str, Any]:
    """Check the manifest schema; returns ``manifest`` or raises ValueError."""
    if not isinstance(manifest, dict):
        raise ValueError(
            f"manifest must be a JSON object, got {type(manifest).__name__}"
        )
    for key, types in _MANIFEST_FIELDS.items():
        if key not in manifest:
            raise ValueError(f"manifest is missing required key {key!r}")
        if not isinstance(manifest[key], types):
            raise ValueError(
                f"manifest key {key!r} has type "
                f"{type(manifest[key]).__name__}, expected one of "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    if manifest["schema_version"] not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"unsupported manifest schema_version "
            f"{manifest['schema_version']!r} (this build reads "
            f"{'/'.join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)})"
        )
    for key, (since, types) in _VERSIONED_FIELDS.items():
        if manifest["schema_version"] < since:
            continue
        if key not in manifest:
            raise ValueError(
                f"manifest is missing required key {key!r} "
                f"(required since schema version {since})"
            )
        if not isinstance(manifest[key], types):
            raise ValueError(
                f"manifest key {key!r} has type "
                f"{type(manifest[key]).__name__}, expected one of "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    if manifest["wall_s"] < 0:
        raise ValueError("manifest wall_s must be non-negative")
    if manifest["schema_version"] >= 4:
        rss = manifest["peak_rss_bytes"]
        if rss is not None and rss < 0:
            raise ValueError("manifest peak_rss_bytes must be non-negative")
        if manifest["total_requests"] < 0:
            raise ValueError("manifest total_requests must be non-negative")
    for i, row in enumerate(manifest["rows"]):
        if not isinstance(row, dict):
            raise ValueError(f"manifest row {i} is not an object")
    for i, s in enumerate(manifest["spans"]):
        if not isinstance(s, dict) or "name" not in s or "wall_s" not in s:
            raise ValueError(
                f"manifest span {i} must be an object with name/wall_s"
            )
        if s["wall_s"] < 0:
            raise ValueError(f"manifest span {i} has negative wall_s")
    for i, section in enumerate(manifest.get("timelines", ())):
        if not isinstance(section, dict) or "scheme" not in section:
            raise ValueError(
                f"manifest timeline {i} must be an object with a scheme"
            )
    for i, section in enumerate(manifest.get("popularity", ())):
        if not isinstance(section, dict) or "scheme" not in section:
            raise ValueError(
                f"manifest popularity section {i} must be an object "
                "with a scheme"
            )
    for i, section in enumerate(manifest.get("slo", ())):
        if not isinstance(section, dict) or "scheme" not in section:
            raise ValueError(
                f"manifest slo section {i} must be an object with a scheme"
            )
    for i, section in enumerate(manifest.get("causal", ())):
        if not isinstance(section, dict) or "scheme" not in section:
            raise ValueError(
                f"manifest causal section {i} must be an object "
                "with a scheme"
            )
    for i, section in enumerate(manifest.get("membership", ())):
        if not isinstance(section, dict) or "epochs" not in section:
            raise ValueError(
                f"manifest membership section {i} must be an object "
                "with an epochs list"
            )
    return manifest


def write_manifest(manifest: dict[str, Any], path: str | Path) -> Path:
    """Validate and write one manifest as pretty-printed JSON."""
    validate_manifest(manifest)
    path = Path(path)
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=False, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read and validate one manifest file."""
    with open(path, "r", encoding="utf-8") as fh:
        return validate_manifest(json.load(fh))


def load_manifest_dir(
    path: str | Path,
) -> tuple[dict[str, dict[str, Any]], list[str]]:
    """Load every valid manifest under ``path`` (non-recursive).

    Returns ``(manifests, skipped)``: manifests keyed by experiment name,
    plus the file names that exist but are not valid manifests (e.g.
    ``BENCH_*.json`` trajectory files) so callers can warn instead of
    silently ignoring them.
    """
    path = Path(path)
    manifests: dict[str, dict[str, Any]] = {}
    skipped: list[str] = []
    for file in sorted(path.glob("*.json")):
        try:
            manifest = load_manifest(file)
        except (ValueError, json.JSONDecodeError, OSError):
            skipped.append(file.name)
            continue
        manifests[manifest["experiment"]] = manifest
    return manifests, skipped
